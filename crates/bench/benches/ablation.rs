//! Ablation benches for the design choices called out in DESIGN.md:
//! copy-on-write perturbation overlays vs full graph rebuilds, and
//! pruned vs exhaustive factual feature spaces.

use criterion::{criterion_group, criterion_main, Criterion};
use exes_bench::scenario::{DatasetKind, HarnessConfig, Scenario};
use exes_core::ExpertRelevanceTask;
use exes_graph::{GraphView, Perturbation, PerturbationSet};

fn bench_overlay_vs_rebuild(c: &mut Criterion) {
    let harness = HarnessConfig::quick();
    let scenario = Scenario::build(DatasetKind::Github, &harness);
    let graph = &scenario.dataset.graph;
    let skill = graph.vocab().ids().next().unwrap();
    let delta = PerturbationSet::singleton(Perturbation::AddSkill {
        person: exes_graph::PersonId(0),
        skill,
    });

    let mut group = c.benchmark_group("perturbation_apply");
    group.sample_size(30);
    group.bench_function("copy_on_write_overlay", |b| {
        b.iter(|| {
            let view = delta.apply_to_graph(graph);
            view.num_edges()
        })
    });
    group.bench_function("full_rebuild", |b| {
        b.iter(|| {
            let rebuilt = delta.materialize(graph);
            rebuilt.num_edges()
        })
    });
    group.finish();
}

fn bench_pruned_vs_exhaustive_factual(c: &mut Criterion) {
    let mut harness = HarnessConfig::quick();
    harness.shap_permutations = 2;
    let scenario = Scenario::build(DatasetKind::Github, &harness);
    let graph = &scenario.dataset.graph;
    let (experts, _) = scenario.sample_experts_and_non_experts(1);
    let (query, person) = experts[0].clone();
    let task = ExpertRelevanceTask::new(&scenario.ranker, person, scenario.exes.config().k);

    let mut group = c.benchmark_group("factual_skills");
    group.sample_size(10);
    group.bench_function("pruned_neighborhood", |b| {
        b.iter(|| scenario.exes.factual_skills(&task, graph, &query, true))
    });
    group.bench_function("exhaustive_all_features", |b| {
        b.iter(|| scenario.exes.factual_skills(&task, graph, &query, false))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_overlay_vs_rebuild,
    bench_pruned_vs_exhaustive_factual
);
criterion_main!(benches);
