//! Micro-benchmarks of one full counterfactual explanation request
//! (pruned beam search vs the exhaustive baseline), matching Table 8's setup
//! at reduced scale.

use criterion::{criterion_group, criterion_main, Criterion};
use exes_bench::scenario::{DatasetKind, HarnessConfig, Scenario};
use exes_core::explainer::SkillAdditionBaseline;
use exes_core::ExpertRelevanceTask;

fn bench_counterfactual(c: &mut Criterion) {
    let mut harness = HarnessConfig::quick();
    harness.baseline_timeout_secs = 1;
    let scenario = Scenario::build(DatasetKind::Github, &harness);
    let graph = &scenario.dataset.graph;
    let (experts, _) = scenario.sample_experts_and_non_experts(1);
    let (query, person) = experts[0].clone();
    let k = scenario.exes.config().k;
    let task = ExpertRelevanceTask::new(&scenario.ranker, person, k);

    let mut group = c.benchmark_group("counterfactual_skills");
    group.sample_size(10);
    group.bench_function("pruned_beam", |b| {
        b.iter(|| scenario.exes.counterfactual_skills(&task, graph, &query))
    });
    group.bench_function("exhaustive_baseline", |b| {
        b.iter(|| {
            scenario.exes.counterfactual_skills_exhaustive(
                &task,
                graph,
                &query,
                SkillAdditionBaseline::AllPeople,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_counterfactual);
criterion_main!(benches);
