//! Benchmarks of the batched probe engine — the tentpole hot path.
//!
//! Measures raw probe throughput (parallel vs sequential) and a full
//! counterfactual beam search through the engine, at several graph scales, so
//! the perf trajectory of the engine is visible across PRs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exes_core::counterfactual::{beam::beam_search, CounterfactualKind};
use exes_core::probe::ProbeBatch;
use exes_core::{ExesConfig, ExpertRelevanceTask};
use exes_datasets::{DatasetConfig, QueryWorkload, SyntheticDataset};
use exes_expert_search::{GcnRanker, TfIdfRanker};
use exes_graph::{GraphView, Perturbation, PerturbationSet};

/// Graph scales exercised: (label, people).
const SCALES: &[(&str, usize)] = &[("small", 150), ("medium", 600), ("large", 1500)];

fn dataset(people: usize) -> SyntheticDataset {
    let base = DatasetConfig::github_sim();
    let factor = people as f64 / base.num_people as f64;
    SyntheticDataset::generate(&base.scaled(factor).with_seed(0xBE7C))
}

fn probe_sets(ds: &SyntheticDataset, count: usize) -> Vec<PerturbationSet> {
    let mut sets = Vec::with_capacity(count);
    'outer: for p in ds.graph.people() {
        for &s in ds.graph.person_skills(p) {
            sets.push(PerturbationSet::singleton(Perturbation::RemoveSkill {
                person: p,
                skill: s,
            }));
            if sets.len() >= count {
                break 'outer;
            }
        }
    }
    sets
}

fn bench_probe_batches(c: &mut Criterion) {
    let mut group = c.benchmark_group("probe_batch");
    group.sample_size(10);
    for &(label, people) in SCALES {
        let ds = dataset(people);
        let workload = QueryWorkload::answerable(&ds.graph, 1, 3, 5, 3, 0x51);
        let query = workload.queries()[0].clone();
        let ranker = TfIdfRanker::default();
        let subject = ds.graph.people().next().expect("non-empty graph");
        let task = ExpertRelevanceTask::new(&ranker, subject, 10);
        let sets = probe_sets(&ds, 256);
        group.bench_function(BenchmarkId::new("parallel", label), |b| {
            let engine = ProbeBatch::new(&task, &ds.graph, &query, true);
            b.iter(|| engine.score(&sets))
        });
        group.bench_function(BenchmarkId::new("sequential", label), |b| {
            let engine = ProbeBatch::new(&task, &ds.graph, &query, false);
            b.iter(|| engine.score(&sets))
        });
    }
    group.finish();
}

fn bench_beam_through_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("beam_probe_engine");
    group.sample_size(10);
    for &(label, people) in &SCALES[..2] {
        let ds = dataset(people);
        let workload = QueryWorkload::answerable(&ds.graph, 1, 3, 5, 3, 0x52);
        let query = workload.queries()[0].clone();
        let ranker = GcnRanker::default();
        let subject = ds.graph.people().next().expect("non-empty graph");
        let task = ExpertRelevanceTask::new(&ranker, subject, 10);
        let candidates: Vec<Perturbation> = ds
            .graph
            .person_skills(subject)
            .iter()
            .map(|&s| Perturbation::RemoveSkill {
                person: subject,
                skill: s,
            })
            .chain(
                ds.graph
                    .vocab()
                    .ids()
                    .take(20)
                    .map(|skill| Perturbation::AddQueryTerm { skill }),
            )
            .collect();
        for (mode, parallel) in [("parallel", true), ("sequential", false)] {
            let cfg = ExesConfig::fast().with_k(10).with_parallel_probes(parallel);
            group.bench_function(BenchmarkId::new(mode, label), |b| {
                b.iter(|| {
                    beam_search(
                        &task,
                        &ds.graph,
                        &query,
                        &candidates,
                        CounterfactualKind::SkillRemoval,
                        &cfg,
                        None,
                        None,
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_probe_batches, bench_beam_through_engine);
criterion_main!(benches);
