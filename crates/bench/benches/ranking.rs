//! Micro-benchmarks of the expert-search rankers (the `T_ranking` term that
//! dominates every complexity expression in Tables 4 and 5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exes_bench::scenario::{DatasetKind, HarnessConfig, Scenario};
use exes_expert_search::{
    ExpertRanker, GcnRanker, PersonalizedPageRank, PropagationRanker, TfIdfRanker,
};

fn bench_rankers(c: &mut Criterion) {
    let harness = HarnessConfig::quick();
    let scenario = Scenario::build(DatasetKind::Github, &harness);
    let graph = &scenario.dataset.graph;
    let query = &scenario.workload.queries()[0];

    let mut group = c.benchmark_group("rank_all");
    group.sample_size(20);
    group.bench_function(BenchmarkId::new("tfidf", "github"), |b| {
        let r = TfIdfRanker::default();
        b.iter(|| r.rank_all(graph, query))
    });
    group.bench_function(BenchmarkId::new("propagation", "github"), |b| {
        let r = PropagationRanker::default();
        b.iter(|| r.rank_all(graph, query))
    });
    group.bench_function(BenchmarkId::new("pagerank", "github"), |b| {
        let r = PersonalizedPageRank::default();
        b.iter(|| r.rank_all(graph, query))
    });
    group.bench_function(BenchmarkId::new("gcn", "github"), |b| {
        let r = GcnRanker::default();
        b.iter(|| r.rank_all(graph, query))
    });
    group.finish();
}

criterion_group!(benches, bench_rankers);
criterion_main!(benches);
