//! Micro-benchmarks of the Shapley estimators (exact vs permutation vs kernel).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exes_shap::{exact_shapley, kernel_shap, permutation_shapley, FnModel};

fn model(n: usize) -> FnModel<impl Fn(&[bool]) -> f64> {
    FnModel::new(n, move |mask: &[bool]| {
        let mut acc = 0.0;
        for (i, &b) in mask.iter().enumerate() {
            if b {
                acc += (i % 7) as f64;
            }
        }
        // A pairwise interaction so that the model is not purely additive.
        if mask[0] && mask[n - 1] {
            acc += 5.0;
        }
        acc
    })
}

fn bench_shap(c: &mut Criterion) {
    let mut group = c.benchmark_group("shap");
    group.sample_size(20);
    group.bench_function(BenchmarkId::new("exact", 12), |b| {
        let m = model(12);
        b.iter(|| exact_shapley(&m))
    });
    for features in [32usize, 128] {
        group.bench_function(BenchmarkId::new("permutation_16", features), |b| {
            let m = model(features);
            b.iter(|| permutation_shapley(&m, 16, 7))
        });
        group.bench_function(BenchmarkId::new("kernel_256", features), |b| {
            let m = model(features);
            b.iter(|| kernel_shap(&m, 256, 7))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_shap);
criterion_main!(benches);
