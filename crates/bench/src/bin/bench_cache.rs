//! Emits `BENCH_cache.json`: the probe memo-cache and serving-layer baseline.
//!
//! Measures, at two graph scales (one with `--smoke`):
//! * a **cold vs warm** pruned beam search through one `ProbeCache` — probe
//!   counts and wall time for both runs, asserting byte-identical
//!   explanations;
//! * **multi-subject service throughput**: a batch of skill-counterfactual
//!   requests (several subjects per query, the whole batch repeated once to
//!   model returning traffic) served by `ExesService`, against the same
//!   requests answered one-by-one through an uncached explainer.
//!
//! Run with `cargo run -p exes-bench --release --bin bench_cache` from the
//! repo root; CI runs the `--smoke` variant to keep the binary from
//! bit-rotting.

use exes_bench::timing::timed;
use exes_core::counterfactual::{beam::beam_search, CounterfactualKind};
use exes_core::service::{ExesService, ExplanationKind, ExplanationRequest};
use exes_core::{Exes, ExesConfig, ExpertRelevanceTask, ModelSpec, ProbeCache};
use exes_datasets::{DatasetConfig, QueryWorkload, SyntheticDataset};
use exes_embedding::{EmbeddingConfig, SkillEmbedding};
use exes_expert_search::{ExpertRanker, GcnRanker};
use exes_graph::{GraphView, Perturbation};
use exes_linkpred::CommonNeighbors;
use std::fmt::Write as _;
use std::sync::Arc;

const SUBJECTS_PER_QUERY: usize = 6;
const QUERIES: usize = 2;

struct Row {
    scale: &'static str,
    people: usize,
    edges: usize,
    // Cold vs warm beam search through one cache.
    beam_cold_probes: usize,
    beam_cold_ms: f64,
    beam_warm_probes: usize,
    beam_warm_hits: usize,
    beam_warm_ms: f64,
    // Batch serving vs one-by-one explaining.
    service_requests: usize,
    service_duplicates: usize,
    service_ms: f64,
    service_rps: f64,
    service_cache_hits: u64,
    service_hit_rate: f64,
    service_probes: usize,
    solo_ms: f64,
    solo_probes: usize,
}

fn measure(scale: &'static str, people: usize) -> Row {
    let base = DatasetConfig::github_sim();
    let factor = people as f64 / base.num_people as f64;
    let ds = SyntheticDataset::generate(&base.scaled(factor).with_seed(0xCAC4E));
    let workload = QueryWorkload::answerable(&ds.graph, QUERIES, 3, 5, 3, 0x51);
    let ranker = GcnRanker::default();
    let cfg = ExesConfig::fast().with_k(10);

    // --- Cold vs warm beam search -------------------------------------
    let query = workload.queries()[0].clone();
    let subject = ranker.rank_all(&ds.graph, &query).top_k(1)[0];
    let task = ExpertRelevanceTask::new(&ranker, subject, cfg.k);
    let candidates: Vec<Perturbation> = ds
        .graph
        .person_skills(subject)
        .iter()
        .map(|&s| Perturbation::RemoveSkill {
            person: subject,
            skill: s,
        })
        .chain(
            ds.graph
                .vocab()
                .ids()
                .take(20)
                .map(|skill| Perturbation::AddQueryTerm { skill }),
        )
        .collect();
    let cache = ProbeCache::for_config(&cfg);
    let run = |cache: &ProbeCache| {
        beam_search(
            &task,
            &ds.graph,
            &query,
            &candidates,
            CounterfactualKind::SkillRemoval,
            &cfg,
            None,
            Some(cache),
        )
    };
    let (cold, cold_time) = timed(|| run(&cache));
    let (warm, warm_time) = timed(|| run(&cache));
    assert_eq!(
        cold.explanations, warm.explanations,
        "cache changed the explanations"
    );
    assert!(
        warm.probes < cold.probes,
        "warm run must issue fewer black-box probes ({} vs {})",
        warm.probes,
        cold.probes
    );

    // --- Multi-subject service throughput -----------------------------
    let embedding = SkillEmbedding::train(
        ds.corpus.token_bags(),
        ds.graph.vocab().len(),
        &EmbeddingConfig {
            dim: 16,
            ..Default::default()
        },
    );
    let exes = Exes::new(cfg.clone(), embedding, CommonNeighbors);
    let mut service = ExesService::from_graph(&exes, ds.graph.clone());
    let model = service
        .register("gcn", ModelSpec::expert_ranker(ranker.clone(), cfg.k))
        .expect("valid model spec");
    let mut requests = Vec::new();
    for query in workload.queries() {
        let query = Arc::new(query.clone());
        let ranking = ranker.rank_all(&ds.graph, &query);
        for (rank, &(person, _)) in ranking
            .entries()
            .iter()
            .take(SUBJECTS_PER_QUERY)
            .enumerate()
        {
            requests.push(ExplanationRequest::counterfactual_skills(
                model,
                person,
                query.clone(),
            ));
            // Half the subjects also ask for a query-augmentation explanation:
            // both searches share the group cache (identity probe and every
            // query-side perturbation set), exercising cross-request reuse.
            if rank % 2 == 0 {
                requests.push(ExplanationRequest::counterfactual_query(
                    model,
                    person,
                    query.clone(),
                ));
            }
        }
    }
    // Returning traffic: the same requests arrive a second time.
    let mut traffic = requests.clone();
    traffic.extend(requests.clone());

    let ((responses, report), service_time) = timed(|| service.explain_batch(&traffic));
    assert_eq!(responses.len(), traffic.len());

    let mut solo_exes = exes.clone();
    solo_exes.config_mut().parallel_probes = false;
    let (solo_probes, solo_time) = timed(|| {
        let mut probes = 0usize;
        for request in &traffic {
            let task = ExpertRelevanceTask::new(&ranker, request.subject, cfg.k);
            let result = match request.kind {
                ExplanationKind::CounterfactualQuery => {
                    solo_exes.counterfactual_query(&task, &ds.graph, &request.query)
                }
                _ => solo_exes.counterfactual_skills(&task, &ds.graph, &request.query),
            };
            probes += result.probes;
        }
        probes
    });

    let service_secs = service_time.as_secs_f64();
    Row {
        scale,
        people: ds.graph.num_people(),
        edges: ds.graph.num_edges(),
        beam_cold_probes: cold.probes,
        beam_cold_ms: cold_time.as_secs_f64() * 1e3,
        beam_warm_probes: warm.probes,
        beam_warm_hits: warm.cache_hits,
        beam_warm_ms: warm_time.as_secs_f64() * 1e3,
        service_requests: traffic.len(),
        service_duplicates: report.duplicate_requests,
        service_ms: service_secs * 1e3,
        service_rps: traffic.len() as f64 / service_secs.max(1e-9),
        service_cache_hits: report.cache_hits,
        service_hit_rate: report.hit_rate(),
        service_probes: report.probes,
        solo_ms: solo_time.as_secs_f64() * 1e3,
        solo_probes,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scales: &[(&'static str, usize)] = if smoke {
        &[("smoke", 120)]
    } else {
        &[("small", 150), ("medium", 600)]
    };
    let threads = exes_parallel::thread_count(usize::MAX);

    let mut rows = Vec::new();
    for &(scale, people) in scales {
        eprintln!("measuring scale '{scale}' ({people} people)...");
        rows.push(measure(scale, people));
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"probe_cache\",");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    json.push_str("  \"scales\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"scale\": \"{}\", \"people\": {}, \"edges\": {}, \
             \"beam_cold_probes\": {}, \"beam_cold_ms\": {:.3}, \
             \"beam_warm_probes\": {}, \"beam_warm_hits\": {}, \
             \"beam_warm_ms\": {:.3}, \
             \"service_requests\": {}, \"service_duplicates\": {}, \
             \"service_ms\": {:.3}, \"service_rps\": {:.1}, \
             \"service_cache_hits\": {}, \"service_hit_rate\": {:.4}, \
             \"service_probes\": {}, \
             \"solo_ms\": {:.3}, \"solo_probes\": {}, \
             \"service_speedup\": {:.2}}}{comma}",
            r.scale,
            r.people,
            r.edges,
            r.beam_cold_probes,
            r.beam_cold_ms,
            r.beam_warm_probes,
            r.beam_warm_hits,
            r.beam_warm_ms,
            r.service_requests,
            r.service_duplicates,
            r.service_ms,
            r.service_rps,
            r.service_cache_hits,
            r.service_hit_rate,
            r.service_probes,
            r.solo_ms,
            r.solo_probes,
            r.solo_ms / r.service_ms.max(1e-9),
        );
    }
    json.push_str("  ]\n}\n");

    println!("{json}");
    if smoke {
        // Smoke runs exercise the whole pipeline but must not clobber the
        // committed full-scale baseline.
        eprintln!("smoke run: leaving BENCH_cache.json untouched");
    } else {
        std::fs::write("BENCH_cache.json", &json).expect("write BENCH_cache.json");
        eprintln!("wrote BENCH_cache.json");
    }
}
