//! Emits `BENCH_durability.json`: restart cost under the durability
//! subsystem.
//!
//! One committed history (a churn `UpdateStream` WAL'd through a
//! [`DurableStore`]) is recovered three ways, measuring for each the
//! recovery wall time and the black-box probes the first explanation batch
//! pays after the restart:
//!
//! * **wal_replay** — no snapshot on disk: recovery replays every WAL record
//!   from the seed graph, and the probe cache starts empty (a cold restart);
//! * **snapshot** — a drain-time snapshot compacted the WAL: recovery is one
//!   snapshot decode, but the probe cache still starts empty;
//! * **snapshot_cache** — snapshot plus the exported warm cache: recovery is
//!   one decode + cache import, and the first repeat batch answers with
//!   **zero** probes (asserted — this is the PR's acceptance bar).
//!
//! Run with `cargo run -p exes-bench --release --bin bench_durability` from
//! the repo root; CI runs the `--smoke` variant to keep it from bit-rotting.

use exes_bench::timing::timed;
use exes_core::service::{ExesService, ExplanationRequest};
use exes_core::{Exes, ExesConfig, ModelSpec};
use exes_datasets::{
    DatasetConfig, QueryWorkload, SyntheticDataset, UpdateStream, UpdateStreamConfig,
};
use exes_durability::{CacheLoad, DurabilityConfig, DurableStore};
use exes_embedding::{EmbeddingConfig, SkillEmbedding};
use exes_expert_search::{ExpertRanker, GcnRanker};
use exes_graph::{GraphView, StoreConfig};
use exes_linkpred::CommonNeighbors;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

const COMMITS: usize = 24;
const OPS_PER_COMMIT: usize = 8;
const SUBJECTS_PER_QUERY: usize = 4;
const QUERIES: usize = 2;

struct Scenario {
    name: &'static str,
    recovery_ms: f64,
    replayed_records: u64,
    had_snapshot: bool,
    cache_entries: usize,
    first_batch_probes: usize,
    first_batch_ms: f64,
}

struct Row {
    scale: &'static str,
    people: usize,
    edges: usize,
    commits: usize,
    wal_bytes: u64,
    scenarios: Vec<Scenario>,
}

fn tmp_dir(scale: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "exes-bench-durability-{}-{scale}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The service every scenario answers with: same model, registered the same
/// way, so probe-cache contexts agree across restarts.
fn service_over(
    exes: &Exes<CommonNeighbors>,
    store: Arc<exes_graph::GraphStore>,
    k: usize,
) -> ExesService<CommonNeighbors> {
    let mut service = ExesService::new(exes, store);
    service
        .register("gcn", ModelSpec::expert_ranker(GcnRanker::default(), k))
        .expect("valid model spec");
    service
}

fn measure(scale: &'static str, people: usize) -> Row {
    let base = DatasetConfig::github_sim();
    let factor = people as f64 / base.num_people as f64;
    let ds = SyntheticDataset::generate(&base.scaled(factor).with_seed(0xD0_7A31));
    let cfg = ExesConfig::fast().with_k(10);
    let embedding = SkillEmbedding::train(
        ds.corpus.token_bags(),
        ds.graph.vocab().len(),
        &EmbeddingConfig {
            dim: 16,
            ..Default::default()
        },
    );
    let exes = Exes::new(cfg.clone(), embedding, CommonNeighbors);
    let durability = DurabilityConfig {
        snapshot_interval: 0, // the bench controls exactly when snapshots happen
        store: StoreConfig::default(),
    };
    let dir = tmp_dir(scale);
    let seed = || ds.graph.clone();

    // The repeat workload every restart answers first.
    let workload = QueryWorkload::answerable(&ds.graph, QUERIES, 3, 5, 3, 0x77);
    let ranker = GcnRanker::default();
    let model_requests = |service: &ExesService<CommonNeighbors>| -> Vec<ExplanationRequest> {
        let model = service.model_id("gcn").expect("registered above");
        let mut requests = Vec::new();
        for query in workload.queries() {
            let query = Arc::new(query.clone());
            let ranking = ranker.rank_all(&ds.graph, &query);
            for (rank, &(person, _)) in ranking
                .entries()
                .iter()
                .take(SUBJECTS_PER_QUERY)
                .enumerate()
            {
                requests.push(ExplanationRequest::counterfactual_skills(
                    model,
                    person,
                    query.clone(),
                ));
                if rank % 2 == 0 {
                    requests.push(ExplanationRequest::counterfactual_query(
                        model,
                        person,
                        query.clone(),
                    ));
                }
            }
        }
        requests
    };

    // --- Build the committed history: a pure-WAL run, then a hard drop ----
    let stream = UpdateStream::generate(
        &ds.graph,
        &UpdateStreamConfig::churn(COMMITS, OPS_PER_COMMIT, 0xBEA7),
    );
    let wal_bytes;
    {
        let durable = DurableStore::open(&dir, durability, seed).expect("fresh data dir");
        for batch in stream.batches() {
            durable.commit(batch).expect("generated batch commits");
        }
        wal_bytes = durable.stats().wal_bytes;
        // Dropped without snapshot or cache export: a crash.
    }

    let mut scenarios = Vec::new();

    // --- Scenario 1: cold restart, WAL-only replay ------------------------
    let (durable, open_time) =
        timed(|| DurableStore::open(&dir, durability, seed).expect("wal replay recovery"));
    let report = durable.recovery();
    assert!(!report.had_snapshot);
    assert_eq!(report.replayed_records, COMMITS as u64);
    let service = service_over(&exes, Arc::clone(durable.store()), cfg.k);
    let requests = model_requests(&service);
    let ((_, cold), cold_time) = timed(|| service.explain_batch(&requests));
    assert!(cold.probes > 0, "a cold restart pays real probes");
    scenarios.push(Scenario {
        name: "wal_replay",
        recovery_ms: open_time.as_secs_f64() * 1e3,
        replayed_records: report.replayed_records,
        had_snapshot: report.had_snapshot,
        cache_entries: 0,
        first_batch_probes: cold.probes,
        first_batch_ms: cold_time.as_secs_f64() * 1e3,
    });

    // Graceful drain: compact the WAL into a snapshot and export the cache
    // the cold pass above just warmed.
    durable.snapshot_now().expect("drain-time snapshot");
    let (_, warm) = service.explain_batch(&requests);
    assert_eq!(warm.probes, 0, "the warmed cache replays without probes");
    let exported = durable
        .save_cache(service.probe_cache())
        .expect("drain-time cache export");
    assert!(exported > 0);
    drop(service);
    drop(durable);

    // --- Scenario 2: snapshot restore, cache left on disk unloaded --------
    let (durable, open_time) =
        timed(|| DurableStore::open(&dir, durability, seed).expect("snapshot recovery"));
    let report = durable.recovery();
    assert!(report.had_snapshot);
    assert_eq!(report.replayed_records, 0);
    let service = service_over(&exes, Arc::clone(durable.store()), cfg.k);
    let ((_, cold), cold_time) = timed(|| service.explain_batch(&requests));
    assert!(
        cold.probes > 0,
        "without the cache the restart is still cold"
    );
    scenarios.push(Scenario {
        name: "snapshot",
        recovery_ms: open_time.as_secs_f64() * 1e3,
        replayed_records: report.replayed_records,
        had_snapshot: report.had_snapshot,
        cache_entries: 0,
        first_batch_probes: cold.probes,
        first_batch_ms: cold_time.as_secs_f64() * 1e3,
    });
    drop(service);
    drop(durable);

    // --- Scenario 3: snapshot + warm-cache restore -------------------------
    let (loaded, open_time) = timed(|| {
        let durable = DurableStore::open(&dir, durability, seed).expect("warm recovery");
        let service = service_over(&exes, Arc::clone(durable.store()), cfg.k);
        let loaded = match durable
            .load_cache_into(service.probe_cache())
            .expect("cache file reads")
        {
            CacheLoad::Loaded(n) => n,
            other => panic!("expected a warm import, got {other:?}"),
        };
        (durable, service, loaded)
    });
    let (durable, service, cache_entries) = loaded;
    let report = durable.recovery();
    let ((_, first), first_time) = timed(|| service.explain_batch(&requests));
    assert_eq!(
        first.probes, 0,
        "the acceptance bar: a warm restart answers its first repeat batch \
         with zero black-box probes"
    );
    scenarios.push(Scenario {
        name: "snapshot_cache",
        recovery_ms: open_time.as_secs_f64() * 1e3,
        replayed_records: report.replayed_records,
        had_snapshot: report.had_snapshot,
        cache_entries,
        first_batch_probes: first.probes,
        first_batch_ms: first_time.as_secs_f64() * 1e3,
    });

    let people = durable.store().snapshot().graph().num_people();
    let edges = durable.store().snapshot().graph().num_edges();
    drop(service);
    drop(durable);
    let _ = std::fs::remove_dir_all(&dir);

    Row {
        scale,
        people,
        edges,
        commits: COMMITS,
        wal_bytes,
        scenarios,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scales: &[(&'static str, usize)] = if smoke {
        &[("smoke", 120)]
    } else {
        &[("small", 300), ("large", 1200)]
    };
    let threads = exes_parallel::thread_count(usize::MAX);

    let mut rows = Vec::new();
    for &(scale, people) in scales {
        eprintln!("measuring scale '{scale}' ({people} people)...");
        rows.push(measure(scale, people));
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"durability\",");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    json.push_str("  \"scales\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"scale\": \"{}\", \"people\": {}, \"edges\": {}, \
             \"commits\": {}, \"wal_bytes\": {},",
            r.scale, r.people, r.edges, r.commits, r.wal_bytes
        );
        json.push_str("     \"restarts\": [\n");
        for (j, s) in r.scenarios.iter().enumerate() {
            let comma = if j + 1 < r.scenarios.len() { "," } else { "" };
            let _ = writeln!(
                json,
                "       {{\"name\": \"{}\", \"recovery_ms\": {:.3}, \
                 \"had_snapshot\": {}, \"replayed_records\": {}, \
                 \"cache_entries\": {}, \"first_batch_probes\": {}, \
                 \"first_batch_ms\": {:.3}}}{comma}",
                s.name,
                s.recovery_ms,
                s.had_snapshot,
                s.replayed_records,
                s.cache_entries,
                s.first_batch_probes,
                s.first_batch_ms,
            );
        }
        let _ = writeln!(json, "     ]}}{comma}");
    }
    json.push_str("  ]\n}\n");

    println!("{json}");
    if smoke {
        // Smoke runs exercise the whole pipeline but must not clobber the
        // committed full-scale baseline.
        eprintln!("smoke run: leaving BENCH_durability.json untouched");
    } else {
        std::fs::write("BENCH_durability.json", &json).expect("write BENCH_durability.json");
        eprintln!("wrote BENCH_durability.json");
    }
}
