//! Emits `BENCH_incremental.json`: full-vs-incremental cold probe latency.
//!
//! For each graph scale (300 / 1200 / 5000 people) and each plan-capable
//! ranker (TF-IDF, propagation, personalized PageRank), scores a mixed batch
//! of singleton skill/edge perturbations two ways:
//!
//! * **full** — every probe re-ranks from scratch (a sample of the batch,
//!   timed per probe), and
//! * **incremental** — a per-context baseline plan is built once and every
//!   probe is rescored over the delta's affected neighbourhood only; the
//!   reported per-probe time *includes* the plan build, so the speedup is the
//!   one a cold explanation request actually sees.
//!
//! The two paths are byte-identical for the exact rankers (asserted here and
//! differentially tested in `tests/properties.rs`); PageRank's push-based
//! residual path is bounded-error, so it is reported but not byte-compared.
//!
//! Run with `cargo run -p exes-bench --release --bin bench_incremental` from
//! the repo root. `--smoke` runs one tiny scale and leaves the committed JSON
//! untouched; `--threads 1,4,8` emits one row set per worker-thread count.

use exes_bench::timing::{set_thread_count, thread_counts, timed};
use exes_core::probe::ProbeBatch;
use exes_core::tasks::DecisionModel;
use exes_core::ExpertRelevanceTask;
use exes_datasets::{DatasetConfig, QueryWorkload, SyntheticDataset};
use exes_expert_search::{ExpertRanker, PersonalizedPageRank, PropagationRanker, TfIdfRanker};
use exes_graph::{GraphView, PersonId, Perturbation, PerturbationSet, Query};
use std::fmt::Write as _;
use std::time::Duration;

const SCALES: &[(&str, usize)] = &[("small", 300), ("medium", 1200), ("large", 5000)];
const BATCH: usize = 256;
/// How many of the batch's probes the full (re-rank) path times; the full
/// path's cost is per-probe uniform, so a sample keeps the large scale from
/// dominating the wall clock without changing the per-probe figure.
const FULL_SAMPLE: usize = 32;
const REPS: usize = 3;
const K: usize = 10;

struct Row {
    scale: &'static str,
    threads: usize,
    people: usize,
    edges: usize,
    ranker: &'static str,
    plan_ms: f64,
    full_probe_us: f64,
    incremental_probe_us: f64,
    speedup: f64,
    incremental_share: f64,
}

fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, Duration) {
    let (mut value, mut best) = timed(&mut f);
    for _ in 1..reps {
        let (v, d) = timed(&mut f);
        if d < best {
            best = d;
            value = v;
        }
    }
    (value, best)
}

/// A deterministic mix of singleton skill and edge deltas — the cold-probe
/// workload beam search and SHAP coalitions actually generate.
fn mixed_batch(graph: &exes_graph::CollabGraph, batch: usize) -> Vec<PerturbationSet> {
    let n = graph.num_people();
    let skills: Vec<_> = graph.vocab().ids().collect();
    let mut sets = Vec::with_capacity(batch);
    let mut i = 0usize;
    while sets.len() < batch {
        let p = PersonId((i % n) as u32);
        let delta = match i % 4 {
            0 => graph
                .person_skills(p)
                .first()
                .map(|&skill| Perturbation::RemoveSkill { person: p, skill }),
            1 => skills
                .iter()
                .find(|&&s| !graph.person_has_skill(p, s))
                .map(|&skill| Perturbation::AddSkill { person: p, skill }),
            2 => graph
                .base_neighbors(p)
                .first()
                .map(|&q| Perturbation::RemoveEdge { a: p, b: q }),
            _ => {
                let q = PersonId(((i / 4 + n / 2) % n) as u32);
                (q != p && !graph.has_edge(p, q)).then_some(Perturbation::AddEdge { a: p, b: q })
            }
        };
        if let Some(delta) = delta {
            sets.push(PerturbationSet::singleton(delta));
        }
        i += 1;
    }
    sets
}

fn measure_ranker<R: ExpertRanker + Sync>(
    scale: &'static str,
    threads: usize,
    name: &'static str,
    exact: bool,
    ranker: &R,
    ds: &SyntheticDataset,
    query: &Query,
) -> Row {
    let subject = ds.graph.people().next().expect("non-empty graph");
    let task = ExpertRelevanceTask::new(ranker, subject, K);
    let sets = mixed_batch(&ds.graph, BATCH);
    let sample = &sets[..FULL_SAMPLE.min(sets.len())];

    let parallel = threads > 1;
    let full_engine = ProbeBatch::new(&task, &ds.graph, query, parallel);
    let (full_probes, full_time) = best_of(REPS, || full_engine.score(sample));

    let (plan, plan_time) = best_of(REPS, || {
        task.build_plan(&ds.graph, query).expect("plan-capable")
    });
    // Cold-probe cost: the plan build is paid inside the timed region, then
    // amortised over the batch — exactly what one explanation request pays.
    let ((probes, stats), inc_time) = best_of(REPS, || {
        let plan = task.build_plan(&ds.graph, query).expect("plan-capable");
        ProbeBatch::new(&task, &ds.graph, query, parallel)
            .with_plan(&plan)
            .score_counted(&sets)
    });
    drop(plan);
    if exact {
        assert_eq!(
            &probes[..sample.len()],
            &full_probes[..],
            "{name}: planned scoring must be byte-identical to full re-ranking"
        );
    }
    assert_eq!(stats.incremental_rescores + stats.full_rescores, sets.len());

    let full_probe_us = full_time.as_secs_f64() * 1e6 / sample.len() as f64;
    let incremental_probe_us = inc_time.as_secs_f64() * 1e6 / sets.len() as f64;
    Row {
        scale,
        threads,
        people: ds.graph.num_people(),
        edges: ds.graph.num_edges(),
        ranker: name,
        plan_ms: plan_time.as_secs_f64() * 1e3,
        full_probe_us,
        incremental_probe_us,
        speedup: full_probe_us / incremental_probe_us.max(1e-9),
        incremental_share: stats.incremental_rescores as f64 / sets.len() as f64,
    }
}

fn measure_scale(scale: &'static str, people: usize, threads: usize, rows: &mut Vec<Row>) {
    let base = DatasetConfig::github_sim();
    let factor = people as f64 / base.num_people as f64;
    let ds = SyntheticDataset::generate(&base.scaled(factor).with_seed(0xBE7C));
    let workload = QueryWorkload::answerable(&ds.graph, 1, 3, 5, 3, 0x51);
    let query = workload.queries()[0].clone();

    let tfidf = TfIdfRanker::default();
    rows.push(measure_ranker(
        scale, threads, "tfidf", true, &tfidf, &ds, &query,
    ));
    let propagation = PropagationRanker::default();
    rows.push(measure_ranker(
        scale,
        threads,
        "propagation",
        true,
        &propagation,
        &ds,
        &query,
    ));
    let pagerank = PersonalizedPageRank::default();
    rows.push(measure_ranker(
        scale, threads, "pagerank", false, &pagerank, &ds, &query,
    ));
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scales: &[(&'static str, usize)] = if smoke { &[("smoke", 150)] } else { SCALES };
    let counts = thread_counts(std::env::args())
        .unwrap_or_else(|| vec![exes_parallel::thread_count(usize::MAX)]);

    let mut rows = Vec::new();
    for &threads in &counts {
        set_thread_count(threads);
        for &(scale, people) in scales {
            eprintln!("measuring scale '{scale}' ({people} people, {threads} threads)...");
            measure_scale(scale, people, threads, &mut rows);
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"incremental_probe\",");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(
        json,
        "  \"thread_counts\": [{}],",
        counts
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(json, "  \"probe_batch_size\": {BATCH},");
    let _ = writeln!(json, "  \"full_path_sample\": {FULL_SAMPLE},");
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"scale\": \"{}\", \"threads\": {}, \"people\": {}, \"edges\": {}, \
             \"ranker\": \"{}\", \"plan_ms\": {:.3}, \"full_probe_us\": {:.2}, \
             \"incremental_probe_us\": {:.2}, \"speedup\": {:.2}, \
             \"incremental_share\": {:.3}}}{comma}",
            r.scale,
            r.threads,
            r.people,
            r.edges,
            r.ranker,
            r.plan_ms,
            r.full_probe_us,
            r.incremental_probe_us,
            r.speedup,
            r.incremental_share,
        );
    }
    json.push_str("  ]\n}\n");

    if smoke {
        println!("{json}");
        eprintln!("smoke run: leaving BENCH_incremental.json untouched");
    } else {
        std::fs::write("BENCH_incremental.json", &json).expect("write BENCH_incremental.json");
        println!("{json}");
        eprintln!("wrote BENCH_incremental.json");
    }
}
