//! Emits `BENCH_probe.json`: the probe-engine performance baseline.
//!
//! Times, at three graph scales:
//! * one full GCN ranking pass (the cost of a single probe),
//! * a 256-probe batch through [`exes_core::probe::ProbeBatch`], sequential
//!   and parallel,
//! * a full pruned counterfactual skill search, sequential and parallel.
//!
//! Later PRs compare against this file to keep a perf trajectory. Run with
//! `cargo run -p exes-bench --release --bin bench_probe` from the repo root.
//! `--threads 1,4,8` emits one row set per worker-thread count (the committed
//! baseline comes from a 1-core container, where parallel speedups are ~1.0
//! by construction, not because parallelism is broken).

use exes_bench::timing::{set_thread_count, thread_counts, timed};
use exes_core::counterfactual::{beam::beam_search, CounterfactualKind};
use exes_core::probe::ProbeBatch;
use exes_core::{ExesConfig, ExpertRelevanceTask};
use exes_datasets::{DatasetConfig, QueryWorkload, SyntheticDataset};
use exes_expert_search::{ExpertRanker, GcnRanker};
use exes_graph::{GraphView, Perturbation, PerturbationSet};
use std::fmt::Write as _;
use std::time::Duration;

const SCALES: &[(&str, usize)] = &[("small", 150), ("medium", 600), ("large", 1500)];
const BATCH: usize = 256;
const REPS: usize = 3;

struct Row {
    scale: &'static str,
    threads: usize,
    people: usize,
    edges: usize,
    rank_all_ms: f64,
    batch_seq_ms: f64,
    batch_par_ms: f64,
    beam_seq_ms: f64,
    beam_par_ms: f64,
    beam_probes: usize,
}

fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, Duration) {
    let (mut value, mut best) = timed(&mut f);
    for _ in 1..reps {
        let (v, d) = timed(&mut f);
        if d < best {
            best = d;
            value = v;
        }
    }
    (value, best)
}

fn measure(scale: &'static str, people: usize, threads: usize) -> Row {
    let base = DatasetConfig::github_sim();
    let factor = people as f64 / base.num_people as f64;
    let ds = SyntheticDataset::generate(&base.scaled(factor).with_seed(0xBE7C));
    let workload = QueryWorkload::answerable(&ds.graph, 1, 3, 5, 3, 0x51);
    let query = workload.queries()[0].clone();
    let ranker = GcnRanker::default();
    let subject = ds.graph.people().next().expect("non-empty graph");
    let task = ExpertRelevanceTask::new(&ranker, subject, 10);

    let (_, rank_time) = best_of(REPS, || ranker.rank_all(&ds.graph, &query));

    let mut sets: Vec<PerturbationSet> = Vec::with_capacity(BATCH);
    'outer: for p in ds.graph.people() {
        for &s in ds.graph.person_skills(p) {
            sets.push(PerturbationSet::singleton(Perturbation::RemoveSkill {
                person: p,
                skill: s,
            }));
            if sets.len() >= BATCH {
                break 'outer;
            }
        }
    }
    let seq_engine = ProbeBatch::new(&task, &ds.graph, &query, false);
    let par_engine = ProbeBatch::new(&task, &ds.graph, &query, true);
    let (seq_probes, batch_seq) = best_of(REPS, || seq_engine.score(&sets));
    let (par_probes, batch_par) = best_of(REPS, || par_engine.score(&sets));
    assert_eq!(seq_probes, par_probes, "engine determinism violated");

    let candidates: Vec<Perturbation> = ds
        .graph
        .person_skills(subject)
        .iter()
        .map(|&s| Perturbation::RemoveSkill {
            person: subject,
            skill: s,
        })
        .chain(
            ds.graph
                .vocab()
                .ids()
                .take(20)
                .map(|skill| Perturbation::AddQueryTerm { skill }),
        )
        .collect();
    let beam = |parallel: bool| {
        let cfg = ExesConfig::fast().with_k(10).with_parallel_probes(parallel);
        beam_search(
            &task,
            &ds.graph,
            &query,
            &candidates,
            CounterfactualKind::SkillRemoval,
            &cfg,
            None,
            None,
        )
    };
    let (seq_result, beam_seq) = best_of(REPS, || beam(false));
    let (par_result, beam_par) = best_of(REPS, || beam(true));
    assert_eq!(
        seq_result.explanations, par_result.explanations,
        "beam determinism violated"
    );

    Row {
        scale,
        threads,
        people: ds.graph.num_people(),
        edges: ds.graph.num_edges(),
        rank_all_ms: rank_time.as_secs_f64() * 1e3,
        batch_seq_ms: batch_seq.as_secs_f64() * 1e3,
        batch_par_ms: batch_par.as_secs_f64() * 1e3,
        beam_seq_ms: beam_seq.as_secs_f64() * 1e3,
        beam_par_ms: beam_par.as_secs_f64() * 1e3,
        beam_probes: seq_result.probes,
    }
}

fn main() {
    // Each requested worker count becomes its own row set; without
    // `--threads` the hardware default produces the single row set the
    // committed baseline has always carried.
    let counts = thread_counts(std::env::args())
        .unwrap_or_else(|| vec![exes_parallel::thread_count(usize::MAX)]);
    let mut rows = Vec::new();
    for &threads in &counts {
        set_thread_count(threads);
        for &(scale, people) in SCALES {
            eprintln!("measuring scale '{scale}' ({people} people, {threads} threads)...");
            rows.push(measure(scale, people, threads));
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"probe_engine\",");
    let _ = writeln!(
        json,
        "  \"thread_counts\": [{}],",
        counts
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(json, "  \"probe_batch_size\": {BATCH},");
    json.push_str("  \"scales\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let speedup_batch = r.batch_seq_ms / r.batch_par_ms.max(1e-9);
        let speedup_beam = r.beam_seq_ms / r.beam_par_ms.max(1e-9);
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"scale\": \"{}\", \"threads\": {}, \"people\": {}, \"edges\": {}, \
             \"rank_all_ms\": {:.3}, \"probe_batch_seq_ms\": {:.3}, \
             \"probe_batch_par_ms\": {:.3}, \"probe_batch_speedup\": {:.2}, \
             \"beam_seq_ms\": {:.3}, \"beam_par_ms\": {:.3}, \
             \"beam_speedup\": {:.2}, \"beam_probes\": {}}}{comma}",
            r.scale,
            r.threads,
            r.people,
            r.edges,
            r.rank_all_ms,
            r.batch_seq_ms,
            r.batch_par_ms,
            speedup_batch,
            r.beam_seq_ms,
            r.beam_par_ms,
            speedup_beam,
            r.beam_probes,
        );
    }
    json.push_str("  ]\n}\n");

    std::fs::write("BENCH_probe.json", &json).expect("write BENCH_probe.json");
    println!("{json}");
    eprintln!("wrote BENCH_probe.json");
}
