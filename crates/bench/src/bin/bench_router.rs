//! Emits `BENCH_router.json`: scale-out serving through the `exes-router`
//! sharded worker tier.
//!
//! The scale-out claim under test: when a subject-skewed workload's hot
//! working set exceeds ONE worker's probe-cache capacity, the single worker
//! thrashes — but the same workload routed by `(model, subject)` across N
//! identically-provisioned workers partitions the hot set into N disjoint
//! slices that each fit, so the *aggregate* warm hit rate recovers without
//! giving any single worker more memory.
//!
//! Procedure:
//!
//! 1. **Calibrate** — run the workload cold on one unconstrained worker and
//!    read its `cache.entries`: the working set W. Every measured worker
//!    then gets a probe cache capped at `CAPACITY_FRACTION × W` — too small
//!    for one worker, comfortably big enough for a 1/N shard.
//! 2. **Sweep fleets of 1, 2 and 4 workers**, all behind a real router on
//!    loopback sockets: one cold pass, then a warm replay; the aggregate
//!    warm hit rate is summed from per-worker `/metrics` deltas.
//! 3. **Converge** — `POST /commit` through the router (timed: the router
//!    acks only after every healthy worker applied the epoch), prove every
//!    worker's `/healthz` reports the new epoch and one shared fingerprint,
//!    and time a read-your-writes explain (`X-Exes-Min-Epoch`) per shard.
//!
//! The acceptance bar: the 4-worker fleet's warm hit rate beats the
//! single worker's by a wide margin under the same per-worker capacity, and
//! post-commit every worker converges to the same epoch + fingerprint with
//! gated reads succeeding immediately.
//!
//! Run with `cargo run -p exes-bench --release --bin bench_router` from the
//! repo root; CI runs the `--smoke` variant.

use exes_bench::timing::timed;
use exes_core::{Exes, ExesConfig, ExesService, ModelSpec, OutputMode};
use exes_datasets::{DatasetConfig, QueryWorkload, SyntheticDataset};
use exes_embedding::{EmbeddingConfig, SkillEmbedding};
use exes_expert_search::{ExpertRanker, PropagationRanker};
use exes_graph::GraphView;
use exes_linkpred::CommonNeighbors;
use exes_router::RouterConfig;
use exes_server::client::HttpClient;
use exes_server::{json, wire, ServerConfig};
use std::fmt::Write as _;
use std::net::SocketAddr;
use std::time::Duration;

const CLIENTS: usize = 4;
/// Per-worker probe-cache capacity as a fraction of the measured working
/// set: one worker thrashes (capacity < W), a 1/N shard fits (W/N < cap).
const CAPACITY_FRACTION: f64 = 0.7;
const KINDS: [&str; 6] = [
    "counterfactual_skills",
    "counterfactual_query",
    "counterfactual_links",
    "factual_skills",
    "factual_query_terms",
    "factual_collaborations",
];

struct Workload {
    ds: SyntheticDataset,
    exes: Exes<CommonNeighbors>,
    /// Single-request wire bodies over a hot set of (query, subject) pairs —
    /// the subject-skewed interactive pattern whose working set is the unit
    /// of cache pressure.
    bodies: Vec<String>,
}

fn workload(people: usize, queries: usize, subjects: usize) -> Workload {
    let base = DatasetConfig::github_sim();
    let factor = people as f64 / base.num_people as f64;
    let ds = SyntheticDataset::generate(&base.scaled(factor).with_seed(0x60073));
    let embedding = SkillEmbedding::train(
        ds.corpus.token_bags(),
        ds.graph.vocab().len(),
        &EmbeddingConfig {
            dim: 16,
            ..Default::default()
        },
    );
    let cfg = ExesConfig::fast()
        .with_k(5)
        .with_num_candidates(4)
        .with_output_mode(OutputMode::SmoothRank);
    let exes = Exes::new(cfg, embedding, CommonNeighbors);
    let ranker = PropagationRanker::default();
    let qs = QueryWorkload::answerable(&ds.graph, queries, 2, 3, 3, 0xA7);

    let mut bodies = Vec::new();
    for query in qs.queries() {
        let terms: Vec<String> = query
            .display(ds.graph.vocab())
            .split_whitespace()
            .map(|t| format!("\"{t}\""))
            .collect();
        let terms = terms.join(",");
        let ranking = ranker.rank_all(&ds.graph, query);
        for (rank, &(person, _)) in ranking.entries().iter().take(subjects).enumerate() {
            let kind = KINDS[rank % KINDS.len()];
            bodies.push(format!(
                "{{\"requests\":[{{\"model\":\"propagation\",\"subject\":{},\
                 \"query\":[{terms}],\"kind\":\"{kind}\"}}]}}",
                person.0
            ));
        }
    }
    Workload { ds, exes, bodies }
}

/// One worker replica: its own engine (own probe cache, optionally capped)
/// over its own copy of the shared epoch-0 graph.
fn worker(w: &Workload, cache_capacity: Option<usize>) -> SocketAddr {
    let mut cfg = w.exes.config().clone();
    if let Some(capacity) = cache_capacity {
        cfg = cfg.with_probe_cache_capacity(capacity);
    }
    let exes = Exes::new(cfg, w.exes.embedding().clone(), CommonNeighbors);
    let mut service = ExesService::from_graph(&exes, w.ds.graph.clone());
    service
        .register(
            "propagation",
            ModelSpec::expert_ranker(PropagationRanker::default(), exes.config().k),
        )
        .expect("valid spec");
    let handle = exes_server::start(
        service,
        ServerConfig {
            workers: CLIENTS,
            batch_window: Duration::from_millis(1),
            queue_depth: 1 << 16,
            ..Default::default()
        },
    )
    .expect("bind worker");
    let addr = handle.addr();
    // Workers live for the whole bench process; leak the handle so its
    // threads keep serving after this scope.
    std::mem::forget(handle);
    addr
}

#[derive(Debug, Clone, Copy)]
struct Phase {
    wall_ms: f64,
    rps: f64,
    probes: u64,
    cache_hits: u64,
    cache_misses: u64,
    hit_rate: f64,
}

/// Fires every body at `addr` from CLIENTS concurrent keep-alive clients;
/// cache counters are aggregated across `workers` from `/metrics` deltas.
fn drive(addr: SocketAddr, bodies: &[String], workers: &[SocketAddr]) -> Phase {
    let before = fleet_counters(workers);
    let (_, wall) = timed(|| {
        std::thread::scope(|scope| {
            for client_index in 0..CLIENTS {
                let chunk: Vec<&String> =
                    bodies.iter().skip(client_index).step_by(CLIENTS).collect();
                scope.spawn(move || {
                    let mut client = HttpClient::connect(addr).expect("connect");
                    for body in chunk {
                        let response = client.post("/explain", body).expect("post");
                        assert_eq!(response.status, 200, "explain failed: {}", response.body);
                    }
                });
            }
        });
    });
    let after = fleet_counters(workers);
    let wall_secs = wall.as_secs_f64();
    let (probes, hits, misses) = (after.0 - before.0, after.1 - before.1, after.2 - before.2);
    Phase {
        wall_ms: wall_secs * 1e3,
        rps: bodies.len() as f64 / wall_secs.max(1e-9),
        probes,
        cache_hits: hits,
        cache_misses: misses,
        hit_rate: hits as f64 / ((hits + misses) as f64).max(1.0),
    }
}

/// Aggregate (probes, cache_hits, cache_misses) summed over worker
/// `/metrics`, plus the sum of `cache.entries` in the fourth slot.
fn fleet_counters(workers: &[SocketAddr]) -> (u64, u64, u64, u64) {
    let mut totals = (0, 0, 0, 0);
    for &addr in workers {
        let mut client = HttpClient::connect(addr).expect("connect worker");
        let response = client.get("/metrics").expect("metrics");
        let parsed = json::parse(&response.body).expect("metrics JSON");
        let explain = parsed.get("explain").expect("explain section");
        let get = |node: &json::Json, name: &str| {
            node.get(name).and_then(json::Json::as_u64).unwrap_or(0)
        };
        totals.0 += get(explain, "probes");
        totals.1 += get(explain, "cache_hits");
        totals.2 += get(explain, "cache_misses");
        totals.3 += get(parsed.get("cache").expect("cache section"), "entries");
    }
    totals
}

struct FleetRow {
    workers: usize,
    cold: Phase,
    warm: Phase,
}

/// Spawns `n` capacity-capped workers behind a router, runs the cold pass
/// and the warm replay, and returns both phases (aggregated fleet-wide).
fn measure_fleet(w: &Workload, n: usize, capacity: usize) -> FleetRow {
    let workers: Vec<SocketAddr> = (0..n).map(|_| worker(w, Some(capacity))).collect();
    let router = exes_router::start(
        &workers,
        RouterConfig {
            health_interval: Duration::from_millis(100),
            ..Default::default()
        },
    )
    .expect("start router");
    let cold = drive(router.addr(), &w.bodies, &workers);
    let warm = drive(router.addr(), &w.bodies, &workers);
    router.shutdown();
    FleetRow {
        workers: n,
        cold,
        warm,
    }
}

struct Convergence {
    workers: usize,
    commit_ms: f64,
    epoch: u64,
    fingerprints_agree: bool,
    gated_reads_ms: f64,
}

/// Commits through the router and measures how long until the whole fleet
/// serves the new epoch: the commit ack itself (the router's ordered
/// fan-out), then one gated read-your-writes explain per worker count.
fn measure_convergence(w: &Workload, n: usize, capacity: usize) -> Convergence {
    let workers: Vec<SocketAddr> = (0..n).map(|_| worker(w, Some(capacity))).collect();
    let router = exes_router::start(&workers, RouterConfig::default()).expect("start router");
    let mut client = HttpClient::connect(router.addr()).expect("connect router");

    let (committed, commit_wall) = timed(|| {
        client
            .post(
                "/commit",
                "{\"ops\":[{\"op\":\"add_person\",\"name\":\"bench-newcomer\",\
                 \"skills\":[\"bench-skill\"]}]}",
            )
            .expect("commit")
    });
    assert_eq!(committed.status, 200, "commit failed: {}", committed.body);
    let epoch = json::parse(&committed.body)
        .expect("commit JSON")
        .get("epoch")
        .and_then(json::Json::as_u64)
        .expect("commit epoch");

    // By the time the router acks, every healthy worker must already serve
    // the new epoch with one shared fingerprint.
    let mut fingerprints = Vec::new();
    for &addr in &workers {
        let mut worker_client = HttpClient::connect(addr).expect("connect worker");
        let health = worker_client.get("/healthz").expect("healthz");
        let parsed = json::parse(&health.body).expect("healthz JSON");
        let identity = wire::healthz_from_json(&parsed).expect("ready worker");
        assert_eq!(
            identity.epoch, epoch,
            "worker {addr} lags the committed epoch"
        );
        fingerprints.push(identity.fingerprint);
    }
    let fingerprints_agree = fingerprints.windows(2).all(|pair| pair[0] == pair[1]);
    assert!(fingerprints_agree, "replicas diverged after the commit");

    // Read-your-writes: a gated explain per body sample answers immediately
    // at (at least) the committed epoch.
    let gate = epoch.to_string();
    let samples: Vec<&String> = w.bodies.iter().take(n.max(2)).collect();
    let (_, gated_wall) = timed(|| {
        for body in &samples {
            let response = client
                .request_with_headers(
                    "POST",
                    "/explain",
                    &[("X-Exes-Min-Epoch", &gate)],
                    Some(body),
                )
                .expect("gated explain");
            assert_eq!(response.status, 200, "gated explain: {}", response.body);
            let served = json::parse(&response.body)
                .expect("explain JSON")
                .get("epoch")
                .and_then(json::Json::as_u64)
                .expect("explain epoch");
            assert!(served >= epoch, "read-your-writes violated");
        }
    });
    router.shutdown();

    Convergence {
        workers: n,
        commit_ms: commit_wall.as_secs_f64() * 1e3,
        epoch,
        fingerprints_agree,
        gated_reads_ms: gated_wall.as_secs_f64() * 1e3,
    }
}

fn phase_json(p: &Phase) -> String {
    format!(
        "{{\"wall_ms\": {:.3}, \"rps\": {:.1}, \"probes\": {}, \"cache_hits\": {}, \
         \"cache_misses\": {}, \"hit_rate\": {:.4}}}",
        p.wall_ms, p.rps, p.probes, p.cache_hits, p.cache_misses, p.hit_rate
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (people, queries, subjects) = if smoke { (120, 2, 4) } else { (400, 3, 8) };
    let threads = exes_parallel::thread_count(usize::MAX);

    eprintln!("generating the workload ({people} people)...");
    let w = workload(people, queries, subjects);

    // Calibrate the working set on one unconstrained worker.
    let probe = vec![worker(&w, None)];
    let router = exes_router::start(&probe, RouterConfig::default()).expect("start router");
    drive(router.addr(), &w.bodies, &probe);
    let working_set = fleet_counters(&probe).3;
    router.shutdown();
    let capacity = ((working_set as f64 * CAPACITY_FRACTION) as usize).max(16);
    eprintln!(
        "working set: {working_set} cache entries over {} requests -> per-worker capacity {capacity}",
        w.bodies.len()
    );

    let mut rows = Vec::new();
    for n in [1usize, 2, 4] {
        eprintln!("measuring a {n}-worker fleet...");
        rows.push(measure_fleet(&w, n, capacity));
    }

    // The scale-out acceptance bar: same per-worker cache, N-times the
    // aggregate — the partitioned fleet replays warm where one worker
    // thrashes.
    let single = &rows[0];
    let quad = &rows[2];
    assert!(
        quad.warm.hit_rate > single.warm.hit_rate,
        "a 4-worker partitioned fleet must beat one worker's warm hit rate \
         ({:.3} vs {:.3})",
        quad.warm.hit_rate,
        single.warm.hit_rate
    );

    eprintln!("measuring post-commit convergence...");
    let convergence = measure_convergence(&w, 4, capacity);

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"router\",");
    let _ = writeln!(out, "  \"threads\": {threads},");
    let _ = writeln!(out, "  \"clients\": {CLIENTS},");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"people\": {},", w.ds.graph.num_people());
    let _ = writeln!(out, "  \"requests\": {},", w.bodies.len());
    let _ = writeln!(out, "  \"working_set_entries\": {working_set},");
    let _ = writeln!(out, "  \"per_worker_cache_capacity\": {capacity},");
    out.push_str("  \"fleets\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"workers\": {},\n     \"cold\": {},\n     \"warm\": {}}}{comma}",
            r.workers,
            phase_json(&r.cold),
            phase_json(&r.warm)
        );
    }
    out.push_str("  ],\n");
    let _ = writeln!(
        out,
        "  \"convergence\": {{\"workers\": {}, \"commit_ms\": {:.3}, \"epoch\": {}, \
         \"fingerprints_agree\": {}, \"gated_reads_ms\": {:.3}}}",
        convergence.workers,
        convergence.commit_ms,
        convergence.epoch,
        convergence.fingerprints_agree,
        convergence.gated_reads_ms
    );
    out.push_str("}\n");

    std::fs::write("BENCH_router.json", &out).expect("write BENCH_router.json");
    println!("{out}");
    for r in &rows {
        eprintln!(
            "[{} worker{}] cold {:.0} rps ({} probes) -> warm {:.0} rps, hit rate {:.3}",
            r.workers,
            if r.workers == 1 { "" } else { "s" },
            r.cold.rps,
            r.cold.probes,
            r.warm.rps,
            r.warm.hit_rate
        );
    }
    eprintln!(
        "[convergence] commit fan-out {:.1} ms to epoch {}, gated reads {:.1} ms",
        convergence.commit_ms, convergence.epoch, convergence.gated_reads_ms
    );
    eprintln!("wrote BENCH_router.json");
}
