//! Emits `BENCH_server.json`: the networked serving baseline.
//!
//! Drives a real `exes-server` instance over loopback sockets with a
//! **duplicate-heavy** workload (every unique request sent three times,
//! interleaved, by several concurrent keep-alive clients — the paper's
//! interactive workload, where many users ask about the same trending
//! queries and subjects) and compares three serving modes:
//!
//! * **solo** — one-request-per-call serving with nothing shared between
//!   calls (`max_batch = 1`, probe cache cleared after every call): the
//!   naive front door that bypasses the batching/dedup/cache machinery;
//! * **batched (cold)** — the micro-batching scheduler with the persistent
//!   cache, first contact with the epoch;
//! * **batched (warm)** — the same workload replayed on the unchanged epoch,
//!   then a `/commit` followed by a partially-cold replay on the new epoch.
//!
//! The acceptance bar: micro-batched serving answers the duplicate-heavy
//! workload with **strictly fewer black-box probes** than solo serving, and
//! a warm epoch replays with zero.
//!
//! Run with `cargo run -p exes-bench --release --bin bench_server` from the
//! repo root; CI runs the `--smoke` variant.

use exes_bench::timing::timed;
use exes_core::{Exes, ExesConfig, ExesService, ModelSpec, OutputMode};
use exes_datasets::{DatasetConfig, QueryWorkload, SyntheticDataset};
use exes_embedding::{EmbeddingConfig, SkillEmbedding};
use exes_expert_search::{ExpertRanker, PropagationRanker};
use exes_graph::GraphView;
use exes_linkpred::CommonNeighbors;
use exes_server::client::HttpClient;
use exes_server::{json, ServerConfig};
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::Duration;

const CLIENTS: usize = 6;
const DUPLICATION: usize = 3;
const KINDS: [&str; 6] = [
    "counterfactual_skills",
    "counterfactual_query",
    "counterfactual_links",
    "factual_skills",
    "factual_query_terms",
    "factual_collaborations",
];

struct Workload {
    ds: SyntheticDataset,
    exes: Exes<CommonNeighbors>,
    /// One-request wire bodies, duplicate-heavy and deterministically
    /// interleaved.
    bodies: Vec<Arc<String>>,
    unique: usize,
}

fn workload(people: usize, queries: usize, subjects: usize) -> Workload {
    let base = DatasetConfig::github_sim();
    let factor = people as f64 / base.num_people as f64;
    let ds = SyntheticDataset::generate(&base.scaled(factor).with_seed(0x5E77E12));
    let embedding = SkillEmbedding::train(
        ds.corpus.token_bags(),
        ds.graph.vocab().len(),
        &EmbeddingConfig {
            dim: 16,
            ..Default::default()
        },
    );
    let cfg = ExesConfig::fast()
        .with_k(5)
        .with_num_candidates(4)
        .with_output_mode(OutputMode::SmoothRank);
    let exes = Exes::new(cfg, embedding, CommonNeighbors);
    let ranker = PropagationRanker::default();
    let qs = QueryWorkload::answerable(&ds.graph, queries, 2, 3, 3, 0x91);

    let mut unique_bodies = Vec::new();
    for query in qs.queries() {
        let terms: Vec<String> = query
            .display(ds.graph.vocab())
            .split_whitespace()
            .map(|t| format!("\"{t}\""))
            .collect();
        let terms = terms.join(",");
        let ranking = ranker.rank_all(&ds.graph, query);
        for (rank, &(person, _)) in ranking.entries().iter().take(subjects).enumerate() {
            let kind = KINDS[rank % KINDS.len()];
            unique_bodies.push(format!(
                "{{\"requests\":[{{\"model\":\"propagation\",\"subject\":{},\
                 \"query\":[{terms}],\"kind\":\"{kind}\"}}]}}",
                person.0
            ));
        }
    }
    // Duplicate-heavy traffic: every unique request appears DUPLICATION
    // times, *consecutively* — combined with the round-robin client
    // partition in `drive`, the copies of one request are sent by different
    // concurrent clients at (roughly) the same moment, so in the batched
    // configuration they land inside one micro-batch window and exercise
    // cross-user dedup on top of the shared cache.
    let unique = unique_bodies.len();
    let mut bodies = Vec::with_capacity(unique * DUPLICATION);
    for body in &unique_bodies {
        for _ in 0..DUPLICATION {
            bodies.push(Arc::new(body.clone()));
        }
    }
    Workload {
        ds,
        exes,
        bodies,
        unique,
    }
}

fn service(w: &Workload) -> ExesService<CommonNeighbors> {
    let mut service = ExesService::from_graph(&w.exes, w.ds.graph.clone());
    service
        .register(
            "propagation",
            ModelSpec::expert_ranker(PropagationRanker::default(), w.exes.config().k),
        )
        .expect("valid spec");
    service
}

#[derive(Debug, Clone, Copy)]
struct Phase {
    wall_ms: f64,
    rps: f64,
    p50_ms: f64,
    p95_ms: f64,
    probes: u64,
    cache_hits: u64,
    duplicates: u64,
    shed: u64,
}

/// Fires the whole workload at `addr` from CLIENTS concurrent keep-alive
/// connections; returns the phase stats read from `/metrics` deltas.
fn drive(addr: std::net::SocketAddr, bodies: &[Arc<String>]) -> Phase {
    let before = metrics_snapshot(addr);
    let latencies: Mutex<Vec<f64>> = Mutex::new(Vec::with_capacity(bodies.len()));
    let (_, wall) = timed(|| {
        std::thread::scope(|scope| {
            for client_index in 0..CLIENTS {
                let latencies = &latencies;
                // Round-robin partition: client c sends positions c, c+N,
                // c+2N, … so the DUPLICATION consecutive copies of each
                // request are in flight on different connections at once.
                let chunk: Vec<&Arc<String>> =
                    bodies.iter().skip(client_index).step_by(CLIENTS).collect();
                scope.spawn(move || {
                    let mut client = HttpClient::connect(addr).expect("connect");
                    let mut local = Vec::with_capacity(chunk.len());
                    for body in chunk {
                        let (response, elapsed) =
                            timed(|| client.post("/explain", body).expect("post"));
                        // Shed requests are retried once after the advertised
                        // backoff; the shed count lands in the metrics.
                        if response.status == 503 {
                            std::thread::sleep(Duration::from_millis(20));
                            let _ = client.post("/explain", body).expect("retry");
                        }
                        local.push(elapsed.as_secs_f64() * 1e3);
                    }
                    latencies.lock().unwrap().extend(local);
                });
            }
        });
    });
    let after = metrics_snapshot(addr);
    let mut latencies = latencies.into_inner().unwrap();
    latencies.sort_by(f64::total_cmp);
    let percentile = |p: f64| {
        if latencies.is_empty() {
            0.0
        } else {
            latencies[((latencies.len() - 1) as f64 * p) as usize]
        }
    };
    let wall_secs = wall.as_secs_f64();
    Phase {
        wall_ms: wall_secs * 1e3,
        rps: bodies.len() as f64 / wall_secs.max(1e-9),
        p50_ms: percentile(0.50),
        p95_ms: percentile(0.95),
        probes: after.0 - before.0,
        cache_hits: after.1 - before.1,
        duplicates: after.2 - before.2,
        shed: after.3 - before.3,
    }
}

/// (probes, cache_hits, duplicates, shed) from `/metrics`.
fn metrics_snapshot(addr: std::net::SocketAddr) -> (u64, u64, u64, u64) {
    let mut client = HttpClient::connect(addr).expect("connect");
    let response = client.get("/metrics").expect("metrics");
    let parsed = json::parse(&response.body).expect("metrics JSON");
    let explain = parsed.get("explain").expect("explain section");
    let get = |name: &str| explain.get(name).and_then(json::Json::as_u64).unwrap_or(0);
    (
        get("probes"),
        get("cache_hits"),
        get("duplicate_requests"),
        get("shed_requests"),
    )
}

struct Row {
    scale: &'static str,
    people: usize,
    edges: usize,
    requests: usize,
    unique: usize,
    solo: Phase,
    batched_cold: Phase,
    batched_warm: Phase,
    post_commit: Phase,
}

fn measure(scale: &'static str, people: usize, queries: usize, subjects: usize) -> Row {
    let w = workload(people, queries, subjects);

    // --- Solo: one-request-per-call serving, nothing shared ------------
    let solo_handle = exes_server::start(
        service(&w),
        ServerConfig {
            workers: CLIENTS,
            max_batch: 1,
            batch_window: Duration::ZERO,
            persistent_cache: false,
            queue_depth: 1 << 16,
            ..Default::default()
        },
    )
    .expect("bind solo server");
    let solo = drive(solo_handle.addr(), &w.bodies);
    solo_handle.shutdown();

    // --- Batched: micro-batching + persistent cache ---------------------
    let handle = exes_server::start(
        service(&w),
        ServerConfig {
            workers: CLIENTS,
            max_batch: 64,
            batch_window: Duration::from_millis(3),
            queue_depth: 1 << 16,
            ..Default::default()
        },
    )
    .expect("bind batched server");
    let batched_cold = drive(handle.addr(), &w.bodies);
    // Warm replay on the unchanged epoch.
    let batched_warm = drive(handle.addr(), &w.bodies);

    // A live update publishes a new epoch; the replay runs cold again
    // (the commit invalidates by construction, not by flushing).
    let mut client = HttpClient::connect(handle.addr()).expect("connect");
    let committed = client
        .post(
            "/commit",
            "{\"ops\":[{\"op\":\"add_person\",\"name\":\"bench-newcomer\",\"skills\":[\"bench-skill\"]}]}",
        )
        .expect("commit");
    assert_eq!(committed.status, 200, "commit failed: {}", committed.body);
    let post_commit = drive(handle.addr(), &w.bodies);
    handle.shutdown();

    // The acceptance bar for the serving layer.
    assert!(
        batched_cold.probes < solo.probes,
        "micro-batched serving must need strictly fewer probes than \
         one-request-per-call serving ({} vs {})",
        batched_cold.probes,
        solo.probes
    );
    assert_eq!(
        batched_warm.probes, 0,
        "an unchanged epoch must replay entirely from the cache"
    );
    assert!(
        post_commit.probes > 0,
        "a committed update must run the new epoch cold"
    );

    Row {
        scale,
        people: w.ds.graph.num_people(),
        edges: w.ds.graph.num_edges(),
        requests: w.bodies.len(),
        unique: w.unique,
        solo,
        batched_cold,
        batched_warm,
        post_commit,
    }
}

fn phase_json(p: &Phase) -> String {
    format!(
        "{{\"wall_ms\": {:.3}, \"rps\": {:.1}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \
         \"probes\": {}, \"cache_hits\": {}, \"duplicates\": {}, \"shed\": {}}}",
        p.wall_ms, p.rps, p.p50_ms, p.p95_ms, p.probes, p.cache_hits, p.duplicates, p.shed
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scales: &[(&'static str, usize, usize, usize)] = if smoke {
        &[("smoke", 120, 2, 4)]
    } else {
        &[("small", 150, 2, 6), ("medium", 500, 3, 6)]
    };
    let threads = exes_parallel::thread_count(usize::MAX);

    let mut rows = Vec::new();
    for &(scale, people, queries, subjects) in scales {
        eprintln!("measuring scale '{scale}' ({people} people)...");
        rows.push(measure(scale, people, queries, subjects));
    }

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"server\",");
    let _ = writeln!(out, "  \"threads\": {threads},");
    let _ = writeln!(out, "  \"clients\": {CLIENTS},");
    let _ = writeln!(out, "  \"duplication\": {DUPLICATION},");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    out.push_str("  \"scales\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"scale\": \"{}\", \"people\": {}, \"edges\": {}, \"requests\": {}, \
             \"unique_requests\": {},\n     \"solo\": {},\n     \"batched_cold\": {},\n     \
             \"batched_warm\": {},\n     \"post_commit\": {}}}{comma}",
            r.scale,
            r.people,
            r.edges,
            r.requests,
            r.unique,
            phase_json(&r.solo),
            phase_json(&r.batched_cold),
            phase_json(&r.batched_warm),
            phase_json(&r.post_commit)
        );
    }
    out.push_str("  ]\n}\n");

    std::fs::write("BENCH_server.json", &out).expect("write BENCH_server.json");
    println!("{out}");
    for r in &rows {
        eprintln!(
            "[{}] {} requests ({} unique): solo {} probes @ {:.0} rps -> batched {} probes @ {:.0} rps \
             (warm {} probes @ {:.0} rps, post-commit {} probes)",
            r.scale,
            r.requests,
            r.unique,
            r.solo.probes,
            r.solo.rps,
            r.batched_cold.probes,
            r.batched_cold.rps,
            r.batched_warm.probes,
            r.batched_warm.rps,
            r.post_commit.probes
        );
    }
    eprintln!("wrote BENCH_server.json");
}
