//! Emits `BENCH_slo.json`: the cost-aware admission-lane benchmark.
//!
//! Drives a real `exes-server` over loopback with a **mixed warm-heavy
//! workload**: most clients loop over a set of requests whose probes are
//! already memoised (the interactive steady state), while one client streams
//! *cold* requests — never-seen query contexts whose counterfactual beam
//! search must probe the black box from scratch. The same workload runs
//! against two servers:
//!
//! * **single-lane** — every request rides one admission queue, so a cold
//!   search in a micro-batch stalls the warm requests batched behind it
//!   (head-of-line blocking);
//! * **dual-lane** — the pre-admission cost estimate routes cold requests to
//!   a slow lane with its own batcher, so the fast lane keeps draining warm
//!   traffic while cold searches grind.
//!
//! The acceptance bar: with dual lanes the **warm p95 latency is strictly
//! lower** than single-lane under the identical mix — the warm tail
//! decouples from the cold tail — and `/metrics` shows both lanes admitted
//! traffic.
//!
//! Run with `cargo run -p exes-bench --release --bin bench_slo` from the
//! repo root; CI runs the `--smoke` variant, which checks the structural
//! invariants (lane routing happened, metrics expose per-lane depth and
//! shed counters) without asserting on wall-clock, since timing on shared
//! runners is noise.

use exes_bench::timing::timed;
use exes_core::{Exes, ExesConfig, ExesService, ModelSpec, OutputMode};
use exes_datasets::{DatasetConfig, QueryWorkload, SyntheticDataset};
use exes_embedding::{EmbeddingConfig, SkillEmbedding};
use exes_expert_search::{ExpertRanker, PropagationRanker};
use exes_linkpred::CommonNeighbors;
use exes_server::client::HttpClient;
use exes_server::{json, ServerConfig};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Concurrent keep-alive connections: all but one send warm traffic.
const WARM_CLIENTS: usize = 5;
const KINDS: [&str; 6] = [
    "counterfactual_skills",
    "counterfactual_query",
    "counterfactual_links",
    "factual_skills",
    "factual_query_terms",
    "factual_collaborations",
];

struct Workload {
    ds: SyntheticDataset,
    exes: Exes<CommonNeighbors>,
    /// The warm set: requests replayed until their probes are memoised,
    /// then looped by the warm clients during measurement.
    warm: Vec<Arc<String>>,
    /// The cold stream: one request per never-seen query context, each
    /// forcing a from-scratch counterfactual search.
    cold: Vec<Arc<String>>,
}

fn body(terms: &str, subject: u32, kind: &str) -> Arc<String> {
    Arc::new(format!(
        "{{\"requests\":[{{\"model\":\"propagation\",\"subject\":{subject},\
         \"query\":[{terms}],\"kind\":\"{kind}\"}}]}}"
    ))
}

fn query_terms(query: &exes_graph::Query, ds: &SyntheticDataset) -> String {
    let terms: Vec<String> = query
        .display(ds.graph.vocab())
        .split_whitespace()
        .map(|t| format!("\"{t}\""))
        .collect();
    terms.join(",")
}

fn workload(people: usize, warm_queries: usize, subjects: usize, cold_queries: usize) -> Workload {
    let base = DatasetConfig::github_sim();
    let factor = people as f64 / base.num_people as f64;
    let ds = SyntheticDataset::generate(&base.scaled(factor).with_seed(0x510_C0DE));
    let embedding = SkillEmbedding::train(
        ds.corpus.token_bags(),
        ds.graph.vocab().len(),
        &EmbeddingConfig {
            dim: 16,
            ..Default::default()
        },
    );
    let cfg = ExesConfig::fast()
        .with_k(5)
        .with_num_candidates(4)
        .with_output_mode(OutputMode::SmoothRank);
    let exes = Exes::new(cfg, embedding, CommonNeighbors);
    let ranker = PropagationRanker::default();

    // Warm set: a handful of (query, subject) pairs across all six kinds.
    let warm_set = QueryWorkload::answerable(&ds.graph, warm_queries, 2, 3, 3, 0x91);
    let mut warm = Vec::new();
    for query in warm_set.queries() {
        let terms = query_terms(query, &ds);
        let ranking = ranker.rank_all(&ds.graph, query);
        for (rank, &(person, _)) in ranking.entries().iter().take(subjects).enumerate() {
            warm.push(body(&terms, person.0, KINDS[rank % KINDS.len()]));
        }
    }

    // Cold stream: each request uses a query context never probed before
    // (the pre-admission estimate reads it as cold), and a counterfactual
    // kind so answering it means a full beam search against the black box.
    let cold_set = QueryWorkload::answerable(&ds.graph, cold_queries, 2, 3, 3, 0xC01D);
    let mut cold = Vec::new();
    for query in cold_set.queries() {
        let terms = query_terms(query, &ds);
        let ranking = ranker.rank_all(&ds.graph, query);
        if let Some(&(person, _)) = ranking.entries().first() {
            cold.push(body(&terms, person.0, "counterfactual_skills"));
        }
    }

    Workload {
        ds,
        exes,
        warm,
        cold,
    }
}

fn service(w: &Workload) -> ExesService<CommonNeighbors> {
    let mut service = ExesService::from_graph(&w.exes, w.ds.graph.clone());
    service
        .register(
            "propagation",
            ModelSpec::expert_ranker(PropagationRanker::default(), w.exes.config().k),
        )
        .expect("valid spec");
    service
}

#[derive(Debug, Clone, Copy)]
struct LaneSnapshot {
    fast_admitted: u64,
    slow_admitted: u64,
    fast_shed: u64,
    slow_shed: u64,
    fast_depth_seen: bool,
    slow_present: bool,
}

fn lane_snapshot(addr: std::net::SocketAddr) -> LaneSnapshot {
    let mut client = HttpClient::connect(addr).expect("connect");
    let response = client.get("/metrics").expect("metrics");
    let parsed = json::parse(&response.body).expect("metrics JSON");
    let lanes = parsed.get("lanes").expect("lanes section");
    let fast = lanes.get("fast").expect("fast lane");
    let get = |lane: &json::Json, name: &str| lane.get(name).and_then(json::Json::as_u64);
    let slow = lanes.get("slow").filter(|s| **s != json::Json::Null);
    LaneSnapshot {
        fast_admitted: get(fast, "admitted").unwrap_or(0),
        slow_admitted: slow.and_then(|s| get(s, "admitted")).unwrap_or(0),
        fast_shed: get(fast, "shed").unwrap_or(0),
        slow_shed: slow.and_then(|s| get(s, "shed")).unwrap_or(0),
        fast_depth_seen: get(fast, "depth").is_some(),
        slow_present: slow.is_some(),
    }
}

#[derive(Debug, Clone, Copy)]
struct Mix {
    wall_ms: f64,
    warm_requests: usize,
    cold_requests: usize,
    warm_p50_ms: f64,
    warm_p95_ms: f64,
    cold_p50_ms: f64,
    cold_p95_ms: f64,
    lanes: LaneSnapshot,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        0.0
    } else {
        sorted[((sorted.len() - 1) as f64 * p) as usize]
    }
}

/// Runs the mixed phase: WARM_CLIENTS loop the warm set (at least
/// `min_rounds` full passes, and until the cold stream is exhausted) while
/// one client sends every cold body once. Returns client-observed
/// latencies split by temperature.
fn drive_mix(addr: std::net::SocketAddr, w: &Workload, min_rounds: usize) -> Mix {
    let warm_latencies: Mutex<Vec<f64>> = Mutex::new(Vec::new());
    let cold_latencies: Mutex<Vec<f64>> = Mutex::new(Vec::new());
    let cold_done = AtomicBool::new(false);
    let (_, wall) = timed(|| {
        std::thread::scope(|scope| {
            for client_index in 0..WARM_CLIENTS {
                let warm_latencies = &warm_latencies;
                let cold_done = &cold_done;
                scope.spawn(move || {
                    let mut client = HttpClient::connect(addr).expect("connect");
                    let mut local = Vec::new();
                    let mut rounds = 0usize;
                    loop {
                        // Stagger clients so their passes interleave rather
                        // than phase-lock on the same body.
                        for body in w.warm.iter().cycle().skip(client_index).take(w.warm.len()) {
                            let (response, elapsed) =
                                timed(|| client.post("/explain", body).expect("post"));
                            if response.status == 503 {
                                std::thread::sleep(Duration::from_millis(5));
                                let _ = client.post("/explain", body).expect("retry");
                            } else {
                                local.push(elapsed.as_secs_f64() * 1e3);
                            }
                        }
                        rounds += 1;
                        if rounds >= min_rounds && cold_done.load(Ordering::Relaxed) {
                            break;
                        }
                    }
                    warm_latencies.lock().unwrap().extend(local);
                });
            }
            let cold_latencies = &cold_latencies;
            let cold_done = &cold_done;
            scope.spawn(move || {
                let mut client = HttpClient::connect(addr).expect("connect");
                let mut local = Vec::new();
                for body in &w.cold {
                    let (response, elapsed) =
                        timed(|| client.post("/explain", body).expect("post"));
                    if response.status == 503 {
                        std::thread::sleep(Duration::from_millis(5));
                        let _ = client.post("/explain", body).expect("retry");
                    } else {
                        local.push(elapsed.as_secs_f64() * 1e3);
                    }
                }
                cold_done.store(true, Ordering::Relaxed);
                cold_latencies.lock().unwrap().extend(local);
            });
        });
    });
    let mut warm = warm_latencies.into_inner().unwrap();
    let mut cold = cold_latencies.into_inner().unwrap();
    warm.sort_by(f64::total_cmp);
    cold.sort_by(f64::total_cmp);
    Mix {
        wall_ms: wall.as_secs_f64() * 1e3,
        warm_requests: warm.len(),
        cold_requests: cold.len(),
        warm_p50_ms: percentile(&warm, 0.50),
        warm_p95_ms: percentile(&warm, 0.95),
        cold_p50_ms: percentile(&cold, 0.50),
        cold_p95_ms: percentile(&cold, 0.95),
        lanes: lane_snapshot(addr),
    }
}

/// Measures one server configuration: warm the warm set, then run the mix.
fn measure(w: &Workload, dual_lane: bool, min_rounds: usize) -> Mix {
    let handle = exes_server::start(
        service(w),
        ServerConfig {
            workers: WARM_CLIENTS + 1,
            max_batch: 16,
            batch_window: Duration::from_millis(2),
            queue_depth: 1 << 16,
            dual_lane,
            slow_queue_depth: 1 << 16,
            ..Default::default()
        },
    )
    .expect("bind server");
    // Warm-up: one pass over the warm set memoises every probe it needs, so
    // during measurement the pre-admission estimate reads these as warm.
    // The connection is scoped so its worker slot is free again before the
    // measured clients connect.
    {
        let mut client = HttpClient::connect(handle.addr()).expect("connect");
        for body in &w.warm {
            assert_eq!(
                client.post("/explain", body).expect("warmup").status,
                200,
                "warmup request failed"
            );
        }
    }
    let mix = drive_mix(handle.addr(), w, min_rounds);
    handle.shutdown();
    mix
}

fn mix_json(m: &Mix) -> String {
    format!(
        "{{\"wall_ms\": {:.3}, \"warm_requests\": {}, \"cold_requests\": {}, \
         \"warm_p50_ms\": {:.3}, \"warm_p95_ms\": {:.3}, \
         \"cold_p50_ms\": {:.3}, \"cold_p95_ms\": {:.3}, \
         \"fast_admitted\": {}, \"slow_admitted\": {}, \
         \"fast_shed\": {}, \"slow_shed\": {}}}",
        m.wall_ms,
        m.warm_requests,
        m.cold_requests,
        m.warm_p50_ms,
        m.warm_p95_ms,
        m.cold_p50_ms,
        m.cold_p95_ms,
        m.lanes.fast_admitted,
        m.lanes.slow_admitted,
        m.lanes.fast_shed,
        m.lanes.slow_shed,
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // (scale, people, warm queries, subjects per query, cold queries,
    // min warm rounds)
    let scales: &[(&'static str, usize, usize, usize, usize, usize)] = if smoke {
        &[("smoke", 120, 2, 3, 4, 2)]
    } else {
        &[("small", 250, 2, 4, 10, 3), ("medium", 500, 3, 4, 12, 3)]
    };
    let threads = exes_parallel::thread_count(usize::MAX);

    let mut rows = Vec::new();
    for &(scale, people, warm_queries, subjects, cold_queries, min_rounds) in scales {
        eprintln!("measuring scale '{scale}' ({people} people)...");
        let w = workload(people, warm_queries, subjects, cold_queries);
        let single = measure(&w, false, min_rounds);
        let dual = measure(&w, true, min_rounds);

        // Structural invariants hold in every mode: the dual-lane server
        // actually routed by cost estimate and exposes per-lane telemetry.
        assert!(
            dual.lanes.slow_present,
            "dual-lane metrics must expose the slow lane"
        );
        assert!(
            dual.lanes.slow_admitted > 0,
            "cold requests must ride the slow lane"
        );
        assert!(
            dual.lanes.fast_admitted > 0,
            "warm requests must ride the fast lane"
        );
        assert!(
            dual.lanes.fast_depth_seen,
            "per-lane depth gauges must be present in /metrics"
        );
        assert!(
            !single.lanes.slow_present,
            "single-lane metrics must render a null slow lane"
        );
        // The SLO claim — warm p95 decouples from the cold tail — is a
        // wall-clock property, asserted only in the full run: smoke runs on
        // shared CI runners where timing is noise.
        if !smoke {
            assert!(
                dual.warm_p95_ms < single.warm_p95_ms,
                "dual lanes must lower the warm p95 under a cold-polluted mix \
                 ({:.3}ms vs {:.3}ms single-lane)",
                dual.warm_p95_ms,
                single.warm_p95_ms
            );
        }
        rows.push((scale, people, w.warm.len(), w.cold.len(), single, dual));
    }

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"slo\",");
    let _ = writeln!(out, "  \"threads\": {threads},");
    let _ = writeln!(out, "  \"warm_clients\": {WARM_CLIENTS},");
    let _ = writeln!(out, "  \"cold_clients\": 1,");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    out.push_str("  \"scales\": [\n");
    for (i, (scale, people, warm, cold, single, dual)) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"scale\": \"{scale}\", \"people\": {people}, \
             \"unique_warm\": {warm}, \"unique_cold\": {cold},\n     \
             \"single_lane\": {},\n     \"dual_lane\": {}}}{comma}",
            mix_json(single),
            mix_json(dual)
        );
    }
    out.push_str("  ]\n}\n");

    std::fs::write("BENCH_slo.json", &out).expect("write BENCH_slo.json");
    println!("{out}");
    for (scale, _, _, _, single, dual) in &rows {
        eprintln!(
            "[{scale}] warm p95 {:.1}ms single-lane -> {:.1}ms dual-lane \
             (cold p95 {:.1}ms; slow lane admitted {})",
            single.warm_p95_ms, dual.warm_p95_ms, dual.cold_p95_ms, dual.lanes.slow_admitted
        );
    }
    eprintln!("wrote BENCH_slo.json");
}
