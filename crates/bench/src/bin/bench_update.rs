//! Emits `BENCH_update.json`: the live graph store and epoch/cache baseline.
//!
//! Measures, at two graph scales (one with `--smoke`):
//! * **commit latency vs batch size** through the delta-compaction path —
//!   mean commit wall time for batches of 1/8/64/256 ops, plus the
//!   full-rebuild commit latency for comparison. Delta commits do
//!   O(|batch| + touched rows) of row work on top of a bulk copy of
//!   untouched storage, so latency grows with the batch and stays several
//!   times under a rebuild; the bulk-copy floor still grows with graph
//!   storage (visible across the two scales);
//! * **warm vs cold explanation cost across epochs** — a service batch
//!   answered cold at epoch 0, replayed warm (asserting 0 black-box probes),
//!   re-answered after a committed update (cold again on the new epoch), and
//!   replayed warm once more.
//!
//! Run with `cargo run -p exes-bench --release --bin bench_update` from the
//! repo root; CI runs the `--smoke` variant to keep the binary from
//! bit-rotting.

use exes_bench::timing::{timed, Mean};
use exes_core::service::{ExesService, ExplanationRequest};
use exes_core::{Exes, ExesConfig, ModelSpec};
use exes_datasets::{
    DatasetConfig, QueryWorkload, SyntheticDataset, UpdateStream, UpdateStreamConfig,
};
use exes_embedding::{EmbeddingConfig, SkillEmbedding};
use exes_expert_search::{ExpertRanker, GcnRanker};
use exes_graph::{GraphStore, GraphView, StoreConfig};
use exes_linkpred::CommonNeighbors;
use std::fmt::Write as _;
use std::sync::Arc;

const BATCH_SIZES: &[usize] = &[1, 8, 64, 256];
const COMMITS_PER_SIZE: usize = 8;
const SUBJECTS_PER_QUERY: usize = 4;
const QUERIES: usize = 2;

struct CommitRow {
    batch_size: usize,
    delta_ms: f64,
    rebuild_ms: f64,
}

struct Row {
    scale: &'static str,
    people: usize,
    edges: usize,
    commits: Vec<CommitRow>,
    // Warm/cold explanation cost across epochs.
    requests: usize,
    cold_probes: usize,
    cold_ms: f64,
    warm_probes: usize,
    warm_ms: f64,
    post_commit_probes: usize,
    post_commit_ms: f64,
    post_commit_warm_probes: usize,
    post_commit_warm_ms: f64,
}

/// Mean delta-path and rebuild-path commit latency for one batch size.
fn measure_commits(graph: &exes_graph::CollabGraph, batch_size: usize, seed: u64) -> CommitRow {
    let stream_cfg = UpdateStreamConfig::churn(COMMITS_PER_SIZE, batch_size, seed);
    // Delta path: rebuilds disabled.
    let delta_store = GraphStore::with_config(
        graph.clone(),
        StoreConfig {
            rebuild_interval: 0,
        },
    );
    let stream = UpdateStream::generate(graph, &stream_cfg);
    let mut delta = Mean::new();
    for batch in stream.batches() {
        let (result, elapsed) = timed(|| delta_store.commit(batch));
        result.expect("generated batch commits");
        delta.add_duration(elapsed);
    }
    // Rebuild path: every commit re-validates and re-packs the whole graph.
    let rebuild_store = GraphStore::with_config(
        graph.clone(),
        StoreConfig {
            rebuild_interval: 1,
        },
    );
    let stream = UpdateStream::generate(graph, &stream_cfg);
    let mut rebuild = Mean::new();
    for batch in stream.batches() {
        let (result, elapsed) = timed(|| rebuild_store.commit(batch));
        result.expect("generated batch commits");
        rebuild.add_duration(elapsed);
    }
    CommitRow {
        batch_size,
        delta_ms: delta.mean() * 1e3,
        rebuild_ms: rebuild.mean() * 1e3,
    }
}

fn measure(scale: &'static str, people: usize) -> Row {
    let base = DatasetConfig::github_sim();
    let factor = people as f64 / base.num_people as f64;
    let ds = SyntheticDataset::generate(&base.scaled(factor).with_seed(0xE90C4));

    // --- Commit latency vs batch size ---------------------------------
    let commits: Vec<CommitRow> = BATCH_SIZES
        .iter()
        .map(|&size| measure_commits(&ds.graph, size, 0xC0_3317 ^ size as u64))
        .collect();

    // --- Warm vs cold explanations across epochs -----------------------
    let workload = QueryWorkload::answerable(&ds.graph, QUERIES, 3, 5, 3, 0x77);
    let ranker = GcnRanker::default();
    let cfg = ExesConfig::fast().with_k(10);
    let embedding = SkillEmbedding::train(
        ds.corpus.token_bags(),
        ds.graph.vocab().len(),
        &EmbeddingConfig {
            dim: 16,
            ..Default::default()
        },
    );
    let exes = Exes::new(cfg.clone(), embedding, CommonNeighbors);
    let store = Arc::new(GraphStore::new(ds.graph.clone()));
    let mut service = ExesService::new(&exes, store.clone());
    let model = service
        .register("gcn", ModelSpec::expert_ranker(ranker.clone(), cfg.k))
        .expect("valid model spec");

    let mut requests = Vec::new();
    for query in workload.queries() {
        let query = Arc::new(query.clone());
        let ranking = ranker.rank_all(&ds.graph, &query);
        for (rank, &(person, _)) in ranking
            .entries()
            .iter()
            .take(SUBJECTS_PER_QUERY)
            .enumerate()
        {
            requests.push(ExplanationRequest::counterfactual_skills(
                model,
                person,
                query.clone(),
            ));
            if rank % 2 == 0 {
                requests.push(ExplanationRequest::counterfactual_query(
                    model,
                    person,
                    query.clone(),
                ));
            }
        }
    }

    let ((cold_responses, cold), cold_time) = timed(|| service.explain_batch(&requests));
    let ((warm_responses, warm), warm_time) = timed(|| service.explain_batch(&requests));
    assert_eq!(
        warm.probes, 0,
        "an unchanged epoch must replay entirely from cache"
    );
    for (a, b) in cold_responses.iter().zip(&warm_responses) {
        assert_eq!(
            a.expect_counterfactual().explanations,
            b.expect_counterfactual().explanations,
            "cache changed explanations"
        );
    }

    // Commit a small update touching the first query's top subject, then
    // re-answer: the new epoch must miss into fresh entries.
    let stream = UpdateStream::generate(&ds.graph, &UpdateStreamConfig::churn(1, 8, 0xA17E));
    let snap = service.commit(&stream.batches()[0]).expect("commit churn");
    assert_eq!(snap.epoch(), 1);
    let ((_, post), post_time) = timed(|| service.explain_batch(&requests));
    assert!(
        post.probes > 0,
        "a committed update must invalidate the warm cache"
    );
    let ((_, post_warm), post_warm_time) = timed(|| service.explain_batch(&requests));
    assert_eq!(post_warm.probes, 0);

    Row {
        scale,
        people: ds.graph.num_people(),
        edges: ds.graph.num_edges(),
        commits,
        requests: requests.len(),
        cold_probes: cold.probes,
        cold_ms: cold_time.as_secs_f64() * 1e3,
        warm_probes: warm.probes,
        warm_ms: warm_time.as_secs_f64() * 1e3,
        post_commit_probes: post.probes,
        post_commit_ms: post_time.as_secs_f64() * 1e3,
        post_commit_warm_probes: post_warm.probes,
        post_commit_warm_ms: post_warm_time.as_secs_f64() * 1e3,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scales: &[(&'static str, usize)] = if smoke {
        &[("smoke", 120)]
    } else {
        &[("small", 300), ("large", 1200)]
    };
    let threads = exes_parallel::thread_count(usize::MAX);

    let mut rows = Vec::new();
    for &(scale, people) in scales {
        eprintln!("measuring scale '{scale}' ({people} people)...");
        rows.push(measure(scale, people));
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"graph_store\",");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    json.push_str("  \"scales\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"scale\": \"{}\", \"people\": {}, \"edges\": {},",
            r.scale, r.people, r.edges
        );
        json.push_str("     \"commit_latency\": [\n");
        for (j, c) in r.commits.iter().enumerate() {
            let comma = if j + 1 < r.commits.len() { "," } else { "" };
            let _ = writeln!(
                json,
                "       {{\"batch_size\": {}, \"delta_ms\": {:.4}, \"rebuild_ms\": {:.4}}}{comma}",
                c.batch_size, c.delta_ms, c.rebuild_ms
            );
        }
        json.push_str("     ],\n");
        let _ = writeln!(
            json,
            "     \"requests\": {}, \
             \"cold_probes\": {}, \"cold_ms\": {:.3}, \
             \"warm_probes\": {}, \"warm_ms\": {:.3}, \
             \"post_commit_probes\": {}, \"post_commit_ms\": {:.3}, \
             \"post_commit_warm_probes\": {}, \"post_commit_warm_ms\": {:.3}}}{comma}",
            r.requests,
            r.cold_probes,
            r.cold_ms,
            r.warm_probes,
            r.warm_ms,
            r.post_commit_probes,
            r.post_commit_ms,
            r.post_commit_warm_probes,
            r.post_commit_warm_ms,
        );
    }
    json.push_str("  ]\n}\n");

    println!("{json}");
    if smoke {
        // Smoke runs exercise the whole pipeline but must not clobber the
        // committed full-scale baseline.
        eprintln!("smoke run: leaving BENCH_update.json untouched");
    } else {
        std::fs::write("BENCH_update.json", &json).expect("write BENCH_update.json");
        eprintln!("wrote BENCH_update.json");
    }
}
