//! Regenerates Figure 9 (a–h): parameter-sensitivity sweeps.
//!
//! Pass `--param beam|t|d|tau` to run a single sweep; without it all four run.

use exes_bench::experiments::sensitivity::{self, SweepParam};
use exes_bench::scenario::HarnessConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let harness = HarnessConfig::from_args(args.clone());
    let requested: Vec<SweepParam> = match args
        .iter()
        .position(|a| a == "--param")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| SweepParam::parse(v))
    {
        Some(p) => vec![p],
        None => SweepParam::all().to_vec(),
    };
    for (i, param) in requested.into_iter().enumerate() {
        let table = sensitivity::run(&harness, param);
        let _ = table.save_json(&format!("fig09_{i}"));
        print!("{}", table.render());
        println!();
    }
}
