//! Runs every table and figure experiment in sequence and writes a combined
//! Markdown report to `target/experiments/ALL.md` (the source of EXPERIMENTS.md).

use exes_bench::experiments::{counterfactual, datasets_table, factual, sensitivity, TaskMode};
use exes_bench::scenario::HarnessConfig;
use std::fs;

fn main() {
    let harness = HarnessConfig::from_args(std::env::args().skip(1));
    let mut md = String::from("# ExES reproduction — measured tables\n\n");
    let mut emit = |table: &exes_bench::Table| {
        print!("{}", table.render());
        println!();
        md.push_str(&table.render_markdown());
        md.push('\n');
    };

    emit(&datasets_table::run(&harness));
    let (t7, t9) = factual::run(&harness, TaskMode::ExpertSearch);
    emit(&t7);
    emit(&t9);
    let (t8, t10) = counterfactual::run(&harness, TaskMode::ExpertSearch);
    emit(&t8);
    emit(&t10);
    let (t11, t13) = factual::run(&harness, TaskMode::TeamFormation);
    emit(&t11);
    emit(&t13);
    let (t12, t14) = counterfactual::run(&harness, TaskMode::TeamFormation);
    emit(&t12);
    emit(&t14);
    for param in sensitivity::SweepParam::all() {
        emit(&sensitivity::run(&harness, param));
    }

    let _ = fs::create_dir_all("target/experiments");
    let _ = fs::write("target/experiments/ALL.md", md);
    eprintln!("wrote target/experiments/ALL.md");
}
