//! Regenerates Table 6 (dataset statistics).

use exes_bench::experiments::datasets_table;
use exes_bench::scenario::HarnessConfig;

fn main() {
    let harness = HarnessConfig::from_args(std::env::args().skip(1));
    let table = datasets_table::run(&harness);
    let _ = table.save_json("table06");
    print!("{}", table.render());
}
