//! Regenerates Tables 07 and 09 (expert search, factual explanations).

use exes_bench::experiments::{factual, TaskMode};
use exes_bench::scenario::HarnessConfig;

fn main() {
    let harness = HarnessConfig::from_args(std::env::args().skip(1));
    let (latency, precision) = factual::run(&harness, TaskMode::ExpertSearch);
    let _ = latency.save_json("table07");
    let _ = precision.save_json("table09");
    print!("{}", latency.render());
    println!();
    print!("{}", precision.render());
}
