//! Regenerates Tables 08 and 10 (expert search, counterfactual explanations).

use exes_bench::experiments::{counterfactual, TaskMode};
use exes_bench::scenario::HarnessConfig;

fn main() {
    let harness = HarnessConfig::from_args(std::env::args().skip(1));
    let (latency, precision) = counterfactual::run(&harness, TaskMode::ExpertSearch);
    let _ = latency.save_json("table08");
    let _ = precision.save_json("table10");
    print!("{}", latency.render());
    println!();
    print!("{}", precision.render());
}
