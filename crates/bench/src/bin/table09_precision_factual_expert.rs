//! Regenerates Table 9 (factual explanation precision, expert search).

use exes_bench::experiments::{factual, TaskMode};
use exes_bench::scenario::HarnessConfig;

fn main() {
    let harness = HarnessConfig::from_args(std::env::args().skip(1));
    let (_, precision) = factual::run(&harness, TaskMode::ExpertSearch);
    let _ = precision.save_json("table09");
    print!("{}", precision.render());
}
