//! Regenerates Table 10 (counterfactual explanation precision, expert search).

use exes_bench::experiments::{counterfactual, TaskMode};
use exes_bench::scenario::HarnessConfig;

fn main() {
    let harness = HarnessConfig::from_args(std::env::args().skip(1));
    let (_, precision) = counterfactual::run(&harness, TaskMode::ExpertSearch);
    let _ = precision.save_json("table10");
    print!("{}", precision.render());
}
