//! Regenerates Tables 11 and 13 (team formation, factual explanations).

use exes_bench::experiments::{factual, TaskMode};
use exes_bench::scenario::HarnessConfig;

fn main() {
    let harness = HarnessConfig::from_args(std::env::args().skip(1));
    let (latency, precision) = factual::run(&harness, TaskMode::TeamFormation);
    let _ = latency.save_json("table11");
    let _ = precision.save_json("table13");
    print!("{}", latency.render());
    println!();
    print!("{}", precision.render());
}
