//! Regenerates Tables 12 and 14 (team formation, counterfactual explanations).

use exes_bench::experiments::{counterfactual, TaskMode};
use exes_bench::scenario::HarnessConfig;

fn main() {
    let harness = HarnessConfig::from_args(std::env::args().skip(1));
    let (latency, precision) = counterfactual::run(&harness, TaskMode::TeamFormation);
    let _ = latency.save_json("table12");
    let _ = precision.save_json("table14");
    print!("{}", latency.render());
    println!();
    print!("{}", precision.render());
}
