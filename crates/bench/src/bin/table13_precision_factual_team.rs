//! Regenerates Table 13 (factual explanation precision, team formation).

use exes_bench::experiments::{factual, TaskMode};
use exes_bench::scenario::HarnessConfig;

fn main() {
    let harness = HarnessConfig::from_args(std::env::args().skip(1));
    let (_, precision) = factual::run(&harness, TaskMode::TeamFormation);
    let _ = precision.save_json("table13");
    print!("{}", precision.render());
}
