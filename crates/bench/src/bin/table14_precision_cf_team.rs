//! Regenerates Table 14 (counterfactual explanation precision, team formation).

use exes_bench::experiments::{counterfactual, TaskMode};
use exes_bench::scenario::HarnessConfig;

fn main() {
    let harness = HarnessConfig::from_args(std::env::args().skip(1));
    let (_, precision) = counterfactual::run(&harness, TaskMode::TeamFormation);
    let _ = precision.save_json("table14");
    print!("{}", precision.render());
}
