//! Counterfactual-explanation experiments: Tables 8 & 10 (expert search) and
//! Tables 12 & 14 (team formation).

use super::TaskMode;
use crate::report::{fmt_num, fmt_secs, Table};
use crate::scenario::{DatasetKind, HarnessConfig, Scenario};
use crate::timing::{timed, Mean};
use exes_core::counterfactual::CounterfactualResult;
use exes_core::explainer::SkillAdditionBaseline;
use exes_core::{counterfactual_precision, DecisionModel, ExpertRelevanceTask, TeamMembershipTask};

/// Aggregated measurements for one (explanation method, dataset) cell.
#[derive(Debug, Clone)]
pub struct CounterfactualCell {
    /// Explanation method label (e.g. "Skill Removal (Experts)").
    pub method: String,
    /// Dataset name.
    pub dataset: String,
    /// Mean ExES latency in seconds.
    pub exes_latency: f64,
    /// Mean baseline latency in seconds (primary baseline).
    pub baseline_latency: f64,
    /// Mean latency of the secondary (S) baseline, for skill additions only.
    pub baseline_s_latency: Option<f64>,
    /// Mean ExES explanation size.
    pub exes_size: f64,
    /// Mean baseline explanation size.
    pub baseline_size: f64,
    /// Total number of explanations found by ExES across subjects.
    pub exes_explanations: usize,
    /// Total number of explanations found by the baseline.
    pub baseline_explanations: usize,
    /// Mean Precision of ExES against the baseline's minimal size.
    pub precision: f64,
    /// Mean Precision* (within one perturbation of minimal).
    pub precision_star: f64,
}

struct Accumulator {
    exes_lat: Mean,
    base_lat: Mean,
    base_s_lat: Mean,
    exes_size: Mean,
    base_size: Mean,
    exes_count: usize,
    base_count: usize,
    precision: Mean,
    precision_star: Mean,
}

impl Accumulator {
    fn new() -> Self {
        Accumulator {
            exes_lat: Mean::new(),
            base_lat: Mean::new(),
            base_s_lat: Mean::new(),
            exes_size: Mean::new(),
            base_size: Mean::new(),
            exes_count: 0,
            base_count: 0,
            precision: Mean::new(),
            precision_star: Mean::new(),
        }
    }

    fn record(
        &mut self,
        exes: &CounterfactualResult,
        exes_secs: f64,
        baseline: &CounterfactualResult,
        baseline_secs: f64,
    ) {
        self.exes_lat.add(exes_secs);
        self.base_lat.add(baseline_secs);
        if !exes.is_empty() {
            self.exes_size.add(exes.mean_size());
        }
        if !baseline.is_empty() {
            self.base_size.add(baseline.mean_size());
        }
        self.exes_count += exes.len();
        self.base_count += baseline.len();
        if let Some(report) = counterfactual_precision(exes, baseline) {
            self.precision.add(report.precision);
            self.precision_star.add(report.precision_star);
        }
    }

    fn into_cell(self, method: &str, dataset: &str) -> CounterfactualCell {
        CounterfactualCell {
            method: method.to_string(),
            dataset: dataset.to_string(),
            exes_latency: self.exes_lat.mean(),
            baseline_latency: self.base_lat.mean(),
            baseline_s_latency: if self.base_s_lat.count() > 0 {
                Some(self.base_s_lat.mean())
            } else {
                None
            },
            exes_size: self.exes_size.mean(),
            baseline_size: self.base_size.mean(),
            exes_explanations: self.exes_count,
            baseline_explanations: self.base_count,
            precision: self.precision.mean(),
            precision_star: self.precision_star.mean(),
        }
    }
}

fn measure_selected<D: DecisionModel>(
    scenario: &Scenario,
    subjects: &[(exes_graph::Query, D)],
    label_suffix: &str,
) -> Vec<CounterfactualCell> {
    let graph = &scenario.dataset.graph;
    let exes = &scenario.exes;
    let dataset = scenario.kind.name();

    let mut skill = Accumulator::new();
    let mut query_aug = Accumulator::new();
    let mut link = Accumulator::new();
    for (query, task) in subjects {
        let (pruned, t1) = timed(|| exes.counterfactual_skills(task, graph, query));
        let (baseline, t2) = timed(|| {
            exes.counterfactual_skills_exhaustive(
                task,
                graph,
                query,
                SkillAdditionBaseline::AllPeople,
            )
        });
        skill.record(&pruned, t1.as_secs_f64(), &baseline, t2.as_secs_f64());

        let (pruned, t1) = timed(|| exes.counterfactual_query(task, graph, query));
        let (baseline, t2) = timed(|| exes.counterfactual_query_exhaustive(task, graph, query));
        query_aug.record(&pruned, t1.as_secs_f64(), &baseline, t2.as_secs_f64());

        let (pruned, t1) = timed(|| exes.counterfactual_links(task, graph, query));
        let (baseline, t2) = timed(|| exes.counterfactual_links_exhaustive(task, graph, query));
        link.record(&pruned, t1.as_secs_f64(), &baseline, t2.as_secs_f64());
    }
    vec![
        skill.into_cell(&format!("Skill Removal ({label_suffix})"), dataset),
        query_aug.into_cell(&format!("Query Augment. ({label_suffix})"), dataset),
        link.into_cell(&format!("Link Removal ({label_suffix})"), dataset),
    ]
}

fn measure_unselected<D: DecisionModel>(
    scenario: &Scenario,
    subjects: &[(exes_graph::Query, D)],
    label_suffix: &str,
) -> Vec<CounterfactualCell> {
    let graph = &scenario.dataset.graph;
    let exes = &scenario.exes;
    let dataset = scenario.kind.name();

    let mut skill = Accumulator::new();
    let mut query_aug = Accumulator::new();
    let mut link = Accumulator::new();
    for (query, task) in subjects {
        let (pruned, t1) = timed(|| exes.counterfactual_skills(task, graph, query));
        let (baseline_n, t2) = timed(|| {
            exes.counterfactual_skills_exhaustive(
                task,
                graph,
                query,
                SkillAdditionBaseline::AllPeople,
            )
        });
        let (_baseline_s, t3) = timed(|| {
            exes.counterfactual_skills_exhaustive(
                task,
                graph,
                query,
                SkillAdditionBaseline::AllSkills,
            )
        });
        skill.record(&pruned, t1.as_secs_f64(), &baseline_n, t2.as_secs_f64());
        skill.base_s_lat.add(t3.as_secs_f64());

        let (pruned, t1) = timed(|| exes.counterfactual_query(task, graph, query));
        let (baseline, t2) = timed(|| exes.counterfactual_query_exhaustive(task, graph, query));
        query_aug.record(&pruned, t1.as_secs_f64(), &baseline, t2.as_secs_f64());

        let (pruned, t1) = timed(|| exes.counterfactual_links(task, graph, query));
        let (baseline, t2) = timed(|| exes.counterfactual_links_exhaustive(task, graph, query));
        link.record(&pruned, t1.as_secs_f64(), &baseline, t2.as_secs_f64());
    }
    vec![
        skill.into_cell(&format!("Skill Addition ({label_suffix})"), dataset),
        query_aug.into_cell(&format!("Query Augment. ({label_suffix})"), dataset),
        link.into_cell(&format!("Link Addition ({label_suffix})"), dataset),
    ]
}

/// Runs every counterfactual experiment for one scenario.
pub fn run_scenario(scenario: &Scenario, mode: TaskMode) -> Vec<CounterfactualCell> {
    let n = scenario.harness.num_subjects;
    match mode {
        TaskMode::ExpertSearch => {
            let (experts, non_experts) = scenario.sample_experts_and_non_experts(n);
            let k = scenario.exes.config().k;
            let expert_tasks: Vec<_> = experts
                .into_iter()
                .map(|(q, p)| (q, ExpertRelevanceTask::new(&scenario.ranker, p, k)))
                .collect();
            let non_expert_tasks: Vec<_> = non_experts
                .into_iter()
                .map(|(q, p)| (q, ExpertRelevanceTask::new(&scenario.ranker, p, k)))
                .collect();
            let mut cells = measure_selected(scenario, &expert_tasks, "Experts");
            cells.extend(measure_unselected(
                scenario,
                &non_expert_tasks,
                "Non-experts",
            ));
            cells
        }
        TaskMode::TeamFormation => {
            let (members, non_members) = scenario.sample_team_members_and_non_members(n);
            let member_tasks: Vec<_> = members
                .into_iter()
                .map(|(q, seed, p)| {
                    (
                        q,
                        TeamMembershipTask::new(&scenario.former, &scenario.ranker, p, Some(seed)),
                    )
                })
                .collect();
            let non_member_tasks: Vec<_> = non_members
                .into_iter()
                .map(|(q, seed, p)| {
                    (
                        q,
                        TeamMembershipTask::new(&scenario.former, &scenario.ranker, p, Some(seed)),
                    )
                })
                .collect();
            let mut cells = measure_selected(scenario, &member_tasks, "Members");
            cells.extend(measure_unselected(
                scenario,
                &non_member_tasks,
                "Non-members",
            ));
            cells
        }
    }
}

/// Runs both datasets, assembling the latency/size table (Table 8 or 12) and
/// the count/precision table (Table 10 or 14).
pub fn run(harness: &HarnessConfig, mode: TaskMode) -> (Table, Table) {
    let (latency_no, precision_no) = match mode {
        TaskMode::ExpertSearch => (8, 10),
        TaskMode::TeamFormation => (12, 14),
    };
    let mut latency_table = Table::new(
        &format!(
            "Table {latency_no}: Counterfactual explanation results: {}",
            mode.label()
        ),
        &[
            "Method",
            "Dataset",
            "Latency (s) ExES",
            "Latency (s) Baseline",
            "Expl. size ExES",
            "Expl. size Baseline",
        ],
    );
    let mut precision_table = Table::new(
        &format!(
            "Table {precision_no}: Counterfactual explanation precision: {}",
            mode.label()
        ),
        &[
            "Method",
            "Dataset",
            "# Expl. ExES",
            "# Expl. Baseline",
            "Precision",
            "Precision*",
        ],
    );
    let mut all_cells: Vec<CounterfactualCell> = Vec::new();
    for kind in DatasetKind::both() {
        let scenario = Scenario::build(kind, harness);
        all_cells.extend(run_scenario(&scenario, mode));
    }
    // Group rows by method so that both datasets appear together, as in the paper.
    let mut methods: Vec<String> = Vec::new();
    for cell in &all_cells {
        if !methods.contains(&cell.method) {
            methods.push(cell.method.clone());
        }
    }
    for method in &methods {
        for cell in all_cells.iter().filter(|c| &c.method == method) {
            let baseline_latency = match cell.baseline_s_latency {
                Some(s) => format!(
                    "N: {} / S: {}",
                    fmt_secs(cell.baseline_latency),
                    fmt_secs(s)
                ),
                None => fmt_secs(cell.baseline_latency),
            };
            latency_table.push_row(vec![
                cell.method.clone(),
                cell.dataset.clone(),
                fmt_secs(cell.exes_latency),
                baseline_latency,
                fmt_num(cell.exes_size),
                fmt_num(cell.baseline_size),
            ]);
            precision_table.push_row(vec![
                cell.method.clone(),
                cell.dataset.clone(),
                cell.exes_explanations.to_string(),
                cell.baseline_explanations.to_string(),
                fmt_num(cell.precision),
                fmt_num(cell.precision_star),
            ]);
        }
    }
    (latency_table, precision_table)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> HarnessConfig {
        HarnessConfig {
            dblp_scale: 0.004,
            github_scale: 0.02,
            num_queries: 3,
            num_subjects: 1,
            baseline_timeout_secs: 1,
            shap_permutations: 2,
            seed: 9,
        }
    }

    #[test]
    fn expert_search_counterfactual_cells_cover_six_methods() {
        let scenario = Scenario::build(DatasetKind::Github, &tiny());
        let cells = run_scenario(&scenario, TaskMode::ExpertSearch);
        assert_eq!(cells.len(), 6);
        let methods: Vec<&str> = cells.iter().map(|c| c.method.as_str()).collect();
        assert!(methods.contains(&"Skill Removal (Experts)"));
        assert!(methods.contains(&"Skill Addition (Non-experts)"));
        for cell in &cells {
            assert!(cell.exes_latency >= 0.0);
            assert!((0.0..=1.0).contains(&cell.precision) || cell.precision == 0.0);
            assert!(cell.precision_star >= cell.precision - 1e-9);
        }
        // The Non-experts skill addition cell carries the secondary baseline.
        let addition = cells
            .iter()
            .find(|c| c.method.starts_with("Skill Addition"))
            .unwrap();
        assert!(addition.baseline_s_latency.is_some());
    }
}
