//! Table 6: dataset statistics.

use crate::report::Table;
use crate::scenario::{DatasetKind, HarnessConfig, Scenario};

/// Builds Table 6 for the (scaled) simulated datasets, including the scale
/// factor so the reader can relate the row to the paper's full-size numbers.
pub fn run(harness: &HarnessConfig) -> Table {
    let mut table = Table::new(
        "Table 6: Dataset statistics (simulated, scaled)",
        &[
            "Dataset",
            "# Nodes",
            "# Edges",
            "# Skills",
            "Avg skills/person",
            "Avg degree",
            "Paper # Nodes",
            "Paper # Edges",
            "Paper # Skills",
        ],
    );
    for kind in DatasetKind::both() {
        let scenario = Scenario::build(kind, harness);
        let stats = scenario.dataset.graph.stats();
        let (paper_nodes, paper_edges, paper_skills) = match kind {
            DatasetKind::Dblp => (17_630, 128_809, 1_829),
            DatasetKind::Github => (3_278, 15_502, 863),
        };
        table.push_row(vec![
            kind.name().to_string(),
            stats.num_people.to_string(),
            stats.num_edges.to_string(),
            stats.num_skills.to_string(),
            format!("{:.1}", stats.avg_skills_per_person),
            format!("{:.1}", stats.avg_degree),
            paper_nodes.to_string(),
            paper_edges.to_string(),
            paper_skills.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_has_one_row_per_dataset() {
        let harness = HarnessConfig {
            dblp_scale: 0.005,
            github_scale: 0.03,
            num_queries: 2,
            num_subjects: 1,
            baseline_timeout_secs: 1,
            shap_permutations: 2,
            seed: 1,
        };
        let table = run(&harness);
        assert_eq!(table.rows.len(), 2);
        assert_eq!(table.rows[0][0], "DBLP");
        assert_eq!(table.rows[1][0], "GitHub");
        // Node counts are positive integers.
        assert!(table.rows[0][1].parse::<usize>().unwrap() > 0);
    }
}
