//! Factual-explanation experiments: Tables 7 & 9 (expert search) and 11 & 13
//! (team formation).

use super::TaskMode;
use crate::report::{fmt_num, fmt_secs, Table};
use crate::scenario::{DatasetKind, HarnessConfig, Scenario};
use crate::timing::{timed, Mean};
use exes_core::{factual_precision_at_k, DecisionModel, ExpertRelevanceTask, TeamMembershipTask};

/// Aggregated measurements for one (dataset, feature family) cell.
#[derive(Debug, Clone)]
pub struct FactualCell {
    /// Dataset name.
    pub dataset: String,
    /// Feature family ("Skills", "Query terms", "Collaborations").
    pub features: String,
    /// Mean ExES (pruned) latency in seconds.
    pub exes_latency: f64,
    /// Mean exhaustive-baseline latency in seconds (`None` for query terms,
    /// where pruning does not apply).
    pub baseline_latency: Option<f64>,
    /// Mean ExES explanation size (non-zero SHAP features).
    pub exes_size: f64,
    /// Mean baseline explanation size.
    pub baseline_size: Option<f64>,
    /// Precision@1 of ExES against the baseline.
    pub precision_at_1: Option<f64>,
    /// Precision@5 of ExES against the baseline.
    pub precision_at_5: Option<f64>,
}

/// Runs the factual experiments for one scenario, producing one cell per
/// feature family.
pub fn run_scenario(scenario: &Scenario, mode: TaskMode) -> Vec<FactualCell> {
    match mode {
        TaskMode::ExpertSearch => {
            let (experts, _) =
                scenario.sample_experts_and_non_experts(scenario.harness.num_subjects);
            let subjects: Vec<_> = experts
                .into_iter()
                .map(|(q, p)| {
                    (
                        q,
                        ExpertRelevanceTask::new(&scenario.ranker, p, scenario.exes.config().k),
                    )
                })
                .collect();
            measure(scenario, &subjects)
        }
        TaskMode::TeamFormation => {
            let (members, _) =
                scenario.sample_team_members_and_non_members(scenario.harness.num_subjects);
            let subjects: Vec<_> = members
                .into_iter()
                .map(|(q, seed, p)| {
                    (
                        q,
                        TeamMembershipTask::new(&scenario.former, &scenario.ranker, p, Some(seed)),
                    )
                })
                .collect();
            measure(scenario, &subjects)
        }
    }
}

fn measure<D: DecisionModel>(
    scenario: &Scenario,
    subjects: &[(exes_graph::Query, D)],
) -> Vec<FactualCell> {
    let graph = &scenario.dataset.graph;
    let exes = &scenario.exes;
    let dataset = scenario.kind.name().to_string();

    let mut cells = Vec::new();

    // --- Skills -----------------------------------------------------------
    let mut exes_lat = Mean::new();
    let mut base_lat = Mean::new();
    let mut exes_size = Mean::new();
    let mut base_size = Mean::new();
    let mut p1 = Mean::new();
    let mut p5 = Mean::new();
    for (query, task) in subjects {
        let (pruned, t1) = timed(|| exes.factual_skills(task, graph, query, true));
        let (baseline, t2) = timed(|| exes.factual_skills(task, graph, query, false));
        exes_lat.add_duration(t1);
        base_lat.add_duration(t2);
        exes_size.add(pruned.size() as f64);
        base_size.add(baseline.size() as f64);
        p1.add(factual_precision_at_k(&pruned, &baseline, 1));
        p5.add(factual_precision_at_k(&pruned, &baseline, 5));
    }
    cells.push(FactualCell {
        dataset: dataset.clone(),
        features: "Skills".to_string(),
        exes_latency: exes_lat.mean(),
        baseline_latency: Some(base_lat.mean()),
        exes_size: exes_size.mean(),
        baseline_size: Some(base_size.mean()),
        precision_at_1: Some(p1.mean()),
        precision_at_5: Some(p5.mean()),
    });

    // --- Query terms (no pruning applies) -----------------------------------
    let mut q_lat = Mean::new();
    let mut q_size = Mean::new();
    for (query, task) in subjects {
        let (exp, t) = timed(|| exes.factual_query_terms(task, graph, query));
        q_lat.add_duration(t);
        q_size.add(exp.size() as f64);
    }
    cells.push(FactualCell {
        dataset: dataset.clone(),
        features: "Query terms".to_string(),
        exes_latency: q_lat.mean(),
        baseline_latency: None,
        exes_size: q_size.mean(),
        baseline_size: None,
        precision_at_1: None,
        precision_at_5: None,
    });

    // --- Collaborations ------------------------------------------------------
    let mut c_exes_lat = Mean::new();
    let mut c_base_lat = Mean::new();
    let mut c_exes_size = Mean::new();
    let mut c_base_size = Mean::new();
    let mut c_p1 = Mean::new();
    let mut c_p5 = Mean::new();
    for (query, task) in subjects {
        let (pruned, t1) = timed(|| exes.factual_collaborations(task, graph, query, true));
        let (baseline, t2) = timed(|| exes.factual_collaborations(task, graph, query, false));
        c_exes_lat.add_duration(t1);
        c_base_lat.add_duration(t2);
        c_exes_size.add(pruned.size() as f64);
        c_base_size.add(baseline.size() as f64);
        c_p1.add(factual_precision_at_k(&pruned, &baseline, 1));
        c_p5.add(factual_precision_at_k(&pruned, &baseline, 5));
    }
    cells.push(FactualCell {
        dataset,
        features: "Collaborations".to_string(),
        exes_latency: c_exes_lat.mean(),
        baseline_latency: Some(c_base_lat.mean()),
        exes_size: c_exes_size.mean(),
        baseline_size: Some(c_base_size.mean()),
        precision_at_1: Some(c_p1.mean()),
        precision_at_5: Some(c_p5.mean()),
    });

    cells
}

/// Runs both datasets and assembles the latency/size table (Table 7 or 11) and
/// the precision table (Table 9 or 13).
pub fn run(harness: &HarnessConfig, mode: TaskMode) -> (Table, Table) {
    let (latency_no, precision_no) = match mode {
        TaskMode::ExpertSearch => (7, 9),
        TaskMode::TeamFormation => (11, 13),
    };
    let mut latency_table = Table::new(
        &format!(
            "Table {latency_no}: Factual explanation results: {}",
            mode.label()
        ),
        &[
            "Features",
            "Dataset",
            "Latency (s) ExES",
            "Latency (s) Baseline",
            "Expl. size ExES",
            "Expl. size Baseline",
        ],
    );
    let mut precision_table = Table::new(
        &format!(
            "Table {precision_no}: Factual explanation precision: {}",
            mode.label()
        ),
        &["Features", "Dataset", "Precision@1", "Precision@5"],
    );
    for kind in DatasetKind::both() {
        let scenario = Scenario::build(kind, harness);
        for cell in run_scenario(&scenario, mode) {
            latency_table.push_row(vec![
                cell.features.clone(),
                cell.dataset.clone(),
                fmt_secs(cell.exes_latency),
                cell.baseline_latency
                    .map(fmt_secs)
                    .unwrap_or_else(|| "—".into()),
                fmt_num(cell.exes_size),
                cell.baseline_size
                    .map(fmt_num)
                    .unwrap_or_else(|| "—".into()),
            ]);
            if let (Some(p1), Some(p5)) = (cell.precision_at_1, cell.precision_at_5) {
                precision_table.push_row(vec![
                    cell.features,
                    cell.dataset,
                    fmt_num(p1),
                    fmt_num(p5),
                ]);
            }
        }
    }
    (latency_table, precision_table)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> HarnessConfig {
        HarnessConfig {
            dblp_scale: 0.004,
            github_scale: 0.02,
            num_queries: 3,
            num_subjects: 1,
            baseline_timeout_secs: 1,
            shap_permutations: 2,
            seed: 5,
        }
    }

    #[test]
    fn factual_cells_cover_three_feature_families() {
        let scenario = Scenario::build(DatasetKind::Github, &tiny());
        let cells = run_scenario(&scenario, TaskMode::ExpertSearch);
        let families: Vec<&str> = cells.iter().map(|c| c.features.as_str()).collect();
        assert_eq!(families, vec!["Skills", "Query terms", "Collaborations"]);
        for cell in &cells {
            assert!(cell.exes_latency >= 0.0);
            assert!(cell.exes_size >= 0.0);
            if let (Some(p1), Some(p5)) = (cell.precision_at_1, cell.precision_at_5) {
                assert!((0.0..=1.0).contains(&p1));
                assert!((0.0..=1.0).contains(&p5));
            }
        }
    }

    #[test]
    fn team_mode_also_produces_cells() {
        let scenario = Scenario::build(DatasetKind::Github, &tiny());
        let cells = run_scenario(&scenario, TaskMode::TeamFormation);
        assert_eq!(cells.len(), 3);
    }
}
