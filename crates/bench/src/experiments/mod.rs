//! Experiment drivers: one module per family of tables/figures.
//!
//! * [`datasets_table`] — Table 6 (dataset statistics).
//! * [`factual`] — Tables 7 & 9 (expert search) and 11 & 13 (team formation).
//! * [`counterfactual`] — Tables 8 & 10 (expert search) and 12 & 14 (team formation).
//! * [`sensitivity`] — Figure 9 (a–h) parameter sweeps.

pub mod counterfactual;
pub mod datasets_table;
pub mod factual;
pub mod sensitivity;

/// Whether an experiment explains the expert-search system or the
/// team-formation system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskMode {
    /// Explain relevance status of an expert-search ranker (Sections 4.2, Tables 7–10).
    ExpertSearch,
    /// Explain membership status of a team former (Section 4.3, Tables 11–14).
    TeamFormation,
}

impl TaskMode {
    /// Human-readable label used in titles.
    pub fn label(self) -> &'static str {
        match self {
            TaskMode::ExpertSearch => "expert search",
            TaskMode::TeamFormation => "team formation",
        }
    }
}
