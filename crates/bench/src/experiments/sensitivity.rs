//! Figure 9 (a–h): parameter-sensitivity sweeps.

use crate::report::{fmt_num, fmt_secs, Table};
use crate::scenario::{DatasetKind, HarnessConfig, Scenario};
use crate::timing::{timed, Mean};
use exes_core::explainer::SkillAdditionBaseline;
use exes_core::{counterfactual_precision, ExpertRelevanceTask};

/// Which parameter to sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepParam {
    /// Beam size `b` — Figures 9a (latency) and 9b (precision), skill removal.
    BeamSize,
    /// Candidate count `t` — Figures 9c/9d, query augmentation for non-experts.
    Candidates,
    /// Neighbourhood radius `d` — Figures 9e/9f/9g, skill addition.
    Radius,
    /// SHAP threshold `τ` — Figure 9h, collaboration factual explanation size.
    Tau,
}

impl SweepParam {
    /// Parses a `--param` CLI value.
    pub fn parse(name: &str) -> Option<SweepParam> {
        match name {
            "beam" | "b" => Some(SweepParam::BeamSize),
            "candidates" | "t" => Some(SweepParam::Candidates),
            "radius" | "d" => Some(SweepParam::Radius),
            "tau" => Some(SweepParam::Tau),
            _ => None,
        }
    }

    /// All sweeps, in figure order.
    pub fn all() -> [SweepParam; 4] {
        [
            SweepParam::BeamSize,
            SweepParam::Candidates,
            SweepParam::Radius,
            SweepParam::Tau,
        ]
    }

    /// The parameter values swept (the paper's x-axes).
    pub fn values(self) -> Vec<f64> {
        match self {
            SweepParam::BeamSize => vec![10.0, 15.0, 20.0, 25.0, 30.0],
            SweepParam::Candidates => vec![10.0, 20.0, 30.0, 40.0, 50.0, 60.0],
            SweepParam::Radius => vec![0.0, 1.0, 2.0, 3.0],
            SweepParam::Tau => vec![0.05, 0.10, 0.15],
        }
    }

    /// Figure label used in table titles.
    pub fn figure_label(self) -> &'static str {
        match self {
            SweepParam::BeamSize => "Figure 9a/9b: beam size b (skill removal, experts)",
            SweepParam::Candidates => {
                "Figure 9c/9d: candidate features t (query augmentation, non-experts)"
            }
            SweepParam::Radius => "Figure 9e/9f/9g: neighbourhood radius d (skill addition)",
            SweepParam::Tau => "Figure 9h: threshold τ (collaboration SHAP explanation size)",
        }
    }
}

/// Runs one parameter sweep over both datasets; each row reports the metrics
/// the corresponding sub-figures plot.
pub fn run(harness: &HarnessConfig, param: SweepParam) -> Table {
    let mut table = Table::new(
        param.figure_label(),
        &[
            "Value",
            "Dataset",
            "Latency (s)",
            "Precision",
            "# Explanations",
            "Expl. size",
        ],
    );
    for kind in DatasetKind::both() {
        let mut scenario = Scenario::build(kind, harness);
        for value in param.values() {
            let row = sweep_point(&mut scenario, param, value);
            table.push_row(vec![
                format!("{value}"),
                kind.name().to_string(),
                fmt_secs(row.latency),
                fmt_num(row.precision),
                row.explanations.to_string(),
                fmt_num(row.size),
            ]);
        }
    }
    table
}

struct SweepPoint {
    latency: f64,
    precision: f64,
    explanations: usize,
    size: f64,
}

fn sweep_point(scenario: &mut Scenario, param: SweepParam, value: f64) -> SweepPoint {
    // Apply the swept parameter to the explainer configuration.
    {
        let cfg = scenario.exes.config_mut();
        match param {
            SweepParam::BeamSize => cfg.beam_width = value as usize,
            SweepParam::Candidates => cfg.num_candidates = value as usize,
            SweepParam::Radius => cfg.skill_radius = value as usize,
            SweepParam::Tau => cfg.tau = value,
        }
    }
    let n = scenario.harness.num_subjects;
    let k = scenario.exes.config().k;
    let graph = &scenario.dataset.graph;
    let (experts, non_experts) = scenario.sample_experts_and_non_experts(n);

    let mut latency = Mean::new();
    let mut precision = Mean::new();
    let mut size = Mean::new();
    let mut explanations = 0usize;

    match param {
        SweepParam::BeamSize => {
            // Skill removal for experts.
            for (query, person) in &experts {
                let task = ExpertRelevanceTask::new(&scenario.ranker, *person, k);
                let (pruned, t) =
                    timed(|| scenario.exes.counterfactual_skills(&task, graph, query));
                let baseline = scenario.exes.counterfactual_skills_exhaustive(
                    &task,
                    graph,
                    query,
                    SkillAdditionBaseline::AllPeople,
                );
                latency.add_duration(t);
                explanations += pruned.len();
                size.add(pruned.mean_size());
                if let Some(report) = counterfactual_precision(&pruned, &baseline) {
                    precision.add(report.precision);
                }
            }
        }
        SweepParam::Candidates => {
            // Query augmentation for non-experts.
            for (query, person) in &non_experts {
                let task = ExpertRelevanceTask::new(&scenario.ranker, *person, k);
                let (pruned, t) = timed(|| scenario.exes.counterfactual_query(&task, graph, query));
                let baseline = scenario
                    .exes
                    .counterfactual_query_exhaustive(&task, graph, query);
                latency.add_duration(t);
                explanations += pruned.len();
                size.add(pruned.mean_size());
                if let Some(report) = counterfactual_precision(&pruned, &baseline) {
                    precision.add(report.precision);
                }
            }
        }
        SweepParam::Radius => {
            // Skill addition for non-experts.
            for (query, person) in &non_experts {
                let task = ExpertRelevanceTask::new(&scenario.ranker, *person, k);
                let (pruned, t) =
                    timed(|| scenario.exes.counterfactual_skills(&task, graph, query));
                let baseline = scenario.exes.counterfactual_skills_exhaustive(
                    &task,
                    graph,
                    query,
                    SkillAdditionBaseline::AllPeople,
                );
                latency.add_duration(t);
                explanations += pruned.len();
                size.add(pruned.mean_size());
                if let Some(report) = counterfactual_precision(&pruned, &baseline) {
                    precision.add(report.precision);
                }
            }
        }
        SweepParam::Tau => {
            // Collaboration factual explanation size.
            for (query, person) in &experts {
                let task = ExpertRelevanceTask::new(&scenario.ranker, *person, k);
                let (exp, t) = timed(|| {
                    scenario
                        .exes
                        .factual_collaborations(&task, graph, query, true)
                });
                latency.add_duration(t);
                size.add(exp.size() as f64);
                explanations += 1;
                precision.add(1.0);
            }
        }
    }

    SweepPoint {
        latency: latency.mean(),
        precision: precision.mean(),
        explanations,
        size: size.mean(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_parsing_and_values() {
        assert_eq!(SweepParam::parse("beam"), Some(SweepParam::BeamSize));
        assert_eq!(SweepParam::parse("t"), Some(SweepParam::Candidates));
        assert_eq!(SweepParam::parse("d"), Some(SweepParam::Radius));
        assert_eq!(SweepParam::parse("tau"), Some(SweepParam::Tau));
        assert_eq!(SweepParam::parse("nope"), None);
        assert_eq!(SweepParam::BeamSize.values().len(), 5);
        assert_eq!(SweepParam::Radius.values(), vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(SweepParam::all().len(), 4);
    }

    #[test]
    fn tau_sweep_runs_on_a_tiny_scenario() {
        let harness = HarnessConfig {
            dblp_scale: 0.004,
            github_scale: 0.02,
            num_queries: 2,
            num_subjects: 1,
            baseline_timeout_secs: 1,
            shap_permutations: 2,
            seed: 11,
        };
        let table = run(&harness, SweepParam::Tau);
        // 3 τ values × 2 datasets.
        assert_eq!(table.rows.len(), 6);
    }
}
