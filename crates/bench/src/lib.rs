//! # exes-bench
//!
//! The reproduction harness for every table and figure in the ExES evaluation
//! (Section 4), plus shared scenario plumbing used by the Criterion
//! micro-benchmarks.
//!
//! Each `table*`/`fig*` binary in `src/bin/` is a thin wrapper around a
//! function in [`experiments`]; the functions return structured rows so that
//! integration tests can assert on their schema and the binaries only handle
//! argument parsing and printing.
//!
//! Run `cargo run -p exes-bench --release --bin table07_factual_expert` (etc.)
//! to regenerate a table. All binaries accept `--full` for a larger,
//! closer-to-paper-scale run and `--scale <f>` / `--subjects <n>` to interpolate.

#![forbid(unsafe_code)]

pub mod experiments;
pub mod report;
pub mod scenario;
pub mod timing;

pub use report::Table;
pub use scenario::{HarnessConfig, Scenario};
