//! Table assembly and printing for experiment output.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A simple column-aligned table mirroring the paper's result tables.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title (e.g. "Table 7: Factual explanation results: expert search").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of formatted cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title and headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; the cell count must match the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let rule: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        let _ = writeln!(out, "{rule}");
        let header_line: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!(" {:<width$} ", h, width = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", header_line.join("|"));
        let _ = writeln!(out, "{rule}");
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!(" {:<width$} ", c, width = widths[i]))
                .collect();
            let _ = writeln!(out, "{}", line.join("|"));
        }
        let _ = writeln!(out, "{rule}");
        out
    }

    /// Renders the table as GitHub-flavoured Markdown (used by EXPERIMENTS.md).
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Renders the table as a JSON object (hand-rolled: the offline build
    /// carries no serialisation framework).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"title\": {},", json_string(&self.title));
        let _ = writeln!(
            out,
            "  \"headers\": [{}],",
            self.headers
                .iter()
                .map(|h| json_string(h))
                .collect::<Vec<_>>()
                .join(", ")
        );
        out.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let cells: Vec<String> = row.iter().map(|c| json_string(c)).collect();
            let comma = if i + 1 < self.rows.len() { "," } else { "" };
            let _ = writeln!(out, "    [{}]{comma}", cells.join(", "));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the table (as JSON) under `target/experiments/<name>.json`, so
    /// that EXPERIMENTS.md can be regenerated without re-running experiments.
    pub fn save_json(&self, name: &str) -> std::io::Result<()> {
        let dir = Path::new("target").join("experiments");
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.json"));
        fs::write(path, self.to_json())
    }
}

/// Escapes a string as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a duration in seconds with sensible precision for table cells.
pub fn fmt_secs(seconds: f64) -> String {
    if seconds < 0.01 {
        format!("{:.4}", seconds)
    } else {
        format!("{:.2}", seconds)
    }
}

/// Formats a mean size / count cell.
pub fn fmt_num(value: f64) -> String {
    format!("{value:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_all_cells() {
        let mut t = Table::new("Table X: demo", &["Dataset", "Latency (s)"]);
        t.push_row(vec!["DBLP".into(), "1.23".into()]);
        t.push_row(vec!["GitHub".into(), "0.45".into()]);
        let text = t.render();
        assert!(text.contains("Table X: demo"));
        assert!(text.contains("DBLP"));
        assert!(text.contains("0.45"));
        let md = t.render_markdown();
        assert!(md.contains("| DBLP | 1.23 |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = Table::new("t", &["a", "b"]);
        t.push_row(vec!["only one".into()]);
    }

    #[test]
    fn json_rendering_escapes_and_structures() {
        let mut t = Table::new("t \"x\"", &["a"]);
        t.push_row(vec!["v1".into()]);
        t.push_row(vec!["line\nbreak".into()]);
        let json = t.to_json();
        assert!(json.contains("\"t \\\"x\\\"\""));
        assert!(json.contains("\"v1\""));
        assert!(json.contains("line\\nbreak"));
    }

    #[test]
    fn number_formatting() {
        assert_eq!(fmt_secs(0.001234), "0.0012");
        assert_eq!(fmt_secs(12.345), "12.35");
        assert_eq!(fmt_num(4.5678), "4.57");
    }
}
