//! Shared experiment scenario: dataset + auxiliary models + black boxes.

use exes_core::{Exes, ExesConfig, OutputMode};
use exes_datasets::{DatasetConfig, QueryWorkload, SyntheticDataset};
use exes_embedding::{EmbeddingConfig, SkillEmbedding};
use exes_expert_search::{ExpertRanker, GcnRanker};
use exes_graph::{PersonId, Query};
use exes_linkpred::{EmbeddingLinkPredictor, WalkConfig};
use exes_shap::{ShapConfig, ShapMethod};
use exes_team::GreedyCoverTeamFormer;
use std::time::Duration;

/// Which of the two paper datasets a scenario simulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// The DBLP-like academic network.
    Dblp,
    /// The GitHub-like collaboration network.
    Github,
}

impl DatasetKind {
    /// Display name used in table rows.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Dblp => "DBLP",
            DatasetKind::Github => "GitHub",
        }
    }

    /// Both datasets, in the order the paper reports them.
    pub fn both() -> [DatasetKind; 2] {
        [DatasetKind::Dblp, DatasetKind::Github]
    }
}

/// Size / effort knobs for a harness run.
///
/// The defaults ("quick" mode) are deliberately small so that the entire table
/// suite regenerates in minutes on a laptop; `--full` scales the graphs and
/// subject counts up. Relative results (ExES vs exhaustive) are what the paper's
/// claims are about and they are preserved across scales.
#[derive(Debug, Clone, Copy)]
pub struct HarnessConfig {
    /// Fraction of the paper-scale dataset to generate.
    pub dblp_scale: f64,
    /// Fraction of the paper-scale GitHub dataset to generate.
    pub github_scale: f64,
    /// Number of random queries in the workload.
    pub num_queries: usize,
    /// Number of explained individuals per (dataset, category) cell.
    pub num_subjects: usize,
    /// Per-explanation timeout for the exhaustive baselines, in seconds.
    pub baseline_timeout_secs: u64,
    /// Permutation budget for sampled SHAP on large feature spaces.
    pub shap_permutations: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig::quick()
    }
}

impl HarnessConfig {
    /// Small configuration: regenerates every table in minutes.
    pub fn quick() -> Self {
        HarnessConfig {
            dblp_scale: 0.012,
            github_scale: 0.055,
            num_queries: 12,
            num_subjects: 3,
            baseline_timeout_secs: 2,
            shap_permutations: 6,
            seed: 0xE5E5,
        }
    }

    /// Larger configuration (closer to the paper's setup; takes hours).
    pub fn full() -> Self {
        HarnessConfig {
            dblp_scale: 0.2,
            github_scale: 0.5,
            num_queries: 100,
            num_subjects: 100,
            baseline_timeout_secs: 1000,
            shap_permutations: 16,
            seed: 0xE5E5,
        }
    }

    /// Parses `--full`, `--scale <f>`, `--subjects <n>`, `--queries <n>` from
    /// command-line style arguments; unknown arguments are ignored.
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Self {
        let args: Vec<String> = args.into_iter().collect();
        let mut cfg = if args.iter().any(|a| a == "--full") {
            HarnessConfig::full()
        } else {
            HarnessConfig::quick()
        };
        let value_of = |flag: &str| -> Option<f64> {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1))
                .and_then(|v| v.parse().ok())
        };
        if let Some(s) = value_of("--scale") {
            cfg.dblp_scale = s;
            cfg.github_scale = (s * 4.0).min(1.0);
        }
        if let Some(n) = value_of("--subjects") {
            cfg.num_subjects = n as usize;
        }
        if let Some(n) = value_of("--queries") {
            cfg.num_queries = n as usize;
        }
        cfg
    }

    fn dataset_config(&self, kind: DatasetKind) -> DatasetConfig {
        match kind {
            DatasetKind::Dblp => DatasetConfig::dblp_sim().scaled(self.dblp_scale),
            DatasetKind::Github => DatasetConfig::github_sim().scaled(self.github_scale),
        }
        .with_seed(self.seed ^ kind.name().len() as u64)
    }

    /// The ExES configuration used for harness runs (paper defaults plus the
    /// harness's sampling and timeout budgets).
    pub fn exes_config(&self) -> ExesConfig {
        let mut cfg = ExesConfig::paper_defaults();
        cfg.timeout = Some(Duration::from_secs(self.baseline_timeout_secs));
        cfg.output_mode = OutputMode::Binary;
        cfg.shap = ShapConfig {
            method: ShapMethod::Auto,
            exact_threshold: 10,
            auto_permutations: self.shap_permutations,
            seed: self.seed,
        };
        cfg
    }
}

/// A sampled explanation subject: the query plus the person to explain.
pub type SubjectSample = (Query, PersonId);

/// A sampled team case: the query, the team seed, and the person to explain.
pub type TeamSample = (Query, PersonId, PersonId);

/// Everything one experiment needs: dataset, workload, embedding, link
/// predictor, ranker, team former, and a ready-to-use [`Exes`] explainer.
pub struct Scenario {
    /// Which dataset this scenario simulates.
    pub kind: DatasetKind,
    /// The generated dataset (graph + corpus).
    pub dataset: SyntheticDataset,
    /// The query workload.
    pub workload: QueryWorkload,
    /// The expert-search black box (the paper's GCN-style ranker).
    pub ranker: GcnRanker,
    /// The team-formation black box.
    pub former: GreedyCoverTeamFormer<GcnRanker>,
    /// The ExES explainer (embedding + link predictor + config).
    pub exes: Exes<EmbeddingLinkPredictor>,
    /// Harness configuration this scenario was built from.
    pub harness: HarnessConfig,
}

impl Scenario {
    /// Builds the complete scenario for one dataset kind.
    pub fn build(kind: DatasetKind, harness: &HarnessConfig) -> Scenario {
        let dataset = SyntheticDataset::generate(&harness.dataset_config(kind));
        let graph = &dataset.graph;
        let workload =
            QueryWorkload::answerable(graph, harness.num_queries, 3, 5, 3, harness.seed ^ 0x51);
        let embedding = SkillEmbedding::train(
            dataset.corpus.token_bags(),
            graph.vocab().len(),
            &EmbeddingConfig {
                dim: 32,
                ..Default::default()
            },
        );
        let link_predictor = EmbeddingLinkPredictor::train(graph, &WalkConfig::default());
        let ranker = GcnRanker::with_seed(harness.seed);
        let former = GreedyCoverTeamFormer::new(GcnRanker::with_seed(harness.seed));
        let exes = Exes::new(harness.exes_config(), embedding, link_predictor);
        Scenario {
            kind,
            dataset,
            workload,
            ranker,
            former,
            exes,
            harness: *harness,
        }
    }

    /// Samples, for each query, one person ranked inside the top-`k` (an
    /// "expert") and one ranked between `k+1` and `2k` (a "non-expert"), exactly
    /// as the paper's evaluation does, until `limit` of each are collected.
    pub fn sample_experts_and_non_experts(
        &self,
        limit: usize,
    ) -> (Vec<SubjectSample>, Vec<SubjectSample>) {
        let k = self.exes.config().k;
        let mut experts = Vec::new();
        let mut non_experts = Vec::new();
        for query in self.workload.queries() {
            if experts.len() >= limit && non_experts.len() >= limit {
                break;
            }
            let ranking = self.ranker.rank_all(&self.dataset.graph, query);
            if ranking.len() < 2 * k {
                continue;
            }
            if experts.len() < limit {
                // Sample experts from the lower half of the top-k (ranks k/2..k),
                // mirroring the paper's "100 experts within the top-k": eviction
                // counterfactuals for the rank-1 expert of a small graph are
                // frequently impossible, which is not the regime being studied.
                let offset = experts.len() % (k / 2).max(1);
                experts.push((query.clone(), ranking.entries()[k - 1 - offset].0));
            }
            if non_experts.len() < limit {
                // Non-experts between rank k+1 and 2k.
                let offset = non_experts.len() % k;
                non_experts.push((query.clone(), ranking.entries()[k + offset].0));
            }
        }
        (experts, non_experts)
    }

    /// Samples, for each query, a team seed, one team member (other than the
    /// seed when possible) and one non-member from the seed's neighbourhood —
    /// mirroring Section 4.3.
    pub fn sample_team_members_and_non_members(
        &self,
        limit: usize,
    ) -> (Vec<TeamSample>, Vec<TeamSample>) {
        use exes_graph::GraphView;
        use exes_team::TeamFormer;
        let k = self.exes.config().k;
        let mut members = Vec::new();
        let mut non_members = Vec::new();
        for query in self.workload.queries() {
            if members.len() >= limit && non_members.len() >= limit {
                break;
            }
            let ranking = self.ranker.rank_all(&self.dataset.graph, query);
            let Some(&(seed, _)) = ranking.entries().iter().take(k).next_back() else {
                continue;
            };
            let team = self
                .former
                .form_team(&self.dataset.graph, query, Some(seed));
            if members.len() < limit {
                if let Some(&m) = team.members().iter().find(|&&m| m != seed) {
                    members.push((query.clone(), seed, m));
                } else if let Some(&m) = team.members().first() {
                    members.push((query.clone(), seed, m));
                }
            }
            if non_members.len() < limit {
                let candidate = self
                    .dataset
                    .graph
                    .neighbors(seed)
                    .iter()
                    .copied()
                    .find(|&p| !team.contains(p));
                if let Some(p) = candidate {
                    non_members.push((query.clone(), seed, p));
                }
            }
        }
        (members, non_members)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_harness() -> HarnessConfig {
        HarnessConfig {
            dblp_scale: 0.005,
            github_scale: 0.03,
            num_queries: 4,
            num_subjects: 2,
            baseline_timeout_secs: 1,
            shap_permutations: 2,
            seed: 3,
        }
    }

    #[test]
    fn quick_and_full_configs_differ() {
        assert!(HarnessConfig::full().num_subjects > HarnessConfig::quick().num_subjects);
        assert!(HarnessConfig::full().dblp_scale > HarnessConfig::quick().dblp_scale);
    }

    #[test]
    fn from_args_parses_flags() {
        let cfg = HarnessConfig::from_args(
            ["--scale", "0.02", "--subjects", "7", "--queries", "9"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert!((cfg.dblp_scale - 0.02).abs() < 1e-12);
        assert_eq!(cfg.num_subjects, 7);
        assert_eq!(cfg.num_queries, 9);
        let full = HarnessConfig::from_args(["--full".to_string()]);
        assert_eq!(full.num_subjects, HarnessConfig::full().num_subjects);
    }

    #[test]
    fn scenario_builds_and_samples_subjects() {
        let scenario = Scenario::build(DatasetKind::Github, &tiny_harness());
        assert!(scenario.dataset.graph.stats().num_people >= 60);
        let (experts, non_experts) = scenario.sample_experts_and_non_experts(2);
        assert!(!experts.is_empty());
        assert!(!non_experts.is_empty());
        let k = scenario.exes.config().k;
        for (q, p) in &experts {
            assert!(scenario
                .ranker
                .is_relevant(&scenario.dataset.graph, q, *p, k));
        }
        for (q, p) in &non_experts {
            assert!(!scenario
                .ranker
                .is_relevant(&scenario.dataset.graph, q, *p, k));
        }
    }

    #[test]
    fn team_sampling_returns_members_and_non_members() {
        use exes_team::TeamFormer;
        let scenario = Scenario::build(DatasetKind::Github, &tiny_harness());
        let (members, non_members) = scenario.sample_team_members_and_non_members(2);
        for (q, seed, m) in &members {
            assert!(scenario
                .former
                .is_member(&scenario.dataset.graph, q, Some(*seed), *m));
        }
        for (q, seed, p) in &non_members {
            assert!(!scenario
                .former
                .is_member(&scenario.dataset.graph, q, Some(*seed), *p));
        }
    }
}
