//! Wall-clock measurement helpers.

use std::time::{Duration, Instant};

/// Parses the `--threads` option shared by the `bench_*` binaries:
/// `--threads 4` measures with 4 worker threads, `--threads 1,4,8` emits one
/// row set per count. Returns `None` when the flag is absent (the binaries
/// then use the hardware default, like before).
///
/// # Panics
///
/// Panics when `--threads` is present without a parseable positive count —
/// a mistyped benchmark invocation should fail loudly, not silently measure
/// the wrong configuration.
pub fn thread_counts(args: impl Iterator<Item = String>) -> Option<Vec<usize>> {
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        if arg != "--threads" {
            continue;
        }
        let spec = args.next().expect("--threads requires a count, e.g. 1,4,8");
        let counts: Vec<usize> = spec
            .split(',')
            .map(|part| {
                part.trim()
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| panic!("bad --threads value {part:?} (want 1,4,8 style)"))
            })
            .collect();
        assert!(!counts.is_empty(), "--threads requires at least one count");
        return Some(counts);
    }
    None
}

/// Pins the worker-thread count for everything downstream of
/// [`exes_parallel::thread_count`] by setting `EXES_THREADS` — the benches'
/// per-thread-count rows all route through this one switch.
pub fn set_thread_count(threads: usize) {
    std::env::set_var("EXES_THREADS", threads.to_string());
}

/// Runs `f`, returning its result and the elapsed wall-clock time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed())
}

/// Online mean accumulator for latencies and sizes.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mean {
    sum: f64,
    count: usize,
}

impl Mean {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observation.
    pub fn add(&mut self, value: f64) {
        self.sum += value;
        self.count += 1;
    }

    /// Adds a duration observation, in seconds.
    pub fn add_duration(&mut self, d: Duration) {
        self.add(d.as_secs_f64());
    }

    /// Current mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_measures_something_positive() {
        let (value, elapsed) = timed(|| (0..10_000).sum::<u64>());
        assert_eq!(value, 49_995_000);
        assert!(elapsed.as_nanos() > 0);
    }

    #[test]
    fn thread_counts_parse_lists_and_default_to_none() {
        let argv = |s: &[&str]| {
            s.iter()
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
                .into_iter()
        };
        assert_eq!(thread_counts(argv(&["bench"])), None);
        assert_eq!(
            thread_counts(argv(&["bench", "--threads", "4"])),
            Some(vec![4])
        );
        assert_eq!(
            thread_counts(argv(&["bench", "--smoke", "--threads", "1,4,8"])),
            Some(vec![1, 4, 8])
        );
    }

    #[test]
    #[should_panic(expected = "bad --threads value")]
    fn malformed_thread_counts_fail_loudly() {
        let args = ["bench", "--threads", "zero"].iter().map(|a| a.to_string());
        let _ = thread_counts(args);
    }

    #[test]
    fn mean_accumulates() {
        let mut m = Mean::new();
        assert_eq!(m.mean(), 0.0);
        m.add(2.0);
        m.add(4.0);
        m.add_duration(Duration::from_secs(3));
        assert_eq!(m.count(), 3);
        assert!((m.mean() - 3.0).abs() < 1e-12);
        assert!((m.sum() - 9.0).abs() < 1e-12);
    }
}
