//! Wall-clock measurement helpers.

use std::time::{Duration, Instant};

/// Runs `f`, returning its result and the elapsed wall-clock time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed())
}

/// Online mean accumulator for latencies and sizes.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mean {
    sum: f64,
    count: usize,
}

impl Mean {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observation.
    pub fn add(&mut self, value: f64) {
        self.sum += value;
        self.count += 1;
    }

    /// Adds a duration observation, in seconds.
    pub fn add_duration(&mut self, d: Duration) {
        self.add(d.as_secs_f64());
    }

    /// Current mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_measures_something_positive() {
        let (value, elapsed) = timed(|| (0..10_000).sum::<u64>());
        assert_eq!(value, 49_995_000);
        assert!(elapsed.as_nanos() > 0);
    }

    #[test]
    fn mean_accumulates() {
        let mut m = Mean::new();
        assert_eq!(m.mean(), 0.0);
        m.add(2.0);
        m.add(4.0);
        m.add_duration(Duration::from_secs(3));
        assert_eq!(m.count(), 3);
        assert!((m.mean() - 3.0).abs() < 1e-12);
        assert!((m.sum() - 9.0).abs() < 1e-12);
    }
}
