//! Incremental construction of [`CollabGraph`]s.

use crate::{CollabGraph, GraphError, PersonId, Result, SkillId, SkillVocab};
use rustc_hash::FxHashSet;

/// Builder for [`CollabGraph`].
///
/// People are added with their skill names (interned into the shared vocabulary),
/// then edges between previously added people. Duplicate edges and self-loops are
/// ignored during building so that noisy generators and loaders do not need to
/// de-duplicate up front. `build` packs everything into the graph's CSR arrays.
#[derive(Debug, Default)]
pub struct CollabGraphBuilder {
    names: Vec<String>,
    skill_rows: Vec<Vec<SkillId>>,
    adj_rows: Vec<Vec<PersonId>>,
    edges: Vec<(PersonId, PersonId)>,
    edge_set: FxHashSet<(u32, u32)>,
    vocab: SkillVocab,
}

impl CollabGraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder that will intern skills into an existing vocabulary.
    pub fn with_vocab(vocab: SkillVocab) -> Self {
        Self {
            vocab,
            ..Self::default()
        }
    }

    /// Adds a person with the given display name and skill names, returning its id.
    ///
    /// Empty skill tokens are ignored; duplicates are collapsed.
    pub fn add_person<I, S>(&mut self, name: &str, skills: I) -> PersonId
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut ids: Vec<SkillId> = skills
            .into_iter()
            .filter(|s| !s.as_ref().trim().is_empty())
            .map(|s| self.vocab.intern(s.as_ref()))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        let id = PersonId::from_index(self.names.len());
        self.names.push(name.to_string());
        self.skill_rows.push(ids);
        self.adj_rows.push(Vec::new());
        id
    }

    /// Adds a person that already carries interned skill ids.
    ///
    /// # Panics
    /// Panics if any skill id is outside the builder's vocabulary.
    pub fn add_person_with_skill_ids(&mut self, name: &str, skills: Vec<SkillId>) -> PersonId {
        for s in &skills {
            assert!(
                s.index() < self.vocab.len(),
                "skill id {s} outside vocabulary (len {})",
                self.vocab.len()
            );
        }
        let mut ids = skills;
        ids.sort_unstable();
        ids.dedup();
        let id = PersonId::from_index(self.names.len());
        self.names.push(name.to_string());
        self.skill_rows.push(ids);
        self.adj_rows.push(Vec::new());
        id
    }

    /// Non-panicking variant of [`CollabGraphBuilder::add_person_with_skill_ids`]:
    /// rejects out-of-vocabulary skill ids with [`GraphError::UnknownSkill`]
    /// instead of aborting, leaving the builder untouched on failure.
    ///
    /// Untrusted ingest paths (the [`crate::store::GraphStore`] commit and
    /// rebuild pipeline) route through this so a malformed update stream
    /// surfaces an error; the panicking API remains for tests and trusted
    /// loaders where a bad id is a programming error.
    pub fn try_person(&mut self, name: &str, skills: Vec<SkillId>) -> Result<PersonId> {
        if let Some(&bad) = skills.iter().find(|s| s.index() >= self.vocab.len()) {
            return Err(GraphError::UnknownSkill(bad));
        }
        Ok(self.add_person_with_skill_ids(name, skills))
    }

    /// Non-panicking variant of [`CollabGraphBuilder::add_edge`]: unknown
    /// endpoints and self-loops become [`GraphError`]s instead of a panic or a
    /// silent drop (untrusted update streams must hear about both). Duplicate
    /// edges remain a tolerated no-op, returning `Ok(false)` like
    /// [`CollabGraphBuilder::add_edge`] returns `false`.
    pub fn try_edge(&mut self, a: PersonId, b: PersonId) -> Result<bool> {
        if a.index() >= self.names.len() {
            return Err(GraphError::UnknownPerson(a));
        }
        if b.index() >= self.names.len() {
            return Err(GraphError::UnknownPerson(b));
        }
        if a == b {
            return Err(GraphError::SelfLoop(a));
        }
        Ok(self.add_edge(a, b))
    }

    /// Interns a skill name without attaching it to anyone, returning its id.
    pub fn intern_skill(&mut self, name: &str) -> SkillId {
        self.vocab.intern(name)
    }

    /// Adds an undirected collaboration edge. Self-loops and duplicates are
    /// silently ignored; unknown endpoints panic (programming error).
    pub fn add_edge(&mut self, a: PersonId, b: PersonId) -> bool {
        assert!(
            a.index() < self.names.len() && b.index() < self.names.len(),
            "edge endpoints must be added before the edge"
        );
        if a == b {
            return false;
        }
        let key = CollabGraph::edge_key(a, b);
        if !self.edge_set.insert(key) {
            return false;
        }
        self.edges.push((PersonId(key.0), PersonId(key.1)));
        self.adj_rows[a.index()].push(b);
        self.adj_rows[b.index()].push(a);
        true
    }

    /// Number of people added so far.
    pub fn num_people(&self) -> usize {
        self.names.len()
    }

    /// Number of (deduplicated) edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Read access to the vocabulary being built.
    pub fn vocab(&self) -> &SkillVocab {
        &self.vocab
    }

    /// Finalises the graph: sorts adjacency rows and packs all per-person data
    /// into the CSR arrays (including the inverted skill-holder index).
    pub fn build(mut self) -> CollabGraph {
        for adj in &mut self.adj_rows {
            adj.sort_unstable();
            adj.dedup();
        }
        CollabGraph::from_rows(
            self.names,
            self.skill_rows,
            self.adj_rows,
            self.edges,
            self.edge_set,
            self.vocab,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphView;

    #[test]
    fn duplicate_edges_and_self_loops_are_ignored() {
        let mut b = CollabGraphBuilder::new();
        let x = b.add_person("x", ["a"]);
        let y = b.add_person("y", ["b"]);
        assert!(b.add_edge(x, y));
        assert!(!b.add_edge(y, x));
        assert!(!b.add_edge(x, x));
        assert_eq!(b.num_edges(), 1);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(x), 1);
    }

    #[test]
    fn duplicate_skills_are_collapsed_and_empty_ignored() {
        let mut b = CollabGraphBuilder::new();
        let p = b.add_person("p", ["ml", "ML", "  ", "db"]);
        let g = b.build();
        assert_eq!(g.person_skills(p).len(), 2);
        assert_eq!(g.vocab().len(), 2);
    }

    #[test]
    fn add_person_with_skill_ids_sorts_and_dedups() {
        let mut b = CollabGraphBuilder::new();
        let s1 = b.intern_skill("a");
        let s2 = b.intern_skill("b");
        let p = b.add_person_with_skill_ids("p", vec![s2, s1, s2]);
        let g = b.build();
        assert_eq!(g.person_skills(p), &[s1, s2]);
    }

    #[test]
    #[should_panic(expected = "outside vocabulary")]
    fn add_person_with_unknown_skill_id_panics() {
        let mut b = CollabGraphBuilder::new();
        b.add_person_with_skill_ids("p", vec![SkillId(3)]);
    }

    #[test]
    #[should_panic(expected = "endpoints must be added")]
    fn edge_to_unknown_person_panics() {
        let mut b = CollabGraphBuilder::new();
        let x = b.add_person("x", ["a"]);
        b.add_edge(x, PersonId(5));
    }

    #[test]
    fn try_person_surfaces_bad_skill_ids_without_mutating() {
        let mut b = CollabGraphBuilder::new();
        let s = b.intern_skill("a");
        assert_eq!(
            b.try_person("p", vec![s, SkillId(7)]).unwrap_err(),
            GraphError::UnknownSkill(SkillId(7))
        );
        assert_eq!(b.num_people(), 0);
        let p = b.try_person("p", vec![s]).unwrap();
        assert_eq!(p, PersonId(0));
        assert_eq!(b.num_people(), 1);
    }

    #[test]
    fn try_edge_surfaces_bad_endpoints_and_self_loops() {
        let mut b = CollabGraphBuilder::new();
        let x = b.add_person("x", ["a"]);
        let y = b.add_person("y", ["b"]);
        assert_eq!(
            b.try_edge(x, PersonId(9)).unwrap_err(),
            GraphError::UnknownPerson(PersonId(9))
        );
        assert_eq!(
            b.try_edge(PersonId(9), x).unwrap_err(),
            GraphError::UnknownPerson(PersonId(9))
        );
        assert_eq!(b.try_edge(x, x).unwrap_err(), GraphError::SelfLoop(x));
        assert_eq!(b.try_edge(x, y), Ok(true));
        // Duplicates stay a tolerated no-op, mirroring `add_edge`.
        assert_eq!(b.try_edge(y, x), Ok(false));
        assert_eq!(b.num_edges(), 1);
    }

    #[test]
    fn with_vocab_preserves_existing_ids() {
        let mut v = SkillVocab::new();
        let pre = v.intern("preexisting");
        let mut b = CollabGraphBuilder::with_vocab(v);
        let p = b.add_person("p", ["preexisting", "new"]);
        let g = b.build();
        assert!(g.person_has_skill(p, pre));
        assert_eq!(g.vocab().id("preexisting"), Some(pre));
        assert_eq!(g.vocab().len(), 2);
    }

    #[test]
    fn adjacency_is_sorted_after_build() {
        let mut b = CollabGraphBuilder::new();
        let p: Vec<_> = (0..5)
            .map(|i| b.add_person(&format!("p{i}"), ["s"]))
            .collect();
        b.add_edge(p[0], p[4]);
        b.add_edge(p[0], p[2]);
        b.add_edge(p[0], p[1]);
        let g = b.build();
        assert_eq!(g.neighbors(p[0]), &[p[1], p[2], p[4]]);
    }
}
