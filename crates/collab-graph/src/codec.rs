//! Plain-text serialisation of [`CollabGraph`]s.
//!
//! The format is deliberately simple and line-oriented — graphs ship between
//! services and bench runs without pulling a serialisation framework into the
//! offline build:
//!
//! ```text
//! exes-graph v1
//! vocab <num_skills>
//! <one skill name per line>
//! people <num_people>
//! <display name>\t<comma-separated skill ids>
//! edges <num_edges>
//! <a> <b>
//! ```
//!
//! Person display names may contain spaces; tabs and line breaks are encoded
//! as spaces (display names are not identifiers, so the lossiness is benign).
//!
//! [`UpdateBatch`]es have their own format, `exes-batch v1`, used by the
//! durability layer's write-ahead log:
//!
//! ```text
//! exes-batch v1
//! ops <num_ops>
//! person\t<name>[\t<skill>...]
//! skill+\t<person id>\t<skill>
//! skill-\t<person id>\t<skill>
//! edge+\t<a>\t<b>
//! edge-\t<a>\t<b>
//! ```
//!
//! Unlike the graph format, the batch codec is **lossless**: epoch
//! fingerprints are chained by hashing the raw ops, so a replayed batch must
//! reproduce every byte of every name. Backslashes, tabs and line breaks
//! inside names are escaped (`\\`, `\t`, `\n`, `\r`).

use crate::store::{UpdateBatch, UpdateOp};
use crate::{CollabGraph, GraphError, PersonId, Result, SkillId, SkillVocab};
use rustc_hash::FxHashSet;

const MAGIC: &str = "exes-graph v1";
const BATCH_MAGIC: &str = "exes-batch v1";

fn codec_err(msg: impl Into<String>) -> GraphError {
    GraphError::Codec(msg.into())
}

impl CollabGraph {
    /// Encodes the graph in the `exes-graph v1` text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(MAGIC);
        out.push('\n');
        out.push_str(&format!("vocab {}\n", self.vocab.len()));
        for (_, name) in self.vocab.iter() {
            out.push_str(name);
            out.push('\n');
        }
        out.push_str(&format!("people {}\n", self.names.len()));
        for p in self.people() {
            let ids: Vec<String> = self
                .base_skills(p)
                .iter()
                .map(|s| s.0.to_string())
                .collect();
            // Tabs and line breaks would corrupt the line structure; encode
            // them as spaces (names are display-only, so this is acceptable
            // lossiness rather than a decode failure later).
            let name: String = self
                .person_name(p)
                .chars()
                .map(|c| {
                    if matches!(c, '\t' | '\n' | '\r') {
                        ' '
                    } else {
                        c
                    }
                })
                .collect();
            out.push_str(&format!("{}\t{}\n", name, ids.join(",")));
        }
        out.push_str(&format!("edges {}\n", self.edges.len()));
        for &(a, b) in &self.edges {
            out.push_str(&format!("{} {}\n", a.0, b.0));
        }
        out
    }

    /// Decodes a graph from the `exes-graph v1` text format, rebuilding every
    /// derived index (CSR arrays, holder index, edge set, vocabulary index).
    pub fn from_text(text: &str) -> Result<CollabGraph> {
        let mut lines = text.lines();
        if lines.next() != Some(MAGIC) {
            return Err(codec_err("missing 'exes-graph v1' header"));
        }
        let expect_section = |line: Option<&str>, keyword: &str| -> Result<usize> {
            let line = line.ok_or_else(|| codec_err(format!("missing '{keyword}' section")))?;
            let rest = line
                .strip_prefix(keyword)
                .ok_or_else(|| codec_err(format!("expected '{keyword} <count>', got {line:?}")))?;
            rest.trim()
                .parse::<usize>()
                .map_err(|_| codec_err(format!("bad count in '{keyword}' section: {line:?}")))
        };

        let num_skills = expect_section(lines.next(), "vocab")?;
        let mut vocab = SkillVocab::new();
        for i in 0..num_skills {
            let name = lines
                .next()
                .ok_or_else(|| codec_err(format!("vocab truncated at entry {i}")))?;
            vocab.intern(name);
        }
        if vocab.len() != num_skills {
            return Err(codec_err("duplicate skill names in vocab section"));
        }

        let num_people = expect_section(lines.next(), "people")?;
        let mut names = Vec::with_capacity(num_people);
        let mut skill_rows = Vec::with_capacity(num_people);
        for i in 0..num_people {
            let line = lines
                .next()
                .ok_or_else(|| codec_err(format!("people truncated at entry {i}")))?;
            let (name, ids) = line
                .split_once('\t')
                .ok_or_else(|| codec_err(format!("person line {i} missing tab separator")))?;
            let mut row: Vec<SkillId> = Vec::new();
            for tok in ids.split(',').filter(|t| !t.is_empty()) {
                let id: u32 = tok
                    .parse()
                    .map_err(|_| codec_err(format!("bad skill id {tok:?} for person {i}")))?;
                if id as usize >= num_skills {
                    return Err(GraphError::UnknownSkill(SkillId(id)));
                }
                row.push(SkillId(id));
            }
            row.sort_unstable();
            row.dedup();
            names.push(name.to_string());
            skill_rows.push(row);
        }

        let num_edges = expect_section(lines.next(), "edges")?;
        let mut edges = Vec::with_capacity(num_edges);
        let mut edge_set = FxHashSet::default();
        let mut adj_rows: Vec<Vec<PersonId>> = vec![Vec::new(); num_people];
        for i in 0..num_edges {
            let line = lines
                .next()
                .ok_or_else(|| codec_err(format!("edges truncated at entry {i}")))?;
            let mut parts = line.split_whitespace();
            let parse_endpoint = |tok: Option<&str>| -> Result<PersonId> {
                let tok = tok.ok_or_else(|| codec_err(format!("edge line {i} too short")))?;
                let id: u32 = tok
                    .parse()
                    .map_err(|_| codec_err(format!("bad person id {tok:?} on edge line {i}")))?;
                if id as usize >= num_people {
                    return Err(GraphError::UnknownPerson(PersonId(id)));
                }
                Ok(PersonId(id))
            };
            let a = parse_endpoint(parts.next())?;
            let b = parse_endpoint(parts.next())?;
            if a == b {
                return Err(GraphError::SelfLoop(a));
            }
            let key = CollabGraph::edge_key(a, b);
            if !edge_set.insert(key) {
                return Err(GraphError::DuplicateEdge(a, b));
            }
            edges.push((PersonId(key.0), PersonId(key.1)));
            adj_rows[a.index()].push(b);
            adj_rows[b.index()].push(a);
        }
        for row in &mut adj_rows {
            row.sort_unstable();
        }

        Ok(CollabGraph::from_rows(
            names, skill_rows, adj_rows, edges, edge_set, vocab,
        ))
    }
}

/// Escapes a name for one tab-separated field: `\` `\t` `\n` `\r` become
/// two-character escape sequences, everything else passes through.
fn escape_field(raw: &str, out: &mut String) {
    for c in raw.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
}

/// Reverses [`escape_field`]. Rejects dangling or unknown escapes — a batch
/// that does not decode to the exact bytes that were encoded must fail loudly,
/// because the chained epoch fingerprint hashes those bytes.
fn unescape_field(field: &str) -> Result<String> {
    let mut out = String::with_capacity(field.len());
    let mut chars = field.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            other => {
                return Err(codec_err(format!(
                    "bad escape sequence {:?} in batch field",
                    other.map_or_else(|| "\\<eol>".to_string(), |c| format!("\\{c}"))
                )))
            }
        }
    }
    Ok(out)
}

fn parse_person_id(tok: &str) -> Result<PersonId> {
    tok.parse::<u32>()
        .map(PersonId)
        .map_err(|_| codec_err(format!("bad person id {tok:?} in batch op")))
}

impl UpdateBatch {
    /// Encodes the batch in the `exes-batch v1` text format.
    ///
    /// The encoding is lossless: [`UpdateBatch::from_text`] reconstructs the
    /// exact ops, byte for byte, so a replayed batch chains to the same epoch
    /// fingerprint as the original commit.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(BATCH_MAGIC);
        out.push('\n');
        out.push_str(&format!("ops {}\n", self.ops().len()));
        for op in self.ops() {
            match op {
                UpdateOp::AddPerson { name, skills } => {
                    out.push_str("person\t");
                    escape_field(name, &mut out);
                    for skill in skills {
                        out.push('\t');
                        escape_field(skill, &mut out);
                    }
                }
                UpdateOp::AddSkill { person, skill } => {
                    out.push_str(&format!("skill+\t{}\t", person.0));
                    escape_field(skill, &mut out);
                }
                UpdateOp::RemoveSkill { person, skill } => {
                    out.push_str(&format!("skill-\t{}\t", person.0));
                    escape_field(skill, &mut out);
                }
                UpdateOp::AddCollaboration { a, b } => {
                    out.push_str(&format!("edge+\t{}\t{}", a.0, b.0));
                }
                UpdateOp::RemoveCollaboration { a, b } => {
                    out.push_str(&format!("edge-\t{}\t{}", a.0, b.0));
                }
            }
            out.push('\n');
        }
        out
    }

    /// Decodes a batch from the `exes-batch v1` text format.
    pub fn from_text(text: &str) -> Result<UpdateBatch> {
        let mut lines = text.lines();
        if lines.next() != Some(BATCH_MAGIC) {
            return Err(codec_err("missing 'exes-batch v1' header"));
        }
        let count_line = lines
            .next()
            .ok_or_else(|| codec_err("missing 'ops' section"))?;
        let num_ops = count_line
            .strip_prefix("ops")
            .and_then(|rest| rest.trim().parse::<usize>().ok())
            .ok_or_else(|| codec_err(format!("expected 'ops <count>', got {count_line:?}")))?;
        let mut batch = UpdateBatch::new();
        for i in 0..num_ops {
            let line = lines
                .next()
                .ok_or_else(|| codec_err(format!("batch truncated at op {i}")))?;
            let mut fields = line.split('\t');
            let kind = fields.next().unwrap_or_default();
            let mut field = |what: &str| -> Result<&str> {
                fields
                    .next()
                    .ok_or_else(|| codec_err(format!("op {i} ({kind}) missing {what}")))
            };
            let op = match kind {
                "person" => {
                    let name = unescape_field(field("name")?)?;
                    let skills: Vec<String> =
                        fields.by_ref().map(unescape_field).collect::<Result<_>>()?;
                    UpdateOp::AddPerson { name, skills }
                }
                "skill+" | "skill-" => {
                    let person = parse_person_id(field("person id")?)?;
                    let skill = unescape_field(field("skill name")?)?;
                    if kind == "skill+" {
                        UpdateOp::AddSkill { person, skill }
                    } else {
                        UpdateOp::RemoveSkill { person, skill }
                    }
                }
                "edge+" | "edge-" => {
                    let a = parse_person_id(field("endpoint a")?)?;
                    let b = parse_person_id(field("endpoint b")?)?;
                    if kind == "edge+" {
                        UpdateOp::AddCollaboration { a, b }
                    } else {
                        UpdateOp::RemoveCollaboration { a, b }
                    }
                }
                other => return Err(codec_err(format!("unknown batch op kind {other:?}"))),
            };
            if !matches!(op, UpdateOp::AddPerson { .. }) && fields.next().is_some() {
                return Err(codec_err(format!("op {i} ({kind}) has trailing fields")));
            }
            batch.push(op);
        }
        if lines.next().is_some() {
            return Err(codec_err("trailing data after last batch op"));
        }
        Ok(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CollabGraphBuilder, GraphView};

    fn toy() -> CollabGraph {
        let mut b = CollabGraphBuilder::new();
        let a = b.add_person("Ada Lovelace", ["db", "ml"]);
        let c = b.add_person("Bob", ["ml"]);
        let d = b.add_person("Cleo", Vec::<String>::new());
        b.add_edge(a, c);
        b.add_edge(c, d);
        b.build()
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let g = toy();
        let back = CollabGraph::from_text(&g.to_text()).unwrap();
        assert_eq!(back.stats(), g.stats());
        assert_eq!(back.person_name(PersonId(0)), "Ada Lovelace");
        assert!(back.person_skills(PersonId(2)).is_empty());
        assert_eq!(back.holders_of(g.vocab().id("ml").unwrap()).len(), 2);
        assert!(back.has_edge(PersonId(1), PersonId(2)));
    }

    #[test]
    fn header_is_required() {
        assert!(matches!(
            CollabGraph::from_text("nope"),
            Err(GraphError::Codec(_))
        ));
    }

    #[test]
    fn truncated_sections_are_rejected() {
        let g = toy();
        let text = g.to_text();
        let truncated: String = text.lines().take(4).collect::<Vec<_>>().join("\n");
        assert!(CollabGraph::from_text(&truncated).is_err());
    }

    #[test]
    fn bad_ids_are_rejected() {
        let text = "exes-graph v1\nvocab 1\ns\npeople 1\np\t7\nedges 0\n";
        assert!(matches!(
            CollabGraph::from_text(text),
            Err(GraphError::UnknownSkill(_))
        ));
        let text = "exes-graph v1\nvocab 0\npeople 2\na\t\nb\t\nedges 1\n0 5\n";
        assert!(matches!(
            CollabGraph::from_text(text),
            Err(GraphError::UnknownPerson(_))
        ));
        let text = "exes-graph v1\nvocab 0\npeople 2\na\t\nb\t\nedges 1\n1 1\n";
        assert!(matches!(
            CollabGraph::from_text(text),
            Err(GraphError::SelfLoop(_))
        ));
    }

    #[test]
    fn hostile_names_still_roundtrip() {
        let mut b = CollabGraphBuilder::new();
        b.add_person("Ada\tTab", ["db"]);
        b.add_person("New\nLine", ["db"]);
        let g = b.build();
        let back = CollabGraph::from_text(&g.to_text()).unwrap();
        assert_eq!(back.num_people(), 2);
        assert_eq!(back.person_name(PersonId(0)), "Ada Tab");
        assert_eq!(back.person_name(PersonId(1)), "New Line");
        assert_eq!(back.base_skills(PersonId(1)).len(), 1);
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = CollabGraphBuilder::new().build();
        let back = CollabGraph::from_text(&g.to_text()).unwrap();
        assert_eq!(back.num_people(), 0);
        assert_eq!(back.num_edges(), 0);
    }

    #[test]
    fn batch_roundtrips_every_op_kind() {
        let mut batch = UpdateBatch::new();
        batch.add_person("Ada", ["db", "ml"]);
        batch.add_person("Plain", Vec::<String>::new());
        batch.add_skill(PersonId(0), "xai");
        batch.remove_skill(PersonId(1), "db");
        batch.add_collaboration(PersonId(0), PersonId(2));
        batch.remove_collaboration(PersonId(2), PersonId(0));
        let back = UpdateBatch::from_text(&batch.to_text()).unwrap();
        assert_eq!(back, batch);
    }

    #[test]
    fn batch_roundtrip_is_lossless_for_hostile_names() {
        // The epoch fingerprint hashes raw op bytes, so unlike graph person
        // names these must survive tabs/newlines/backslashes exactly.
        let mut batch = UpdateBatch::new();
        batch.add_person("Ada\tTab\\Back", ["db"]);
        batch.add_person("New\nLine\rCr", Vec::<String>::new());
        batch.add_person("", ["trailing\\"]);
        batch.add_skill(PersonId(0), "weird\tskill");
        let back = UpdateBatch::from_text(&batch.to_text()).unwrap();
        assert_eq!(back, batch);
    }

    #[test]
    fn empty_batch_roundtrips() {
        let batch = UpdateBatch::new();
        let back = UpdateBatch::from_text(&batch.to_text()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn malformed_batches_are_rejected() {
        for text in [
            "nope",
            "exes-batch v1\nops x\n",
            "exes-batch v1\nops 1\n",
            "exes-batch v1\nops 1\nwhat\ta\n",
            "exes-batch v1\nops 1\nskill+\t0\n",
            "exes-batch v1\nops 1\nskill+\tzero\tdb\n",
            "exes-batch v1\nops 1\nedge+\t0\t1\textra\n",
            "exes-batch v1\nops 1\nperson\tbad\\escape\n",
            "exes-batch v1\nops 1\nperson\tdangling\\\n",
            "exes-batch v1\nops 0\ntrailing\n",
        ] {
            assert!(
                matches!(UpdateBatch::from_text(text), Err(GraphError::Codec(_))),
                "accepted malformed batch: {text:?}"
            );
        }
    }
}
