//! Error type for graph construction and lookup failures.

use crate::{PersonId, SkillId};
use std::fmt;

/// Errors produced by the collaboration-network substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A person id was out of range for the graph it was used with.
    UnknownPerson(PersonId),
    /// A skill id was out of range for the vocabulary it was used with.
    UnknownSkill(SkillId),
    /// A skill name was not present in the vocabulary.
    UnknownSkillName(String),
    /// A self-loop edge was requested; collaborations are between distinct people.
    SelfLoop(PersonId),
    /// An edge that was expected to exist does not.
    MissingEdge(PersonId, PersonId),
    /// An edge that was expected to be absent already exists.
    DuplicateEdge(PersonId, PersonId),
    /// A query was constructed without any recognised skill keywords.
    EmptyQuery,
    /// A skill removal targeted a person who does not hold that skill.
    SkillNotHeld(PersonId, SkillId),
    /// A skill name was empty after normalisation or contains characters the
    /// line-oriented codec cannot represent (line breaks).
    InvalidSkillName(String),
    /// A serialised graph could not be decoded.
    Codec(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownPerson(p) => write!(f, "unknown person id {p}"),
            GraphError::UnknownSkill(s) => write!(f, "unknown skill id {s}"),
            GraphError::UnknownSkillName(name) => write!(f, "unknown skill name {name:?}"),
            GraphError::SelfLoop(p) => write!(f, "self-loop edge on {p} is not allowed"),
            GraphError::MissingEdge(a, b) => write!(f, "edge ({a}, {b}) does not exist"),
            GraphError::DuplicateEdge(a, b) => write!(f, "edge ({a}, {b}) already exists"),
            GraphError::EmptyQuery => write!(f, "query contains no recognised skill keywords"),
            GraphError::SkillNotHeld(p, s) => write!(f, "person {p} does not hold skill {s}"),
            GraphError::InvalidSkillName(name) => {
                write!(
                    f,
                    "invalid skill name {name:?} (empty or contains line breaks)"
                )
            }
            GraphError::Codec(msg) => write!(f, "graph decode failed: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(GraphError::UnknownPerson(PersonId(3))
            .to_string()
            .contains("p3"));
        assert!(GraphError::UnknownSkill(SkillId(5))
            .to_string()
            .contains("s5"));
        assert!(GraphError::UnknownSkillName("rust".into())
            .to_string()
            .contains("rust"));
        assert!(GraphError::SelfLoop(PersonId(1))
            .to_string()
            .contains("self-loop"));
        assert!(GraphError::MissingEdge(PersonId(0), PersonId(1))
            .to_string()
            .contains("does not exist"));
        assert!(GraphError::DuplicateEdge(PersonId(0), PersonId(1))
            .to_string()
            .contains("already exists"));
        assert!(GraphError::EmptyQuery.to_string().contains("query"));
        assert!(GraphError::SkillNotHeld(PersonId(2), SkillId(4))
            .to_string()
            .contains("does not hold"));
        assert!(GraphError::InvalidSkillName("a\nb".into())
            .to_string()
            .contains("invalid skill name"));
        assert!(GraphError::Codec("bad header".into())
            .to_string()
            .contains("bad header"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<GraphError>();
    }
}
