//! The immutable base collaboration network.

use crate::view::GraphView;
use crate::{GraphError, PersonId, Result, SkillId, SkillVocab};
use rustc_hash::FxHashSet;
use serde::{Deserialize, Serialize};

/// Identifier of an undirected edge, indexing into [`CollabGraph::edge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct PersonRecord {
    pub(crate) name: String,
    /// Sorted, deduplicated skill ids.
    pub(crate) skills: Vec<SkillId>,
}

/// Summary statistics of a collaboration network (Table 6 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Number of people (nodes).
    pub num_people: usize,
    /// Number of collaborations (undirected edges).
    pub num_edges: usize,
    /// Number of distinct skills in the vocabulary.
    pub num_skills: usize,
    /// Average number of skills per person.
    pub avg_skills_per_person: f64,
    /// Average degree.
    pub avg_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
}

/// An immutable, skill-labelled, undirected collaboration network.
///
/// Built with [`crate::CollabGraphBuilder`]. Edges are stored both as a sorted
/// adjacency list (for neighbourhood traversal) and as a canonical edge list
/// (for exhaustive explanation baselines); a hash set supports O(1) edge tests.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CollabGraph {
    pub(crate) people: Vec<PersonRecord>,
    pub(crate) adjacency: Vec<Vec<PersonId>>,
    /// Canonical edge list: each undirected edge appears once with `a < b`.
    pub(crate) edges: Vec<(PersonId, PersonId)>,
    #[serde(skip)]
    pub(crate) edge_set: FxHashSet<(u32, u32)>,
    /// Inverted index: skill id -> people holding it (sorted).
    pub(crate) holders: Vec<Vec<PersonId>>,
    pub(crate) vocab: SkillVocab,
}

impl CollabGraph {
    /// Canonical (min, max) key for an undirected edge.
    #[inline]
    pub(crate) fn edge_key(a: PersonId, b: PersonId) -> (u32, u32) {
        if a.0 <= b.0 {
            (a.0, b.0)
        } else {
            (b.0, a.0)
        }
    }

    /// The skill vocabulary of this network.
    pub fn vocab(&self) -> &SkillVocab {
        &self.vocab
    }

    /// Returns the display name of a person.
    pub fn person_name(&self, p: PersonId) -> &str {
        &self.people[p.index()].name
    }

    /// Checks that a person id is valid for this graph.
    pub fn check_person(&self, p: PersonId) -> Result<()> {
        if p.index() < self.people.len() {
            Ok(())
        } else {
            Err(GraphError::UnknownPerson(p))
        }
    }

    /// Looks up a person by (exact) display name. O(n); intended for examples
    /// and tests, not hot paths.
    pub fn person_by_name(&self, name: &str) -> Option<PersonId> {
        self.people
            .iter()
            .position(|r| r.name == name)
            .map(PersonId::from_index)
    }

    /// The sorted skill set of a person, as stored (no perturbations).
    pub fn base_skills(&self, p: PersonId) -> &[SkillId] {
        &self.people[p.index()].skills
    }

    /// The sorted adjacency list of a person, as stored (no perturbations).
    pub fn base_neighbors(&self, p: PersonId) -> &[PersonId] {
        &self.adjacency[p.index()]
    }

    /// People holding `skill` (sorted). Empty slice for skills nobody holds.
    pub fn holders_of(&self, skill: SkillId) -> &[PersonId] {
        self.holders
            .get(skill.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The canonical edge with a given id.
    pub fn edge(&self, e: EdgeId) -> (PersonId, PersonId) {
        self.edges[e.index()]
    }

    /// Iterates over all edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Iterates over all people ids.
    pub fn people(&self) -> impl Iterator<Item = PersonId> {
        (0..self.people.len()).map(PersonId::from_index)
    }

    /// Summary statistics (reproduces Table 6 rows).
    pub fn stats(&self) -> GraphStats {
        let num_people = self.people.len();
        let num_edges = self.edges.len();
        let total_skills: usize = self.people.iter().map(|p| p.skills.len()).sum();
        let max_degree = self.adjacency.iter().map(Vec::len).max().unwrap_or(0);
        GraphStats {
            num_people,
            num_edges,
            num_skills: self.vocab.len(),
            avg_skills_per_person: if num_people == 0 {
                0.0
            } else {
                total_skills as f64 / num_people as f64
            },
            avg_degree: if num_people == 0 {
                0.0
            } else {
                2.0 * num_edges as f64 / num_people as f64
            },
            max_degree,
        }
    }

    /// Rebuilds the derived indices (edge hash set). Needed after
    /// deserialisation because the set is not serialised.
    pub fn rebuild_indices(&mut self) {
        self.edge_set = self
            .edges
            .iter()
            .map(|&(a, b)| Self::edge_key(a, b))
            .collect();
        self.vocab.rebuild_index();
    }

    /// Produces a new graph with the edge `(a, b)` added. Intended for tests and
    /// for materialising perturbations; hot paths should use
    /// [`crate::PerturbedGraph`] instead.
    pub fn with_edge_added(&self, a: PersonId, b: PersonId) -> Result<CollabGraph> {
        self.check_person(a)?;
        self.check_person(b)?;
        if a == b {
            return Err(GraphError::SelfLoop(a));
        }
        if self.edge_set.contains(&Self::edge_key(a, b)) {
            return Err(GraphError::DuplicateEdge(a, b));
        }
        let mut g = self.clone();
        let key = Self::edge_key(a, b);
        g.edge_set.insert(key);
        g.edges.push((PersonId(key.0), PersonId(key.1)));
        g.adjacency[a.index()].push(b);
        g.adjacency[a.index()].sort_unstable();
        g.adjacency[b.index()].push(a);
        g.adjacency[b.index()].sort_unstable();
        Ok(g)
    }

    /// Produces a new graph with the edge `(a, b)` removed.
    pub fn with_edge_removed(&self, a: PersonId, b: PersonId) -> Result<CollabGraph> {
        self.check_person(a)?;
        self.check_person(b)?;
        let key = Self::edge_key(a, b);
        if !self.edge_set.contains(&key) {
            return Err(GraphError::MissingEdge(a, b));
        }
        let mut g = self.clone();
        g.edge_set.remove(&key);
        g.edges
            .retain(|&(x, y)| Self::edge_key(x, y) != key);
        g.adjacency[a.index()].retain(|&n| n != b);
        g.adjacency[b.index()].retain(|&n| n != a);
        Ok(g)
    }

    /// Produces a new graph with `skill` added to `person`'s label set.
    pub fn with_skill_added(&self, person: PersonId, skill: SkillId) -> Result<CollabGraph> {
        self.check_person(person)?;
        if skill.index() >= self.vocab.len() {
            return Err(GraphError::UnknownSkill(skill));
        }
        let mut g = self.clone();
        let skills = &mut g.people[person.index()].skills;
        if let Err(pos) = skills.binary_search(&skill) {
            skills.insert(pos, skill);
            let holders = &mut g.holders[skill.index()];
            if let Err(hpos) = holders.binary_search(&person) {
                holders.insert(hpos, person);
            }
        }
        Ok(g)
    }

    /// Produces a new graph with `skill` removed from `person`'s label set.
    pub fn with_skill_removed(&self, person: PersonId, skill: SkillId) -> Result<CollabGraph> {
        self.check_person(person)?;
        let mut g = self.clone();
        g.people[person.index()].skills.retain(|&s| s != skill);
        if let Some(holders) = g.holders.get_mut(skill.index()) {
            holders.retain(|&p| p != person);
        }
        Ok(g)
    }
}

impl GraphView for CollabGraph {
    fn num_people(&self) -> usize {
        self.people.len()
    }

    fn num_edges(&self) -> usize {
        self.edges.len()
    }

    fn vocab(&self) -> &SkillVocab {
        &self.vocab
    }

    fn person_has_skill(&self, p: PersonId, s: SkillId) -> bool {
        self.people[p.index()].skills.binary_search(&s).is_ok()
    }

    fn person_skills(&self, p: PersonId) -> Vec<SkillId> {
        self.people[p.index()].skills.clone()
    }

    fn neighbors(&self, p: PersonId) -> Vec<PersonId> {
        self.adjacency[p.index()].clone()
    }

    fn degree(&self, p: PersonId) -> usize {
        self.adjacency[p.index()].len()
    }

    fn has_edge(&self, a: PersonId, b: PersonId) -> bool {
        a != b && self.edge_set.contains(&Self::edge_key(a, b))
    }

    fn edges(&self) -> Vec<(PersonId, PersonId)> {
        self.edges.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CollabGraphBuilder;

    fn toy() -> CollabGraph {
        let mut b = CollabGraphBuilder::new();
        let a = b.add_person("A", ["db", "ml"]);
        let c = b.add_person("B", ["ml"]);
        let d = b.add_person("C", ["vision"]);
        b.add_edge(a, c);
        b.add_edge(c, d);
        b.build()
    }

    #[test]
    fn stats_match_construction() {
        let g = toy();
        let s = g.stats();
        assert_eq!(s.num_people, 3);
        assert_eq!(s.num_edges, 2);
        assert_eq!(s.num_skills, 3);
        assert!((s.avg_skills_per_person - 4.0 / 3.0).abs() < 1e-12);
        assert!((s.avg_degree - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.max_degree, 2);
    }

    #[test]
    fn edge_queries_are_symmetric() {
        let g = toy();
        assert!(g.has_edge(PersonId(0), PersonId(1)));
        assert!(g.has_edge(PersonId(1), PersonId(0)));
        assert!(!g.has_edge(PersonId(0), PersonId(2)));
        assert!(!g.has_edge(PersonId(0), PersonId(0)));
    }

    #[test]
    fn holders_index_is_consistent() {
        let g = toy();
        let ml = g.vocab().id("ml").unwrap();
        assert_eq!(g.holders_of(ml), &[PersonId(0), PersonId(1)]);
        let vision = g.vocab().id("vision").unwrap();
        assert_eq!(g.holders_of(vision), &[PersonId(2)]);
    }

    #[test]
    fn with_edge_added_and_removed_roundtrip() {
        let g = toy();
        let g2 = g.with_edge_added(PersonId(0), PersonId(2)).unwrap();
        assert!(g2.has_edge(PersonId(0), PersonId(2)));
        assert_eq!(g2.num_edges(), 3);
        let g3 = g2.with_edge_removed(PersonId(2), PersonId(0)).unwrap();
        assert!(!g3.has_edge(PersonId(0), PersonId(2)));
        assert_eq!(g3.num_edges(), 2);
    }

    #[test]
    fn edge_mutation_errors() {
        let g = toy();
        assert_eq!(
            g.with_edge_added(PersonId(0), PersonId(0)).unwrap_err(),
            GraphError::SelfLoop(PersonId(0))
        );
        assert_eq!(
            g.with_edge_added(PersonId(0), PersonId(1)).unwrap_err(),
            GraphError::DuplicateEdge(PersonId(0), PersonId(1))
        );
        assert_eq!(
            g.with_edge_removed(PersonId(0), PersonId(2)).unwrap_err(),
            GraphError::MissingEdge(PersonId(0), PersonId(2))
        );
        assert!(matches!(
            g.with_edge_added(PersonId(9), PersonId(0)).unwrap_err(),
            GraphError::UnknownPerson(_)
        ));
    }

    #[test]
    fn skill_mutation_roundtrip() {
        let g = toy();
        let vision = g.vocab().id("vision").unwrap();
        let g2 = g.with_skill_added(PersonId(0), vision).unwrap();
        assert!(g2.person_has_skill(PersonId(0), vision));
        assert!(g2.holders_of(vision).contains(&PersonId(0)));
        let g3 = g2.with_skill_removed(PersonId(0), vision).unwrap();
        assert!(!g3.person_has_skill(PersonId(0), vision));
        assert!(!g3.holders_of(vision).contains(&PersonId(0)));
    }

    #[test]
    fn skill_addition_is_idempotent() {
        let g = toy();
        let ml = g.vocab().id("ml").unwrap();
        let g2 = g.with_skill_added(PersonId(0), ml).unwrap();
        assert_eq!(g2.base_skills(PersonId(0)).len(), 2);
        assert_eq!(g2.holders_of(ml).len(), 2);
    }

    #[test]
    fn person_by_name_lookup() {
        let g = toy();
        assert_eq!(g.person_by_name("B"), Some(PersonId(1)));
        assert_eq!(g.person_by_name("nope"), None);
        assert_eq!(g.person_name(PersonId(2)), "C");
    }

    #[test]
    fn serde_roundtrip_and_rebuild() {
        let g = toy();
        let json = serde_json::to_string(&g).unwrap();
        let mut back: CollabGraph = serde_json::from_str(&json).unwrap();
        // Derived indices are skipped during serialisation.
        assert!(back.edge_set.is_empty());
        back.rebuild_indices();
        assert!(back.has_edge(PersonId(0), PersonId(1)));
        assert_eq!(back.vocab().id("db"), g.vocab().id("db"));
        assert_eq!(back.stats(), g.stats());
    }

    #[test]
    fn empty_graph_stats() {
        let g = CollabGraphBuilder::new().build();
        let s = g.stats();
        assert_eq!(s.num_people, 0);
        assert_eq!(s.avg_degree, 0.0);
        assert_eq!(s.avg_skills_per_person, 0.0);
    }
}
