//! The immutable base collaboration network, stored in CSR form.
//!
//! All per-person data (skill labels, adjacency, skill-holder inverted index)
//! lives in contiguous offset-indexed arrays, so the [`GraphView`] accessors
//! on the probe hot path hand out borrowed slices without touching the
//! allocator and with cache-friendly locality.

use crate::view::{EdgesIter, GraphView, PersonIds};
use crate::{GraphError, PersonId, Result, SkillId, SkillVocab};
use rustc_hash::{FxHashSet, FxHasher};
use std::hash::{Hash, Hasher};

/// Identifier of an undirected edge, indexing into [`CollabGraph::edge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Summary statistics of a collaboration network (Table 6 of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphStats {
    /// Number of people (nodes).
    pub num_people: usize,
    /// Number of collaborations (undirected edges).
    pub num_edges: usize,
    /// Number of distinct skills in the vocabulary.
    pub num_skills: usize,
    /// Average number of skills per person.
    pub avg_skills_per_person: f64,
    /// Average degree.
    pub avg_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
}

/// An immutable, skill-labelled, undirected collaboration network.
///
/// Built with [`crate::CollabGraphBuilder`]. Storage is CSR-style throughout:
///
/// * `skill_offsets`/`skill_labels` — each person's sorted skill ids,
/// * `adj_offsets`/`adjacency` — each person's sorted collaborator ids,
/// * `holder_offsets`/`holder_people` — each skill's sorted holders,
///
/// plus a canonical edge list (for exhaustive baselines) and an edge hash set
/// (O(1) edge tests).
#[derive(Debug, Clone)]
pub struct CollabGraph {
    pub(crate) names: Vec<String>,
    /// CSR offsets into `skill_labels`; length `num_people + 1`.
    pub(crate) skill_offsets: Vec<u32>,
    /// Concatenated per-person sorted skill ids.
    pub(crate) skill_labels: Vec<SkillId>,
    /// CSR offsets into `adjacency`; length `num_people + 1`.
    pub(crate) adj_offsets: Vec<u32>,
    /// Concatenated per-person sorted collaborator ids.
    pub(crate) adjacency: Vec<PersonId>,
    /// Canonical edge list: each undirected edge appears once with `a < b`.
    pub(crate) edges: Vec<(PersonId, PersonId)>,
    pub(crate) edge_set: FxHashSet<(u32, u32)>,
    /// CSR offsets into `holder_people`; length `vocab.len() + 1`.
    pub(crate) holder_offsets: Vec<u32>,
    /// Concatenated per-skill sorted holder ids.
    pub(crate) holder_people: Vec<PersonId>,
    pub(crate) vocab: SkillVocab,
    /// Content identity token: equal content hashes to an equal fingerprint
    /// when built through [`CollabGraph::from_rows`]; the epoch-versioned
    /// store chains it per commit instead of rehashing the whole graph. See
    /// [`CollabGraph::fingerprint`].
    pub(crate) fingerprint: u64,
}

/// Packs per-row vectors into a CSR (offsets, values) pair.
fn pack_csr<T: Copy>(rows: &[Vec<T>]) -> (Vec<u32>, Vec<T>) {
    let total: usize = rows.iter().map(Vec::len).sum();
    let mut offsets = Vec::with_capacity(rows.len() + 1);
    let mut values = Vec::with_capacity(total);
    offsets.push(0u32);
    for row in rows {
        values.extend_from_slice(row);
        offsets.push(u32::try_from(values.len()).expect("CSR payload exceeds u32::MAX"));
    }
    (offsets, values)
}

impl CollabGraph {
    /// Canonical (min, max) key for an undirected edge.
    #[inline]
    pub(crate) fn edge_key(a: PersonId, b: PersonId) -> (u32, u32) {
        if a.0 <= b.0 {
            (a.0, b.0)
        } else {
            (b.0, a.0)
        }
    }

    /// Assembles a graph from per-person rows, building all CSR arrays and the
    /// inverted holder index. Rows must already be sorted and deduplicated.
    pub(crate) fn from_rows(
        names: Vec<String>,
        skill_rows: Vec<Vec<SkillId>>,
        adj_rows: Vec<Vec<PersonId>>,
        edges: Vec<(PersonId, PersonId)>,
        edge_set: FxHashSet<(u32, u32)>,
        vocab: SkillVocab,
    ) -> CollabGraph {
        debug_assert_eq!(names.len(), skill_rows.len());
        debug_assert_eq!(names.len(), adj_rows.len());
        let mut holder_rows: Vec<Vec<PersonId>> = vec![Vec::new(); vocab.len()];
        for (i, row) in skill_rows.iter().enumerate() {
            for s in row {
                holder_rows[s.index()].push(PersonId::from_index(i));
            }
        }
        let (skill_offsets, skill_labels) = pack_csr(&skill_rows);
        let (adj_offsets, adjacency) = pack_csr(&adj_rows);
        let (holder_offsets, holder_people) = pack_csr(&holder_rows);
        let fingerprint = Self::content_fingerprint(
            names.len(),
            vocab.len(),
            &skill_offsets,
            &skill_labels,
            &edges,
        );
        CollabGraph {
            names,
            skill_offsets,
            skill_labels,
            adj_offsets,
            adjacency,
            edges,
            edge_set,
            holder_offsets,
            holder_people,
            vocab,
            fingerprint,
        }
    }

    /// Hashes the probe-relevant content (sizes, every skill row, the edge
    /// list) into a 64-bit identity. Display names are excluded: probes only
    /// observe skills, edges and the vocabulary size.
    fn content_fingerprint(
        num_people: usize,
        num_skills: usize,
        skill_offsets: &[u32],
        skill_labels: &[SkillId],
        edges: &[(PersonId, PersonId)],
    ) -> u64 {
        let mut h = FxHasher::default();
        num_people.hash(&mut h);
        num_skills.hash(&mut h);
        skill_offsets.hash(&mut h);
        skill_labels.hash(&mut h);
        edges.hash(&mut h);
        h.finish()
    }

    /// The graph's content fingerprint.
    ///
    /// Two graphs assembled from identical rows (same skill assignments, same
    /// edge list, same vocabulary size) share a fingerprint; any structural
    /// difference changes it. [`crate::store::GraphStore`] commits advance the
    /// fingerprint in O(|batch|) by chaining the previous value with the
    /// update, so an epoch's identity never requires rehashing the graph —
    /// this is what keys warm probe caches to one epoch and invalidates them
    /// on the next.
    #[inline]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The per-person skill rows as owned vectors (slow path for mutation).
    fn skill_rows(&self) -> Vec<Vec<SkillId>> {
        (0..self.names.len())
            .map(|i| self.base_skills(PersonId::from_index(i)).to_vec())
            .collect()
    }

    /// The per-person adjacency rows as owned vectors (slow path for mutation).
    fn adj_rows(&self) -> Vec<Vec<PersonId>> {
        (0..self.names.len())
            .map(|i| self.base_neighbors(PersonId::from_index(i)).to_vec())
            .collect()
    }

    /// The skill vocabulary of this network.
    pub fn vocab(&self) -> &SkillVocab {
        &self.vocab
    }

    /// Returns the display name of a person.
    pub fn person_name(&self, p: PersonId) -> &str {
        &self.names[p.index()]
    }

    /// Checks that a person id is valid for this graph.
    pub fn check_person(&self, p: PersonId) -> Result<()> {
        if p.index() < self.names.len() {
            Ok(())
        } else {
            Err(GraphError::UnknownPerson(p))
        }
    }

    /// Looks up a person by (exact) display name. O(n); intended for examples
    /// and tests, not hot paths.
    pub fn person_by_name(&self, name: &str) -> Option<PersonId> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(PersonId::from_index)
    }

    /// The sorted skill set of a person, as stored (no perturbations).
    #[inline]
    pub fn base_skills(&self, p: PersonId) -> &[SkillId] {
        let i = p.index();
        &self.skill_labels[self.skill_offsets[i] as usize..self.skill_offsets[i + 1] as usize]
    }

    /// The sorted adjacency list of a person, as stored (no perturbations).
    #[inline]
    pub fn base_neighbors(&self, p: PersonId) -> &[PersonId] {
        let i = p.index();
        &self.adjacency[self.adj_offsets[i] as usize..self.adj_offsets[i + 1] as usize]
    }

    /// People holding `skill` (sorted). Empty slice for skills nobody holds.
    #[inline]
    pub fn holders_of(&self, skill: SkillId) -> &[PersonId] {
        let i = skill.index();
        if i + 1 >= self.holder_offsets.len() {
            return &[];
        }
        &self.holder_people[self.holder_offsets[i] as usize..self.holder_offsets[i + 1] as usize]
    }

    /// The canonical edge list, in storage order.
    #[inline]
    pub fn edge_list(&self) -> &[(PersonId, PersonId)] {
        &self.edges
    }

    /// The canonical edge with a given id.
    pub fn edge(&self, e: EdgeId) -> (PersonId, PersonId) {
        self.edges[e.index()]
    }

    /// Iterates over all edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Iterates over all people ids.
    pub fn people(&self) -> impl Iterator<Item = PersonId> {
        (0..self.names.len()).map(PersonId::from_index)
    }

    /// Summary statistics (reproduces Table 6 rows).
    pub fn stats(&self) -> GraphStats {
        let num_people = self.names.len();
        let num_edges = self.edges.len();
        let total_skills = self.skill_labels.len();
        let max_degree = self
            .adj_offsets
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0);
        GraphStats {
            num_people,
            num_edges,
            num_skills: self.vocab.len(),
            avg_skills_per_person: if num_people == 0 {
                0.0
            } else {
                total_skills as f64 / num_people as f64
            },
            avg_degree: if num_people == 0 {
                0.0
            } else {
                2.0 * num_edges as f64 / num_people as f64
            },
            max_degree,
        }
    }

    /// Rebuilds the derived indices (edge hash set, vocabulary index). Needed
    /// after decoding a graph whose derived state was not serialised.
    pub fn rebuild_indices(&mut self) {
        self.edge_set = self
            .edges
            .iter()
            .map(|&(a, b)| Self::edge_key(a, b))
            .collect();
        self.vocab.rebuild_index();
    }

    /// Produces a new graph with the edge `(a, b)` added. Intended for tests and
    /// for materialising perturbations; hot paths should use
    /// [`crate::PerturbedGraph`] instead.
    pub fn with_edge_added(&self, a: PersonId, b: PersonId) -> Result<CollabGraph> {
        self.check_person(a)?;
        self.check_person(b)?;
        if a == b {
            return Err(GraphError::SelfLoop(a));
        }
        let key = Self::edge_key(a, b);
        if self.edge_set.contains(&key) {
            return Err(GraphError::DuplicateEdge(a, b));
        }
        let mut edge_set = self.edge_set.clone();
        edge_set.insert(key);
        let mut edges = self.edges.clone();
        edges.push((PersonId(key.0), PersonId(key.1)));
        let mut adj_rows = self.adj_rows();
        adj_rows[a.index()].push(b);
        adj_rows[a.index()].sort_unstable();
        adj_rows[b.index()].push(a);
        adj_rows[b.index()].sort_unstable();
        Ok(Self::from_rows(
            self.names.clone(),
            self.skill_rows(),
            adj_rows,
            edges,
            edge_set,
            self.vocab.clone(),
        ))
    }

    /// Produces a new graph with the edge `(a, b)` removed.
    pub fn with_edge_removed(&self, a: PersonId, b: PersonId) -> Result<CollabGraph> {
        self.check_person(a)?;
        self.check_person(b)?;
        let key = Self::edge_key(a, b);
        if !self.edge_set.contains(&key) {
            return Err(GraphError::MissingEdge(a, b));
        }
        let mut edge_set = self.edge_set.clone();
        edge_set.remove(&key);
        let mut edges = self.edges.clone();
        edges.retain(|&(x, y)| Self::edge_key(x, y) != key);
        let mut adj_rows = self.adj_rows();
        adj_rows[a.index()].retain(|&n| n != b);
        adj_rows[b.index()].retain(|&n| n != a);
        Ok(Self::from_rows(
            self.names.clone(),
            self.skill_rows(),
            adj_rows,
            edges,
            edge_set,
            self.vocab.clone(),
        ))
    }

    /// Produces a new graph with `skill` added to `person`'s label set.
    pub fn with_skill_added(&self, person: PersonId, skill: SkillId) -> Result<CollabGraph> {
        self.check_person(person)?;
        if skill.index() >= self.vocab.len() {
            return Err(GraphError::UnknownSkill(skill));
        }
        let mut skill_rows = self.skill_rows();
        let row = &mut skill_rows[person.index()];
        if let Err(pos) = row.binary_search(&skill) {
            row.insert(pos, skill);
        }
        Ok(Self::from_rows(
            self.names.clone(),
            skill_rows,
            self.adj_rows(),
            self.edges.clone(),
            self.edge_set.clone(),
            self.vocab.clone(),
        ))
    }

    /// Produces a new graph with `skill` removed from `person`'s label set.
    pub fn with_skill_removed(&self, person: PersonId, skill: SkillId) -> Result<CollabGraph> {
        self.check_person(person)?;
        let mut skill_rows = self.skill_rows();
        skill_rows[person.index()].retain(|&s| s != skill);
        Ok(Self::from_rows(
            self.names.clone(),
            skill_rows,
            self.adj_rows(),
            self.edges.clone(),
            self.edge_set.clone(),
            self.vocab.clone(),
        ))
    }
}

impl GraphView for CollabGraph {
    fn num_people(&self) -> usize {
        self.names.len()
    }

    fn num_edges(&self) -> usize {
        self.edges.len()
    }

    fn vocab(&self) -> &SkillVocab {
        &self.vocab
    }

    fn person_has_skill(&self, p: PersonId, s: SkillId) -> bool {
        self.base_skills(p).binary_search(&s).is_ok()
    }

    #[inline]
    fn person_skills(&self, p: PersonId) -> &[SkillId] {
        self.base_skills(p)
    }

    #[inline]
    fn neighbors(&self, p: PersonId) -> &[PersonId] {
        self.base_neighbors(p)
    }

    fn degree(&self, p: PersonId) -> usize {
        self.base_neighbors(p).len()
    }

    fn has_edge(&self, a: PersonId, b: PersonId) -> bool {
        a != b && self.edge_set.contains(&Self::edge_key(a, b))
    }

    fn edges(&self) -> EdgesIter<'_> {
        EdgesIter::base(&self.edges)
    }

    fn people_ids(&self) -> PersonIds {
        PersonIds::up_to(self.names.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CollabGraphBuilder;

    fn toy() -> CollabGraph {
        let mut b = CollabGraphBuilder::new();
        let a = b.add_person("A", ["db", "ml"]);
        let c = b.add_person("B", ["ml"]);
        let d = b.add_person("C", ["vision"]);
        b.add_edge(a, c);
        b.add_edge(c, d);
        b.build()
    }

    #[test]
    fn stats_match_construction() {
        let g = toy();
        let s = g.stats();
        assert_eq!(s.num_people, 3);
        assert_eq!(s.num_edges, 2);
        assert_eq!(s.num_skills, 3);
        assert!((s.avg_skills_per_person - 4.0 / 3.0).abs() < 1e-12);
        assert!((s.avg_degree - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.max_degree, 2);
    }

    #[test]
    fn csr_slices_are_sorted_and_consistent() {
        let g = toy();
        for p in g.people() {
            let skills = g.base_skills(p);
            assert!(skills.windows(2).all(|w| w[0] < w[1]));
            assert_eq!(g.person_skills(p), skills);
            let ns = g.base_neighbors(p);
            assert!(ns.windows(2).all(|w| w[0] < w[1]));
            assert_eq!(g.neighbors(p), ns);
        }
    }

    #[test]
    fn edge_queries_are_symmetric() {
        let g = toy();
        assert!(g.has_edge(PersonId(0), PersonId(1)));
        assert!(g.has_edge(PersonId(1), PersonId(0)));
        assert!(!g.has_edge(PersonId(0), PersonId(2)));
        assert!(!g.has_edge(PersonId(0), PersonId(0)));
    }

    #[test]
    fn holders_index_is_consistent() {
        let g = toy();
        let ml = g.vocab().id("ml").unwrap();
        assert_eq!(g.holders_of(ml), &[PersonId(0), PersonId(1)]);
        let vision = g.vocab().id("vision").unwrap();
        assert_eq!(g.holders_of(vision), &[PersonId(2)]);
        assert!(g.holders_of(SkillId(99)).is_empty());
    }

    #[test]
    fn with_edge_added_and_removed_roundtrip() {
        let g = toy();
        let g2 = g.with_edge_added(PersonId(0), PersonId(2)).unwrap();
        assert!(g2.has_edge(PersonId(0), PersonId(2)));
        assert_eq!(g2.num_edges(), 3);
        assert_eq!(g2.base_neighbors(PersonId(0)), &[PersonId(1), PersonId(2)]);
        let g3 = g2.with_edge_removed(PersonId(2), PersonId(0)).unwrap();
        assert!(!g3.has_edge(PersonId(0), PersonId(2)));
        assert_eq!(g3.num_edges(), 2);
    }

    #[test]
    fn edge_mutation_errors() {
        let g = toy();
        assert_eq!(
            g.with_edge_added(PersonId(0), PersonId(0)).unwrap_err(),
            GraphError::SelfLoop(PersonId(0))
        );
        assert_eq!(
            g.with_edge_added(PersonId(0), PersonId(1)).unwrap_err(),
            GraphError::DuplicateEdge(PersonId(0), PersonId(1))
        );
        assert_eq!(
            g.with_edge_removed(PersonId(0), PersonId(2)).unwrap_err(),
            GraphError::MissingEdge(PersonId(0), PersonId(2))
        );
        assert!(matches!(
            g.with_edge_added(PersonId(9), PersonId(0)).unwrap_err(),
            GraphError::UnknownPerson(_)
        ));
    }

    #[test]
    fn skill_mutation_roundtrip() {
        let g = toy();
        let vision = g.vocab().id("vision").unwrap();
        let g2 = g.with_skill_added(PersonId(0), vision).unwrap();
        assert!(g2.person_has_skill(PersonId(0), vision));
        assert!(g2.holders_of(vision).contains(&PersonId(0)));
        let g3 = g2.with_skill_removed(PersonId(0), vision).unwrap();
        assert!(!g3.person_has_skill(PersonId(0), vision));
        assert!(!g3.holders_of(vision).contains(&PersonId(0)));
    }

    #[test]
    fn skill_addition_is_idempotent() {
        let g = toy();
        let ml = g.vocab().id("ml").unwrap();
        let g2 = g.with_skill_added(PersonId(0), ml).unwrap();
        assert_eq!(g2.base_skills(PersonId(0)).len(), 2);
        assert_eq!(g2.holders_of(ml).len(), 2);
    }

    #[test]
    fn person_by_name_lookup() {
        let g = toy();
        assert_eq!(g.person_by_name("B"), Some(PersonId(1)));
        assert_eq!(g.person_by_name("nope"), None);
        assert_eq!(g.person_name(PersonId(2)), "C");
    }

    #[test]
    fn codec_roundtrip_preserves_everything() {
        let g = toy();
        let text = g.to_text();
        let back = CollabGraph::from_text(&text).unwrap();
        assert_eq!(back.stats(), g.stats());
        assert!(back.has_edge(PersonId(0), PersonId(1)));
        assert_eq!(back.vocab().id("db"), g.vocab().id("db"));
        for p in g.people() {
            assert_eq!(back.base_skills(p), g.base_skills(p));
            assert_eq!(back.base_neighbors(p), g.base_neighbors(p));
            assert_eq!(back.person_name(p), g.person_name(p));
        }
    }

    #[test]
    fn fingerprint_tracks_content_not_names() {
        let g = toy();
        let same = toy();
        assert_eq!(g.fingerprint(), same.fingerprint());
        // Structural changes move the fingerprint.
        let more = g.with_edge_added(PersonId(0), PersonId(2)).unwrap();
        assert_ne!(g.fingerprint(), more.fingerprint());
        let ml = g.vocab().id("ml").unwrap();
        let fewer = g.with_skill_removed(PersonId(0), ml).unwrap();
        assert_ne!(g.fingerprint(), fewer.fingerprint());
        // Undoing a change restores the content, hence the fingerprint.
        let back = more.with_edge_removed(PersonId(0), PersonId(2)).unwrap();
        assert_eq!(g.fingerprint(), back.fingerprint());
        // The codec roundtrip preserves content, hence the fingerprint.
        let decoded = CollabGraph::from_text(&g.to_text()).unwrap();
        assert_eq!(g.fingerprint(), decoded.fingerprint());
    }

    #[test]
    fn empty_graph_stats() {
        let g = CollabGraphBuilder::new().build();
        let s = g.stats();
        assert_eq!(s.num_people, 0);
        assert_eq!(s.avg_degree, 0.0);
        assert_eq!(s.avg_skills_per_person, 0.0);
    }
}
