//! Dense integer identifiers for people and skills.
//!
//! Both id types are thin `u32` newtypes: they index into contiguous arrays
//! inside [`crate::CollabGraph`] and [`crate::SkillVocab`], are `Copy`, and hash
//! quickly with `FxHash`.

use std::fmt;

/// Identifier of a person (node) in a collaboration network.
///
/// Ids are dense: a graph with `n` people uses ids `0..n`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PersonId(pub u32);

/// Identifier of a skill (node label / query keyword) in a [`crate::SkillVocab`].
///
/// Ids are dense: a vocabulary with `l` skills uses ids `0..l`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SkillId(pub u32);

impl PersonId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `PersonId` from a `usize` index.
    ///
    /// # Panics
    /// Panics if `idx` does not fit in a `u32`.
    #[inline]
    pub fn from_index(idx: usize) -> Self {
        PersonId(u32::try_from(idx).expect("person index exceeds u32::MAX"))
    }
}

impl SkillId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `SkillId` from a `usize` index.
    ///
    /// # Panics
    /// Panics if `idx` does not fit in a `u32`.
    #[inline]
    pub fn from_index(idx: usize) -> Self {
        SkillId(u32::try_from(idx).expect("skill index exceeds u32::MAX"))
    }
}

impl fmt::Debug for PersonId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for PersonId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Debug for SkillId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Display for SkillId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl From<u32> for PersonId {
    fn from(v: u32) -> Self {
        PersonId(v)
    }
}

impl From<u32> for SkillId {
    fn from(v: u32) -> Self {
        SkillId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn person_id_roundtrip() {
        let p = PersonId::from_index(42);
        assert_eq!(p.index(), 42);
        assert_eq!(p, PersonId(42));
        assert_eq!(format!("{p}"), "p42");
        assert_eq!(format!("{p:?}"), "p42");
    }

    #[test]
    fn skill_id_roundtrip() {
        let s = SkillId::from_index(7);
        assert_eq!(s.index(), 7);
        assert_eq!(s, SkillId(7));
        assert_eq!(format!("{s}"), "s7");
    }

    #[test]
    fn ids_are_ordered_by_value() {
        assert!(PersonId(1) < PersonId(2));
        assert!(SkillId(0) < SkillId(10));
    }

    #[test]
    #[should_panic(expected = "person index exceeds")]
    fn person_id_overflow_panics() {
        let _ = PersonId::from_index(usize::MAX);
    }

    #[test]
    fn from_u32_conversions() {
        assert_eq!(PersonId::from(3u32), PersonId(3));
        assert_eq!(SkillId::from(9u32), SkillId(9));
    }
}
