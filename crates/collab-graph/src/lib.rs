//! # exes-graph
//!
//! The collaboration-network substrate used throughout the ExES reproduction.
//!
//! A collaboration network is an undirected, node-labelled graph:
//!
//! * nodes are **people** ([`PersonId`]) carrying a set of **skills** ([`SkillId`]),
//! * edges denote **collaborations** (paper co-authorship, shared repositories, ...),
//! * a shared [`SkillVocab`] maps skill names to dense integer ids.
//!
//! ExES explains black-box systems by probing them with *perturbed* inputs, so the
//! central abstraction here is the [`GraphView`] trait: both the base
//! [`CollabGraph`] and the copy-on-write [`PerturbedGraph`] overlay implement it,
//! letting rankers and team builders run unchanged on either. Perturbations are
//! small [`PerturbationSet`] deltas (skill add/remove, edge add/remove, query
//! keyword add/remove), which keeps the cost of each probe proportional to the
//! delta instead of the graph size.
//!
//! ```
//! use exes_graph::{CollabGraphBuilder, Query, GraphView, Perturbation, PerturbationSet};
//!
//! let mut b = CollabGraphBuilder::new();
//! let alice = b.add_person("Alice", ["databases", "xai"]);
//! let bob = b.add_person("Bob", ["graphs"]);
//! b.add_edge(alice, bob);
//! let g = b.build();
//!
//! let q = Query::parse("xai graphs", g.vocab()).unwrap();
//! assert!(g.person_has_skill(alice, q.skills()[0]));
//!
//! // Probe a counterfactual world where Alice lost her "xai" skill.
//! let xai = g.vocab().id("xai").unwrap();
//! let mut delta = PerturbationSet::new();
//! delta.push(Perturbation::RemoveSkill { person: alice, skill: xai });
//! let world = delta.apply_to_graph(&g);
//! assert!(!world.person_has_skill(alice, xai));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod codec;
mod error;
mod graph;
mod ids;
mod neighborhood;
mod perturbation;
mod query;
pub mod store;
mod view;
mod vocab;

pub use builder::CollabGraphBuilder;
pub use error::GraphError;
pub use graph::{CollabGraph, EdgeId, GraphStats};
pub use ids::{PersonId, SkillId};
pub use neighborhood::{Neighborhood, NeighborhoodSkills};
pub use perturbation::{Perturbation, PerturbationSet};
pub use query::Query;
pub use store::{GraphSnapshot, GraphStore, StoreConfig, StoreStats, UpdateBatch, UpdateOp};
pub use view::{EdgesIter, GraphView, PersonIds, PerturbedGraph};
pub use vocab::SkillVocab;

/// Convenience result alias for fallible graph operations.
pub type Result<T> = std::result::Result<T, GraphError>;
