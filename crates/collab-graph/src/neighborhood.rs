//! Radius-`d` neighbourhoods — the heart of Pruning Strategy 1 (network locality).

use crate::{GraphView, PersonId, SkillId};
use rustc_hash::FxHashMap;
use std::collections::VecDeque;

/// The induced subgraph of nodes within distance `d` of a centre node `N(p_i)`.
///
/// The paper's pruning strategies restrict factual feature scoring and
/// counterfactual candidate generation to this neighbourhood.
#[derive(Debug, Clone)]
pub struct Neighborhood {
    center: PersonId,
    radius: usize,
    /// Members sorted by id (always includes the centre, even for `d = 0`).
    members: Vec<PersonId>,
    /// Hop distance of each member from the centre.
    distances: FxHashMap<PersonId, usize>,
}

/// The multiset of `(person, skill)` pairs inside a neighbourhood, `S_N(p_i)`.
#[derive(Debug, Clone)]
pub struct NeighborhoodSkills {
    pairs: Vec<(PersonId, SkillId)>,
}

impl Neighborhood {
    /// Breadth-first computation of the radius-`d` neighbourhood of `center`.
    pub fn compute<G: GraphView + ?Sized>(view: &G, center: PersonId, radius: usize) -> Self {
        let mut distances = FxHashMap::default();
        distances.insert(center, 0usize);
        let mut queue = VecDeque::new();
        queue.push_back(center);
        while let Some(p) = queue.pop_front() {
            let dist = distances[&p];
            if dist == radius {
                continue;
            }
            for &n in view.neighbors(p) {
                if let std::collections::hash_map::Entry::Vacant(e) = distances.entry(n) {
                    e.insert(dist + 1);
                    queue.push_back(n);
                }
            }
        }
        let mut members: Vec<PersonId> = distances.keys().copied().collect();
        members.sort_unstable();
        Neighborhood {
            center,
            radius,
            members,
            distances,
        }
    }

    /// The centre node `p_i`.
    pub fn center(&self) -> PersonId {
        self.center
    }

    /// The radius `d` used to compute this neighbourhood.
    pub fn radius(&self) -> usize {
        self.radius
    }

    /// Members, sorted by id (includes the centre).
    pub fn members(&self) -> &[PersonId] {
        &self.members
    }

    /// Number of members `|N(p_i)|`.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// A neighbourhood always contains at least its centre.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Membership test.
    pub fn contains(&self, p: PersonId) -> bool {
        self.distances.contains_key(&p)
    }

    /// Hop distance from the centre, if `p` is a member.
    pub fn distance(&self, p: PersonId) -> Option<usize> {
        self.distances.get(&p).copied()
    }

    /// All `(person, skill)` pairs held by members — the feature space
    /// `S_N(p_i)` used for skill factual explanations and skill counterfactuals.
    pub fn skills<G: GraphView + ?Sized>(&self, view: &G) -> NeighborhoodSkills {
        let mut pairs = Vec::new();
        for &p in &self.members {
            for &s in view.person_skills(p) {
                pairs.push((p, s));
            }
        }
        NeighborhoodSkills { pairs }
    }

    /// Edges whose *both* endpoints lie inside the neighbourhood, canonically
    /// ordered — the feature space for collaboration factual explanations.
    pub fn edges_within<G: GraphView + ?Sized>(&self, view: &G) -> Vec<(PersonId, PersonId)> {
        let mut edges = Vec::new();
        for &a in &self.members {
            for &b in view.neighbors(a) {
                if a < b && self.contains(b) {
                    edges.push((a, b));
                }
            }
        }
        edges.sort_unstable();
        edges
    }

    /// Pairs of neighbourhood members that are *not* connected — candidate edge
    /// additions for collaboration counterfactuals. The centre is always one of
    /// the endpoints when `centered_only` is true (the paper adds collaborations
    /// *to* the explained individual's neighbourhood).
    pub fn missing_edges<G: GraphView + ?Sized>(
        &self,
        view: &G,
        centered_only: bool,
    ) -> Vec<(PersonId, PersonId)> {
        let mut missing = Vec::new();
        if centered_only {
            for &b in &self.members {
                if b != self.center && !view.has_edge(self.center, b) {
                    let (x, y) = if self.center < b {
                        (self.center, b)
                    } else {
                        (b, self.center)
                    };
                    missing.push((x, y));
                }
            }
        } else {
            for (i, &a) in self.members.iter().enumerate() {
                for &b in &self.members[i + 1..] {
                    if !view.has_edge(a, b) {
                        missing.push((a, b));
                    }
                }
            }
        }
        missing.sort_unstable();
        missing
    }
}

impl NeighborhoodSkills {
    /// The `(person, skill)` pairs.
    pub fn pairs(&self) -> &[(PersonId, SkillId)] {
        &self.pairs
    }

    /// Number of pairs `|S_N(p_i)|`.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when no member holds any skill.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The distinct skills appearing in the neighbourhood, sorted.
    pub fn distinct_skills(&self) -> Vec<SkillId> {
        let mut s: Vec<SkillId> = self.pairs.iter().map(|&(_, s)| s).collect();
        s.sort_unstable();
        s.dedup();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CollabGraph, CollabGraphBuilder};

    /// Path graph p0 - p1 - p2 - p3 - p4.
    fn path() -> CollabGraph {
        let mut b = CollabGraphBuilder::new();
        let ps: Vec<_> = (0..5)
            .map(|i| b.add_person(&format!("p{i}"), [format!("skill{i}")]))
            .collect();
        for w in ps.windows(2) {
            b.add_edge(w[0], w[1]);
        }
        b.build()
    }

    #[test]
    fn radius_zero_is_just_the_center() {
        let g = path();
        let n = Neighborhood::compute(&g, PersonId(2), 0);
        assert_eq!(n.members(), &[PersonId(2)]);
        assert_eq!(n.distance(PersonId(2)), Some(0));
        assert!(!n.is_empty());
    }

    #[test]
    fn radius_one_and_two_on_a_path() {
        let g = path();
        let n1 = Neighborhood::compute(&g, PersonId(2), 1);
        assert_eq!(n1.members(), &[PersonId(1), PersonId(2), PersonId(3)]);
        let n2 = Neighborhood::compute(&g, PersonId(2), 2);
        assert_eq!(n2.len(), 5);
        assert_eq!(n2.distance(PersonId(0)), Some(2));
        assert_eq!(n2.distance(PersonId(4)), Some(2));
    }

    #[test]
    fn neighborhood_is_monotone_in_radius() {
        let g = path();
        for d in 0..4 {
            let smaller = Neighborhood::compute(&g, PersonId(0), d);
            let larger = Neighborhood::compute(&g, PersonId(0), d + 1);
            for &m in smaller.members() {
                assert!(larger.contains(m));
            }
        }
    }

    #[test]
    fn skills_collects_member_pairs() {
        let g = path();
        let n = Neighborhood::compute(&g, PersonId(2), 1);
        let sk = n.skills(&g);
        assert_eq!(sk.len(), 3);
        assert_eq!(sk.distinct_skills().len(), 3);
        assert!(!sk.is_empty());
        assert!(sk.pairs().iter().all(|&(p, _)| n.contains(p)));
    }

    #[test]
    fn edges_within_only_keeps_internal_edges() {
        let g = path();
        let n = Neighborhood::compute(&g, PersonId(2), 1);
        // Edges (1,2) and (2,3) are internal; (0,1) and (3,4) cross the boundary.
        assert_eq!(
            n.edges_within(&g),
            vec![(PersonId(1), PersonId(2)), (PersonId(2), PersonId(3))]
        );
    }

    #[test]
    fn missing_edges_centered_and_full() {
        let g = path();
        let n = Neighborhood::compute(&g, PersonId(2), 2);
        let centered = n.missing_edges(&g, true);
        // Centre p2 is not connected to p0 and p4.
        assert_eq!(
            centered,
            vec![(PersonId(0), PersonId(2)), (PersonId(2), PersonId(4))]
        );
        let full = n.missing_edges(&g, false);
        // All non-adjacent pairs among 5 path nodes: total pairs 10, edges 4 => 6.
        assert_eq!(full.len(), 6);
        assert!(centered.iter().all(|e| full.contains(e)));
    }

    #[test]
    fn disconnected_node_has_singleton_neighborhood() {
        let mut b = CollabGraphBuilder::new();
        let lone = b.add_person("lone", ["x"]);
        b.add_person("other", ["y"]);
        let g = b.build();
        let n = Neighborhood::compute(&g, lone, 3);
        assert_eq!(n.members(), &[lone]);
    }
}
