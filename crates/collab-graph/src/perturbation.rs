//! Feature perturbations: the atomic edits ExES explores when explaining.

use crate::{CollabGraph, PersonId, PerturbedGraph, Query, SkillId};

/// An atomic edit to the input of an expert-search / team-formation system.
///
/// Counterfactual explanations are sets of these ([`PerturbationSet`]); factual
/// explanations score the *features* these edits act on.
///
/// The derived [`Ord`] (variant order first, then field order within a variant)
/// is the **canonical order** used wherever a perturbation set must act as a
/// set-valued key: beam-search deduplication and the probe memo cache both sort
/// by it, so two sets holding the same edits in different insertion orders
/// compare and hash identically after canonicalisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Perturbation {
    /// Give `person` a new `skill` label.
    AddSkill {
        /// Person receiving the skill.
        person: PersonId,
        /// Skill being added.
        skill: SkillId,
    },
    /// Remove an existing `skill` label from `person`.
    RemoveSkill {
        /// Person losing the skill.
        person: PersonId,
        /// Skill being removed.
        skill: SkillId,
    },
    /// Add a collaboration edge between `a` and `b`.
    AddEdge {
        /// First endpoint.
        a: PersonId,
        /// Second endpoint.
        b: PersonId,
    },
    /// Remove the collaboration edge between `a` and `b`.
    RemoveEdge {
        /// First endpoint.
        a: PersonId,
        /// Second endpoint.
        b: PersonId,
    },
    /// Add a keyword to the query.
    AddQueryTerm {
        /// Skill keyword appended to the query.
        skill: SkillId,
    },
    /// Remove a keyword from the query.
    RemoveQueryTerm {
        /// Skill keyword dropped from the query.
        skill: SkillId,
    },
}

impl Perturbation {
    /// True for perturbations that edit the query rather than the graph.
    pub fn is_query_perturbation(&self) -> bool {
        matches!(
            self,
            Perturbation::AddQueryTerm { .. } | Perturbation::RemoveQueryTerm { .. }
        )
    }

    /// True for perturbations that edit skills (node labels).
    pub fn is_skill_perturbation(&self) -> bool {
        matches!(
            self,
            Perturbation::AddSkill { .. } | Perturbation::RemoveSkill { .. }
        )
    }

    /// True for perturbations that edit collaboration edges.
    pub fn is_edge_perturbation(&self) -> bool {
        matches!(
            self,
            Perturbation::AddEdge { .. } | Perturbation::RemoveEdge { .. }
        )
    }

    /// Human-readable description, e.g. for case-study output.
    pub fn describe(&self, graph: &CollabGraph) -> String {
        let vocab = graph.vocab();
        let skill_name = |s: SkillId| vocab.name(s).unwrap_or("<unknown skill>").to_string();
        let person_name = |p: PersonId| {
            if p.index() < graph.num_people_internal() {
                graph.person_name(p).to_string()
            } else {
                format!("{p}")
            }
        };
        match *self {
            Perturbation::AddSkill { person, skill } => {
                format!(
                    "add skill '{}' to {}",
                    skill_name(skill),
                    person_name(person)
                )
            }
            Perturbation::RemoveSkill { person, skill } => {
                format!(
                    "remove skill '{}' from {}",
                    skill_name(skill),
                    person_name(person)
                )
            }
            Perturbation::AddEdge { a, b } => {
                format!(
                    "add collaboration between {} and {}",
                    person_name(a),
                    person_name(b)
                )
            }
            Perturbation::RemoveEdge { a, b } => {
                format!(
                    "remove collaboration between {} and {}",
                    person_name(a),
                    person_name(b)
                )
            }
            Perturbation::AddQueryTerm { skill } => {
                format!("add '{}' to the query", skill_name(skill))
            }
            Perturbation::RemoveQueryTerm { skill } => {
                format!("remove '{}' from the query", skill_name(skill))
            }
        }
    }
}

impl CollabGraph {
    pub(crate) fn num_people_internal(&self) -> usize {
        self.names.len()
    }
}

/// An ordered set of perturbations (a candidate counterfactual explanation).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct PerturbationSet {
    items: Vec<Perturbation>,
}

impl PerturbationSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a set holding a single perturbation.
    pub fn singleton(p: Perturbation) -> Self {
        PerturbationSet { items: vec![p] }
    }

    /// Appends a perturbation if it is not already present. Returns whether it
    /// was inserted.
    pub fn push(&mut self, p: Perturbation) -> bool {
        if self.items.contains(&p) {
            false
        } else {
            self.items.push(p);
            true
        }
    }

    /// Returns a new set with `p` appended (no-op clone when already present).
    pub fn with(&self, p: Perturbation) -> Self {
        let mut s = self.clone();
        s.push(p);
        s
    }

    /// Number of perturbations (the explanation *size* in the paper's tables).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no perturbations are present.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, p: &Perturbation) -> bool {
        self.items.contains(p)
    }

    /// True when `other` contains every perturbation of `self`.
    pub fn is_subset_of(&self, other: &PerturbationSet) -> bool {
        self.items.iter().all(|p| other.contains(p))
    }

    /// The canonical key of this set: its perturbations sorted by the derived
    /// [`Ord`] on [`Perturbation`].
    ///
    /// Two sets holding the same edits — regardless of insertion order —
    /// produce equal keys, which is what beam-search deduplication and the
    /// probe memo cache rely on.
    pub fn canonical_key(&self) -> Vec<Perturbation> {
        let mut key = self.items.clone();
        key.sort_unstable();
        key
    }

    /// Iterates over the perturbations in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Perturbation> {
        self.items.iter()
    }

    /// Applies the graph-side edits, producing a cheap overlay view.
    pub fn apply_to_graph<'a>(&self, base: &'a CollabGraph) -> PerturbedGraph<'a> {
        PerturbedGraph::new(base, self)
    }

    /// Applies the query-side edits, producing the perturbed query.
    pub fn apply_to_query(&self, query: &Query) -> Query {
        let mut q = query.clone();
        for p in &self.items {
            match *p {
                Perturbation::AddQueryTerm { skill } => q = q.with_added(skill),
                Perturbation::RemoveQueryTerm { skill } => q = q.with_removed(skill),
                _ => {}
            }
        }
        q
    }

    /// Applies both graph- and query-side edits (line 10 of Algorithm 1).
    pub fn apply<'a>(&self, base: &'a CollabGraph, query: &Query) -> (PerturbedGraph<'a>, Query) {
        (self.apply_to_graph(base), self.apply_to_query(query))
    }

    /// Materialises the graph-side edits into a fully rebuilt [`CollabGraph`].
    ///
    /// Slow path used by tests and the exhaustive baselines to check that the
    /// overlay and a real rebuild agree; redundant edits are skipped.
    pub fn materialize(&self, base: &CollabGraph) -> CollabGraph {
        let mut g = base.clone();
        for p in &self.items {
            let next = match *p {
                Perturbation::AddSkill { person, skill } => g.with_skill_added(person, skill),
                Perturbation::RemoveSkill { person, skill } => g.with_skill_removed(person, skill),
                Perturbation::AddEdge { a, b } => g.with_edge_added(a, b),
                Perturbation::RemoveEdge { a, b } => g.with_edge_removed(a, b),
                Perturbation::AddQueryTerm { .. } | Perturbation::RemoveQueryTerm { .. } => {
                    continue
                }
            };
            if let Ok(next) = next {
                g = next;
            }
        }
        g
    }

    /// Human-readable multi-line description.
    pub fn describe(&self, graph: &CollabGraph) -> String {
        self.items
            .iter()
            .map(|p| p.describe(graph))
            .collect::<Vec<_>>()
            .join("; ")
    }
}

impl FromIterator<Perturbation> for PerturbationSet {
    fn from_iter<T: IntoIterator<Item = Perturbation>>(iter: T) -> Self {
        let mut s = PerturbationSet::new();
        for p in iter {
            s.push(p);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CollabGraphBuilder, GraphView};

    fn toy() -> CollabGraph {
        let mut b = CollabGraphBuilder::new();
        let p0 = b.add_person("Ada", ["db", "ml"]);
        let p1 = b.add_person("Bo", ["ml"]);
        let p2 = b.add_person("Cy", ["vision"]);
        b.add_edge(p0, p1);
        b.add_edge(p1, p2);
        b.build()
    }

    #[test]
    fn push_deduplicates() {
        let g = toy();
        let ml = g.vocab().id("ml").unwrap();
        let p = Perturbation::RemoveSkill {
            person: PersonId(0),
            skill: ml,
        };
        let mut set = PerturbationSet::new();
        assert!(set.push(p));
        assert!(!set.push(p));
        assert_eq!(set.len(), 1);
        assert_eq!(set.with(p).len(), 1);
    }

    #[test]
    fn classification_helpers() {
        let p = Perturbation::AddQueryTerm { skill: SkillId(0) };
        assert!(p.is_query_perturbation());
        assert!(!p.is_skill_perturbation());
        let q = Perturbation::AddSkill {
            person: PersonId(0),
            skill: SkillId(0),
        };
        assert!(q.is_skill_perturbation());
        let e = Perturbation::RemoveEdge {
            a: PersonId(0),
            b: PersonId(1),
        };
        assert!(e.is_edge_perturbation());
    }

    #[test]
    fn apply_to_query_handles_add_and_remove() {
        let g = toy();
        let q = Query::parse("ml", g.vocab()).unwrap();
        let db = g.vocab().id("db").unwrap();
        let ml = g.vocab().id("ml").unwrap();
        let set: PerturbationSet = [
            Perturbation::AddQueryTerm { skill: db },
            Perturbation::RemoveQueryTerm { skill: ml },
        ]
        .into_iter()
        .collect();
        let q2 = set.apply_to_query(&q);
        assert!(q2.contains(db));
        assert!(!q2.contains(ml));
    }

    #[test]
    fn overlay_agrees_with_materialized_graph() {
        let g = toy();
        let vision = g.vocab().id("vision").unwrap();
        let set: PerturbationSet = [
            Perturbation::AddSkill {
                person: PersonId(0),
                skill: vision,
            },
            Perturbation::AddEdge {
                a: PersonId(0),
                b: PersonId(2),
            },
            Perturbation::RemoveEdge {
                a: PersonId(1),
                b: PersonId(2),
            },
        ]
        .into_iter()
        .collect();
        let overlay = set.apply_to_graph(&g);
        let rebuilt = set.materialize(&g);
        assert_eq!(overlay.num_edges(), rebuilt.num_edges());
        for p in g.people() {
            assert_eq!(overlay.person_skills(p), rebuilt.person_skills(p));
            assert_eq!(overlay.neighbors(p), rebuilt.neighbors(p));
        }
    }

    #[test]
    fn describe_mentions_names() {
        let g = toy();
        let ml = g.vocab().id("ml").unwrap();
        let set: PerturbationSet = [
            Perturbation::RemoveSkill {
                person: PersonId(0),
                skill: ml,
            },
            Perturbation::AddEdge {
                a: PersonId(0),
                b: PersonId(2),
            },
        ]
        .into_iter()
        .collect();
        let text = set.describe(&g);
        assert!(text.contains("Ada"));
        assert!(text.contains("Cy"));
        assert!(text.contains("ml"));
    }

    #[test]
    fn canonical_key_is_insertion_order_independent() {
        // Every permutation of the same edits yields the same canonical key.
        let edits = [
            Perturbation::RemoveSkill {
                person: PersonId(1),
                skill: SkillId(2),
            },
            Perturbation::AddQueryTerm { skill: SkillId(0) },
            Perturbation::AddEdge {
                a: PersonId(0),
                b: PersonId(3),
            },
            Perturbation::AddSkill {
                person: PersonId(2),
                skill: SkillId(1),
            },
        ];
        let reference: PerturbationSet = edits.into_iter().collect();
        let reference_key = reference.canonical_key();
        // Walk a handful of distinct permutations deterministically.
        let permutations: [[usize; 4]; 5] = [
            [3, 2, 1, 0],
            [1, 0, 3, 2],
            [2, 3, 0, 1],
            [0, 2, 1, 3],
            [1, 3, 0, 2],
        ];
        for perm in permutations {
            let shuffled: PerturbationSet = perm.into_iter().map(|i| edits[i]).collect();
            assert_eq!(shuffled.canonical_key(), reference_key, "perm {perm:?}");
            assert_ne!(
                shuffled.iter().copied().collect::<Vec<_>>(),
                reference_key,
                "permutation {perm:?} should differ in insertion order"
            );
        }
    }

    #[test]
    fn perturbation_order_is_total_and_by_variant() {
        let skill = Perturbation::AddSkill {
            person: PersonId(9),
            skill: SkillId(9),
        };
        let removal = Perturbation::RemoveSkill {
            person: PersonId(0),
            skill: SkillId(0),
        };
        let query = Perturbation::AddQueryTerm { skill: SkillId(0) };
        // Variant order dominates field values.
        assert!(skill < removal);
        assert!(removal < query);
        // Within a variant, fields order lexicographically.
        let a = Perturbation::AddEdge {
            a: PersonId(1),
            b: PersonId(2),
        };
        let b = Perturbation::AddEdge {
            a: PersonId(1),
            b: PersonId(3),
        };
        assert!(a < b);
    }

    #[test]
    fn subset_relation() {
        let a: PerturbationSet = [Perturbation::AddQueryTerm { skill: SkillId(1) }]
            .into_iter()
            .collect();
        let b: PerturbationSet = [
            Perturbation::AddQueryTerm { skill: SkillId(1) },
            Perturbation::AddQueryTerm { skill: SkillId(2) },
        ]
        .into_iter()
        .collect();
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(PerturbationSet::new().is_subset_of(&a));
    }
}
