//! Keyword queries: the user-supplied set of desired skills.

use crate::{GraphError, Result, SkillId, SkillVocab};

/// A keyword query `q ⊂ S`: the set of skills an expert (or team) should cover.
///
/// The order of keywords is preserved (it only matters for display); membership
/// checks use a sorted copy internally.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Query {
    skills: Vec<SkillId>,
}

impl Query {
    /// Creates a query from skill ids, de-duplicating while preserving first
    /// occurrence order. Returns an error when the resulting query is empty.
    pub fn new<I: IntoIterator<Item = SkillId>>(skills: I) -> Result<Self> {
        let mut seen = Vec::new();
        for s in skills {
            if !seen.contains(&s) {
                seen.push(s);
            }
        }
        if seen.is_empty() {
            return Err(GraphError::EmptyQuery);
        }
        Ok(Query { skills: seen })
    }

    /// Parses a whitespace-separated keyword string against a vocabulary.
    ///
    /// Unknown keywords are skipped (mirroring how a search box would ignore
    /// out-of-vocabulary terms); the query is an error only if *no* keyword is
    /// recognised.
    pub fn parse(text: &str, vocab: &SkillVocab) -> Result<Self> {
        let ids = text.split_whitespace().filter_map(|tok| vocab.id(tok));
        Query::new(ids)
    }

    /// Parses a keyword string, returning an error if *any* keyword is unknown.
    pub fn parse_strict(text: &str, vocab: &SkillVocab) -> Result<Self> {
        let mut ids = Vec::new();
        for tok in text.split_whitespace() {
            ids.push(vocab.require(tok)?);
        }
        Query::new(ids)
    }

    /// The query keywords, in the order they were supplied.
    pub fn skills(&self) -> &[SkillId] {
        &self.skills
    }

    /// Number of keywords `|q|`.
    pub fn len(&self) -> usize {
        self.skills.len()
    }

    /// True when the query has no keywords (never the case for constructed queries).
    pub fn is_empty(&self) -> bool {
        self.skills.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, s: SkillId) -> bool {
        self.skills.contains(&s)
    }

    /// Returns a new query with `s` appended (no-op if already present).
    pub fn with_added(&self, s: SkillId) -> Query {
        let mut q = self.clone();
        if !q.skills.contains(&s) {
            q.skills.push(s);
        }
        q
    }

    /// Returns a new query with `s` removed. The result may be empty, which is
    /// allowed for perturbed queries (a system receiving an empty query simply
    /// has nothing to match).
    pub fn with_removed(&self, s: SkillId) -> Query {
        let mut q = self.clone();
        q.skills.retain(|&x| x != s);
        q
    }

    /// Renders the query as a human-readable keyword string.
    pub fn display(&self, vocab: &SkillVocab) -> String {
        self.skills
            .iter()
            .map(|&s| vocab.name(s).unwrap_or("<unknown>"))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vocab() -> SkillVocab {
        ["xai", "ai", "data", "mining"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    }

    #[test]
    fn parse_skips_unknown_keywords() {
        let v = vocab();
        let q = Query::parse("xai quantum mining", &v).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.display(&v), "xai mining");
    }

    #[test]
    fn parse_strict_rejects_unknown_keywords() {
        let v = vocab();
        let err = Query::parse_strict("xai quantum", &v).unwrap_err();
        assert_eq!(err, GraphError::UnknownSkillName("quantum".into()));
    }

    #[test]
    fn all_unknown_keywords_is_an_error() {
        let v = vocab();
        assert_eq!(
            Query::parse("quantum blockchain", &v).unwrap_err(),
            GraphError::EmptyQuery
        );
    }

    #[test]
    fn duplicates_are_collapsed_preserving_order() {
        let v = vocab();
        let q = Query::parse("mining xai mining", &v).unwrap();
        assert_eq!(q.display(&v), "mining xai");
    }

    #[test]
    fn with_added_and_removed() {
        let v = vocab();
        let q = Query::parse("xai", &v).unwrap();
        let ai = v.id("ai").unwrap();
        let q2 = q.with_added(ai);
        assert!(q2.contains(ai));
        assert_eq!(q2.len(), 2);
        // Adding again is a no-op.
        assert_eq!(q2.with_added(ai).len(), 2);
        let q3 = q2.with_removed(v.id("xai").unwrap());
        assert_eq!(q3.len(), 1);
        assert!(q3.contains(ai));
        // Removing the last keyword yields an (allowed) empty perturbed query.
        assert!(q3.with_removed(ai).is_empty());
    }

    #[test]
    fn new_from_ids_errors_on_empty() {
        assert_eq!(Query::new([]).unwrap_err(), GraphError::EmptyQuery);
    }
}
