//! The live, epoch-versioned graph store: mutable collaboration networks for
//! a long-running serving process.
//!
//! The probe engine and explainer operate on an *immutable* [`CollabGraph`] —
//! and should: probes are pure functions of `(graph, query, delta)`, and the
//! CSR arrays stay borrow-friendly precisely because nothing mutates them. A
//! production deployment, however, sees skills learned, collaborations formed
//! and people hired while requests are in flight. [`GraphStore`] reconciles
//! the two worlds:
//!
//! * writers submit [`UpdateBatch`]es through a **validated, atomic commit
//!   path** — every op is checked against the current graph (plus the batch's
//!   own earlier effects) before anything is applied, so a malformed update
//!   stream returns a [`GraphError`] and changes nothing;
//! * each successful commit publishes a fresh immutable
//!   [`Arc<GraphSnapshot>`] **epoch**; readers pin the epoch they started on
//!   and are never invalidated mid-request;
//! * small batches apply as **compacted deltas** onto the current CSR arrays:
//!   only the rows actually touched (a person's skills, a person's adjacency,
//!   a skill's holders) are re-merged, everything else is bulk-copied, so
//!   commit cost is O(|batch| + touched rows) of row work rather than a full
//!   re-sort/re-hash of the graph;
//! * every `rebuild_interval` delta commits the store runs a **full rebuild**
//!   through the non-panicking [`CollabGraphBuilder::try_person`] /
//!   [`CollabGraphBuilder::try_edge`] ingest path, re-validating every row and
//!   re-grounding the chained content fingerprint (see below).
//!
//! Epochs carry identity through [`CollabGraph::fingerprint`]: a commit
//! advances the fingerprint by hashing the previous one with the batch in
//! O(|batch|), so downstream probe caches can key on `(fingerprint, query)` —
//! an unchanged snapshot keeps its warm cache, a committed update naturally
//! misses into fresh entries.
//!
//! ```
//! use exes_graph::store::{GraphStore, UpdateBatch};
//! use exes_graph::{CollabGraphBuilder, GraphView};
//!
//! let mut b = CollabGraphBuilder::new();
//! let ada = b.add_person("Ada", ["databases"]);
//! let bob = b.add_person("Bob", ["graphs"]);
//! let store = GraphStore::new(b.build());
//!
//! let before = store.snapshot();
//! let mut batch = UpdateBatch::new();
//! batch.add_skill(ada, "xai");
//! batch.add_collaboration(ada, bob);
//! let after = store.commit(&batch).unwrap();
//!
//! // The old epoch is untouched; the new one sees the update.
//! assert_eq!(before.epoch() + 1, after.epoch());
//! assert!(!before.graph().has_edge(ada, bob));
//! assert!(after.graph().has_edge(ada, bob));
//! ```

use crate::{CollabGraph, CollabGraphBuilder, GraphError, PersonId, Result, SkillId, SkillVocab};
use rustc_hash::{FxHashMap, FxHashSet, FxHasher};
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::{Arc, Mutex};

/// One mutation of the live collaboration network.
///
/// People are addressed by [`PersonId`]; people added earlier in the same
/// batch may be addressed by their assigned ids (`num_people + i` for the
/// `i`-th `AddPerson` of the batch, in order). Skills are addressed by name —
/// update streams speak names, and `AddPerson`/`AddSkill` intern unseen names
/// into the vocabulary, while `RemoveSkill` requires a known name.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum UpdateOp {
    /// Adds a person with the given display name and skill names.
    AddPerson {
        /// Display name of the new person.
        name: String,
        /// Skill names; unseen names are interned, duplicates collapsed.
        skills: Vec<String>,
    },
    /// Adds a skill to a person's label set (idempotent: re-adding a held
    /// skill is a no-op, matching [`CollabGraph::with_skill_added`]).
    AddSkill {
        /// The person learning the skill.
        person: PersonId,
        /// Skill name; interned if unseen.
        skill: String,
    },
    /// Removes a skill from a person's label set. Removing a skill the person
    /// does not hold is an error ([`GraphError::SkillNotHeld`]) — update
    /// streams should never claim to forget what was never known.
    RemoveSkill {
        /// The person losing the skill.
        person: PersonId,
        /// Skill name; must already be in the vocabulary.
        skill: String,
    },
    /// Adds a collaboration edge. Duplicates and self-loops are errors.
    AddCollaboration {
        /// One endpoint.
        a: PersonId,
        /// The other endpoint.
        b: PersonId,
    },
    /// Removes a collaboration edge. Missing edges are errors.
    RemoveCollaboration {
        /// One endpoint.
        a: PersonId,
        /// The other endpoint.
        b: PersonId,
    },
}

/// An ordered list of [`UpdateOp`]s committed atomically.
///
/// Ops apply in order, and later ops see earlier ones' effects (a batch may
/// add a person and immediately wire edges to them). Validation covers the
/// whole batch before anything is published: a bad op anywhere rejects the
/// entire batch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UpdateBatch {
    ops: Vec<UpdateOp>,
}

impl UpdateBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an op.
    pub fn push(&mut self, op: UpdateOp) {
        self.ops.push(op);
    }

    /// Appends an `AddPerson` op; the new person's id will be
    /// `num_people + i` where `i` counts this batch's `AddPerson` ops.
    pub fn add_person<I, S>(&mut self, name: &str, skills: I)
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        self.push(UpdateOp::AddPerson {
            name: name.to_string(),
            skills: skills.into_iter().map(|s| s.as_ref().to_string()).collect(),
        });
    }

    /// Appends an `AddSkill` op.
    pub fn add_skill(&mut self, person: PersonId, skill: &str) {
        self.push(UpdateOp::AddSkill {
            person,
            skill: skill.to_string(),
        });
    }

    /// Appends a `RemoveSkill` op.
    pub fn remove_skill(&mut self, person: PersonId, skill: &str) {
        self.push(UpdateOp::RemoveSkill {
            person,
            skill: skill.to_string(),
        });
    }

    /// Appends an `AddCollaboration` op.
    pub fn add_collaboration(&mut self, a: PersonId, b: PersonId) {
        self.push(UpdateOp::AddCollaboration { a, b });
    }

    /// Appends a `RemoveCollaboration` op.
    pub fn remove_collaboration(&mut self, a: PersonId, b: PersonId) {
        self.push(UpdateOp::RemoveCollaboration { a, b });
    }

    /// The ops in application order.
    pub fn ops(&self) -> &[UpdateOp] {
        &self.ops
    }

    /// Number of ops in the batch.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the batch contains no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

impl FromIterator<UpdateOp> for UpdateBatch {
    fn from_iter<T: IntoIterator<Item = UpdateOp>>(iter: T) -> Self {
        UpdateBatch {
            ops: iter.into_iter().collect(),
        }
    }
}

impl Extend<UpdateOp> for UpdateBatch {
    fn extend<T: IntoIterator<Item = UpdateOp>>(&mut self, iter: T) {
        self.ops.extend(iter);
    }
}

/// An immutable graph epoch published by a [`GraphStore`].
///
/// Snapshots are shared as `Arc<GraphSnapshot>`: readers clone the handle,
/// work against a graph that can never change under them, and drop it when
/// done. `Deref`s to [`CollabGraph`] for convenience.
#[derive(Debug, Clone)]
pub struct GraphSnapshot {
    epoch: u64,
    graph: CollabGraph,
}

impl GraphSnapshot {
    /// The epoch number: 0 for the store's seed graph, +1 per commit.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The graph as of this epoch.
    pub fn graph(&self) -> &CollabGraph {
        &self.graph
    }
}

impl Deref for GraphSnapshot {
    type Target = CollabGraph;

    fn deref(&self) -> &CollabGraph {
        &self.graph
    }
}

/// Tunables of a [`GraphStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Run a full rebuild (re-validating every row through the builder's
    /// `try_*` ingest path and re-grounding the chained fingerprint in graph
    /// content) after this many delta commits. `0` disables rebuilds.
    pub rebuild_interval: u64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            rebuild_interval: 64,
        }
    }
}

/// Commit accounting of a [`GraphStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Successful commits (each published one epoch).
    pub commits: u64,
    /// Ops applied across all successful commits.
    pub ops_applied: u64,
    /// Full rebuilds triggered by [`StoreConfig::rebuild_interval`].
    pub rebuilds: u64,
    /// Batches rejected by validation (no epoch was published).
    pub rejected: u64,
}

struct CommitState {
    since_rebuild: u64,
    stats: StoreStats,
}

/// A live graph store publishing immutable [`GraphSnapshot`] epochs.
///
/// The store itself is cheap to share (`Arc<GraphStore>`); all methods take
/// `&self`. Writers serialise on a commit lock that is *not* on the read
/// path: the published snapshot lives behind its own lock held only long
/// enough to clone or swap an `Arc`, so readers never stall behind an
/// in-progress commit — not even one running a full rebuild.
pub struct GraphStore {
    config: StoreConfig,
    /// Serialises commits; held across validation/apply/rebuild.
    commit: Mutex<CommitState>,
    /// The published snapshot; locked only to clone or swap the `Arc`.
    current: Mutex<Arc<GraphSnapshot>>,
}

impl GraphStore {
    /// Creates a store seeded with `graph` at epoch 0, with default tunables.
    pub fn new(graph: CollabGraph) -> Self {
        Self::with_config(graph, StoreConfig::default())
    }

    /// Creates a store with explicit tunables.
    pub fn with_config(graph: CollabGraph, config: StoreConfig) -> Self {
        GraphStore {
            config,
            commit: Mutex::new(CommitState {
                since_rebuild: 0,
                stats: StoreStats::default(),
            }),
            current: Mutex::new(Arc::new(GraphSnapshot { epoch: 0, graph })),
        }
    }

    /// Re-creates a store from persisted state: a decoded graph, the epoch it
    /// was published at, the *chained* fingerprint it carried, and the commit
    /// counter since the last full rebuild.
    ///
    /// [`CollabGraph::from_text`] grounds the fingerprint in content, but a
    /// live store chains fingerprints commit-by-commit — so a recovered store
    /// must override the decoded fingerprint with the persisted one, or warm
    /// probe-cache entries keyed on it would never hit again. Seeding
    /// `since_rebuild` keeps the rebuild schedule (and thus every future
    /// fingerprint re-grounding point) identical to the never-restarted store.
    pub fn resume(
        mut graph: CollabGraph,
        epoch: u64,
        fingerprint: u64,
        since_rebuild: u64,
        config: StoreConfig,
    ) -> Self {
        graph.fingerprint = fingerprint;
        GraphStore {
            config,
            commit: Mutex::new(CommitState {
                since_rebuild,
                stats: StoreStats::default(),
            }),
            current: Mutex::new(Arc::new(GraphSnapshot { epoch, graph })),
        }
    }

    /// The store's tunables.
    pub fn config(&self) -> StoreConfig {
        self.config
    }

    /// Delta commits since the last full rebuild (what
    /// [`StoreConfig::rebuild_interval`] counts against). Persisted by the
    /// durability layer so [`GraphStore::resume`] can keep the rebuild
    /// schedule aligned across restarts.
    pub fn since_rebuild(&self) -> u64 {
        self.commit
            .lock()
            .expect("store lock poisoned")
            .since_rebuild
    }

    /// The current epoch's snapshot. O(1): clones an `Arc`.
    pub fn snapshot(&self) -> Arc<GraphSnapshot> {
        self.current.lock().expect("store lock poisoned").clone()
    }

    /// The current epoch number.
    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch
    }

    /// Commit accounting so far.
    pub fn stats(&self) -> StoreStats {
        self.commit.lock().expect("store lock poisoned").stats
    }

    /// Validates and applies a batch, publishing a new epoch.
    ///
    /// On success, returns the new snapshot (also visible to every subsequent
    /// [`GraphStore::snapshot`] call). On error, nothing changes — the batch
    /// is rejected as a whole, and readers keep seeing the current epoch.
    /// Empty batches are a no-op returning the current snapshot unchanged.
    pub fn commit(&self, batch: &UpdateBatch) -> Result<Arc<GraphSnapshot>> {
        // Writers serialise here; readers are untouched while the new graph
        // is built from the (immutable) current snapshot.
        let mut state = self.commit.lock().expect("store lock poisoned");
        let base = self.snapshot();
        if batch.is_empty() {
            return Ok(base);
        }
        let compiled = match compile(&base.graph, batch) {
            Ok(compiled) => compiled,
            Err(e) => {
                state.stats.rejected += 1;
                return Err(e);
            }
        };
        let fingerprint = chain_fingerprint(base.graph.fingerprint(), batch);
        let mut graph = apply_compiled(&base.graph, compiled, fingerprint);
        state.since_rebuild += 1;
        if self.config.rebuild_interval > 0 && state.since_rebuild >= self.config.rebuild_interval {
            graph = rebuild(&graph)?;
            state.since_rebuild = 0;
            state.stats.rebuilds += 1;
        }
        let snapshot = Arc::new(GraphSnapshot {
            epoch: base.epoch + 1,
            graph,
        });
        *self.current.lock().expect("store lock poisoned") = snapshot.clone();
        state.stats.commits += 1;
        state.stats.ops_applied += batch.len() as u64;
        Ok(snapshot)
    }
}

impl std::fmt::Debug for GraphStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snapshot = self.snapshot();
        let stats = self.stats();
        f.debug_struct("GraphStore")
            .field("epoch", &snapshot.epoch)
            .field("num_people", &snapshot.graph.names.len())
            .field("num_edges", &snapshot.graph.edges.len())
            .field("config", &self.config)
            .field("stats", &stats)
            .finish()
    }
}

/// Chains the previous fingerprint with the batch: O(|batch|), deterministic,
/// and guaranteed to move on every non-empty batch (so stale cache entries
/// can never be revalidated against a changed epoch).
fn chain_fingerprint(previous: u64, batch: &UpdateBatch) -> u64 {
    let mut h = FxHasher::default();
    previous.hash(&mut h);
    batch.ops().hash(&mut h);
    h.finish()
}

/// The net effect of a validated batch, compacted for row-wise application:
/// per-person skill changes, per-edge changes, appended people, the extended
/// vocabulary.
struct CompiledUpdate {
    vocab: SkillVocab,
    /// New people in batch order, with sorted, deduplicated, validated rows.
    new_people: Vec<(String, Vec<SkillId>)>,
    /// Net skill changes of *existing* people: `(skill, added)` pairs.
    skill_changes: FxHashMap<u32, Vec<(SkillId, bool)>>,
    /// Canonical edge keys to append to the edge list, in replay order: the
    /// canonical list is part of the serialised form, and its order must be
    /// byte-identical to applying the ops one at a time (a removed-then-re-
    /// added edge moves to the end of the list, exactly as a replay would
    /// leave it).
    edge_appends: Vec<(u32, u32)>,
    /// Base edges to drop from the edge list (including ones re-appended
    /// later in the batch — those reappear via `edge_appends`).
    edge_base_removes: FxHashSet<(u32, u32)>,
}

/// Rejects skill names the line-oriented codec cannot represent: names that
/// normalise to nothing, or that keep an interior line break after trimming
/// (`to_text` writes one skill name per line, unescaped).
fn check_skill_name(raw: &str) -> Result<()> {
    let norm = SkillVocab::normalize(raw);
    if norm.is_empty() || norm.contains(['\n', '\r']) {
        return Err(GraphError::InvalidSkillName(raw.to_string()));
    }
    Ok(())
}

/// Validates the batch against `graph` plus the batch's own earlier effects,
/// compacting it into net row changes. Pure: touches nothing on error.
fn compile(graph: &CollabGraph, batch: &UpdateBatch) -> Result<CompiledUpdate> {
    let old_n = graph.names.len();
    let mut vocab = graph.vocab.clone();
    let mut new_people: Vec<(String, Vec<SkillId>)> = Vec::new();
    // Pending net state, keyed by (person, skill) / canonical edge. `true`
    // means present after the batch, `false` absent; absence of a key means
    // "as in the base graph".
    let mut pending_skills: FxHashMap<(u32, u32), bool> = FxHashMap::default();
    let mut pending_edges: FxHashMap<(u32, u32), bool> = FxHashMap::default();
    // Edge-list bookkeeping in replay order (see `CompiledUpdate`). Appends
    // are tombstoned (`None`) on removal instead of shifted, with a position
    // index for O(1) lookup, so compile stays O(|batch|) in edge ops.
    let mut edge_appends: Vec<Option<(u32, u32)>> = Vec::new();
    let mut append_pos: FxHashMap<(u32, u32), usize> = FxHashMap::default();
    let mut edge_base_removes: FxHashSet<(u32, u32)> = FxHashSet::default();

    let person_in_scope = |p: PersonId, new_count: usize| p.index() < old_n + new_count;
    let holds = |p: PersonId,
                 s: SkillId,
                 pending: &FxHashMap<(u32, u32), bool>,
                 new_people: &[(String, Vec<SkillId>)]| {
        if let Some(&state) = pending.get(&(p.0, s.0)) {
            return state;
        }
        if p.index() < old_n {
            graph.base_skills(p).binary_search(&s).is_ok()
        } else {
            new_people[p.index() - old_n].1.binary_search(&s).is_ok()
        }
    };
    let edge_present = |a: PersonId, b: PersonId, pending: &FxHashMap<(u32, u32), bool>| {
        let key = CollabGraph::edge_key(a, b);
        match pending.get(&key) {
            Some(&state) => state,
            // Edges touching batch-new people cannot pre-exist.
            None => a.index() < old_n && b.index() < old_n && graph.edge_set.contains(&key),
        }
    };

    for op in batch.ops() {
        match op {
            UpdateOp::AddPerson { name, skills } => {
                // Empty tokens are tolerated (matching the builder); names
                // the codec cannot roundtrip are not.
                let mut row: Vec<SkillId> = Vec::with_capacity(skills.len());
                for s in skills {
                    if s.trim().is_empty() {
                        continue;
                    }
                    check_skill_name(s)?;
                    row.push(vocab.intern(s));
                }
                row.sort_unstable();
                row.dedup();
                new_people.push((name.clone(), row));
            }
            UpdateOp::AddSkill { person, skill } => {
                if !person_in_scope(*person, new_people.len()) {
                    return Err(GraphError::UnknownPerson(*person));
                }
                check_skill_name(skill)?;
                let s = vocab.intern(skill);
                // Idempotent: adding a held skill is a no-op.
                if !holds(*person, s, &pending_skills, &new_people) {
                    pending_skills.insert((person.0, s.0), true);
                }
            }
            UpdateOp::RemoveSkill { person, skill } => {
                if !person_in_scope(*person, new_people.len()) {
                    return Err(GraphError::UnknownPerson(*person));
                }
                let s = vocab.require(skill)?;
                if !holds(*person, s, &pending_skills, &new_people) {
                    return Err(GraphError::SkillNotHeld(*person, s));
                }
                pending_skills.insert((person.0, s.0), false);
            }
            UpdateOp::AddCollaboration { a, b } => {
                if !person_in_scope(*a, new_people.len()) {
                    return Err(GraphError::UnknownPerson(*a));
                }
                if !person_in_scope(*b, new_people.len()) {
                    return Err(GraphError::UnknownPerson(*b));
                }
                if a == b {
                    return Err(GraphError::SelfLoop(*a));
                }
                if edge_present(*a, *b, &pending_edges) {
                    return Err(GraphError::DuplicateEdge(*a, *b));
                }
                let key = CollabGraph::edge_key(*a, *b);
                pending_edges.insert(key, true);
                append_pos.insert(key, edge_appends.len());
                edge_appends.push(Some(key));
            }
            UpdateOp::RemoveCollaboration { a, b } => {
                if !person_in_scope(*a, new_people.len()) {
                    return Err(GraphError::UnknownPerson(*a));
                }
                if !person_in_scope(*b, new_people.len()) {
                    return Err(GraphError::UnknownPerson(*b));
                }
                if !edge_present(*a, *b, &pending_edges) {
                    return Err(GraphError::MissingEdge(*a, *b));
                }
                let key = CollabGraph::edge_key(*a, *b);
                pending_edges.insert(key, false);
                // A batch-appended edge vanishes from the appends; a base
                // edge is marked for removal from the stored list.
                match append_pos.remove(&key) {
                    Some(pos) => edge_appends[pos] = None,
                    None => {
                        edge_base_removes.insert(key);
                    }
                }
            }
        }
    }

    // Fold pending skill states into net changes, routing changes that target
    // batch-new people straight into their rows (their CSR rows are built
    // from scratch anyway).
    let mut skill_changes: FxHashMap<u32, Vec<(SkillId, bool)>> = FxHashMap::default();
    for (&(p, s), &present) in &pending_skills {
        if (p as usize) < old_n {
            let was = graph
                .base_skills(PersonId(p))
                .binary_search(&SkillId(s))
                .is_ok();
            if was != present {
                skill_changes
                    .entry(p)
                    .or_default()
                    .push((SkillId(s), present));
            }
        } else {
            let row = &mut new_people[p as usize - old_n].1;
            match (row.binary_search(&SkillId(s)), present) {
                (Err(pos), true) => row.insert(pos, SkillId(s)),
                (Ok(pos), false) => {
                    row.remove(pos);
                }
                _ => {}
            }
        }
    }
    Ok(CompiledUpdate {
        vocab,
        new_people,
        skill_changes,
        edge_appends: edge_appends.into_iter().flatten().collect(),
        edge_base_removes,
    })
}

/// Merges a sorted row with `(value, add)` changes, preserving sort order.
fn merge_row<T: Copy + Ord>(base: &[T], changes: &[(T, bool)]) -> Vec<T> {
    let mut row = base.to_vec();
    for &(value, add) in changes {
        match (row.binary_search(&value), add) {
            (Err(pos), true) => row.insert(pos, value),
            (Ok(pos), false) => {
                row.remove(pos);
            }
            _ => {}
        }
    }
    row
}

/// Applies a compiled update onto the graph's CSR arrays: touched rows are
/// re-merged in O(row + changes), untouched rows are bulk-copied, and the
/// derived indices (edge set, holder index) are patched rather than rebuilt.
/// Consumes the update so the extended vocabulary moves into the new graph
/// instead of being cloned a second time.
fn apply_compiled(graph: &CollabGraph, update: CompiledUpdate, fingerprint: u64) -> CollabGraph {
    let old_n = graph.names.len();
    let new_n = old_n + update.new_people.len();

    let mut names = graph.names.clone();
    names.extend(update.new_people.iter().map(|(name, _)| name.clone()));

    // --- Skill CSR -----------------------------------------------------
    let extra_skills: usize = update.new_people.iter().map(|(_, row)| row.len()).sum();
    let mut skill_offsets = Vec::with_capacity(new_n + 1);
    let mut skill_labels = Vec::with_capacity(graph.skill_labels.len() + extra_skills);
    skill_offsets.push(0u32);
    for i in 0..old_n {
        match update.skill_changes.get(&(i as u32)) {
            None => skill_labels.extend_from_slice(graph.base_skills(PersonId::from_index(i))),
            Some(changes) => skill_labels.extend(merge_row(
                graph.base_skills(PersonId::from_index(i)),
                changes,
            )),
        }
        skill_offsets.push(skill_labels.len() as u32);
    }
    for (_, row) in &update.new_people {
        skill_labels.extend_from_slice(row);
        skill_offsets.push(skill_labels.len() as u32);
    }

    // --- Adjacency CSR -------------------------------------------------
    // Membership deltas: an edge removed from the base list but re-appended
    // later in the batch only moved position — its endpoints' adjacency and
    // the edge set are unchanged.
    let append_set: FxHashSet<(u32, u32)> = update.edge_appends.iter().copied().collect();
    let net_added: Vec<(u32, u32)> = update
        .edge_appends
        .iter()
        .copied()
        .filter(|key| !graph.edge_set.contains(key))
        .collect();
    let net_removed: Vec<(u32, u32)> = update
        .edge_base_removes
        .iter()
        .copied()
        .filter(|key| !append_set.contains(key))
        .collect();
    let mut adj_changes: FxHashMap<u32, Vec<(PersonId, bool)>> = FxHashMap::default();
    for &(a, b) in &net_added {
        adj_changes.entry(a).or_default().push((PersonId(b), true));
        adj_changes.entry(b).or_default().push((PersonId(a), true));
    }
    for &(a, b) in &net_removed {
        adj_changes.entry(a).or_default().push((PersonId(b), false));
        adj_changes.entry(b).or_default().push((PersonId(a), false));
    }
    let mut adj_offsets = Vec::with_capacity(new_n + 1);
    let mut adjacency = Vec::with_capacity(graph.adjacency.len() + 2 * update.edge_appends.len());
    adj_offsets.push(0u32);
    for i in 0..new_n {
        let base: &[PersonId] = if i < old_n {
            graph.base_neighbors(PersonId::from_index(i))
        } else {
            &[]
        };
        match adj_changes.get(&(i as u32)) {
            None => adjacency.extend_from_slice(base),
            Some(changes) => adjacency.extend(merge_row(base, changes)),
        }
        adj_offsets.push(adjacency.len() as u32);
    }

    // --- Edge list + edge set ------------------------------------------
    let mut edges = if update.edge_base_removes.is_empty() {
        graph.edges.clone()
    } else {
        graph
            .edges
            .iter()
            .copied()
            .filter(|&(a, b)| !update.edge_base_removes.contains(&(a.0, b.0)))
            .collect()
    };
    edges.extend(
        update
            .edge_appends
            .iter()
            .map(|&(a, b)| (PersonId(a), PersonId(b))),
    );
    let mut edge_set = graph.edge_set.clone();
    for key in &net_removed {
        edge_set.remove(key);
    }
    edge_set.extend(net_added.iter().copied());

    // --- Holder index ---------------------------------------------------
    // Touched skills: anything changed on an existing person, plus every
    // skill a new person holds. Untouched skills bulk-copy their holder rows.
    let mut holder_changes: FxHashMap<u32, Vec<(PersonId, bool)>> = FxHashMap::default();
    let mut person_ids: Vec<u32> = update.skill_changes.keys().copied().collect();
    person_ids.sort_unstable();
    for p in person_ids {
        for &(s, add) in &update.skill_changes[&p] {
            holder_changes
                .entry(s.0)
                .or_default()
                .push((PersonId(p), add));
        }
    }
    for (j, (_, row)) in update.new_people.iter().enumerate() {
        for &s in row {
            holder_changes
                .entry(s.0)
                .or_default()
                .push((PersonId::from_index(old_n + j), true));
        }
    }
    let old_vocab_len = graph.vocab.len();
    let extra_holders: usize = holder_changes.values().map(Vec::len).sum();
    let mut holder_offsets = Vec::with_capacity(update.vocab.len() + 1);
    let mut holder_people = Vec::with_capacity(graph.holder_people.len() + extra_holders);
    holder_offsets.push(0u32);
    for s in 0..update.vocab.len() {
        let base: &[PersonId] = if s < old_vocab_len {
            graph.holders_of(SkillId::from_index(s))
        } else {
            &[]
        };
        match holder_changes.get(&(s as u32)) {
            None => holder_people.extend_from_slice(base),
            Some(changes) => holder_people.extend(merge_row(base, changes)),
        }
        holder_offsets.push(holder_people.len() as u32);
    }

    CollabGraph {
        names,
        skill_offsets,
        skill_labels,
        adj_offsets,
        adjacency,
        edges,
        edge_set,
        holder_offsets,
        holder_people,
        vocab: update.vocab,
        fingerprint,
    }
}

/// Rebuilds the graph from scratch through the non-panicking builder ingest
/// path, re-validating every row and re-grounding the fingerprint in content
/// (an identical-content rebuild therefore reproduces the fingerprint a
/// from-rows construction would assign).
fn rebuild(graph: &CollabGraph) -> Result<CollabGraph> {
    let mut builder = CollabGraphBuilder::with_vocab(graph.vocab.clone());
    for p in graph.people() {
        builder.try_person(graph.person_name(p), graph.base_skills(p).to_vec())?;
    }
    for &(a, b) in graph.edge_list() {
        builder.try_edge(a, b)?;
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphView;

    fn seed() -> CollabGraph {
        let mut b = CollabGraphBuilder::new();
        let a = b.add_person("A", ["db", "ml"]);
        let c = b.add_person("B", ["ml"]);
        let d = b.add_person("C", ["vision"]);
        b.add_edge(a, c);
        b.add_edge(c, d);
        b.build()
    }

    /// Replays every committed batch into a fresh builder: the reference the
    /// delta path must agree with byte-for-byte (via `to_text`).
    fn replay_from_scratch(base: &CollabGraph, batches: &[UpdateBatch]) -> CollabGraph {
        let mut graph = base.clone();
        for batch in batches {
            let compiled = compile(&graph, batch).expect("replay batch valid");
            graph = apply_compiled(&graph, compiled, 0);
            graph = rebuild(&graph).expect("replay rebuild");
        }
        graph
    }

    #[test]
    fn commit_applies_skills_edges_and_people() {
        let store = GraphStore::new(seed());
        let mut batch = UpdateBatch::new();
        batch.add_skill(PersonId(2), "ml");
        batch.remove_skill(PersonId(0), "db");
        batch.add_person("D", ["rust", "ml"]);
        batch.add_collaboration(PersonId(3), PersonId(0));
        batch.remove_collaboration(PersonId(1), PersonId(2));
        let snap = store.commit(&batch).unwrap();

        assert_eq!(snap.epoch(), 1);
        assert_eq!(snap.num_people(), 4);
        assert!(snap.person_has_skill(PersonId(2), snap.vocab().id("ml").unwrap()));
        assert!(!snap.person_has_skill(PersonId(0), snap.vocab().id("db").unwrap()));
        assert_eq!(snap.person_name(PersonId(3)), "D");
        assert!(snap.has_edge(PersonId(3), PersonId(0)));
        assert!(!snap.has_edge(PersonId(1), PersonId(2)));
        // The holder index was patched consistently.
        let ml = snap.vocab().id("ml").unwrap();
        assert_eq!(
            snap.holders_of(ml),
            &[PersonId(0), PersonId(1), PersonId(2), PersonId(3)]
        );
        let rust = snap.vocab().id("rust").unwrap();
        assert_eq!(snap.holders_of(rust), &[PersonId(3)]);
    }

    #[test]
    fn snapshots_are_isolated_epochs() {
        let store = GraphStore::new(seed());
        let before = store.snapshot();
        let mut batch = UpdateBatch::new();
        batch.add_collaboration(PersonId(0), PersonId(2));
        let after = store.commit(&batch).unwrap();
        assert_eq!(before.epoch(), 0);
        assert_eq!(after.epoch(), 1);
        assert!(!before.has_edge(PersonId(0), PersonId(2)));
        assert!(after.has_edge(PersonId(0), PersonId(2)));
        assert_ne!(before.fingerprint(), after.fingerprint());
        assert_eq!(store.epoch(), 1);
    }

    #[test]
    fn invalid_batches_are_rejected_atomically() {
        let store = GraphStore::new(seed());
        let fingerprint = store.snapshot().fingerprint();
        let mut batch = UpdateBatch::new();
        batch.add_skill(PersonId(0), "new-skill"); // valid...
        batch.remove_skill(PersonId(0), "vision"); // ...but A never held vision
        let err = store.commit(&batch).unwrap_err();
        assert!(matches!(err, GraphError::SkillNotHeld(_, _)));
        // Nothing changed: same epoch, same fingerprint, vocab not extended.
        let snap = store.snapshot();
        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.fingerprint(), fingerprint);
        assert!(snap.vocab().id("new-skill").is_none());
        assert_eq!(store.stats().rejected, 1);
        assert_eq!(store.stats().commits, 0);
    }

    type ErrCheck = fn(&GraphError) -> bool;

    #[test]
    fn validation_covers_people_edges_and_vocabulary() {
        let store = GraphStore::new(seed());
        let cases: Vec<(UpdateOp, ErrCheck)> = vec![
            (
                UpdateOp::AddSkill {
                    person: PersonId(9),
                    skill: "ml".into(),
                },
                |e| matches!(e, GraphError::UnknownPerson(_)),
            ),
            (
                UpdateOp::RemoveSkill {
                    person: PersonId(0),
                    skill: "nope".into(),
                },
                |e| matches!(e, GraphError::UnknownSkillName(_)),
            ),
            (
                UpdateOp::AddCollaboration {
                    a: PersonId(0),
                    b: PersonId(0),
                },
                |e| matches!(e, GraphError::SelfLoop(_)),
            ),
            (
                UpdateOp::AddCollaboration {
                    a: PersonId(0),
                    b: PersonId(1),
                },
                |e| matches!(e, GraphError::DuplicateEdge(_, _)),
            ),
            (
                UpdateOp::RemoveCollaboration {
                    a: PersonId(0),
                    b: PersonId(2),
                },
                |e| matches!(e, GraphError::MissingEdge(_, _)),
            ),
            (
                UpdateOp::AddCollaboration {
                    a: PersonId(0),
                    b: PersonId(7),
                },
                |e| matches!(e, GraphError::UnknownPerson(_)),
            ),
        ];
        for (op, check) in cases {
            let batch: UpdateBatch = [op.clone()].into_iter().collect();
            let err = store.commit(&batch).unwrap_err();
            assert!(check(&err), "op {op:?} produced {err}");
        }
        assert_eq!(store.epoch(), 0);
    }

    #[test]
    fn hostile_skill_names_are_rejected_not_committed() {
        let store = GraphStore::new(seed());
        // Interior line breaks would corrupt the line-oriented codec.
        let mut batch = UpdateBatch::new();
        batch.add_skill(PersonId(0), "rust\nsneaky");
        assert!(matches!(
            store.commit(&batch).unwrap_err(),
            GraphError::InvalidSkillName(_)
        ));
        // Whitespace-only names normalise to nothing.
        let mut batch = UpdateBatch::new();
        batch.add_skill(PersonId(0), "   ");
        assert!(matches!(
            store.commit(&batch).unwrap_err(),
            GraphError::InvalidSkillName(_)
        ));
        // The same checks guard AddPerson rows (empty tokens stay tolerated,
        // matching the builder).
        let mut batch = UpdateBatch::new();
        batch.add_person("D", ["ok", "", "bad\r\nname"]);
        assert!(matches!(
            store.commit(&batch).unwrap_err(),
            GraphError::InvalidSkillName(_)
        ));
        let mut batch = UpdateBatch::new();
        batch.add_person("D", ["ok", ""]);
        let snap = store.commit(&batch).unwrap();
        assert_eq!(snap.base_skills(PersonId(3)).len(), 1);
        // Everything committed still roundtrips through the codec.
        let back = CollabGraph::from_text(&snap.to_text()).unwrap();
        assert_eq!(back.to_text(), snap.to_text());
    }

    #[test]
    fn batch_ops_see_earlier_effects() {
        let store = GraphStore::new(seed());
        let mut batch = UpdateBatch::new();
        // Add two people and wire them to each other and to an existing node,
        // using their forward-assigned ids.
        batch.add_person("D", ["rust"]);
        batch.add_person("E", Vec::<String>::new());
        batch.add_collaboration(PersonId(3), PersonId(4));
        batch.add_collaboration(PersonId(4), PersonId(0));
        batch.add_skill(PersonId(4), "rust");
        // Add-then-remove inside one batch nets out to nothing.
        batch.add_skill(PersonId(0), "transient");
        batch.remove_skill(PersonId(0), "transient");
        let snap = store.commit(&batch).unwrap();
        assert_eq!(snap.num_people(), 5);
        assert!(snap.has_edge(PersonId(3), PersonId(4)));
        assert!(snap.has_edge(PersonId(4), PersonId(0)));
        let rust = snap.vocab().id("rust").unwrap();
        assert_eq!(snap.holders_of(rust), &[PersonId(3), PersonId(4)]);
        let transient = snap.vocab().id("transient").unwrap();
        assert!(!snap.person_has_skill(PersonId(0), transient));
    }

    #[test]
    fn idempotent_skill_add_is_tolerated() {
        let store = GraphStore::new(seed());
        let mut batch = UpdateBatch::new();
        batch.add_skill(PersonId(0), "ml"); // already held
        let snap = store.commit(&batch).unwrap();
        assert_eq!(snap.epoch(), 1);
        let ml = snap.vocab().id("ml").unwrap();
        assert_eq!(snap.base_skills(PersonId(0)).len(), 2);
        assert_eq!(snap.holders_of(ml), &[PersonId(0), PersonId(1)]);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let store = GraphStore::new(seed());
        let before = store.snapshot();
        let after = store.commit(&UpdateBatch::new()).unwrap();
        assert_eq!(before.epoch(), after.epoch());
        assert_eq!(store.stats().commits, 0);
    }

    #[test]
    fn delta_path_matches_from_scratch_replay() {
        let base = seed();
        let store = GraphStore::with_config(
            base.clone(),
            StoreConfig {
                rebuild_interval: 0,
            },
        );
        let mut batches = Vec::new();
        let mut batch = UpdateBatch::new();
        batch.add_person("D", ["db", "rust"]);
        batch.add_collaboration(PersonId(3), PersonId(1));
        batches.push(batch);
        let mut batch = UpdateBatch::new();
        batch.remove_skill(PersonId(0), "ml");
        batch.remove_collaboration(PersonId(1), PersonId(2));
        batch.add_skill(PersonId(2), "db");
        batches.push(batch);
        for b in &batches {
            store.commit(b).unwrap();
        }
        let reference = replay_from_scratch(&base, &batches);
        assert_eq!(store.snapshot().to_text(), reference.to_text());
    }

    #[test]
    fn periodic_rebuild_preserves_content_and_regrounds_fingerprint() {
        let base = seed();
        let delta_store = GraphStore::with_config(
            base.clone(),
            StoreConfig {
                rebuild_interval: 0,
            },
        );
        let rebuild_store = GraphStore::with_config(
            base.clone(),
            StoreConfig {
                rebuild_interval: 1,
            },
        );
        let mut batch = UpdateBatch::new();
        batch.add_person("D", ["ml"]);
        batch.add_collaboration(PersonId(3), PersonId(0));
        delta_store.commit(&batch).unwrap();
        rebuild_store.commit(&batch).unwrap();
        // Same content either way...
        assert_eq!(
            delta_store.snapshot().to_text(),
            rebuild_store.snapshot().to_text()
        );
        assert_eq!(rebuild_store.stats().rebuilds, 1);
        // ...and the rebuild's fingerprint equals a from-rows construction's.
        let reference = CollabGraph::from_text(&rebuild_store.snapshot().to_text()).unwrap();
        assert_eq!(
            rebuild_store.snapshot().fingerprint(),
            reference.fingerprint()
        );
    }

    #[test]
    fn commit_advances_fingerprint_and_undo_restores_it_after_rebuild() {
        let store = GraphStore::with_config(
            seed(),
            StoreConfig {
                rebuild_interval: 2,
            },
        );
        let fp0 = store.snapshot().fingerprint();
        let mut add = UpdateBatch::new();
        add.add_collaboration(PersonId(0), PersonId(2));
        let fp1 = store.commit(&add).unwrap().fingerprint();
        assert_ne!(fp0, fp1);
        let mut undo = UpdateBatch::new();
        undo.remove_collaboration(PersonId(0), PersonId(2));
        // The second commit triggers the rebuild, re-grounding the
        // fingerprint in content — which now equals the seed's.
        let fp2 = store.commit(&undo).unwrap().fingerprint();
        assert_eq!(store.stats().rebuilds, 1);
        assert_eq!(fp0, fp2);
    }

    #[test]
    fn resume_restores_epoch_fingerprint_and_rebuild_schedule() {
        let config = StoreConfig {
            rebuild_interval: 3,
        };
        let live = GraphStore::with_config(seed(), config);
        let mut batch = UpdateBatch::new();
        batch.add_skill(PersonId(0), "xai");
        live.commit(&batch).unwrap();
        let snap = live.snapshot();

        // A from_text decode grounds the fingerprint in content — resume must
        // override it with the persisted chained value.
        let decoded = CollabGraph::from_text(&snap.to_text()).unwrap();
        assert_ne!(decoded.fingerprint(), snap.fingerprint());
        let resumed = GraphStore::resume(
            decoded,
            snap.epoch(),
            snap.fingerprint(),
            live.since_rebuild(),
            config,
        );
        assert_eq!(resumed.epoch(), snap.epoch());
        assert_eq!(resumed.snapshot().fingerprint(), snap.fingerprint());
        assert_eq!(resumed.since_rebuild(), 1);

        // Subsequent commits chain identically on both stores, through the
        // rebuild re-grounding point and beyond.
        for round in 0..4u32 {
            let mut next = UpdateBatch::new();
            next.add_person(&format!("extra-{round}"), ["graphs"]);
            let a = live.commit(&next).unwrap();
            let b = resumed.commit(&next).unwrap();
            assert_eq!(a.epoch(), b.epoch());
            assert_eq!(a.fingerprint(), b.fingerprint());
            assert_eq!(a.to_text(), b.to_text());
        }
        assert_eq!(live.stats().rebuilds, resumed.stats().rebuilds);
    }
}
