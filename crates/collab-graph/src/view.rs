//! Read-only views over (possibly perturbed) collaboration networks.

use crate::{CollabGraph, PersonId, PerturbationSet, Query, SkillId, SkillVocab};
use rustc_hash::{FxHashMap, FxHashSet};

/// A read-only view of a collaboration network.
///
/// Expert-search and team-formation systems are written against this trait so
/// that ExES can probe them with perturbed inputs ([`PerturbedGraph`]) without
/// copying the whole graph for each probe.
pub trait GraphView {
    /// Number of people `|P|`.
    fn num_people(&self) -> usize;

    /// Number of collaboration edges `|E|`.
    fn num_edges(&self) -> usize;

    /// The shared skill vocabulary.
    fn vocab(&self) -> &SkillVocab;

    /// Whether person `p` holds skill `s` in this view.
    fn person_has_skill(&self, p: PersonId, s: SkillId) -> bool;

    /// The skills of person `p` in this view (sorted ascending).
    fn person_skills(&self, p: PersonId) -> Vec<SkillId>;

    /// The collaborators of person `p` in this view (sorted ascending).
    fn neighbors(&self, p: PersonId) -> Vec<PersonId>;

    /// Degree of `p` in this view.
    fn degree(&self, p: PersonId) -> usize {
        self.neighbors(p).len()
    }

    /// Whether an edge exists between `a` and `b` in this view.
    fn has_edge(&self, a: PersonId, b: PersonId) -> bool;

    /// All edges of the view, canonically ordered (`a < b`), each once.
    fn edges(&self) -> Vec<(PersonId, PersonId)>;

    /// Iterator over all person ids.
    fn people_ids(&self) -> Vec<PersonId> {
        (0..self.num_people()).map(PersonId::from_index).collect()
    }

    /// Number of the query's keywords held by `p` in this view.
    fn query_match_count(&self, p: PersonId, query: &Query) -> usize {
        query
            .skills()
            .iter()
            .filter(|&&s| self.person_has_skill(p, s))
            .count()
    }
}

/// A copy-on-write overlay applying a [`PerturbationSet`] to a base graph.
///
/// Construction cost and memory are proportional to the number of perturbations,
/// not to the graph size, which is what makes beam search over thousands of
/// candidate perturbations feasible (Pruning Strategy 3 relies on cheap probes).
#[derive(Debug, Clone)]
pub struct PerturbedGraph<'a> {
    base: &'a CollabGraph,
    added_skills: FxHashSet<(u32, u32)>,
    removed_skills: FxHashSet<(u32, u32)>,
    added_edges: FxHashSet<(u32, u32)>,
    removed_edges: FxHashSet<(u32, u32)>,
    /// Extra neighbours induced by added edges, per endpoint.
    extra_neighbors: FxHashMap<u32, Vec<PersonId>>,
}

impl<'a> PerturbedGraph<'a> {
    /// Wraps `base` with an empty delta (behaves identically to `base`).
    pub fn identity(base: &'a CollabGraph) -> Self {
        PerturbedGraph {
            base,
            added_skills: FxHashSet::default(),
            removed_skills: FxHashSet::default(),
            added_edges: FxHashSet::default(),
            removed_edges: FxHashSet::default(),
            extra_neighbors: FxHashMap::default(),
        }
    }

    /// Wraps `base` applying the graph-side perturbations of `delta`.
    ///
    /// Query-side perturbations in `delta` are ignored here; apply them with
    /// [`PerturbationSet::apply_to_query`].
    pub fn new(base: &'a CollabGraph, delta: &PerturbationSet) -> Self {
        let mut view = PerturbedGraph::identity(base);
        for p in delta.iter() {
            view.apply(p);
        }
        view
    }

    /// The underlying unperturbed graph.
    pub fn base(&self) -> &'a CollabGraph {
        self.base
    }

    fn apply(&mut self, p: &crate::Perturbation) {
        use crate::Perturbation::*;
        match *p {
            AddSkill { person, skill } => {
                let key = (person.0, skill.0);
                if !self.removed_skills.remove(&key) && !self.base.person_has_skill(person, skill)
                {
                    self.added_skills.insert(key);
                }
            }
            RemoveSkill { person, skill } => {
                let key = (person.0, skill.0);
                if !self.added_skills.remove(&key) && self.base.person_has_skill(person, skill) {
                    self.removed_skills.insert(key);
                }
            }
            AddEdge { a, b } => {
                if a == b {
                    return;
                }
                let key = CollabGraph::edge_key(a, b);
                if self.removed_edges.remove(&key) {
                    return;
                }
                if !self.base.has_edge(a, b) && self.added_edges.insert(key) {
                    self.extra_neighbors.entry(a.0).or_default().push(b);
                    self.extra_neighbors.entry(b.0).or_default().push(a);
                }
            }
            RemoveEdge { a, b } => {
                if a == b {
                    return;
                }
                let key = CollabGraph::edge_key(a, b);
                if self.added_edges.remove(&key) {
                    if let Some(v) = self.extra_neighbors.get_mut(&a.0) {
                        v.retain(|&n| n != b);
                    }
                    if let Some(v) = self.extra_neighbors.get_mut(&b.0) {
                        v.retain(|&n| n != a);
                    }
                    return;
                }
                if self.base.has_edge(a, b) {
                    self.removed_edges.insert(key);
                }
            }
            AddQueryTerm { .. } | RemoveQueryTerm { .. } => {}
        }
    }

    /// Number of graph-side changes in this overlay.
    pub fn delta_size(&self) -> usize {
        self.added_skills.len()
            + self.removed_skills.len()
            + self.added_edges.len()
            + self.removed_edges.len()
    }
}

impl GraphView for PerturbedGraph<'_> {
    fn num_people(&self) -> usize {
        self.base.num_people()
    }

    fn num_edges(&self) -> usize {
        self.base.num_edges() + self.added_edges.len() - self.removed_edges.len()
    }

    fn vocab(&self) -> &SkillVocab {
        self.base.vocab()
    }

    fn person_has_skill(&self, p: PersonId, s: SkillId) -> bool {
        let key = (p.0, s.0);
        if self.removed_skills.contains(&key) {
            return false;
        }
        if self.added_skills.contains(&key) {
            return true;
        }
        self.base.person_has_skill(p, s)
    }

    fn person_skills(&self, p: PersonId) -> Vec<SkillId> {
        let mut skills: Vec<SkillId> = self
            .base
            .base_skills(p)
            .iter()
            .copied()
            .filter(|s| !self.removed_skills.contains(&(p.0, s.0)))
            .collect();
        for &(person, skill) in &self.added_skills {
            if person == p.0 {
                skills.push(SkillId(skill));
            }
        }
        skills.sort_unstable();
        skills.dedup();
        skills
    }

    fn neighbors(&self, p: PersonId) -> Vec<PersonId> {
        let mut ns: Vec<PersonId> = self
            .base
            .base_neighbors(p)
            .iter()
            .copied()
            .filter(|&n| !self.removed_edges.contains(&CollabGraph::edge_key(p, n)))
            .collect();
        if let Some(extra) = self.extra_neighbors.get(&p.0) {
            ns.extend_from_slice(extra);
        }
        ns.sort_unstable();
        ns.dedup();
        ns
    }

    fn has_edge(&self, a: PersonId, b: PersonId) -> bool {
        if a == b {
            return false;
        }
        let key = CollabGraph::edge_key(a, b);
        if self.removed_edges.contains(&key) {
            return false;
        }
        if self.added_edges.contains(&key) {
            return true;
        }
        self.base.has_edge(a, b)
    }

    fn edges(&self) -> Vec<(PersonId, PersonId)> {
        let mut es: Vec<(PersonId, PersonId)> = self
            .base
            .edges()
            .into_iter()
            .filter(|&(a, b)| !self.removed_edges.contains(&CollabGraph::edge_key(a, b)))
            .collect();
        for &(a, b) in &self.added_edges {
            es.push((PersonId(a), PersonId(b)));
        }
        es.sort_unstable();
        es
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CollabGraphBuilder, Perturbation};

    fn toy() -> CollabGraph {
        let mut b = CollabGraphBuilder::new();
        let p0 = b.add_person("p0", ["db", "ml"]);
        let p1 = b.add_person("p1", ["ml"]);
        let p2 = b.add_person("p2", ["vision"]);
        b.add_edge(p0, p1);
        b.add_edge(p1, p2);
        b.build()
    }

    #[test]
    fn identity_overlay_matches_base() {
        let g = toy();
        let v = PerturbedGraph::identity(&g);
        assert_eq!(v.num_people(), g.num_people());
        assert_eq!(v.num_edges(), g.num_edges());
        assert_eq!(v.edges(), g.edges());
        for p in g.people() {
            assert_eq!(v.person_skills(p), g.person_skills(p));
            assert_eq!(v.neighbors(p), g.neighbors(p));
        }
    }

    #[test]
    fn skill_add_and_remove_overlay() {
        let g = toy();
        let vision = g.vocab().id("vision").unwrap();
        let ml = g.vocab().id("ml").unwrap();
        let mut d = PerturbationSet::new();
        d.push(Perturbation::AddSkill {
            person: PersonId(0),
            skill: vision,
        });
        d.push(Perturbation::RemoveSkill {
            person: PersonId(1),
            skill: ml,
        });
        let v = PerturbedGraph::new(&g, &d);
        assert!(v.person_has_skill(PersonId(0), vision));
        assert!(!v.person_has_skill(PersonId(1), ml));
        assert!(v.person_skills(PersonId(1)).is_empty());
        assert_eq!(v.person_skills(PersonId(0)).len(), 3);
        // Base graph is untouched.
        assert!(!g.person_has_skill(PersonId(0), vision));
    }

    #[test]
    fn edge_add_and_remove_overlay() {
        let g = toy();
        let mut d = PerturbationSet::new();
        d.push(Perturbation::AddEdge {
            a: PersonId(0),
            b: PersonId(2),
        });
        d.push(Perturbation::RemoveEdge {
            a: PersonId(0),
            b: PersonId(1),
        });
        let v = PerturbedGraph::new(&g, &d);
        assert!(v.has_edge(PersonId(0), PersonId(2)));
        assert!(!v.has_edge(PersonId(0), PersonId(1)));
        assert_eq!(v.num_edges(), 2);
        assert_eq!(v.neighbors(PersonId(0)), vec![PersonId(2)]);
        assert_eq!(v.neighbors(PersonId(2)), vec![PersonId(0), PersonId(1)]);
        assert_eq!(v.edges().len(), 2);
    }

    #[test]
    fn inverse_perturbations_cancel() {
        let g = toy();
        let mut d = PerturbationSet::new();
        d.push(Perturbation::AddEdge {
            a: PersonId(0),
            b: PersonId(2),
        });
        d.push(Perturbation::RemoveEdge {
            a: PersonId(2),
            b: PersonId(0),
        });
        let v = PerturbedGraph::new(&g, &d);
        assert!(!v.has_edge(PersonId(0), PersonId(2)));
        assert_eq!(v.num_edges(), g.num_edges());
        assert_eq!(v.delta_size(), 0);

        let ml = g.vocab().id("ml").unwrap();
        let mut d2 = PerturbationSet::new();
        d2.push(Perturbation::RemoveSkill {
            person: PersonId(0),
            skill: ml,
        });
        d2.push(Perturbation::AddSkill {
            person: PersonId(0),
            skill: ml,
        });
        let v2 = PerturbedGraph::new(&g, &d2);
        assert!(v2.person_has_skill(PersonId(0), ml));
        assert_eq!(v2.delta_size(), 0);
    }

    #[test]
    fn redundant_perturbations_are_no_ops() {
        let g = toy();
        let ml = g.vocab().id("ml").unwrap();
        let mut d = PerturbationSet::new();
        // Adding a skill the person already has, removing a missing edge.
        d.push(Perturbation::AddSkill {
            person: PersonId(0),
            skill: ml,
        });
        d.push(Perturbation::RemoveEdge {
            a: PersonId(0),
            b: PersonId(2),
        });
        d.push(Perturbation::AddEdge {
            a: PersonId(1),
            b: PersonId(1),
        });
        let v = PerturbedGraph::new(&g, &d);
        assert_eq!(v.delta_size(), 0);
        assert_eq!(v.num_edges(), g.num_edges());
    }

    #[test]
    fn query_match_count_reflects_overlay() {
        let g = toy();
        let q = Query::parse("ml vision", g.vocab()).unwrap();
        assert_eq!(g.query_match_count(PersonId(0), &q), 1);
        let vision = g.vocab().id("vision").unwrap();
        let mut d = PerturbationSet::new();
        d.push(Perturbation::AddSkill {
            person: PersonId(0),
            skill: vision,
        });
        let v = PerturbedGraph::new(&g, &d);
        assert_eq!(v.query_match_count(PersonId(0), &q), 2);
    }
}
