//! Read-only views over (possibly perturbed) collaboration networks.
//!
//! This is the probe hot path: every counterfactual candidate evaluation ranks
//! the whole graph through these accessors, so they must not allocate.
//! [`CollabGraph`] answers straight from its CSR arrays; [`PerturbedGraph`]
//! resolves its small sorted delta at *construction* time into per-person
//! patched rows, after which every accessor is a borrow too.

use crate::{CollabGraph, PersonId, PerturbationSet, Query, SkillId, SkillVocab};

/// Iterator over all person ids of a view, in ascending order.
#[derive(Debug, Clone)]
pub struct PersonIds {
    range: std::ops::Range<u32>,
}

impl PersonIds {
    /// Ids `0..n`.
    pub fn up_to(n: usize) -> Self {
        PersonIds {
            range: 0..u32::try_from(n).expect("person count exceeds u32::MAX"),
        }
    }
}

impl Iterator for PersonIds {
    type Item = PersonId;

    #[inline]
    fn next(&mut self) -> Option<PersonId> {
        self.range.next().map(PersonId)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.range.size_hint()
    }
}

impl ExactSizeIterator for PersonIds {}

impl DoubleEndedIterator for PersonIds {
    fn next_back(&mut self) -> Option<PersonId> {
        self.range.next_back().map(PersonId)
    }
}

/// Iterator over the edges of a view: the base edge list (in storage order)
/// minus removed edges, followed by added edges (in canonical sorted order).
///
/// Yielding from borrowed slices keeps [`GraphView::edges`] allocation-free
/// for both the base graph and perturbed overlays.
#[derive(Debug, Clone)]
pub struct EdgesIter<'a> {
    base: std::slice::Iter<'a, (PersonId, PersonId)>,
    /// Sorted canonical keys of removed edges; empty for base graphs.
    removed: &'a [(u32, u32)],
    /// Sorted canonical keys of added edges; empty for base graphs.
    added: std::slice::Iter<'a, (u32, u32)>,
}

impl<'a> EdgesIter<'a> {
    /// Iterates a plain edge slice.
    pub fn base(edges: &'a [(PersonId, PersonId)]) -> Self {
        EdgesIter {
            base: edges.iter(),
            removed: &[],
            added: [].iter(),
        }
    }

    /// Iterates a base edge slice under a sorted add/remove delta.
    pub fn overlay(
        edges: &'a [(PersonId, PersonId)],
        removed: &'a [(u32, u32)],
        added: &'a [(u32, u32)],
    ) -> Self {
        EdgesIter {
            base: edges.iter(),
            removed,
            added: added.iter(),
        }
    }
}

impl Iterator for EdgesIter<'_> {
    type Item = (PersonId, PersonId);

    fn next(&mut self) -> Option<(PersonId, PersonId)> {
        for &(a, b) in self.base.by_ref() {
            if self.removed.is_empty()
                || self
                    .removed
                    .binary_search(&CollabGraph::edge_key(a, b))
                    .is_err()
            {
                return Some((a, b));
            }
        }
        self.added.next().map(|&(a, b)| (PersonId(a), PersonId(b)))
    }
}

/// A read-only view of a collaboration network.
///
/// Expert-search and team-formation systems are written against this trait so
/// that ExES can probe them with perturbed inputs ([`PerturbedGraph`]) without
/// copying the whole graph for each probe. All accessors on the hot path
/// return borrowed slices or iterators — implementations must not build a
/// fresh collection per call.
pub trait GraphView {
    /// Number of people `|P|`.
    fn num_people(&self) -> usize;

    /// Number of collaboration edges `|E|`.
    fn num_edges(&self) -> usize;

    /// The shared skill vocabulary.
    fn vocab(&self) -> &SkillVocab;

    /// Whether person `p` holds skill `s` in this view.
    fn person_has_skill(&self, p: PersonId, s: SkillId) -> bool;

    /// The skills of person `p` in this view (sorted ascending).
    fn person_skills(&self, p: PersonId) -> &[SkillId];

    /// The collaborators of person `p` in this view (sorted ascending).
    fn neighbors(&self, p: PersonId) -> &[PersonId];

    /// Degree of `p` in this view.
    fn degree(&self, p: PersonId) -> usize {
        self.neighbors(p).len()
    }

    /// Whether an edge exists between `a` and `b` in this view.
    fn has_edge(&self, a: PersonId, b: PersonId) -> bool;

    /// Iterator over the edges of the view, each undirected edge once with
    /// canonical endpoint order (`a < b`).
    fn edges(&self) -> EdgesIter<'_>;

    /// Iterator over all person ids.
    fn people_ids(&self) -> PersonIds {
        PersonIds::up_to(self.num_people())
    }

    /// Number of the query's keywords held by `p` in this view.
    fn query_match_count(&self, p: PersonId, query: &Query) -> usize {
        query
            .skills()
            .iter()
            .filter(|&&s| self.person_has_skill(p, s))
            .count()
    }
}

/// A thin delta overlay applying a [`PerturbationSet`] to a base graph.
///
/// Construction cost and memory are proportional to the number of
/// perturbations, not to the graph size: the delta is kept as four small
/// *sorted* add/remove key sets consulted on top of the base CSR arrays, plus
/// fully merged skill/neighbor rows for the handful of people the delta
/// touches. After construction every accessor is a borrow — probing thousands
/// of candidate perturbations allocates nothing per probe call.
#[derive(Debug, Clone)]
pub struct PerturbedGraph<'a> {
    base: &'a CollabGraph,
    /// Sorted `(person, skill)` additions.
    added_skills: Vec<(u32, u32)>,
    /// Sorted `(person, skill)` removals.
    removed_skills: Vec<(u32, u32)>,
    /// Sorted canonical `(a, b)` edge additions.
    added_edges: Vec<(u32, u32)>,
    /// Sorted canonical `(a, b)` edge removals.
    removed_edges: Vec<(u32, u32)>,
    /// Merged skill rows for people with skill deltas, sorted by person id.
    patched_skills: Vec<(u32, Vec<SkillId>)>,
    /// Merged adjacency rows for people with edge deltas, sorted by person id.
    patched_neighbors: Vec<(u32, Vec<PersonId>)>,
}

impl<'a> PerturbedGraph<'a> {
    /// Wraps `base` with an empty delta (behaves identically to `base`).
    pub fn identity(base: &'a CollabGraph) -> Self {
        PerturbedGraph {
            base,
            added_skills: Vec::new(),
            removed_skills: Vec::new(),
            added_edges: Vec::new(),
            removed_edges: Vec::new(),
            patched_skills: Vec::new(),
            patched_neighbors: Vec::new(),
        }
    }

    /// Wraps `base` applying the graph-side perturbations of `delta`.
    ///
    /// Query-side perturbations in `delta` are ignored here; apply them with
    /// [`PerturbationSet::apply_to_query`].
    pub fn new(base: &'a CollabGraph, delta: &PerturbationSet) -> Self {
        let mut view = PerturbedGraph::identity(base);
        for p in delta.iter() {
            view.apply(p);
        }
        view.finalize();
        view
    }

    /// The underlying unperturbed graph.
    pub fn base(&self) -> &'a CollabGraph {
        self.base
    }

    fn apply(&mut self, p: &crate::Perturbation) {
        use crate::Perturbation::*;
        match *p {
            AddSkill { person, skill } => {
                let key = (person.0, skill.0);
                if remove_key(&mut self.removed_skills, key) {
                    return;
                }
                if !self.base.person_has_skill(person, skill) {
                    insert_key(&mut self.added_skills, key);
                }
            }
            RemoveSkill { person, skill } => {
                let key = (person.0, skill.0);
                if remove_key(&mut self.added_skills, key) {
                    return;
                }
                if self.base.person_has_skill(person, skill) {
                    insert_key(&mut self.removed_skills, key);
                }
            }
            AddEdge { a, b } => {
                if a == b {
                    return;
                }
                let key = CollabGraph::edge_key(a, b);
                if remove_key(&mut self.removed_edges, key) {
                    return;
                }
                if !self.base.has_edge(a, b) {
                    insert_key(&mut self.added_edges, key);
                }
            }
            RemoveEdge { a, b } => {
                if a == b {
                    return;
                }
                let key = CollabGraph::edge_key(a, b);
                if remove_key(&mut self.added_edges, key) {
                    return;
                }
                if self.base.has_edge(a, b) {
                    insert_key(&mut self.removed_edges, key);
                }
            }
            AddQueryTerm { .. } | RemoveQueryTerm { .. } => {}
        }
    }

    /// Sorts the delta sets and materialises merged rows for every touched
    /// person. O(delta · log + Σ touched row lengths).
    fn finalize(&mut self) {
        self.added_skills.sort_unstable();
        self.removed_skills.sort_unstable();
        self.added_edges.sort_unstable();
        self.removed_edges.sort_unstable();

        // People whose skill rows change.
        let mut touched: Vec<u32> = self
            .added_skills
            .iter()
            .chain(self.removed_skills.iter())
            .map(|&(p, _)| p)
            .collect();
        touched.sort_unstable();
        touched.dedup();
        self.patched_skills = touched
            .into_iter()
            .map(|p| {
                let mut row: Vec<SkillId> = self
                    .base
                    .base_skills(PersonId(p))
                    .iter()
                    .copied()
                    .filter(|s| self.removed_skills.binary_search(&(p, s.0)).is_err())
                    .collect();
                row.extend(
                    self.added_skills
                        .iter()
                        .filter(|&&(person, _)| person == p)
                        .map(|&(_, s)| SkillId(s)),
                );
                row.sort_unstable();
                row.dedup();
                (p, row)
            })
            .collect();

        // People whose adjacency rows change.
        let mut touched: Vec<u32> = self
            .added_edges
            .iter()
            .chain(self.removed_edges.iter())
            .flat_map(|&(a, b)| [a, b])
            .collect();
        touched.sort_unstable();
        touched.dedup();
        self.patched_neighbors = touched
            .into_iter()
            .map(|p| {
                let pid = PersonId(p);
                let mut row: Vec<PersonId> = self
                    .base
                    .base_neighbors(pid)
                    .iter()
                    .copied()
                    .filter(|&n| {
                        self.removed_edges
                            .binary_search(&CollabGraph::edge_key(pid, n))
                            .is_err()
                    })
                    .collect();
                row.extend(self.added_edges.iter().filter_map(|&(a, b)| {
                    if a == p {
                        Some(PersonId(b))
                    } else if b == p {
                        Some(PersonId(a))
                    } else {
                        None
                    }
                }));
                row.sort_unstable();
                row.dedup();
                (p, row)
            })
            .collect();
    }

    /// Number of graph-side changes in this overlay.
    pub fn delta_size(&self) -> usize {
        self.added_skills.len()
            + self.removed_skills.len()
            + self.added_edges.len()
            + self.removed_edges.len()
    }

    /// Sorted `(person, skill)` pairs this overlay adds on top of the base.
    ///
    /// Every pair is effective: the base graph does not already have it, and
    /// no later perturbation cancelled it.
    pub fn skill_additions(&self) -> impl Iterator<Item = (PersonId, SkillId)> + '_ {
        self.added_skills
            .iter()
            .map(|&(p, s)| (PersonId(p), SkillId(s)))
    }

    /// Sorted `(person, skill)` pairs this overlay removes from the base.
    pub fn skill_removals(&self) -> impl Iterator<Item = (PersonId, SkillId)> + '_ {
        self.removed_skills
            .iter()
            .map(|&(p, s)| (PersonId(p), SkillId(s)))
    }

    /// Sorted canonical `(a, b)` edges this overlay adds on top of the base.
    pub fn edge_additions(&self) -> impl Iterator<Item = (PersonId, PersonId)> + '_ {
        self.added_edges
            .iter()
            .map(|&(a, b)| (PersonId(a), PersonId(b)))
    }

    /// Sorted canonical `(a, b)` edges this overlay removes from the base.
    pub fn edge_removals(&self) -> impl Iterator<Item = (PersonId, PersonId)> + '_ {
        self.removed_edges
            .iter()
            .map(|&(a, b)| (PersonId(a), PersonId(b)))
    }

    /// People whose skill or adjacency rows differ from the base graph,
    /// sorted ascending. This is the zero-hop incremental frontier: only
    /// these rows can answer differently from the base.
    pub fn touched_people(&self) -> Vec<PersonId> {
        let mut out: Vec<u32> = self
            .patched_skills
            .iter()
            .map(|&(p, _)| p)
            .chain(self.patched_neighbors.iter().map(|&(p, _)| p))
            .collect();
        out.sort_unstable();
        out.dedup();
        out.into_iter().map(PersonId).collect()
    }

    /// Skills whose holder sets differ from the base graph, sorted ascending.
    ///
    /// Any corpus-level statistic over one of these skills (e.g. its inverse
    /// document frequency) may change under this overlay; statistics over
    /// every other skill are untouched.
    pub fn touched_skills(&self) -> Vec<SkillId> {
        let mut out: Vec<u32> = self
            .added_skills
            .iter()
            .chain(self.removed_skills.iter())
            .map(|&(_, s)| s)
            .collect();
        out.sort_unstable();
        out.dedup();
        out.into_iter().map(SkillId).collect()
    }

    /// Expands `seeds` by up to `hops` BFS steps over the *union* of the base
    /// and perturbed adjacency (so both endpoints of removed edges stay in
    /// range), returning the closed ball sorted ascending — or `None` once it
    /// would exceed `cap` people, at which point a full re-evaluation is
    /// cheaper than a "localized" one.
    pub fn expand_frontier(
        &self,
        seeds: &[PersonId],
        hops: usize,
        cap: usize,
    ) -> Option<Vec<PersonId>> {
        let n = self.base.num_people();
        let mut visited = vec![false; n];
        let mut all: Vec<PersonId> = Vec::new();
        let mut frontier: Vec<PersonId> = Vec::new();
        for &p in seeds {
            if p.index() < n && !visited[p.index()] {
                visited[p.index()] = true;
                if all.len() >= cap {
                    return None;
                }
                all.push(p);
                frontier.push(p);
            }
        }
        for _ in 0..hops {
            let mut next = Vec::new();
            for &p in &frontier {
                let merged = self
                    .neighbors(p)
                    .iter()
                    .chain(self.base.base_neighbors(p).iter());
                for &nb in merged {
                    if !visited[nb.index()] {
                        visited[nb.index()] = true;
                        if all.len() >= cap {
                            return None;
                        }
                        all.push(nb);
                        next.push(nb);
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
        all.sort_unstable();
        Some(all)
    }

    /// The bounded k-hop ball around everything this overlay touches:
    /// [`PerturbedGraph::expand_frontier`] seeded with
    /// [`PerturbedGraph::touched_people`].
    pub fn touched_frontier(&self, hops: usize, cap: usize) -> Option<Vec<PersonId>> {
        self.expand_frontier(&self.touched_people(), hops, cap)
    }
}

/// Inserts into a small sorted-on-finalize key vector, ignoring duplicates.
fn insert_key(keys: &mut Vec<(u32, u32)>, key: (u32, u32)) {
    if !keys.contains(&key) {
        keys.push(key);
    }
}

/// Removes a key if present, reporting whether it was.
fn remove_key(keys: &mut Vec<(u32, u32)>, key: (u32, u32)) -> bool {
    if let Some(pos) = keys.iter().position(|&k| k == key) {
        keys.swap_remove(pos);
        true
    } else {
        false
    }
}

impl GraphView for PerturbedGraph<'_> {
    fn num_people(&self) -> usize {
        self.base.num_people()
    }

    fn num_edges(&self) -> usize {
        self.base.num_edges() + self.added_edges.len() - self.removed_edges.len()
    }

    fn vocab(&self) -> &SkillVocab {
        self.base.vocab()
    }

    fn person_has_skill(&self, p: PersonId, s: SkillId) -> bool {
        let key = (p.0, s.0);
        if self.removed_skills.binary_search(&key).is_ok() {
            return false;
        }
        if self.added_skills.binary_search(&key).is_ok() {
            return true;
        }
        self.base.person_has_skill(p, s)
    }

    fn person_skills(&self, p: PersonId) -> &[SkillId] {
        match self
            .patched_skills
            .binary_search_by_key(&p.0, |&(id, _)| id)
        {
            Ok(i) => &self.patched_skills[i].1,
            Err(_) => self.base.base_skills(p),
        }
    }

    fn neighbors(&self, p: PersonId) -> &[PersonId] {
        match self
            .patched_neighbors
            .binary_search_by_key(&p.0, |&(id, _)| id)
        {
            Ok(i) => &self.patched_neighbors[i].1,
            Err(_) => self.base.base_neighbors(p),
        }
    }

    fn has_edge(&self, a: PersonId, b: PersonId) -> bool {
        if a == b {
            return false;
        }
        let key = CollabGraph::edge_key(a, b);
        if self.removed_edges.binary_search(&key).is_ok() {
            return false;
        }
        if self.added_edges.binary_search(&key).is_ok() {
            return true;
        }
        self.base.has_edge(a, b)
    }

    fn edges(&self) -> EdgesIter<'_> {
        EdgesIter::overlay(
            self.base.edge_list(),
            &self.removed_edges,
            &self.added_edges,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CollabGraphBuilder, Perturbation};

    fn toy() -> CollabGraph {
        let mut b = CollabGraphBuilder::new();
        let p0 = b.add_person("p0", ["db", "ml"]);
        let p1 = b.add_person("p1", ["ml"]);
        let p2 = b.add_person("p2", ["vision"]);
        b.add_edge(p0, p1);
        b.add_edge(p1, p2);
        b.build()
    }

    #[test]
    fn identity_overlay_matches_base() {
        let g = toy();
        let v = PerturbedGraph::identity(&g);
        assert_eq!(v.num_people(), g.num_people());
        assert_eq!(v.num_edges(), g.num_edges());
        assert_eq!(
            v.edges().collect::<Vec<_>>(),
            GraphView::edges(&g).collect::<Vec<_>>()
        );
        for p in g.people() {
            assert_eq!(v.person_skills(p), g.person_skills(p));
            assert_eq!(v.neighbors(p), g.neighbors(p));
        }
    }

    #[test]
    fn skill_add_and_remove_overlay() {
        let g = toy();
        let vision = g.vocab().id("vision").unwrap();
        let ml = g.vocab().id("ml").unwrap();
        let mut d = PerturbationSet::new();
        d.push(Perturbation::AddSkill {
            person: PersonId(0),
            skill: vision,
        });
        d.push(Perturbation::RemoveSkill {
            person: PersonId(1),
            skill: ml,
        });
        let v = PerturbedGraph::new(&g, &d);
        assert!(v.person_has_skill(PersonId(0), vision));
        assert!(!v.person_has_skill(PersonId(1), ml));
        assert!(v.person_skills(PersonId(1)).is_empty());
        assert_eq!(v.person_skills(PersonId(0)).len(), 3);
        // Base graph is untouched.
        assert!(!g.person_has_skill(PersonId(0), vision));
        // Untouched people borrow straight from the base CSR.
        assert_eq!(v.person_skills(PersonId(2)), g.base_skills(PersonId(2)));
    }

    #[test]
    fn edge_add_and_remove_overlay() {
        let g = toy();
        let mut d = PerturbationSet::new();
        d.push(Perturbation::AddEdge {
            a: PersonId(0),
            b: PersonId(2),
        });
        d.push(Perturbation::RemoveEdge {
            a: PersonId(0),
            b: PersonId(1),
        });
        let v = PerturbedGraph::new(&g, &d);
        assert!(v.has_edge(PersonId(0), PersonId(2)));
        assert!(!v.has_edge(PersonId(0), PersonId(1)));
        assert_eq!(v.num_edges(), 2);
        assert_eq!(v.neighbors(PersonId(0)), &[PersonId(2)][..]);
        assert_eq!(v.neighbors(PersonId(2)), &[PersonId(0), PersonId(1)][..]);
        assert_eq!(v.edges().count(), 2);
        let mut collected: Vec<_> = v.edges().collect();
        collected.sort_unstable();
        assert_eq!(
            collected,
            vec![(PersonId(0), PersonId(2)), (PersonId(1), PersonId(2))]
        );
    }

    #[test]
    fn inverse_perturbations_cancel() {
        let g = toy();
        let mut d = PerturbationSet::new();
        d.push(Perturbation::AddEdge {
            a: PersonId(0),
            b: PersonId(2),
        });
        d.push(Perturbation::RemoveEdge {
            a: PersonId(2),
            b: PersonId(0),
        });
        let v = PerturbedGraph::new(&g, &d);
        assert!(!v.has_edge(PersonId(0), PersonId(2)));
        assert_eq!(v.num_edges(), g.num_edges());
        assert_eq!(v.delta_size(), 0);

        let ml = g.vocab().id("ml").unwrap();
        let mut d2 = PerturbationSet::new();
        d2.push(Perturbation::RemoveSkill {
            person: PersonId(0),
            skill: ml,
        });
        d2.push(Perturbation::AddSkill {
            person: PersonId(0),
            skill: ml,
        });
        let v2 = PerturbedGraph::new(&g, &d2);
        assert!(v2.person_has_skill(PersonId(0), ml));
        assert_eq!(v2.delta_size(), 0);
    }

    #[test]
    fn redundant_perturbations_are_no_ops() {
        let g = toy();
        let ml = g.vocab().id("ml").unwrap();
        let mut d = PerturbationSet::new();
        // Adding a skill the person already has, removing a missing edge.
        d.push(Perturbation::AddSkill {
            person: PersonId(0),
            skill: ml,
        });
        d.push(Perturbation::RemoveEdge {
            a: PersonId(0),
            b: PersonId(2),
        });
        d.push(Perturbation::AddEdge {
            a: PersonId(1),
            b: PersonId(1),
        });
        let v = PerturbedGraph::new(&g, &d);
        assert_eq!(v.delta_size(), 0);
        assert_eq!(v.num_edges(), g.num_edges());
    }

    #[test]
    fn query_match_count_reflects_overlay() {
        let g = toy();
        let q = Query::parse("ml vision", g.vocab()).unwrap();
        assert_eq!(g.query_match_count(PersonId(0), &q), 1);
        let vision = g.vocab().id("vision").unwrap();
        let mut d = PerturbationSet::new();
        d.push(Perturbation::AddSkill {
            person: PersonId(0),
            skill: vision,
        });
        let v = PerturbedGraph::new(&g, &d);
        assert_eq!(v.query_match_count(PersonId(0), &q), 2);
    }

    #[test]
    fn delta_introspection_reports_effective_changes_only() {
        let g = toy();
        let ml = g.vocab().id("ml").unwrap();
        let vision = g.vocab().id("vision").unwrap();
        let mut d = PerturbationSet::new();
        d.push(Perturbation::AddSkill {
            person: PersonId(0),
            skill: vision,
        });
        // Redundant: p0 already holds ml, so this must not surface.
        d.push(Perturbation::AddSkill {
            person: PersonId(0),
            skill: ml,
        });
        d.push(Perturbation::RemoveSkill {
            person: PersonId(1),
            skill: ml,
        });
        d.push(Perturbation::RemoveEdge {
            a: PersonId(1),
            b: PersonId(2),
        });
        let v = PerturbedGraph::new(&g, &d);
        assert_eq!(
            v.skill_additions().collect::<Vec<_>>(),
            vec![(PersonId(0), vision)]
        );
        assert_eq!(
            v.skill_removals().collect::<Vec<_>>(),
            vec![(PersonId(1), ml)]
        );
        assert_eq!(v.edge_additions().count(), 0);
        assert_eq!(
            v.edge_removals().collect::<Vec<_>>(),
            vec![(PersonId(1), PersonId(2))]
        );
        assert_eq!(
            v.touched_people(),
            vec![PersonId(0), PersonId(1), PersonId(2)]
        );
        assert_eq!(v.touched_skills(), vec![ml, vision]);
    }

    #[test]
    fn touched_frontier_grows_per_hop_and_respects_the_cap() {
        let g = toy(); // edges: 0-1, 1-2
        let ml = g.vocab().id("ml").unwrap();
        let d = PerturbationSet::singleton(Perturbation::RemoveSkill {
            person: PersonId(0),
            skill: ml,
        });
        let v = PerturbedGraph::new(&g, &d);
        assert_eq!(v.touched_frontier(0, 10), Some(vec![PersonId(0)]));
        assert_eq!(
            v.touched_frontier(1, 10),
            Some(vec![PersonId(0), PersonId(1)])
        );
        assert_eq!(
            v.touched_frontier(2, 10),
            Some(vec![PersonId(0), PersonId(1), PersonId(2)])
        );
        // Ball saturates: extra hops change nothing.
        assert_eq!(v.touched_frontier(9, 10), v.touched_frontier(2, 10));
        // Cap exceeded mid-expansion reports None.
        assert_eq!(v.touched_frontier(2, 2), None);
    }

    #[test]
    fn frontier_covers_both_endpoints_of_removed_edges() {
        let g = toy();
        let d = PerturbationSet::singleton(Perturbation::RemoveEdge {
            a: PersonId(0),
            b: PersonId(1),
        });
        let v = PerturbedGraph::new(&g, &d);
        // Zero hops: both endpoints of the removed edge are touched.
        assert_eq!(
            v.touched_frontier(0, 10),
            Some(vec![PersonId(0), PersonId(1)])
        );
        // One hop walks the *union* adjacency, so the severed p0–p1 link is
        // still crossed and p2 (p1's surviving neighbour) joins.
        assert_eq!(
            v.touched_frontier(1, 10),
            Some(vec![PersonId(0), PersonId(1), PersonId(2)])
        );
    }

    #[test]
    fn person_ids_iterator_behaves_like_a_range() {
        let ids: Vec<PersonId> = PersonIds::up_to(3).collect();
        assert_eq!(ids, vec![PersonId(0), PersonId(1), PersonId(2)]);
        assert_eq!(PersonIds::up_to(5).len(), 5);
        assert_eq!(PersonIds::up_to(2).next_back(), Some(PersonId(1)));
        assert_eq!(PersonIds::up_to(0).count(), 0);
    }
}
