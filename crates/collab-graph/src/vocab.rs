//! Skill vocabulary: interning of skill names to dense [`SkillId`]s.

use crate::{GraphError, Result, SkillId};
use rustc_hash::FxHashMap;

/// The universe of skills `S` shared by a collaboration network and its queries.
///
/// Skill names are normalised to lowercase ASCII on insertion so that lookups are
/// case-insensitive; ids are assigned densely in insertion order.
#[derive(Debug, Clone, Default)]
pub struct SkillVocab {
    names: Vec<String>,
    index: FxHashMap<String, SkillId>,
}

impl SkillVocab {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Normalises a raw skill token: lowercase and trimmed.
    pub fn normalize(raw: &str) -> String {
        raw.trim().to_lowercase()
    }

    /// Interns `name`, returning its id. Existing names return their existing id.
    ///
    /// Empty (after trimming) names are rejected silently by returning the id of
    /// the empty string only if it was already interned; callers should filter
    /// empty tokens before interning. In practice [`crate::CollabGraphBuilder`]
    /// does that filtering.
    pub fn intern(&mut self, name: &str) -> SkillId {
        let norm = Self::normalize(name);
        if let Some(&id) = self.index.get(&norm) {
            return id;
        }
        let id = SkillId::from_index(self.names.len());
        self.index.insert(norm.clone(), id);
        self.names.push(norm);
        id
    }

    /// Looks up the id of a skill name, if present.
    pub fn id(&self, name: &str) -> Option<SkillId> {
        self.index.get(&Self::normalize(name)).copied()
    }

    /// Looks up the id of a skill name, returning an error naming the token.
    pub fn require(&self, name: &str) -> Result<SkillId> {
        self.id(name)
            .ok_or_else(|| GraphError::UnknownSkillName(name.to_string()))
    }

    /// Returns the name of a skill id.
    pub fn name(&self, id: SkillId) -> Option<&str> {
        self.names.get(id.index()).map(String::as_str)
    }

    /// Returns the name of a skill id, panicking on out-of-range ids.
    ///
    /// Intended for display code paths where the id is known to be valid.
    pub fn name_or_panic(&self, id: SkillId) -> &str {
        self.name(id).expect("skill id out of range for vocabulary")
    }

    /// Number of distinct skills `|S|`.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when the vocabulary contains no skills.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (SkillId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (SkillId::from_index(i), n.as_str()))
    }

    /// Iterates over all skill ids.
    pub fn ids(&self) -> impl Iterator<Item = SkillId> {
        (0..self.names.len()).map(SkillId::from_index)
    }

    /// Rebuilds the name → id index; needed after deserialisation because the
    /// index is not serialised.
    pub fn rebuild_index(&mut self) {
        self.index = self
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), SkillId::from_index(i)))
            .collect();
    }
}

impl FromIterator<String> for SkillVocab {
    fn from_iter<T: IntoIterator<Item = String>>(iter: T) -> Self {
        let mut v = SkillVocab::new();
        for name in iter {
            v.intern(&name);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut v = SkillVocab::new();
        let a = v.intern("Databases");
        let b = v.intern("databases ");
        assert_eq!(a, b);
        assert_eq!(v.len(), 1);
        assert_eq!(v.name(a), Some("databases"));
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut v = SkillVocab::new();
        let ids: Vec<_> = ["a", "b", "c"].iter().map(|s| v.intern(s)).collect();
        assert_eq!(ids, vec![SkillId(0), SkillId(1), SkillId(2)]);
        assert_eq!(v.ids().count(), 3);
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let mut v = SkillVocab::new();
        v.intern("Machine Learning");
        assert!(v.id("machine learning").is_some());
        assert!(v.id("MACHINE LEARNING").is_some());
        assert!(v.id("vision").is_none());
    }

    #[test]
    fn require_reports_the_missing_token() {
        let v = SkillVocab::new();
        let err = v.require("rust").unwrap_err();
        assert_eq!(err, GraphError::UnknownSkillName("rust".into()));
    }

    #[test]
    fn name_out_of_range_is_none() {
        let v = SkillVocab::new();
        assert_eq!(v.name(SkillId(0)), None);
    }

    #[test]
    fn from_iterator_and_iter_roundtrip() {
        let v: SkillVocab = ["x", "y", "x"].iter().map(|s| s.to_string()).collect();
        assert_eq!(v.len(), 2);
        let names: Vec<_> = v.iter().map(|(_, n)| n.to_string()).collect();
        assert_eq!(names, vec!["x", "y"]);
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let mut v = SkillVocab::new();
        v.intern("alpha");
        v.intern("beta");
        // Simulate a deserialised vocabulary with an empty index.
        let mut restored = SkillVocab {
            names: v.names.clone(),
            index: FxHashMap::default(),
        };
        assert_eq!(restored.id("alpha"), None);
        restored.rebuild_index();
        assert_eq!(restored.id("alpha"), Some(SkillId(0)));
        assert_eq!(restored.id("beta"), Some(SkillId(1)));
    }

    #[test]
    fn empty_vocab_properties() {
        let v = SkillVocab::new();
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
        assert_eq!(v.iter().count(), 0);
    }
}
