//! Generator configuration and the two paper-dataset presets.

/// Configuration of a synthetic collaboration-network dataset.
///
/// The two presets mirror the statistics of Table 6 in the paper; use
/// [`DatasetConfig::scaled`] to shrink them proportionally for fast experiments
/// (relative measurements — speed-ups, precision — are preserved).
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetConfig {
    /// Dataset display name (appears in experiment tables).
    pub name: String,
    /// Number of people (nodes).
    pub num_people: usize,
    /// Number of distinct skills in the vocabulary.
    pub num_skills: usize,
    /// Number of topical communities.
    pub num_topics: usize,
    /// Edges attached per newly arriving node (preferential attachment `m`).
    pub edges_per_node: usize,
    /// Probability that a new edge stays inside the node's own topic.
    pub intra_topic_prob: f64,
    /// Mean number of skills per person (Poisson-ish around this value).
    pub mean_skills_per_person: usize,
    /// Fraction of the vocabulary reserved as "general" skills shared across topics.
    pub general_skill_fraction: f64,
    /// Number of corpus documents generated per person (papers / repositories).
    pub docs_per_person: usize,
    /// RNG seed; the generator is fully deterministic given the config.
    pub seed: u64,
}

impl DatasetConfig {
    /// DBLP-like preset: 17,630 nodes, ~128,809 edges, 1,829 skills, ~15 skills/person.
    pub fn dblp_sim() -> Self {
        DatasetConfig {
            name: "DBLP".to_string(),
            num_people: 17_630,
            num_skills: 1_829,
            num_topics: 40,
            edges_per_node: 7,
            intra_topic_prob: 0.8,
            mean_skills_per_person: 15,
            general_skill_fraction: 0.1,
            docs_per_person: 3,
            seed: 0x0D_B1_97,
        }
    }

    /// GitHub-like preset: 3,278 nodes, ~15,502 edges, 863 skills, sparser skill sets.
    pub fn github_sim() -> Self {
        DatasetConfig {
            name: "GitHub".to_string(),
            num_people: 3_278,
            num_skills: 863,
            num_topics: 24,
            edges_per_node: 5,
            intra_topic_prob: 0.75,
            mean_skills_per_person: 8,
            general_skill_fraction: 0.12,
            docs_per_person: 2,
            seed: 0x617_488,
        }
    }

    /// Scales the node/skill counts by `factor` (minimum sizes are enforced so a
    /// tiny factor still yields a usable graph). Edge density and skill density
    /// per person are preserved.
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        let scale = |v: usize, min: usize| ((v as f64 * factor).round() as usize).max(min);
        self.num_people = scale(self.num_people, 60);
        self.num_skills = scale(self.num_skills, 40);
        self.num_topics = self.num_topics.min(self.num_skills / 4).max(4);
        self
    }

    /// A small config suitable for unit and integration tests (runs in milliseconds).
    pub fn tiny(name: &str, seed: u64) -> Self {
        DatasetConfig {
            name: name.to_string(),
            num_people: 120,
            num_skills: 60,
            num_topics: 6,
            edges_per_node: 4,
            intra_topic_prob: 0.8,
            mean_skills_per_person: 6,
            general_skill_fraction: 0.1,
            docs_per_person: 2,
            seed,
        }
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_table6() {
        let dblp = DatasetConfig::dblp_sim();
        assert_eq!(dblp.num_people, 17_630);
        assert_eq!(dblp.num_skills, 1_829);
        assert_eq!(dblp.mean_skills_per_person, 15);
        let gh = DatasetConfig::github_sim();
        assert_eq!(gh.num_people, 3_278);
        assert_eq!(gh.num_skills, 863);
    }

    #[test]
    fn scaling_preserves_minimums() {
        let cfg = DatasetConfig::dblp_sim().scaled(0.0001);
        assert!(cfg.num_people >= 60);
        assert!(cfg.num_skills >= 40);
        assert!(cfg.num_topics >= 4);
    }

    #[test]
    fn scaling_is_roughly_proportional() {
        let cfg = DatasetConfig::dblp_sim().scaled(0.1);
        assert_eq!(cfg.num_people, 1763);
        assert_eq!(cfg.num_skills, 183);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_panics() {
        let _ = DatasetConfig::dblp_sim().scaled(0.0);
    }

    #[test]
    fn with_seed_changes_only_seed() {
        let a = DatasetConfig::tiny("t", 1);
        let b = a.clone().with_seed(2);
        assert_ne!(a.seed, b.seed);
        assert_eq!(a.num_people, b.num_people);
    }
}
