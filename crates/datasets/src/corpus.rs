//! The textual expertise corpus accompanying a synthetic network.
//!
//! The paper extracts skills from paper titles/abstracts (DBLP) and repository
//! descriptions (GitHub) and trains a Word2Vec model on that corpus (Pruning
//! Strategy 4). Our synthetic corpus is a list of *documents*, each a bag of
//! skill tokens; the embedding crate consumes skill–skill co-occurrence counts
//! from it.

use exes_graph::{PersonId, SkillId};

/// A corpus of skill-token documents attributed to people.
#[derive(Debug, Clone, Default)]
pub struct Corpus {
    documents: Vec<Document>,
}

/// A single document (paper, repository description, ...) of the corpus.
#[derive(Debug, Clone)]
pub struct Document {
    /// Authors / owners of this document.
    pub authors: Vec<PersonId>,
    /// Skill tokens appearing in the document (with repetition allowed).
    pub tokens: Vec<SkillId>,
}

impl Corpus {
    /// Creates an empty corpus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a document.
    pub fn push(&mut self, authors: Vec<PersonId>, tokens: Vec<SkillId>) {
        self.documents.push(Document { authors, tokens });
    }

    /// All documents.
    pub fn documents(&self) -> &[Document] {
        &self.documents
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.documents.len()
    }

    /// True when the corpus has no documents.
    pub fn is_empty(&self) -> bool {
        self.documents.is_empty()
    }

    /// Total number of tokens across all documents.
    pub fn total_tokens(&self) -> usize {
        self.documents.iter().map(|d| d.tokens.len()).sum()
    }

    /// Iterates over the token bags (what the embedding trainer consumes).
    pub fn token_bags(&self) -> impl Iterator<Item = &[SkillId]> {
        self.documents.iter().map(|d| d.tokens.as_slice())
    }

    /// Documents authored by `p`.
    pub fn documents_of(&self, p: PersonId) -> impl Iterator<Item = &Document> {
        self.documents
            .iter()
            .filter(move |d| d.authors.contains(&p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query() {
        let mut c = Corpus::new();
        assert!(c.is_empty());
        c.push(vec![PersonId(0)], vec![SkillId(1), SkillId(2)]);
        c.push(vec![PersonId(0), PersonId(1)], vec![SkillId(2)]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.total_tokens(), 3);
        assert_eq!(c.documents_of(PersonId(0)).count(), 2);
        assert_eq!(c.documents_of(PersonId(1)).count(), 1);
        assert_eq!(c.documents_of(PersonId(9)).count(), 0);
        assert_eq!(c.token_bags().count(), 2);
    }
}
