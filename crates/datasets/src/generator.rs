//! The synthetic collaboration-network generator.

use crate::names;
use crate::{Corpus, DatasetConfig};
use exes_graph::{CollabGraph, CollabGraphBuilder, GraphView, PersonId, SkillId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A generated dataset: the collaboration network, the accompanying textual
/// corpus, and the ground-truth topic assignments (useful for tests and for
/// sanity-checking homophily).
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    /// The configuration that produced this dataset.
    pub config: DatasetConfig,
    /// The collaboration network.
    pub graph: CollabGraph,
    /// The expertise corpus (for embedding training).
    pub corpus: Corpus,
    /// Topic of each person (index parallel to person ids).
    pub topic_of_person: Vec<usize>,
    /// Topic of each skill; `None` for general-purpose skills.
    pub topic_of_skill: Vec<Option<usize>>,
}

impl SyntheticDataset {
    /// Generates a dataset deterministically from `config`.
    pub fn generate(config: &DatasetConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let cfg = config.clone();

        // --- 1. Skill vocabulary and topic pools ------------------------------
        let general_count = ((cfg.num_skills as f64) * cfg.general_skill_fraction).round() as usize;
        let general_count = general_count.clamp(1, cfg.num_skills.saturating_sub(cfg.num_topics));
        let mut topic_of_skill: Vec<Option<usize>> = Vec::with_capacity(cfg.num_skills);
        let mut topic_pools: Vec<Vec<SkillId>> = vec![Vec::new(); cfg.num_topics];
        let mut general_pool: Vec<SkillId> = Vec::new();
        for i in 0..cfg.num_skills {
            let id = SkillId::from_index(i);
            if i < general_count {
                topic_of_skill.push(None);
                general_pool.push(id);
            } else {
                let topic = (i - general_count) % cfg.num_topics;
                topic_of_skill.push(Some(topic));
                topic_pools[topic].push(id);
            }
        }

        let mut builder = CollabGraphBuilder::new();
        for i in 0..cfg.num_skills {
            builder.intern_skill(&names::skill_name(i));
        }

        // --- 2. People, topics and skill assignment ---------------------------
        let mut topic_of_person = Vec::with_capacity(cfg.num_people);
        for i in 0..cfg.num_people {
            let topic = rng.gen_range(0..cfg.num_topics);
            topic_of_person.push(topic);
            let skills = sample_person_skills(
                &mut rng,
                &topic_pools[topic],
                &general_pool,
                cfg.num_skills,
                cfg.mean_skills_per_person,
            );
            let id = builder.add_person_with_skill_ids(&names::person_name(i), skills);
            debug_assert_eq!(id.index(), i);
        }

        // --- 3. Edges: community-aware preferential attachment ----------------
        // `endpoints` holds one entry per edge endpoint (the classic BA trick so
        // that sampling an entry is sampling proportionally to degree);
        // `topic_endpoints[t]` restricts the same trick to topic `t`.
        let mut endpoints: Vec<PersonId> = Vec::new();
        let mut topic_endpoints: Vec<Vec<PersonId>> = vec![Vec::new(); cfg.num_topics];
        let m = cfg.edges_per_node.max(1);
        for i in 0..cfg.num_people {
            let p = PersonId::from_index(i);
            let my_topic = topic_of_person[i];
            if i == 0 {
                continue;
            }
            let targets = m.min(i);
            let mut added = 0usize;
            let mut attempts = 0usize;
            while added < targets && attempts < targets * 20 {
                attempts += 1;
                let use_intra =
                    rng.gen_bool(cfg.intra_topic_prob) && !topic_endpoints[my_topic].is_empty();
                let candidate = if use_intra {
                    *topic_endpoints[my_topic]
                        .choose(&mut rng)
                        .expect("non-empty")
                } else if !endpoints.is_empty() && rng.gen_bool(0.7) {
                    *endpoints.choose(&mut rng).expect("non-empty")
                } else {
                    PersonId::from_index(rng.gen_range(0..i))
                };
                if candidate == p {
                    continue;
                }
                if builder.add_edge(p, candidate) {
                    added += 1;
                    endpoints.push(p);
                    endpoints.push(candidate);
                    topic_endpoints[my_topic].push(p);
                    topic_endpoints[topic_of_person[candidate.index()]].push(candidate);
                }
            }
        }

        let graph = builder.build();

        // --- 4. Corpus ---------------------------------------------------------
        let corpus = generate_corpus(&mut rng, &graph, &topic_of_person, &topic_pools, &cfg);

        SyntheticDataset {
            config: cfg,
            graph,
            corpus,
            topic_of_person,
            topic_of_skill,
        }
    }

    /// Fraction of edges whose endpoints share a topic (a homophily sanity metric).
    pub fn intra_topic_edge_fraction(&self) -> f64 {
        let edges = self.graph.edge_list();
        if edges.is_empty() {
            return 0.0;
        }
        let same = edges
            .iter()
            .filter(|&&(a, b)| self.topic_of_person[a.index()] == self.topic_of_person[b.index()])
            .count();
        same as f64 / edges.len() as f64
    }
}

fn sample_person_skills(
    rng: &mut StdRng,
    topic_pool: &[SkillId],
    general_pool: &[SkillId],
    num_skills: usize,
    mean_skills: usize,
) -> Vec<SkillId> {
    // Skill count: mean +/- ~30%, at least 2.
    let lo = (mean_skills as f64 * 0.7).floor() as usize;
    let hi = (mean_skills as f64 * 1.3).ceil() as usize;
    let count = rng.gen_range(lo.max(2)..=hi.max(lo.max(2) + 1));
    let mut skills = Vec::with_capacity(count);
    for _ in 0..count {
        let r: f64 = rng.gen();
        let skill = if r < 0.75 && !topic_pool.is_empty() {
            // Zipf-like preference for the first skills of the topic pool, so
            // some skills become "popular" within a topic.
            let z: f64 = rng.gen::<f64>().powi(2);
            topic_pool[(z * topic_pool.len() as f64) as usize % topic_pool.len()]
        } else if r < 0.9 && !general_pool.is_empty() {
            *general_pool.choose(rng).expect("non-empty")
        } else {
            SkillId::from_index(rng.gen_range(0..num_skills))
        };
        skills.push(skill);
    }
    skills.sort_unstable();
    skills.dedup();
    skills
}

fn generate_corpus(
    rng: &mut StdRng,
    graph: &CollabGraph,
    topic_of_person: &[usize],
    topic_pools: &[Vec<SkillId>],
    cfg: &DatasetConfig,
) -> Corpus {
    let mut corpus = Corpus::new();
    for p in graph.people() {
        let own_skills = graph.person_skills(p);
        if own_skills.is_empty() {
            continue;
        }
        let neighbors = graph.neighbors(p);
        for _ in 0..cfg.docs_per_person {
            let mut authors = vec![p];
            let mut token_pool = own_skills.to_vec();
            // Roughly half the documents are co-authored with a collaborator,
            // mixing both skill sets — this is what lets the embedding model
            // learn cross-person, intra-topic similarity.
            if !neighbors.is_empty() && rng.gen_bool(0.5) {
                let co = *neighbors.choose(rng).expect("non-empty");
                authors.push(co);
                token_pool.extend(graph.person_skills(co));
            }
            // Add a couple of topic-pool tokens for context.
            let topic = topic_of_person[p.index()];
            if !topic_pools[topic].is_empty() {
                for _ in 0..2 {
                    token_pool.push(*topic_pools[topic].choose(rng).expect("non-empty"));
                }
            }
            let doc_len = rng.gen_range(4..=(4 + token_pool.len().min(8)));
            let mut tokens = Vec::with_capacity(doc_len);
            for _ in 0..doc_len {
                tokens.push(*token_pool.choose(rng).expect("non-empty"));
            }
            corpus.push(authors, tokens);
        }
    }
    corpus
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SyntheticDataset {
        SyntheticDataset::generate(&DatasetConfig::tiny("test", 7))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.graph.stats(), b.graph.stats());
        assert_eq!(a.graph.edge_list(), b.graph.edge_list());
        assert_eq!(a.topic_of_person, b.topic_of_person);
        assert_eq!(a.corpus.len(), b.corpus.len());
    }

    #[test]
    fn different_seeds_give_different_graphs() {
        let a = SyntheticDataset::generate(&DatasetConfig::tiny("a", 1));
        let b = SyntheticDataset::generate(&DatasetConfig::tiny("b", 2));
        assert_ne!(a.graph.edge_list(), b.graph.edge_list());
    }

    #[test]
    fn sizes_match_config() {
        let ds = tiny();
        let cfg = &ds.config;
        assert_eq!(ds.graph.num_people(), cfg.num_people);
        assert_eq!(ds.graph.vocab().len(), cfg.num_skills);
        assert_eq!(ds.topic_of_person.len(), cfg.num_people);
        assert_eq!(ds.topic_of_skill.len(), cfg.num_skills);
        // Roughly m edges per node (bounded above by n*m).
        assert!(ds.graph.num_edges() > cfg.num_people);
        assert!(ds.graph.num_edges() <= cfg.num_people * cfg.edges_per_node);
    }

    #[test]
    fn skill_counts_are_near_the_mean() {
        let ds = tiny();
        let stats = ds.graph.stats();
        let mean = ds.config.mean_skills_per_person as f64;
        assert!(
            stats.avg_skills_per_person > mean * 0.4 && stats.avg_skills_per_person < mean * 1.4,
            "avg skills {} too far from configured mean {}",
            stats.avg_skills_per_person,
            mean
        );
    }

    #[test]
    fn edges_show_topic_homophily() {
        let ds = SyntheticDataset::generate(&DatasetConfig::tiny("h", 3));
        let frac = ds.intra_topic_edge_fraction();
        // With 6 topics, random wiring would give ~1/6 ≈ 0.17; the generator
        // targets 0.8 intra-topic probability so we should be far above chance.
        assert!(frac > 0.4, "intra-topic fraction {frac} too low");
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let ds = tiny();
        let stats = ds.graph.stats();
        assert!(
            stats.max_degree as f64 > 2.5 * stats.avg_degree,
            "max degree {} not much larger than average {}",
            stats.max_degree,
            stats.avg_degree
        );
    }

    #[test]
    fn corpus_is_nonempty_and_attributed() {
        let ds = tiny();
        assert!(!ds.corpus.is_empty());
        assert!(ds.corpus.total_tokens() > ds.corpus.len() * 3);
        assert!(ds
            .corpus
            .documents()
            .iter()
            .all(|d| !d.authors.is_empty() && !d.tokens.is_empty()));
    }

    #[test]
    fn graph_has_no_isolated_center_for_most_nodes() {
        let ds = tiny();
        let isolated = ds
            .graph
            .people()
            .filter(|&p| ds.graph.degree(p) == 0)
            .count();
        // Only the very first node can end up isolated in pathological cases.
        assert!(isolated <= 1);
    }
}
