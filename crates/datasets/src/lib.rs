//! # exes-datasets
//!
//! Synthetic collaboration-network generators standing in for the DBLP and
//! GitHub datasets used in the ExES paper (Table 6), plus the query workload
//! generator used by every experiment.
//!
//! The real datasets are not redistributable, so we build *simulated* networks
//! that preserve the structural properties the ExES pruning strategies rely on:
//!
//! * a heavy-tailed degree distribution (preferential attachment),
//! * community structure with **skill homophily** (people collaborate mostly
//!   inside their topic, and topics share a coherent skill pool),
//! * an average of roughly 15 skills per node for the DBLP-like network and a
//!   smaller, sparser GitHub-like network,
//! * a textual corpus whose co-occurrence statistics let the embedding model
//!   (Pruning Strategy 4) learn that intra-topic skills are similar.
//!
//! ```
//! use exes_datasets::{DatasetConfig, SyntheticDataset};
//!
//! let ds = SyntheticDataset::generate(&DatasetConfig::dblp_sim().scaled(0.05));
//! let stats = ds.graph.stats();
//! assert!(stats.num_people > 0);
//! assert!(stats.avg_degree > 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod corpus;
mod generator;
mod names;
mod update_stream;
mod workload;

pub use config::DatasetConfig;
pub use corpus::Corpus;
pub use generator::SyntheticDataset;
pub use update_stream::{UpdateStream, UpdateStreamConfig};
pub use workload::QueryWorkload;
