//! Deterministic synthetic people and skill names.
//!
//! The names only matter for human-readable case-study output (the paper's
//! examples name real researchers, which we obviously cannot reproduce from a
//! synthetic generator), so we synthesise plausible-looking unique names.

const GIVEN: &[&str] = &[
    "Ada",
    "Alan",
    "Barbara",
    "Claude",
    "Donald",
    "Edsger",
    "Frances",
    "Grace",
    "Hedy",
    "Ivan",
    "John",
    "Katherine",
    "Leslie",
    "Margaret",
    "Niklaus",
    "Olga",
    "Peter",
    "Radia",
    "Shafi",
    "Tim",
    "Ursula",
    "Vint",
    "Whitfield",
    "Xiao",
    "Yann",
    "Zara",
];

const FAMILY: &[&str] = &[
    "Almeida", "Baker", "Chen", "Dietrich", "Edwards", "Fischer", "Garcia", "Hansen", "Ito",
    "Jensen", "Kumar", "Larsen", "Moreau", "Nakamura", "Olsen", "Petrov", "Quinn", "Rossi",
    "Schmidt", "Tanaka", "Ueda", "Vasquez", "Weber", "Xu", "Yamada", "Zhang",
];

const SKILL_ROOTS: &[&str] = &[
    "graph",
    "neural",
    "database",
    "query",
    "index",
    "stream",
    "privacy",
    "vision",
    "language",
    "retrieval",
    "ranking",
    "cluster",
    "embedding",
    "transformer",
    "crypto",
    "network",
    "distributed",
    "storage",
    "compiler",
    "kernel",
    "scheduling",
    "cache",
    "consensus",
    "replication",
    "search",
    "mining",
    "learning",
    "inference",
    "optimization",
    "sampling",
    "recommendation",
    "classification",
    "segmentation",
    "detection",
    "parsing",
    "reasoning",
    "knowledge",
    "ontology",
    "provenance",
    "workflow",
    "benchmark",
    "hardware",
    "quantum",
    "robotics",
    "simulation",
    "visualization",
    "fairness",
    "explainability",
    "causality",
    "federated",
];

const SKILL_SUFFIXES: &[&str] = &[
    "analysis",
    "systems",
    "models",
    "theory",
    "engineering",
    "design",
    "processing",
    "architecture",
    "algorithms",
    "evaluation",
    "management",
    "integration",
    "compression",
    "synthesis",
    "verification",
    "testing",
    "security",
    "quality",
    "scaling",
    "tuning",
];

/// Deterministic display name for person `i`.
pub(crate) fn person_name(i: usize) -> String {
    let given = GIVEN[i % GIVEN.len()];
    let family = FAMILY[(i / GIVEN.len()) % FAMILY.len()];
    let gen = i / (GIVEN.len() * FAMILY.len());
    if gen == 0 {
        format!("{given} {family}")
    } else {
        format!("{given} {family} {}", roman(gen + 1))
    }
}

/// Deterministic skill token for skill `i` (single lowercase token so that
/// queries can be written as whitespace-separated keyword strings).
pub(crate) fn skill_name(i: usize) -> String {
    let root = SKILL_ROOTS[i % SKILL_ROOTS.len()];
    let suffix_idx = i / SKILL_ROOTS.len();
    if suffix_idx == 0 {
        root.to_string()
    } else if suffix_idx <= SKILL_SUFFIXES.len() {
        format!("{root}-{}", SKILL_SUFFIXES[suffix_idx - 1])
    } else {
        format!("{root}-{}", suffix_idx)
    }
}

fn roman(mut n: usize) -> String {
    // Small deterministic roman-numeral suffix (II, III, ...); capped values are fine.
    const TABLE: &[(usize, &str)] = &[
        (1000, "M"),
        (900, "CM"),
        (500, "D"),
        (400, "CD"),
        (100, "C"),
        (90, "XC"),
        (50, "L"),
        (40, "XL"),
        (10, "X"),
        (9, "IX"),
        (5, "V"),
        (4, "IV"),
        (1, "I"),
    ];
    let mut out = String::new();
    for &(v, s) in TABLE {
        while n >= v {
            out.push_str(s);
            n -= v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn person_names_are_unique_for_large_ranges() {
        let names: HashSet<_> = (0..5000).map(person_name).collect();
        assert_eq!(names.len(), 5000);
    }

    #[test]
    fn skill_names_are_unique_and_single_token() {
        let names: Vec<_> = (0..2000).map(skill_name).collect();
        let set: HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), 2000);
        assert!(names.iter().all(|n| !n.contains(' ')));
    }

    #[test]
    fn later_generations_get_roman_suffixes() {
        let big = person_name(GIVEN.len() * FAMILY.len() + 3);
        assert!(big.ends_with("II"), "expected generation suffix, got {big}");
    }

    #[test]
    fn roman_numerals() {
        assert_eq!(roman(2), "II");
        assert_eq!(roman(4), "IV");
        assert_eq!(roman(9), "IX");
        assert_eq!(roman(14), "XIV");
    }
}
