//! Deterministic update-stream workloads: the churn side of the serving
//! story.
//!
//! The query workloads in [`crate::QueryWorkload`] model *read* traffic; a
//! live deployment also sees *write* traffic — skills learned and dropped,
//! collaborations formed and dissolved, new people joining. [`UpdateStream`]
//! generates that churn as a sequence of validated-by-construction
//! [`UpdateBatch`]es against an evolving graph: the generator mirrors the
//! graph state batch by batch, so every op is legal at the moment it applies
//! (removals target things that exist, additions target things that don't),
//! and a [`exes_graph::GraphStore`] can commit the whole stream without a
//! single rejection. Given the same seed and graph, the stream is byte-for-
//! byte reproducible.

use exes_graph::store::{UpdateBatch, UpdateOp};
use exes_graph::{CollabGraph, GraphView, PersonId, SkillId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Shape of a generated update stream.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateStreamConfig {
    /// Number of batches to generate.
    pub batches: usize,
    /// Ops per batch.
    pub batch_size: usize,
    /// RNG seed; the stream is fully deterministic given config and graph.
    pub seed: u64,
    /// Relative weight of skill-addition ops.
    pub add_skill_weight: u32,
    /// Relative weight of skill-removal ops.
    pub remove_skill_weight: u32,
    /// Relative weight of collaboration-addition ops.
    pub add_edge_weight: u32,
    /// Relative weight of collaboration-removal ops.
    pub remove_edge_weight: u32,
    /// Relative weight of new-person ops.
    pub add_person_weight: u32,
    /// Probability that a skill addition coins a brand-new skill name
    /// (exercising vocabulary growth) instead of reusing an existing one.
    pub fresh_skill_prob: f64,
}

impl UpdateStreamConfig {
    /// A balanced churn mix: mostly skill/edge churn, occasional hires.
    pub fn churn(batches: usize, batch_size: usize, seed: u64) -> Self {
        UpdateStreamConfig {
            batches,
            batch_size,
            seed,
            add_skill_weight: 4,
            remove_skill_weight: 3,
            add_edge_weight: 4,
            remove_edge_weight: 3,
            add_person_weight: 1,
            fresh_skill_prob: 0.05,
        }
    }
}

/// A reproducible sequence of [`UpdateBatch`]es valid against an evolving
/// graph (apply them in order).
#[derive(Debug, Clone)]
pub struct UpdateStream {
    batches: Vec<UpdateBatch>,
}

/// Mirror of the evolving graph state, just rich enough to keep generated
/// ops valid: per-person sorted skill rows, the edge set (plus a dense list
/// for sampling), and the growing vocabulary.
struct Mirror {
    skills: Vec<Vec<SkillId>>,
    edges: Vec<(u32, u32)>,
    edge_set: HashSet<(u32, u32)>,
    skill_names: Vec<String>,
    fresh_skills: usize,
    fresh_people: usize,
}

impl Mirror {
    fn of(graph: &CollabGraph) -> Self {
        Mirror {
            skills: graph
                .people()
                .map(|p| graph.person_skills(p).to_vec())
                .collect(),
            edges: graph.edge_list().iter().map(|&(a, b)| (a.0, b.0)).collect(),
            edge_set: graph.edge_list().iter().map(|&(a, b)| (a.0, b.0)).collect(),
            skill_names: graph.vocab().iter().map(|(_, n)| n.to_string()).collect(),
            fresh_skills: 0,
            fresh_people: 0,
        }
    }

    fn num_people(&self) -> usize {
        self.skills.len()
    }

    fn holds(&self, p: usize, s: SkillId) -> bool {
        self.skills[p].binary_search(&s).is_ok()
    }

    fn add_skill(&mut self, p: usize, s: SkillId) {
        if let Err(pos) = self.skills[p].binary_search(&s) {
            self.skills[p].insert(pos, s);
        }
    }

    fn remove_skill(&mut self, p: usize, s: SkillId) {
        if let Ok(pos) = self.skills[p].binary_search(&s) {
            self.skills[p].remove(pos);
        }
    }
}

/// How many times an op draw retries for a valid target before falling back
/// to a different op kind (guarantees progress on degenerate graphs, e.g.
/// removing edges from a graph that has none left).
const OP_RETRIES: usize = 16;

impl UpdateStream {
    /// Generates a stream of `cfg.batches` batches valid against `graph` and
    /// its successive updated states.
    ///
    /// # Panics
    /// Panics if the graph has no people, has an empty skill vocabulary, or
    /// the config has zero total weight.
    pub fn generate(graph: &CollabGraph, cfg: &UpdateStreamConfig) -> Self {
        assert!(
            graph.num_people() > 0,
            "update streams need people to churn"
        );
        assert!(
            !graph.vocab().is_empty(),
            "update streams need a non-empty skill vocabulary to churn"
        );
        let weights = [
            cfg.add_skill_weight,
            cfg.remove_skill_weight,
            cfg.add_edge_weight,
            cfg.remove_edge_weight,
            cfg.add_person_weight,
        ];
        let total_weight: u32 = weights.iter().sum();
        assert!(total_weight > 0, "op weights must not all be zero");

        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5720_u64.rotate_left(17));
        let mut mirror = Mirror::of(graph);
        let mut batches = Vec::with_capacity(cfg.batches);
        for _ in 0..cfg.batches {
            let mut batch = UpdateBatch::new();
            while batch.len() < cfg.batch_size {
                let mut draw = rng.gen_range(0u32..total_weight);
                let mut kind = 0usize;
                for (i, &w) in weights.iter().enumerate() {
                    if draw < w {
                        kind = i;
                        break;
                    }
                    draw -= w;
                }
                // Try op kinds starting from the drawn one so a kind with no
                // valid target (e.g. no edges left to remove) falls through
                // instead of spinning.
                let mut emitted = false;
                for offset in 0..weights.len() {
                    let k = (kind + offset) % weights.len();
                    if weights[k] == 0 && offset > 0 {
                        continue;
                    }
                    if let Some(op) = Self::draw_op(k, &mut rng, &mut mirror, cfg) {
                        batch.push(op);
                        emitted = true;
                        break;
                    }
                }
                assert!(emitted, "no op kind has a valid target");
            }
            batches.push(batch);
        }
        UpdateStream { batches }
    }

    /// Draws one valid op of the given kind, applying it to the mirror.
    /// Returns `None` when no valid target was found within [`OP_RETRIES`].
    fn draw_op(
        kind: usize,
        rng: &mut StdRng,
        mirror: &mut Mirror,
        cfg: &UpdateStreamConfig,
    ) -> Option<UpdateOp> {
        let n = mirror.num_people();
        match kind {
            // Add a skill to someone who lacks it.
            0 => {
                if rng.gen_bool(cfg.fresh_skill_prob) {
                    let p = rng.gen_range(0..n);
                    // The base vocabulary may already contain churned skills
                    // from an earlier stream; skip taken names so the mirror
                    // id matches what the store's interning will assign.
                    let name = loop {
                        let candidate = format!("churned-skill-{}", mirror.fresh_skills);
                        mirror.fresh_skills += 1;
                        if !mirror.skill_names.contains(&candidate) {
                            break candidate;
                        }
                    };
                    let s = SkillId(mirror.skill_names.len() as u32);
                    mirror.skill_names.push(name.clone());
                    mirror.add_skill(p, s);
                    return Some(UpdateOp::AddSkill {
                        person: PersonId(p as u32),
                        skill: name,
                    });
                }
                for _ in 0..OP_RETRIES {
                    let p = rng.gen_range(0..n);
                    let s = rng.gen_range(0..mirror.skill_names.len());
                    if !mirror.holds(p, SkillId(s as u32)) {
                        mirror.add_skill(p, SkillId(s as u32));
                        return Some(UpdateOp::AddSkill {
                            person: PersonId(p as u32),
                            skill: mirror.skill_names[s].clone(),
                        });
                    }
                }
                None
            }
            // Remove a skill someone holds.
            1 => {
                for _ in 0..OP_RETRIES {
                    let p = rng.gen_range(0..n);
                    if mirror.skills[p].is_empty() {
                        continue;
                    }
                    let i = rng.gen_range(0..mirror.skills[p].len());
                    let s = mirror.skills[p][i];
                    mirror.remove_skill(p, s);
                    return Some(UpdateOp::RemoveSkill {
                        person: PersonId(p as u32),
                        skill: mirror.skill_names[s.index()].clone(),
                    });
                }
                None
            }
            // Add a missing edge.
            2 => {
                if n < 2 {
                    return None;
                }
                for _ in 0..OP_RETRIES {
                    let a = rng.gen_range(0..n);
                    let b = rng.gen_range(0..n);
                    if a == b {
                        continue;
                    }
                    let key = (a.min(b) as u32, a.max(b) as u32);
                    if mirror.edge_set.insert(key) {
                        mirror.edges.push(key);
                        return Some(UpdateOp::AddCollaboration {
                            a: PersonId(a as u32),
                            b: PersonId(b as u32),
                        });
                    }
                }
                None
            }
            // Remove an existing edge.
            3 => {
                if mirror.edges.is_empty() {
                    return None;
                }
                let i = rng.gen_range(0..mirror.edges.len());
                let key = mirror.edges.swap_remove(i);
                mirror.edge_set.remove(&key);
                Some(UpdateOp::RemoveCollaboration {
                    a: PersonId(key.0),
                    b: PersonId(key.1),
                })
            }
            // Hire a new person with a few existing skills.
            _ => {
                let count = rng.gen_range(1usize..=3.min(mirror.skill_names.len()));
                let ids: Vec<usize> = (0..count)
                    .map(|_| rng.gen_range(0..mirror.skill_names.len()))
                    .collect();
                let skills: Vec<String> =
                    ids.iter().map(|&s| mirror.skill_names[s].clone()).collect();
                let name = format!("churn-hire-{}", mirror.fresh_people);
                mirror.fresh_people += 1;
                let mut row: Vec<SkillId> = ids.iter().map(|&s| SkillId(s as u32)).collect();
                row.sort_unstable();
                row.dedup();
                mirror.skills.push(row);
                Some(UpdateOp::AddPerson { name, skills })
            }
        }
    }

    /// The batches, in application order.
    pub fn batches(&self) -> &[UpdateBatch] {
        &self.batches
    }

    /// Number of batches.
    pub fn len(&self) -> usize {
        self.batches.len()
    }

    /// True when the stream contains no batches.
    pub fn is_empty(&self) -> bool {
        self.batches.is_empty()
    }

    /// Consumes the stream, yielding the batches.
    pub fn into_batches(self) -> Vec<UpdateBatch> {
        self.batches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DatasetConfig, SyntheticDataset};
    use exes_graph::GraphStore;

    fn graph() -> CollabGraph {
        SyntheticDataset::generate(&DatasetConfig::tiny("stream", 3)).graph
    }

    #[test]
    fn stream_is_deterministic_per_seed() {
        let g = graph();
        let a = UpdateStream::generate(&g, &UpdateStreamConfig::churn(5, 8, 1));
        let b = UpdateStream::generate(&g, &UpdateStreamConfig::churn(5, 8, 1));
        let c = UpdateStream::generate(&g, &UpdateStreamConfig::churn(5, 8, 2));
        assert_eq!(a.batches(), b.batches());
        assert_ne!(a.batches(), c.batches());
    }

    #[test]
    fn stream_has_requested_shape() {
        let g = graph();
        let s = UpdateStream::generate(&g, &UpdateStreamConfig::churn(7, 5, 9));
        assert_eq!(s.len(), 7);
        assert!(s.batches().iter().all(|b| b.len() == 5));
        assert!(!s.is_empty());
    }

    #[test]
    fn every_batch_commits_without_rejection() {
        let g = graph();
        let stream = UpdateStream::generate(&g, &UpdateStreamConfig::churn(10, 12, 42));
        let store = GraphStore::new(g);
        for batch in stream.batches() {
            store.commit(batch).expect("generated batch must be valid");
        }
        assert_eq!(store.epoch(), 10);
        assert_eq!(store.stats().rejected, 0);
    }

    #[test]
    fn skill_heavy_mix_still_commits() {
        let g = graph();
        let cfg = UpdateStreamConfig {
            add_skill_weight: 1,
            remove_skill_weight: 10,
            add_edge_weight: 0,
            remove_edge_weight: 10,
            add_person_weight: 0,
            ..UpdateStreamConfig::churn(6, 10, 7)
        };
        let stream = UpdateStream::generate(&g, &cfg);
        let store = GraphStore::new(g);
        for batch in stream.batches() {
            store.commit(batch).unwrap();
        }
        assert_eq!(store.stats().rejected, 0);
    }

    #[test]
    fn second_stream_on_a_churned_graph_still_commits() {
        let g = graph();
        let cfg = UpdateStreamConfig {
            fresh_skill_prob: 0.5,
            ..UpdateStreamConfig::churn(4, 10, 21)
        };
        let store = GraphStore::new(g.clone());
        for batch in UpdateStream::generate(&g, &cfg).batches() {
            store.commit(batch).unwrap();
        }
        // Generate a fresh stream against the churned snapshot: its coined
        // skill names must not collide with the earlier stream's.
        let churned = store.snapshot();
        let again = UpdateStream::generate(churned.graph(), &cfg);
        for batch in again.batches() {
            store
                .commit(batch)
                .expect("second-generation batch must be valid");
        }
        assert_eq!(store.stats().rejected, 0);
    }

    #[test]
    fn fresh_skills_and_people_appear_over_time() {
        let g = graph();
        let people_before = g.num_people();
        let cfg = UpdateStreamConfig {
            add_person_weight: 5,
            fresh_skill_prob: 0.5,
            ..UpdateStreamConfig::churn(8, 10, 13)
        };
        let stream = UpdateStream::generate(&g, &cfg);
        let vocab_before = g.vocab().len();
        let store = GraphStore::new(g);
        let mut last = store.snapshot();
        for batch in stream.batches() {
            last = store.commit(batch).unwrap();
        }
        assert!(last.num_people() > people_before);
        assert!(last.vocab().len() > vocab_before);
    }
}
