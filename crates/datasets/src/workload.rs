//! Random query workloads (Section 4.1 of the paper).
//!
//! The paper evaluates on 100 random queries per dataset, each sampling between
//! 3 and 5 keywords uniformly from the skill universe `S`.

use exes_graph::{CollabGraph, Query, SkillId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A reproducible batch of random keyword queries.
#[derive(Debug, Clone)]
pub struct QueryWorkload {
    queries: Vec<Query>,
}

impl QueryWorkload {
    /// Samples `count` queries with between `min_keywords` and `max_keywords`
    /// keywords drawn uniformly (without replacement) from the graph's skill
    /// universe.
    ///
    /// # Panics
    /// Panics if the vocabulary has fewer skills than `min_keywords` or if
    /// `min_keywords == 0` or `min_keywords > max_keywords`.
    pub fn uniform(
        graph: &CollabGraph,
        count: usize,
        min_keywords: usize,
        max_keywords: usize,
        seed: u64,
    ) -> Self {
        assert!(min_keywords >= 1, "queries need at least one keyword");
        assert!(min_keywords <= max_keywords, "min must not exceed max");
        assert!(
            graph.vocab().len() >= min_keywords,
            "vocabulary smaller than the minimum query length"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let all_skills: Vec<SkillId> = graph.vocab().ids().collect();
        let mut queries = Vec::with_capacity(count);
        while queries.len() < count {
            let len = rng.gen_range(min_keywords..=max_keywords.min(all_skills.len()));
            let sample: Vec<SkillId> = all_skills.choose_multiple(&mut rng, len).copied().collect();
            if let Ok(q) = Query::new(sample) {
                queries.push(q);
            }
        }
        QueryWorkload { queries }
    }

    /// Samples queries biased towards skills that at least `min_holders` people
    /// actually hold, producing "answerable" queries. Used by experiments that
    /// need a reasonable number of genuine experts per query.
    pub fn answerable(
        graph: &CollabGraph,
        count: usize,
        min_keywords: usize,
        max_keywords: usize,
        min_holders: usize,
        seed: u64,
    ) -> Self {
        let popular: Vec<SkillId> = graph
            .vocab()
            .ids()
            .filter(|&s| graph.holders_of(s).len() >= min_holders)
            .collect();
        assert!(
            popular.len() >= min_keywords,
            "not enough popular skills ({}) for {min_keywords}-keyword queries",
            popular.len()
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut queries = Vec::with_capacity(count);
        while queries.len() < count {
            let len = rng.gen_range(min_keywords..=max_keywords.min(popular.len()));
            let sample: Vec<SkillId> = popular.choose_multiple(&mut rng, len).copied().collect();
            if let Ok(q) = Query::new(sample) {
                queries.push(q);
            }
        }
        QueryWorkload { queries }
    }

    /// The queries of the workload.
    pub fn queries(&self) -> &[Query] {
        &self.queries
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when the workload contains no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DatasetConfig, SyntheticDataset};

    fn graph() -> CollabGraph {
        SyntheticDataset::generate(&DatasetConfig::tiny("w", 11)).graph
    }

    #[test]
    fn uniform_workload_respects_bounds() {
        let g = graph();
        let w = QueryWorkload::uniform(&g, 50, 3, 5, 42);
        assert_eq!(w.len(), 50);
        assert!(w.queries().iter().all(|q| (3..=5).contains(&q.len())));
    }

    #[test]
    fn workload_is_deterministic_per_seed() {
        let g = graph();
        let a = QueryWorkload::uniform(&g, 20, 3, 5, 1);
        let b = QueryWorkload::uniform(&g, 20, 3, 5, 1);
        let c = QueryWorkload::uniform(&g, 20, 3, 5, 2);
        assert_eq!(a.queries(), b.queries());
        assert_ne!(a.queries(), c.queries());
    }

    #[test]
    fn answerable_workload_uses_held_skills() {
        let g = graph();
        let w = QueryWorkload::answerable(&g, 20, 2, 4, 2, 9);
        for q in w.queries() {
            for &s in q.skills() {
                assert!(g.holders_of(s).len() >= 2);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one keyword")]
    fn zero_minimum_is_rejected() {
        let g = graph();
        let _ = QueryWorkload::uniform(&g, 1, 0, 3, 0);
    }

    #[test]
    #[should_panic(expected = "min must not exceed max")]
    fn inverted_bounds_are_rejected() {
        let g = graph();
        let _ = QueryWorkload::uniform(&g, 1, 4, 3, 0);
    }

    #[test]
    fn queries_have_no_duplicate_keywords() {
        let g = graph();
        let w = QueryWorkload::uniform(&g, 30, 3, 5, 77);
        for q in w.queries() {
            let mut sk = q.skills().to_vec();
            sk.sort_unstable();
            sk.dedup();
            assert_eq!(sk.len(), q.len());
        }
    }

    #[test]
    fn empty_workload_is_possible() {
        let g = graph();
        let w = QueryWorkload::uniform(&g, 0, 3, 5, 1);
        assert!(w.is_empty());
    }
}
