//! Probe-cache persistence: warm entries serialized across restarts.
//!
//! ```text
//! exes-cache v1
//! graph <fingerprint>
//! entries <n>
//! <ctx>\t<subject>\t<delta>\t<positive 0|1>\t<signal f64 bits>
//! ```
//!
//! Each line is one memoised probe under its full cache key: the context
//! fingerprint (folding query skills, graph fingerprint and model
//! fingerprint), the subject, and the canonical perturbation set encoded as
//! comma-joined tokens (`AS:p:s` add-skill, `RS:p:s` remove-skill, `AE:a:b`
//! add-edge, `RE:a:b` remove-edge, `AQ:s` add-query-term, `RQ:s`
//! remove-query-term; `-` for the identity probe). Signals round-trip exactly
//! via their IEEE-754 bit patterns.
//!
//! The `graph` header pins the chained fingerprint the entries were exported
//! under: a loader whose recovered store carries a different fingerprint must
//! reject the whole file as stale (its contexts could never hit anyway, and a
//! file from a diverged history must not be trusted).

use crate::{DurabilityError, Result};
use exes_core::{Probe, ProbeCache};
use exes_graph::{PersonId, Perturbation, SkillId};
use std::fmt::Write as _;

/// The header line opening every cache file.
pub const CACHE_MAGIC: &str = "exes-cache v1";

/// One exported cache entry: `(context, subject, canonical delta, probe)`.
pub type CacheEntry = (u64, PersonId, Vec<Perturbation>, Probe);

fn push_delta(delta: &[Perturbation], out: &mut String) {
    if delta.is_empty() {
        out.push('-');
        return;
    }
    for (i, p) in delta.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match p {
            Perturbation::AddSkill { person, skill } => {
                let _ = write!(out, "AS:{}:{}", person.0, skill.0);
            }
            Perturbation::RemoveSkill { person, skill } => {
                let _ = write!(out, "RS:{}:{}", person.0, skill.0);
            }
            Perturbation::AddEdge { a, b } => {
                let _ = write!(out, "AE:{}:{}", a.0, b.0);
            }
            Perturbation::RemoveEdge { a, b } => {
                let _ = write!(out, "RE:{}:{}", a.0, b.0);
            }
            Perturbation::AddQueryTerm { skill } => {
                let _ = write!(out, "AQ:{}", skill.0);
            }
            Perturbation::RemoveQueryTerm { skill } => {
                let _ = write!(out, "RQ:{}", skill.0);
            }
        }
    }
}

fn corrupt(msg: impl Into<String>) -> DurabilityError {
    DurabilityError::Corrupt(msg.into())
}

fn parse_u32(tok: Option<&str>, what: &str) -> Result<u32> {
    tok.and_then(|t| t.parse::<u32>().ok())
        .ok_or_else(|| corrupt(format!("cache entry has a bad {what}")))
}

fn parse_delta(field: &str) -> Result<Vec<Perturbation>> {
    if field == "-" {
        return Ok(Vec::new());
    }
    let mut delta = Vec::new();
    for tok in field.split(',') {
        let mut parts = tok.split(':');
        let kind = parts.next().unwrap_or_default();
        let p = match kind {
            "AS" | "RS" => {
                let person = PersonId(parse_u32(parts.next(), "person id")?);
                let skill = SkillId(parse_u32(parts.next(), "skill id")?);
                if kind == "AS" {
                    Perturbation::AddSkill { person, skill }
                } else {
                    Perturbation::RemoveSkill { person, skill }
                }
            }
            "AE" | "RE" => {
                let a = PersonId(parse_u32(parts.next(), "endpoint")?);
                let b = PersonId(parse_u32(parts.next(), "endpoint")?);
                if kind == "AE" {
                    Perturbation::AddEdge { a, b }
                } else {
                    Perturbation::RemoveEdge { a, b }
                }
            }
            "AQ" | "RQ" => {
                let skill = SkillId(parse_u32(parts.next(), "skill id")?);
                if kind == "AQ" {
                    Perturbation::AddQueryTerm { skill }
                } else {
                    Perturbation::RemoveQueryTerm { skill }
                }
            }
            other => return Err(corrupt(format!("unknown perturbation token {other:?}"))),
        };
        if parts.next().is_some() {
            return Err(corrupt(format!("trailing fields in perturbation {tok:?}")));
        }
        delta.push(p);
    }
    Ok(delta)
}

/// Encodes a cache file from exported entries, pinned to the graph
/// fingerprint they were exported under.
pub fn encode(graph_fingerprint: u64, entries: &[CacheEntry]) -> String {
    let mut out = String::new();
    out.push_str(CACHE_MAGIC);
    out.push('\n');
    let _ = writeln!(out, "graph {graph_fingerprint}");
    let _ = writeln!(out, "entries {}", entries.len());
    for (ctx, subject, delta, probe) in entries {
        let _ = write!(out, "{ctx}\t{}\t", subject.0);
        push_delta(delta, &mut out);
        let _ = writeln!(
            out,
            "\t{}\t{}",
            u8::from(probe.positive),
            probe.signal.to_bits()
        );
    }
    out
}

/// Decodes a cache file into `(graph fingerprint, entries)`. The caller is
/// responsible for the staleness check against its recovered store.
pub fn decode(text: &str) -> Result<(u64, Vec<CacheEntry>)> {
    let mut lines = text.lines();
    if lines.next() != Some(CACHE_MAGIC) {
        return Err(corrupt("missing 'exes-cache v1' header"));
    }
    let header_u64 = |line: Option<&str>, keyword: &str| -> Result<u64> {
        line.and_then(|l| l.strip_prefix(keyword))
            .and_then(|rest| rest.trim().parse::<u64>().ok())
            .ok_or_else(|| corrupt(format!("cache file missing '{keyword} <n>' header line")))
    };
    let graph_fingerprint = header_u64(lines.next(), "graph")?;
    let num_entries = header_u64(lines.next(), "entries")? as usize;
    let mut entries = Vec::with_capacity(num_entries);
    for i in 0..num_entries {
        let line = lines
            .next()
            .ok_or_else(|| corrupt(format!("cache file truncated at entry {i}")))?;
        let mut fields = line.split('\t');
        let ctx = fields
            .next()
            .and_then(|t| t.parse::<u64>().ok())
            .ok_or_else(|| corrupt(format!("cache entry {i} has a bad context")))?;
        let subject = PersonId(parse_u32(fields.next(), "subject")?);
        let delta = parse_delta(
            fields
                .next()
                .ok_or_else(|| corrupt(format!("cache entry {i} missing delta field")))?,
        )?;
        let positive = match fields.next() {
            Some("0") => false,
            Some("1") => true,
            _ => return Err(corrupt(format!("cache entry {i} has a bad positive flag"))),
        };
        let signal = fields
            .next()
            .and_then(|t| t.parse::<u64>().ok())
            .map(f64::from_bits)
            .ok_or_else(|| corrupt(format!("cache entry {i} has a bad signal")))?;
        if fields.next().is_some() {
            return Err(corrupt(format!("cache entry {i} has trailing fields")));
        }
        entries.push((ctx, subject, delta, Probe { positive, signal }));
    }
    if lines.next().is_some() {
        return Err(corrupt("trailing data after last cache entry"));
    }
    Ok((graph_fingerprint, entries))
}

/// Outcome of loading a persisted cache file into a live [`ProbeCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheLoadOutcome {
    /// No cache file existed.
    Missing,
    /// The file's pinned graph fingerprint does not match the live store's —
    /// the entries belong to a diverged history and were rejected wholesale.
    Stale {
        /// The live store's fingerprint.
        expected: u64,
        /// The fingerprint the file was exported under.
        found: u64,
    },
    /// The entries were imported; carries how many.
    Loaded(usize),
}

/// Imports `entries` into `cache` if `found` matches `expected`, reporting
/// the staleness decision.
pub fn import_checked(
    cache: &ProbeCache,
    expected: u64,
    found: u64,
    entries: Vec<CacheEntry>,
) -> CacheLoadOutcome {
    if expected != found {
        return CacheLoadOutcome::Stale { expected, found };
    }
    CacheLoadOutcome::Loaded(cache.import_entries(entries))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries() -> Vec<CacheEntry> {
        vec![
            (
                42,
                PersonId(0),
                Vec::new(),
                Probe {
                    positive: true,
                    signal: 0.25,
                },
            ),
            (
                42,
                PersonId(3),
                vec![
                    Perturbation::AddSkill {
                        person: PersonId(3),
                        skill: SkillId(1),
                    },
                    Perturbation::RemoveSkill {
                        person: PersonId(3),
                        skill: SkillId(0),
                    },
                    Perturbation::AddEdge {
                        a: PersonId(1),
                        b: PersonId(2),
                    },
                    Perturbation::RemoveEdge {
                        a: PersonId(0),
                        b: PersonId(3),
                    },
                    Perturbation::AddQueryTerm { skill: SkillId(2) },
                    Perturbation::RemoveQueryTerm { skill: SkillId(1) },
                ],
                Probe {
                    positive: false,
                    // A signal that does not roundtrip through decimal text,
                    // proving the bit-pattern encoding is exact.
                    signal: 0.1 + 0.2,
                },
            ),
        ]
    }

    #[test]
    fn roundtrips_every_token_kind_bit_exactly() {
        let original = entries();
        let (fp, back) = decode(&encode(99, &original)).unwrap();
        assert_eq!(fp, 99);
        assert_eq!(back.len(), original.len());
        for ((c0, s0, d0, p0), (c1, s1, d1, p1)) in original.iter().zip(&back) {
            assert_eq!(c0, c1);
            assert_eq!(s0, s1);
            assert_eq!(d0, d1);
            assert_eq!(p0.positive, p1.positive);
            assert_eq!(p0.signal.to_bits(), p1.signal.to_bits());
        }
    }

    #[test]
    fn import_checked_rejects_mismatched_fingerprints() {
        let cache = ProbeCache::new(64);
        let outcome = import_checked(&cache, 1, 2, entries());
        assert_eq!(
            outcome,
            CacheLoadOutcome::Stale {
                expected: 1,
                found: 2
            }
        );
        assert!(cache.is_empty());
        assert_eq!(
            import_checked(&cache, 2, 2, entries()),
            CacheLoadOutcome::Loaded(2)
        );
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn malformed_files_are_rejected() {
        for text in [
            "nope",
            "exes-cache v1\ngraph x\nentries 0\n",
            "exes-cache v1\ngraph 1\nentries 1\n",
            "exes-cache v1\ngraph 1\nentries 1\n1\t2\tZZ:0\t1\t0\n",
            "exes-cache v1\ngraph 1\nentries 1\n1\t2\t-\t5\t0\n",
            "exes-cache v1\ngraph 1\nentries 1\n1\t2\t-\t1\tbits\n",
            "exes-cache v1\ngraph 1\nentries 1\n1\t2\t-\t1\t0\textra\n",
            "exes-cache v1\ngraph 1\nentries 0\ntrailing\n",
            "exes-cache v1\ngraph 1\nentries 1\n1\t2\tAS:0:1:9\t1\t0\n",
        ] {
            assert!(
                matches!(decode(text), Err(DurabilityError::Corrupt(_))),
                "accepted malformed cache file: {text:?}"
            );
        }
    }
}
