//! [`DurableStore`]: a [`GraphStore`] wrapped with a data directory — WAL on
//! every commit, periodic snapshots, recovery on open, cache persistence.

use crate::cachefile;
use crate::snapshot::{self, write_atomic};
use crate::wal::Wal;
use crate::Result;
use exes_core::ProbeCache;
use exes_graph::store::{GraphSnapshot, GraphStore, StoreConfig, UpdateBatch};
use exes_graph::CollabGraph;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

pub use crate::cachefile::CacheLoadOutcome as CacheLoad;

/// File name of the write-ahead log inside the data directory.
pub const WAL_FILE: &str = "wal.log";
/// File name of the current snapshot inside the data directory.
pub const SNAPSHOT_FILE: &str = "snapshot.txt";
/// File name of the persisted probe cache inside the data directory.
pub const CACHE_FILE: &str = "cache.txt";

/// Tunables of a [`DurableStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// Write a snapshot (and truncate the WAL) after this many durable
    /// commits. `0` disables automatic snapshots — only
    /// [`DurableStore::snapshot_now`] compacts the log.
    pub snapshot_interval: u64,
    /// Tunables of the wrapped [`GraphStore`]. Persisted rebuild counters
    /// assume the same `rebuild_interval` across restarts.
    pub store: StoreConfig,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            snapshot_interval: 256,
            store: StoreConfig::default(),
        }
    }
}

/// What [`DurableStore::open`] found and did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// True when a snapshot file was loaded (false: seeded fresh).
    pub had_snapshot: bool,
    /// The epoch the loaded snapshot was taken at (0 when seeded fresh).
    pub snapshot_epoch: u64,
    /// The epoch the store stands at after WAL replay.
    pub recovered_epoch: u64,
    /// WAL records replayed on top of the snapshot.
    pub replayed_records: u64,
    /// Bytes dropped from the WAL's torn/corrupt tail (0 on a clean start).
    pub truncated_bytes: u64,
    /// Wall-clock milliseconds the whole recovery took.
    pub recovery_ms: u64,
}

/// Point-in-time durability counters, surfaced by the server's `/metrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurabilityStats {
    /// Records appended (and fsynced) to the WAL since open.
    pub wal_appends: u64,
    /// Bytes appended to the WAL since open.
    pub wal_bytes: u64,
    /// Snapshots written since open (automatic and explicit).
    pub snapshots_written: u64,
    /// Wall-clock milliseconds the boot-time recovery took.
    pub last_recovery_ms: u64,
    /// The epoch recovery landed on.
    pub recovered_epoch: u64,
}

/// The WAL plus the bookkeeping that must change atomically with it. Held
/// across append + store-commit so WAL order always equals epoch order.
struct WalState {
    wal: Wal,
    commits_since_snapshot: u64,
}

/// A [`GraphStore`] whose epochs survive crashes and restarts.
///
/// All mutation must flow through [`DurableStore::commit`] — committing
/// directly on the wrapped store would publish an epoch the WAL has never
/// heard of, and recovery could not reproduce it.
pub struct DurableStore {
    dir: PathBuf,
    config: DurabilityConfig,
    store: Arc<GraphStore>,
    wal: Mutex<WalState>,
    wal_appends: AtomicU64,
    wal_bytes: AtomicU64,
    snapshots_written: AtomicU64,
    recovery: RecoveryReport,
}

impl DurableStore {
    /// Opens the data directory, recovering whatever it holds: the latest
    /// snapshot (if any) is loaded via [`GraphStore::resume`], the WAL tail
    /// is replayed on top — records already covered by the snapshot are
    /// skipped by epoch, and a torn or corrupt tail is truncated to the last
    /// whole record. When neither file exists, `seed` provides the epoch-0
    /// graph. The recovered store is byte-identical (`to_text` and chained
    /// fingerprint) to one that never crashed.
    pub fn open<P, F>(dir: P, config: DurabilityConfig, seed: F) -> Result<DurableStore>
    where
        P: AsRef<Path>,
        F: FnOnce() -> CollabGraph,
    {
        let started = Instant::now();
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;

        let snapshot_path = dir.join(SNAPSHOT_FILE);
        let (store, had_snapshot, snapshot_epoch) = if snapshot_path.exists() {
            let decoded = snapshot::decode(&std::fs::read_to_string(&snapshot_path)?)?;
            let store = GraphStore::resume(
                decoded.graph,
                decoded.epoch,
                decoded.fingerprint,
                decoded.since_rebuild,
                config.store,
            );
            (store, true, decoded.epoch)
        } else {
            (GraphStore::with_config(seed(), config.store), false, 0)
        };

        let mut wal = Wal::open(&dir.join(WAL_FILE))?;
        let scan = wal.scan()?;
        let mut valid_len = scan.valid_len;
        let mut replayed = 0u64;
        for record in scan.records {
            if record.epoch <= snapshot_epoch {
                // Already folded into the snapshot: a crash between snapshot
                // rename and WAL truncation leaves these behind.
                continue;
            }
            if record.epoch != store.epoch() + 1 || store.commit(&record.batch).is_err() {
                // An epoch gap or a batch the store rejects cannot come from
                // a clean append sequence; treat everything from here on as
                // the corrupt tail.
                valid_len = record.start;
                break;
            }
            replayed += 1;
        }
        let truncated_bytes = wal.len() - valid_len;
        if truncated_bytes > 0 {
            wal.truncate_to(valid_len)?;
        }

        let recovery = RecoveryReport {
            had_snapshot,
            snapshot_epoch,
            recovered_epoch: store.epoch(),
            replayed_records: replayed,
            truncated_bytes,
            recovery_ms: started.elapsed().as_millis() as u64,
        };
        Ok(DurableStore {
            dir,
            config,
            store: Arc::new(store),
            wal: Mutex::new(WalState {
                wal,
                commits_since_snapshot: 0,
            }),
            wal_appends: AtomicU64::new(0),
            wal_bytes: AtomicU64::new(0),
            snapshots_written: AtomicU64::new(0),
            recovery,
        })
    }

    /// The wrapped store, for snapshots and read paths. Mutations must go
    /// through [`DurableStore::commit`].
    pub fn store(&self) -> &Arc<GraphStore> {
        &self.store
    }

    /// The data directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configuration this store was opened with.
    pub fn config(&self) -> DurabilityConfig {
        self.config
    }

    /// What [`DurableStore::open`] found and did.
    pub fn recovery(&self) -> RecoveryReport {
        self.recovery
    }

    /// Durability counters for metrics surfaces.
    pub fn stats(&self) -> DurabilityStats {
        DurabilityStats {
            wal_appends: self.wal_appends.load(Ordering::Relaxed),
            wal_bytes: self.wal_bytes.load(Ordering::Relaxed),
            snapshots_written: self.snapshots_written.load(Ordering::Relaxed),
            last_recovery_ms: self.recovery.recovery_ms,
            recovered_epoch: self.recovery.recovered_epoch,
        }
    }

    /// Durably commits a batch: appended and fsynced to the WAL *before* the
    /// epoch publishes, so a crash straight after the store's answer can
    /// always replay it. A batch the store rejects is rolled back off the
    /// WAL — rejected batches are never persisted. Every
    /// [`DurabilityConfig::snapshot_interval`]-th durable commit also writes
    /// a snapshot and truncates the WAL.
    pub fn commit(&self, batch: &UpdateBatch) -> Result<Arc<GraphSnapshot>> {
        if batch.is_empty() {
            return Ok(self.store.snapshot());
        }
        let mut state = self.wal.lock().expect("durable store lock poisoned");
        // All commits flow through this lock, so the next epoch is stable.
        let epoch = self.store.epoch() + 1;
        let rollback_to = state.wal.len();
        let appended = state.wal.append(epoch, batch)?;
        match self.store.commit(batch) {
            Ok(snapshot) => {
                self.wal_appends.fetch_add(1, Ordering::Relaxed);
                self.wal_bytes.fetch_add(appended, Ordering::Relaxed);
                state.commits_since_snapshot += 1;
                if self.config.snapshot_interval > 0
                    && state.commits_since_snapshot >= self.config.snapshot_interval
                {
                    self.write_snapshot_locked(&mut state)?;
                }
                Ok(snapshot)
            }
            Err(e) => {
                state.wal.truncate_to(rollback_to)?;
                Err(e.into())
            }
        }
    }

    /// Writes a snapshot of the current epoch and truncates the WAL. Called
    /// automatically every [`DurabilityConfig::snapshot_interval`] commits;
    /// servers also call it on graceful drain.
    pub fn snapshot_now(&self) -> Result<()> {
        let mut state = self.wal.lock().expect("durable store lock poisoned");
        self.write_snapshot_locked(&mut state)
    }

    /// Snapshot + WAL truncation under the commit lock, so the graph text,
    /// epoch, fingerprint and rebuild counter are mutually consistent. The
    /// snapshot renames into place *before* the WAL truncates: a crash in
    /// between only leaves already-covered records behind, which recovery
    /// skips by epoch.
    fn write_snapshot_locked(&self, state: &mut WalState) -> Result<()> {
        let snapshot = self.store.snapshot();
        let text = snapshot::encode(
            snapshot.epoch(),
            snapshot.fingerprint(),
            self.store.since_rebuild(),
            &snapshot.to_text(),
        );
        write_atomic(&self.dir, SNAPSHOT_FILE, &text)?;
        state.wal.reset()?;
        state.commits_since_snapshot = 0;
        self.snapshots_written.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Persists the cache's warm entries, pinned to the current epoch's
    /// fingerprint, atomically (temp file + rename). Returns how many entries
    /// were written.
    pub fn save_cache(&self, cache: &ProbeCache) -> Result<usize> {
        let entries = cache.export_entries();
        let fingerprint = self.store.snapshot().fingerprint();
        write_atomic(
            &self.dir,
            CACHE_FILE,
            &cachefile::encode(fingerprint, &entries),
        )?;
        Ok(entries.len())
    }

    /// Loads the persisted cache file into `cache`, rejecting it wholesale
    /// when its pinned graph fingerprint does not match the recovered
    /// store's current epoch.
    pub fn load_cache_into(&self, cache: &ProbeCache) -> Result<CacheLoad> {
        let path = self.dir.join(CACHE_FILE);
        if !path.exists() {
            return Ok(CacheLoad::Missing);
        }
        let (found, entries) = cachefile::decode(&std::fs::read_to_string(&path)?)?;
        let expected = self.store.snapshot().fingerprint();
        Ok(cachefile::import_checked(cache, expected, found, entries))
    }
}

impl std::fmt::Debug for DurableStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableStore")
            .field("dir", &self.dir)
            .field("epoch", &self.store.epoch())
            .field("config", &self.config)
            .field("recovery", &self.recovery)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exes_core::Probe;
    use exes_graph::{CollabGraphBuilder, PersonId};
    use std::fs;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("exes-durable-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn seed() -> CollabGraph {
        let mut b = CollabGraphBuilder::new();
        let ada = b.add_person("Ada", ["db", "ml"]);
        let bob = b.add_person("Bob", ["ml"]);
        let cleo = b.add_person("Cleo", ["graphs"]);
        b.add_edge(ada, bob);
        b.add_edge(bob, cleo);
        b.build()
    }

    fn no_snapshots() -> DurabilityConfig {
        DurabilityConfig {
            snapshot_interval: 0,
            ..DurabilityConfig::default()
        }
    }

    fn batch(i: u32) -> UpdateBatch {
        let mut b = UpdateBatch::new();
        b.add_person(&format!("hire-{i}"), ["graphs"]);
        b.add_collaboration(PersonId(0), PersonId(3 + i));
        b
    }

    #[test]
    fn fresh_open_seeds_epoch_zero() {
        let dir = tmp_dir("fresh");
        let durable = DurableStore::open(&dir, DurabilityConfig::default(), seed).unwrap();
        assert_eq!(durable.store().epoch(), 0);
        let report = durable.recovery();
        assert!(!report.had_snapshot);
        assert_eq!(report.replayed_records, 0);
        assert_eq!(
            durable.store().snapshot().fingerprint(),
            seed().fingerprint()
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_replays_wal_to_identical_state() {
        let dir = tmp_dir("reopen");
        let reference = GraphStore::with_config(seed(), StoreConfig::default());
        {
            let durable = DurableStore::open(&dir, no_snapshots(), seed).unwrap();
            for i in 0..3 {
                durable.commit(&batch(i)).unwrap();
                reference.commit(&batch(i)).unwrap();
            }
            assert_eq!(durable.stats().wal_appends, 3);
            // Dropped without any snapshot or shutdown: a simulated crash.
        }
        let durable = DurableStore::open(&dir, no_snapshots(), seed).unwrap();
        let report = durable.recovery();
        assert!(!report.had_snapshot);
        assert_eq!(report.replayed_records, 3);
        assert_eq!(report.truncated_bytes, 0);
        let recovered = durable.store().snapshot();
        let live = reference.snapshot();
        assert_eq!(recovered.epoch(), live.epoch());
        assert_eq!(recovered.fingerprint(), live.fingerprint());
        assert_eq!(recovered.to_text(), live.to_text());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_compacts_the_wal_and_reopen_resumes() {
        let dir = tmp_dir("compact");
        let reference = GraphStore::with_config(seed(), StoreConfig::default());
        {
            let durable = DurableStore::open(
                &dir,
                DurabilityConfig {
                    snapshot_interval: 2,
                    ..DurabilityConfig::default()
                },
                seed,
            )
            .unwrap();
            for i in 0..5 {
                durable.commit(&batch(i)).unwrap();
                reference.commit(&batch(i)).unwrap();
            }
            // 5 commits at interval 2: snapshots after #2 and #4, one record
            // (epoch 5) left in the log.
            assert_eq!(durable.stats().snapshots_written, 2);
        }
        let durable = DurableStore::open(
            &dir,
            DurabilityConfig {
                snapshot_interval: 2,
                ..DurabilityConfig::default()
            },
            seed,
        )
        .unwrap();
        let report = durable.recovery();
        assert!(report.had_snapshot);
        assert_eq!(report.snapshot_epoch, 4);
        assert_eq!(report.replayed_records, 1);
        assert_eq!(report.recovered_epoch, 5);
        assert_eq!(
            durable.store().snapshot().fingerprint(),
            reference.snapshot().fingerprint()
        );
        assert_eq!(
            durable.store().snapshot().to_text(),
            reference.snapshot().to_text()
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejected_batches_are_rolled_back_off_the_wal() {
        let dir = tmp_dir("reject");
        let durable = DurableStore::open(&dir, no_snapshots(), seed).unwrap();
        durable.commit(&batch(0)).unwrap();
        let mut bad = UpdateBatch::new();
        bad.remove_collaboration(PersonId(0), PersonId(2)); // no such edge
        assert!(matches!(
            durable.commit(&bad),
            Err(crate::DurabilityError::Graph(_))
        ));
        assert_eq!(durable.stats().wal_appends, 1);
        drop(durable);
        let durable = DurableStore::open(&dir, no_snapshots(), seed).unwrap();
        assert_eq!(durable.recovery().replayed_records, 1);
        assert_eq!(durable.store().epoch(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_roundtrips_and_staleness_is_enforced() {
        let dir = tmp_dir("cache");
        let durable = DurableStore::open(&dir, no_snapshots(), seed).unwrap();
        let cache = exes_core::ProbeCache::new(64);
        cache.import_entries(vec![(
            7,
            PersonId(1),
            Vec::new(),
            Probe {
                positive: true,
                signal: 1.5,
            },
        )]);
        assert_eq!(durable.save_cache(&cache).unwrap(), 1);

        let warm = exes_core::ProbeCache::new(64);
        assert_eq!(
            durable.load_cache_into(&warm).unwrap(),
            CacheLoad::Loaded(1)
        );
        assert_eq!(warm.len(), 1);

        // A commit moves the fingerprint: the file is now stale.
        durable.commit(&batch(0)).unwrap();
        let stale = exes_core::ProbeCache::new(64);
        assert!(matches!(
            durable.load_cache_into(&stale).unwrap(),
            CacheLoad::Stale { .. }
        ));
        assert!(stale.is_empty());

        // And with no file at all: Missing.
        fs::remove_file(dir.join(CACHE_FILE)).unwrap();
        assert_eq!(durable.load_cache_into(&stale).unwrap(), CacheLoad::Missing);
        let _ = fs::remove_dir_all(&dir);
    }
}
