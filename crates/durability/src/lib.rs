//! # exes-durability
//!
//! Durability for the ExES serving stack: a write-ahead log of
//! [`UpdateBatch`](exes_graph::store::UpdateBatch)es, periodic epoch snapshot
//! persistence, probe-cache export, and warm restarts.
//!
//! The in-memory [`GraphStore`](exes_graph::GraphStore) loses everything on a
//! crash — the graph, the epoch sequence, and (transitively) every warm
//! [`ProbeCache`](exes_core::ProbeCache) entry, so the first post-restart
//! batch pays the full cold-probe tail. [`DurableStore`] wraps a `GraphStore`
//! with a data directory:
//!
//! * **Write-ahead log** (`wal.log`): every committed batch is appended as a
//!   checksummed, length-prefixed record — and fsynced — *before* the epoch
//!   is published. See [`wal`] for the record format.
//! * **Epoch snapshots** (`snapshot.txt`): every
//!   [`DurabilityConfig::snapshot_interval`] commits (and on demand), the full
//!   graph text plus its epoch, chained fingerprint and rebuild counter are
//!   written to a temp file, fsynced, renamed into place, and the WAL is
//!   truncated. A crash mid-write leaves the previous snapshot intact.
//! * **Recovery** ([`DurableStore::open`]): load the latest snapshot (or the
//!   caller's seed graph), then replay the WAL tail. A torn or corrupt tail is
//!   detected by checksum and truncated to the last whole record; records
//!   already covered by the snapshot are skipped by epoch. The recovered
//!   store is byte-identical (`to_text` **and** chained fingerprint) to one
//!   that never crashed.
//! * **Warm-cache persistence** (`cache.txt`): probe-cache entries survive
//!   restarts via [`DurableStore::save_cache`] /
//!   [`DurableStore::load_cache_into`], guarded by the graph fingerprint they
//!   were exported under — a restarted server answers its first repeat batch
//!   with zero black-box probes.
//!
//! ```no_run
//! use exes_durability::{DurabilityConfig, DurableStore};
//! use exes_graph::store::UpdateBatch;
//! use exes_graph::{CollabGraphBuilder, PersonId};
//!
//! let seed = || {
//!     let mut b = CollabGraphBuilder::new();
//!     b.add_person("Ada", ["databases"]);
//!     b.add_person("Bob", ["graphs"]);
//!     b.build()
//! };
//! // First boot: seeds from the closure. Later boots: snapshot + WAL replay.
//! let durable = DurableStore::open("data", DurabilityConfig::default(), seed)?;
//! let mut batch = UpdateBatch::new();
//! batch.add_collaboration(PersonId(0), PersonId(1));
//! durable.commit(&batch)?; // fsynced to the WAL before the epoch publishes
//! # Ok::<(), exes_durability::DurabilityError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cachefile;
mod durable;
pub mod snapshot;
pub mod wal;

pub use durable::{CacheLoad, DurabilityConfig, DurabilityStats, DurableStore, RecoveryReport};

use exes_graph::GraphError;
use std::fmt;
use std::io;

/// Errors of the durability layer.
#[derive(Debug)]
pub enum DurabilityError {
    /// An I/O operation on the data directory failed.
    Io(io::Error),
    /// The underlying [`exes_graph::GraphStore`] rejected a batch (the WAL
    /// append is rolled back — rejected batches are never persisted).
    Graph(GraphError),
    /// A persisted file failed validation beyond the point recovery may
    /// silently truncate (a corrupt snapshot header, an unreadable cache
    /// file). Raised instead of quietly dropping committed data.
    Corrupt(String),
}

impl fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurabilityError::Io(e) => write!(f, "durability i/o error: {e}"),
            DurabilityError::Graph(e) => write!(f, "batch rejected: {e}"),
            DurabilityError::Corrupt(msg) => write!(f, "corrupt durability file: {msg}"),
        }
    }
}

impl std::error::Error for DurabilityError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurabilityError::Io(e) => Some(e),
            DurabilityError::Graph(e) => Some(e),
            DurabilityError::Corrupt(_) => None,
        }
    }
}

impl From<io::Error> for DurabilityError {
    fn from(e: io::Error) -> Self {
        DurabilityError::Io(e)
    }
}

impl From<GraphError> for DurabilityError {
    fn from(e: GraphError) -> Self {
        DurabilityError::Graph(e)
    }
}

/// `Result` specialised to [`DurabilityError`].
pub type Result<T> = std::result::Result<T, DurabilityError>;
