//! Epoch snapshot files: the full graph text plus the store identity a
//! restart must carry over.
//!
//! ```text
//! exes-snapshot v1
//! epoch <n>
//! fingerprint <n>
//! since-rebuild <n>
//! checksum <n>          (record_checksum(epoch, graph text bytes))
//! <exes-graph v1 text...>
//! ```
//!
//! The fingerprint is the store's *chained* value — not the content hash a
//! bare [`CollabGraph::from_text`] would compute — so a recovered store keeps
//! answering warm probe-cache lookups keyed on it. `since-rebuild` keeps the
//! rebuild schedule (and thus every future fingerprint re-grounding point)
//! aligned with the never-restarted store. Snapshots are written to a temp
//! file, fsynced, and renamed into place; a torn write can therefore never be
//! observed, and the checksum guards against at-rest corruption.

use crate::wal::record_checksum;
use crate::{DurabilityError, Result};
use exes_graph::CollabGraph;
use std::fs::File;
use std::io::Write;
use std::path::Path;

/// The header line opening every snapshot file.
pub const SNAPSHOT_MAGIC: &str = "exes-snapshot v1";

/// A decoded snapshot file.
#[derive(Debug)]
pub struct SnapshotFile {
    /// The epoch the snapshot was taken at.
    pub epoch: u64,
    /// The chained fingerprint the store carried at that epoch.
    pub fingerprint: u64,
    /// Delta commits since the store's last full rebuild.
    pub since_rebuild: u64,
    /// The graph itself.
    pub graph: CollabGraph,
}

/// Encodes a snapshot file from the store identity plus the graph's
/// `exes-graph v1` text.
pub fn encode(epoch: u64, fingerprint: u64, since_rebuild: u64, graph_text: &str) -> String {
    let mut out = String::with_capacity(graph_text.len() + 128);
    out.push_str(SNAPSHOT_MAGIC);
    out.push('\n');
    out.push_str(&format!("epoch {epoch}\n"));
    out.push_str(&format!("fingerprint {fingerprint}\n"));
    out.push_str(&format!("since-rebuild {since_rebuild}\n"));
    out.push_str(&format!(
        "checksum {}\n",
        record_checksum(epoch, graph_text.as_bytes())
    ));
    out.push_str(graph_text);
    out
}

fn corrupt(msg: impl Into<String>) -> DurabilityError {
    DurabilityError::Corrupt(msg.into())
}

fn header_u64(line: Option<&str>, keyword: &str) -> Result<u64> {
    line.and_then(|l| l.strip_prefix(keyword))
        .and_then(|rest| rest.trim().parse::<u64>().ok())
        .ok_or_else(|| corrupt(format!("snapshot missing '{keyword} <n>' header line")))
}

/// Decodes a snapshot file. Unlike a torn WAL tail — which recovery silently
/// truncates — a snapshot that fails validation is an error: rename-into-place
/// means no crash can legitimately leave one behind, so refusing is safer than
/// quietly booting from an empty graph.
pub fn decode(text: &str) -> Result<SnapshotFile> {
    let mut lines = text.lines();
    if lines.next() != Some(SNAPSHOT_MAGIC) {
        return Err(corrupt("missing 'exes-snapshot v1' header"));
    }
    let epoch = header_u64(lines.next(), "epoch")?;
    let fingerprint = header_u64(lines.next(), "fingerprint")?;
    let since_rebuild = header_u64(lines.next(), "since-rebuild")?;
    let checksum = header_u64(lines.next(), "checksum")?;
    // The graph text is everything after the five header lines.
    let header_len: usize = text.split_inclusive('\n').take(5).map(|l| l.len()).sum();
    let graph_text = &text[header_len..];
    if record_checksum(epoch, graph_text.as_bytes()) != checksum {
        return Err(corrupt("snapshot graph text fails its checksum"));
    }
    let graph = CollabGraph::from_text(graph_text)
        .map_err(|e| corrupt(format!("snapshot graph text does not decode: {e}")))?;
    Ok(SnapshotFile {
        epoch,
        fingerprint,
        since_rebuild,
        graph,
    })
}

/// Writes `contents` to `dir/name` atomically: temp file, fsync, rename into
/// place, fsync the directory. Readers (and recovery) either see the old file
/// or the complete new one, never a torn intermediate.
pub fn write_atomic(dir: &Path, name: &str, contents: &str) -> Result<()> {
    let tmp = dir.join(format!("{name}.tmp"));
    let target = dir.join(name);
    let mut file = File::create(&tmp)?;
    file.write_all(contents.as_bytes())?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp, &target)?;
    // Make the rename itself durable: fsync the directory entry.
    File::open(dir)?.sync_all()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use exes_graph::CollabGraphBuilder;

    fn toy_text() -> String {
        let mut b = CollabGraphBuilder::new();
        let ada = b.add_person("Ada", ["db", "ml"]);
        let bob = b.add_person("Bob", ["ml"]);
        b.add_edge(ada, bob);
        b.build().to_text()
    }

    #[test]
    fn roundtrip_preserves_identity() {
        let text = toy_text();
        let file = encode(7, 0xDEAD_BEEF, 3, &text);
        let decoded = decode(&file).unwrap();
        assert_eq!(decoded.epoch, 7);
        assert_eq!(decoded.fingerprint, 0xDEAD_BEEF);
        assert_eq!(decoded.since_rebuild, 3);
        assert_eq!(decoded.graph.to_text(), text);
    }

    #[test]
    fn corruption_is_rejected() {
        let file = encode(7, 1, 0, &toy_text());
        // Flip a byte inside the graph text: checksum failure.
        let mut bytes = file.clone().into_bytes();
        let target = bytes.len() - 3;
        bytes[target] ^= 0x20;
        let corrupted = String::from_utf8(bytes).unwrap();
        assert!(matches!(
            decode(&corrupted),
            Err(DurabilityError::Corrupt(_))
        ));
        // A missing header line is rejected too.
        let headerless: String = file.lines().skip(1).collect::<Vec<_>>().join("\n");
        assert!(matches!(
            decode(&headerless),
            Err(DurabilityError::Corrupt(_))
        ));
    }
}
