//! The write-ahead log: checksummed, length-prefixed batch records.
//!
//! File layout:
//!
//! ```text
//! "exes-wal v1\n"                                  (12-byte magic)
//! [payload len: u64 LE][epoch: u64 LE][checksum: u64 LE][payload bytes]
//! ...
//! ```
//!
//! The payload is the batch's lossless `exes-batch v1` text
//! ([`UpdateBatch::to_text`]); `epoch` is the epoch the batch *produces*, so
//! recovery can skip records already folded into a snapshot (a crash between
//! snapshot rename and WAL truncation leaves such records behind). The
//! checksum hashes the epoch and the payload bytes, so a torn append — a
//! partial header, a short payload, or garbage bytes — is detected and the
//! log is truncated to the last whole record instead of poisoning recovery.

use crate::{DurabilityError, Result};
use exes_graph::store::UpdateBatch;
use rustc_hash::FxHasher;
use std::fs::{File, OpenOptions};
use std::hash::Hasher;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// The 12-byte file magic opening every WAL.
pub const WAL_MAGIC: &[u8; 12] = b"exes-wal v1\n";

/// Bytes of the fixed per-record header (payload length, epoch, checksum).
pub const RECORD_HEADER_LEN: u64 = 24;

/// Checksum of one record: hashes the epoch and the payload bytes.
pub fn record_checksum(epoch: u64, payload: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(epoch);
    h.write(payload);
    h.finish()
}

/// One decoded WAL record, with its byte extent in the file.
#[derive(Debug)]
pub struct WalRecord {
    /// The epoch this batch produced when originally committed.
    pub epoch: u64,
    /// The replayable batch.
    pub batch: UpdateBatch,
    /// Byte offset of the record's header in the file.
    pub start: u64,
    /// Byte offset one past the record's payload.
    pub end: u64,
}

/// Result of scanning a WAL from the top: every whole, checksum-valid record
/// plus where the valid prefix ends.
#[derive(Debug)]
pub struct WalScan {
    /// Decoded records in append order.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix (magic + whole records). Anything
    /// between here and the file length is a torn or corrupt tail.
    pub valid_len: u64,
}

/// An open write-ahead log file.
#[derive(Debug)]
pub struct Wal {
    file: File,
    len: u64,
}

impl Wal {
    /// Opens (or creates) the WAL at `path`. A fresh file gets the magic
    /// written and synced; an existing file must start with it.
    pub fn open(path: &Path) -> Result<Wal> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        if len == 0 {
            file.write_all(WAL_MAGIC)?;
            file.sync_all()?;
            return Ok(Wal {
                file,
                len: WAL_MAGIC.len() as u64,
            });
        }
        let mut magic = [0u8; 12];
        file.seek(SeekFrom::Start(0))?;
        let got = file.read(&mut magic)?;
        if got < magic.len() || &magic != WAL_MAGIC {
            return Err(DurabilityError::Corrupt(format!(
                "{} does not start with the exes-wal v1 magic",
                path.display()
            )));
        }
        file.seek(SeekFrom::End(0))?;
        Ok(Wal { file, len })
    }

    /// Current file length in bytes (magic included).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len <= WAL_MAGIC.len() as u64
    }

    /// Appends one record and syncs it to disk before returning, so a
    /// subsequently published epoch is guaranteed replayable. Returns the
    /// bytes appended.
    pub fn append(&mut self, epoch: u64, batch: &UpdateBatch) -> Result<u64> {
        let payload = batch.to_text().into_bytes();
        let mut record = Vec::with_capacity(RECORD_HEADER_LEN as usize + payload.len());
        record.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        record.extend_from_slice(&epoch.to_le_bytes());
        record.extend_from_slice(&record_checksum(epoch, &payload).to_le_bytes());
        record.extend_from_slice(&payload);
        self.file.seek(SeekFrom::Start(self.len))?;
        self.file.write_all(&record)?;
        self.file.sync_data()?;
        self.len += record.len() as u64;
        Ok(record.len() as u64)
    }

    /// Truncates the file to `len` bytes (used to roll back a rejected
    /// batch's append, and to drop a torn tail found during recovery).
    pub fn truncate_to(&mut self, len: u64) -> Result<()> {
        self.file.set_len(len)?;
        self.file.sync_data()?;
        self.file.seek(SeekFrom::Start(len))?;
        self.len = len;
        Ok(())
    }

    /// Truncates the log back to just the magic — every record is dropped.
    /// Called after a snapshot lands: the snapshot now covers them.
    pub fn reset(&mut self) -> Result<()> {
        self.truncate_to(WAL_MAGIC.len() as u64)
    }

    /// Scans the file from the top, decoding every whole, checksum-valid
    /// record. Scanning stops — without error — at the first record that is
    /// truncated, fails its checksum, or does not decode as a batch: that is
    /// the torn tail a crash mid-append leaves behind, and
    /// [`WalScan::valid_len`] tells the caller where to cut it off.
    pub fn scan(&mut self) -> Result<WalScan> {
        self.file.seek(SeekFrom::Start(WAL_MAGIC.len() as u64))?;
        let mut buf = Vec::new();
        self.file.read_to_end(&mut buf)?;
        self.file.seek(SeekFrom::Start(self.len))?;
        let mut records = Vec::new();
        let mut pos = 0usize;
        loop {
            let start = WAL_MAGIC.len() as u64 + pos as u64;
            let Some(header) = buf.get(pos..pos + RECORD_HEADER_LEN as usize) else {
                break;
            };
            let payload_len = u64::from_le_bytes(header[0..8].try_into().unwrap()) as usize;
            let epoch = u64::from_le_bytes(header[8..16].try_into().unwrap());
            let checksum = u64::from_le_bytes(header[16..24].try_into().unwrap());
            let payload_at = pos + RECORD_HEADER_LEN as usize;
            let Some(payload) = payload_at
                .checked_add(payload_len)
                .and_then(|end| buf.get(payload_at..end))
            else {
                break; // short payload: torn mid-append
            };
            if record_checksum(epoch, payload) != checksum {
                break; // bit rot or a torn header/payload overlap
            }
            let Ok(text) = std::str::from_utf8(payload) else {
                break;
            };
            let Ok(batch) = UpdateBatch::from_text(text) else {
                break;
            };
            pos = payload_at + payload_len;
            records.push(WalRecord {
                epoch,
                batch,
                start,
                end: WAL_MAGIC.len() as u64 + pos as u64,
            });
        }
        Ok(WalScan {
            records,
            valid_len: WAL_MAGIC.len() as u64 + pos as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exes_graph::PersonId;
    use std::fs;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let path =
            std::env::temp_dir().join(format!("exes-durability-wal-{}-{name}", std::process::id()));
        let _ = fs::remove_file(&path);
        path
    }

    fn batch(i: u32) -> UpdateBatch {
        let mut b = UpdateBatch::new();
        b.add_person(&format!("p{i}"), ["graphs"]);
        b.add_collaboration(PersonId(0), PersonId(i));
        b
    }

    #[test]
    fn append_scan_roundtrip() {
        let path = tmp("roundtrip");
        let mut wal = Wal::open(&path).unwrap();
        for i in 1..=3u32 {
            wal.append(i as u64, &batch(i)).unwrap();
        }
        let scan = wal.scan().unwrap();
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.valid_len, wal.len());
        for (i, rec) in scan.records.iter().enumerate() {
            assert_eq!(rec.epoch, i as u64 + 1);
            assert_eq!(rec.batch, batch(i as u32 + 1));
        }
        // Reopen sees the same records.
        drop(wal);
        let mut wal = Wal::open(&path).unwrap();
        assert_eq!(wal.scan().unwrap().records.len(), 3);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_detected_at_every_truncation_point() {
        let path = tmp("torn");
        let mut wal = Wal::open(&path).unwrap();
        let mut ends = vec![WAL_MAGIC.len() as u64];
        for i in 1..=3u32 {
            wal.append(i as u64, &batch(i)).unwrap();
            ends.push(wal.len());
        }
        let bytes = fs::read(&path).unwrap();
        for cut in WAL_MAGIC.len() as u64..bytes.len() as u64 {
            let cut_path = tmp("torn-cut");
            fs::write(&cut_path, &bytes[..cut as usize]).unwrap();
            let mut cut_wal = Wal::open(&cut_path).unwrap();
            let scan = cut_wal.scan().unwrap();
            // The valid prefix is the longest whole-record prefix <= cut.
            let expect = ends.iter().filter(|&&e| e <= cut).count() - 1;
            assert_eq!(scan.records.len(), expect, "cut at byte {cut}");
            assert_eq!(scan.valid_len, ends[expect], "cut at byte {cut}");
            let _ = fs::remove_file(&cut_path);
        }
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn bit_flips_invalidate_the_record_and_its_suffix() {
        let path = tmp("flip");
        let mut wal = Wal::open(&path).unwrap();
        let mut ends = vec![WAL_MAGIC.len() as u64];
        for i in 1..=3u32 {
            wal.append(i as u64, &batch(i)).unwrap();
            ends.push(wal.len());
        }
        let bytes = fs::read(&path).unwrap();
        // Flip one payload byte inside the second record.
        let mut corrupted = bytes.clone();
        let target = ends[1] as usize + RECORD_HEADER_LEN as usize + 2;
        corrupted[target] ^= 0x40;
        let flip_path = tmp("flip-out");
        fs::write(&flip_path, &corrupted).unwrap();
        let scan = Wal::open(&flip_path).unwrap().scan().unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.valid_len, ends[1]);
        let _ = fs::remove_file(&path);
        let _ = fs::remove_file(&flip_path);
    }

    #[test]
    fn reset_and_rollback_truncate() {
        let path = tmp("reset");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(1, &batch(1)).unwrap();
        let mark = wal.len();
        wal.append(2, &batch(2)).unwrap();
        wal.truncate_to(mark).unwrap();
        assert_eq!(wal.scan().unwrap().records.len(), 1);
        wal.reset().unwrap();
        assert!(wal.is_empty());
        assert_eq!(wal.scan().unwrap().records.len(), 0);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn foreign_files_are_rejected() {
        let path = tmp("foreign");
        fs::write(&path, b"definitely not a wal").unwrap();
        assert!(matches!(Wal::open(&path), Err(DurabilityError::Corrupt(_))));
        let _ = fs::remove_file(&path);
    }
}
