//! Crash-injection property suite for the durability subsystem.
//!
//! The tentpole property: truncate the WAL at **every byte boundary** of a
//! seeded `UpdateStream` run and assert recovery equals the longest
//! whole-record-prefix replay — `to_text`-byte-identical, with the same epoch
//! and the same chained fingerprint, as a never-crashed [`GraphStore`] fed
//! the same prefix of batches (the PR 3 snapshot-vs-replay property, lifted
//! to a store that loses power mid-append).

use exes_datasets::{UpdateStream, UpdateStreamConfig};
use exes_durability::wal::{Wal, WAL_MAGIC};
use exes_durability::{DurabilityConfig, DurableStore};
use exes_graph::store::{GraphStore, StoreConfig, UpdateBatch};
use exes_graph::{CollabGraph, CollabGraphBuilder, GraphView, PersonId};
use std::fs;
use std::path::PathBuf;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "exes-crash-injection-{}-{name}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A deterministic seed graph; `case` varies size and wiring.
fn seed_graph(case: u64) -> CollabGraph {
    let people = 6 + (case as usize % 3) * 2;
    let mut b = CollabGraphBuilder::new();
    let skills = ["db", "ml", "graphs", "xai", "search"];
    let ids: Vec<_> = (0..people)
        .map(|p| {
            b.add_person(
                &format!("person-{p}"),
                [
                    skills[p % skills.len()],
                    skills[(p + case as usize) % skills.len()],
                ],
            )
        })
        .collect();
    for w in ids.windows(2) {
        b.add_edge(w[0], w[1]);
    }
    b.add_edge(ids[0], ids[people / 2]);
    b.build()
}

/// Reference states after each batch prefix: `(epoch, fingerprint, to_text)`
/// of a never-crashed store fed batches `0..k`, for every `k`.
fn reference_states(
    graph: CollabGraph,
    batches: &[UpdateBatch],
    config: StoreConfig,
) -> Vec<(u64, u64, String)> {
    let store = GraphStore::with_config(graph, config);
    let mut states = Vec::with_capacity(batches.len() + 1);
    let snap = store.snapshot();
    states.push((snap.epoch(), snap.fingerprint(), snap.to_text()));
    for batch in batches {
        let snap = store.commit(batch).unwrap();
        states.push((snap.epoch(), snap.fingerprint(), snap.to_text()));
    }
    states
}

#[test]
fn wal_truncated_at_every_byte_recovers_longest_whole_prefix_replay() {
    for (case, rebuild_interval) in [(0u64, 0u64), (1, 2), (2, 3)] {
        let store_config = StoreConfig { rebuild_interval };
        let config = DurabilityConfig {
            snapshot_interval: 0, // keep every record in the log
            store: store_config,
        };
        let graph = seed_graph(case);
        let stream = UpdateStream::generate(&graph, &UpdateStreamConfig::churn(4, 6, case ^ 0x9D));
        let states = reference_states(seed_graph(case), stream.batches(), store_config);

        // Produce the full WAL, then record where each record ends.
        let dir = tmp_dir(&format!("sweep-{case}"));
        let durable = DurableStore::open(&dir, config, || seed_graph(case)).unwrap();
        for batch in stream.batches() {
            durable.commit(batch).unwrap();
        }
        drop(durable);
        let wal_path = dir.join("wal.log");
        let ends: Vec<u64> = {
            let mut wal = Wal::open(&wal_path).unwrap();
            let scan = wal.scan().unwrap();
            assert_eq!(scan.records.len(), stream.len());
            let mut ends = vec![WAL_MAGIC.len() as u64];
            ends.extend(scan.records.iter().map(|r| r.end));
            ends
        };
        let bytes = fs::read(&wal_path).unwrap();
        assert_eq!(*ends.last().unwrap(), bytes.len() as u64);

        for cut in WAL_MAGIC.len()..=bytes.len() {
            let crash_dir = tmp_dir(&format!("sweep-{case}-cut"));
            fs::create_dir_all(&crash_dir).unwrap();
            fs::write(crash_dir.join("wal.log"), &bytes[..cut]).unwrap();

            let recovered = DurableStore::open(&crash_dir, config, || seed_graph(case)).unwrap();
            // The longest whole-record prefix that fits under the cut.
            let k = ends.iter().filter(|&&e| e <= cut as u64).count() - 1;
            let (epoch, fingerprint, text) = &states[k];
            let report = recovered.recovery();
            assert_eq!(report.replayed_records, k as u64, "cut at byte {cut}");
            assert_eq!(
                report.truncated_bytes,
                cut as u64 - ends[k],
                "cut at byte {cut}"
            );
            let snap = recovered.store().snapshot();
            assert_eq!(snap.epoch(), *epoch, "cut at byte {cut}");
            assert_eq!(snap.fingerprint(), *fingerprint, "cut at byte {cut}");
            assert_eq!(&snap.to_text(), text, "cut at byte {cut}");
            // The torn tail is physically gone: a second recovery is clean.
            drop(recovered);
            let again = DurableStore::open(&crash_dir, config, || seed_graph(case)).unwrap();
            assert_eq!(again.recovery().truncated_bytes, 0);
            assert_eq!(again.store().snapshot().fingerprint(), *fingerprint);
            let _ = fs::remove_dir_all(&crash_dir);
        }
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn recovery_through_snapshots_matches_never_crashed_store() {
    for (case, snapshot_interval, rebuild_interval) in [(3u64, 2u64, 0u64), (4, 3, 2), (5, 1, 3)] {
        let store_config = StoreConfig { rebuild_interval };
        let config = DurabilityConfig {
            snapshot_interval,
            store: store_config,
        };
        let graph = seed_graph(case);
        let stream = UpdateStream::generate(&graph, &UpdateStreamConfig::churn(7, 5, case ^ 0x2B));
        let states = reference_states(seed_graph(case), stream.batches(), store_config);

        let dir = tmp_dir(&format!("snap-{case}"));
        {
            let durable = DurableStore::open(&dir, config, || seed_graph(case)).unwrap();
            for batch in stream.batches() {
                durable.commit(batch).unwrap();
            }
            // Dropped hard: no drain-time snapshot. Recovery must stitch the
            // periodic snapshot and the WAL tail back together.
        }
        let recovered = DurableStore::open(&dir, config, || seed_graph(case)).unwrap();
        let (epoch, fingerprint, text) = states.last().unwrap();
        let snap = recovered.store().snapshot();
        assert_eq!(snap.epoch(), *epoch);
        assert_eq!(snap.fingerprint(), *fingerprint);
        assert_eq!(&snap.to_text(), text);
        assert!(recovered.recovery().had_snapshot);

        // And the recovered store keeps committing in lockstep with the
        // never-crashed one, through future rebuild re-grounding points.
        let reference = GraphStore::with_config(seed_graph(case), store_config);
        for batch in stream.batches() {
            reference.commit(batch).unwrap();
        }
        let mut extra = UpdateBatch::new();
        extra.add_person("post-recovery-hire", ["db"]);
        extra.add_collaboration(PersonId(0), PersonId(snap.num_people() as u32));
        let a = recovered.commit(&extra).unwrap();
        let b = reference.commit(&extra).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.to_text(), b.to_text());
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn snapshot_mid_write_crash_leaves_previous_snapshot_authoritative() {
    let config = DurabilityConfig {
        snapshot_interval: 0,
        store: StoreConfig::default(),
    };
    let dir = tmp_dir("midwrite");
    let durable = DurableStore::open(&dir, config, || seed_graph(0)).unwrap();
    let mut batch = UpdateBatch::new();
    batch.add_person("hire", ["db"]);
    durable.commit(&batch).unwrap();
    durable.snapshot_now().unwrap();
    let good = fs::read_to_string(dir.join("snapshot.txt")).unwrap();
    drop(durable);

    // A crash mid-write leaves a torn temp file; the rename never happened,
    // so the real snapshot is untouched and recovery ignores the litter.
    fs::write(dir.join("snapshot.txt.tmp"), &good[..good.len() / 2]).unwrap();
    let recovered = DurableStore::open(&dir, config, || seed_graph(0)).unwrap();
    assert!(recovered.recovery().had_snapshot);
    assert_eq!(recovered.store().epoch(), 1);
    assert_eq!(
        fs::read_to_string(dir.join("snapshot.txt")).unwrap(),
        good,
        "the authoritative snapshot must not change"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn crash_between_snapshot_rename_and_wal_truncate_skips_covered_records() {
    let config = DurabilityConfig {
        snapshot_interval: 0,
        store: StoreConfig::default(),
    };
    let graph = seed_graph(1);
    let stream = UpdateStream::generate(&graph, &UpdateStreamConfig::churn(3, 5, 0x77));
    let dir = tmp_dir("skip");
    let durable = DurableStore::open(&dir, config, || seed_graph(1)).unwrap();
    for batch in stream.batches() {
        durable.commit(batch).unwrap();
    }
    // Simulate the crash window: snapshot renamed into place, WAL truncation
    // never ran. Stash the full log, snapshot (which resets it), put the full
    // log back.
    let full_wal = fs::read(dir.join("wal.log")).unwrap();
    durable.snapshot_now().unwrap();
    let expected = durable.store().snapshot();
    drop(durable);
    fs::write(dir.join("wal.log"), &full_wal).unwrap();

    let recovered = DurableStore::open(&dir, config, || seed_graph(1)).unwrap();
    let report = recovered.recovery();
    assert!(report.had_snapshot);
    assert_eq!(report.snapshot_epoch, expected.epoch());
    // Every WAL record predates the snapshot: skipped, not re-applied.
    assert_eq!(report.replayed_records, 0);
    let snap = recovered.store().snapshot();
    assert_eq!(snap.epoch(), expected.epoch());
    assert_eq!(snap.fingerprint(), expected.fingerprint());
    assert_eq!(snap.to_text(), expected.to_text());
    let _ = fs::remove_dir_all(&dir);
}
