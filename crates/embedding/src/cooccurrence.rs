//! Sparse symmetric co-occurrence counting over token bags.

use exes_graph::SkillId;
use rustc_hash::FxHashMap;

/// A sparse, symmetric co-occurrence matrix over a dense token vocabulary.
///
/// `count(i, j)` is the number of (unordered) times tokens `i` and `j` appeared
/// in the same bag; `count(i, i)` counts pairs of occurrences of `i` within a
/// bag (so repeated mentions strengthen a token's marginal).
#[derive(Debug, Clone)]
pub struct CooccurrenceMatrix {
    size: usize,
    rows: Vec<FxHashMap<u32, f64>>,
    row_sums: Vec<f64>,
    total: f64,
}

impl CooccurrenceMatrix {
    /// Creates an empty matrix over a vocabulary of `size` tokens.
    pub fn new(size: usize) -> Self {
        CooccurrenceMatrix {
            size,
            rows: vec![FxHashMap::default(); size],
            row_sums: vec![0.0; size],
            total: 0.0,
        }
    }

    /// Builds the matrix from bags of tokens (documents).
    ///
    /// Tokens outside the vocabulary (`>= size`) are ignored. Every unordered
    /// pair of distinct positions in a bag contributes one count.
    pub fn from_bags<'a, I>(bags: I, size: usize) -> Self
    where
        I: IntoIterator<Item = &'a [SkillId]>,
    {
        let mut m = CooccurrenceMatrix::new(size);
        for bag in bags {
            m.add_bag(bag);
        }
        m
    }

    /// Adds a single bag of tokens.
    pub fn add_bag(&mut self, bag: &[SkillId]) {
        let valid: Vec<u32> = bag
            .iter()
            .filter(|s| s.index() < self.size)
            .map(|s| s.0)
            .collect();
        for (i, &a) in valid.iter().enumerate() {
            for &b in valid.iter().skip(i + 1) {
                self.add_pair(a, b, 1.0);
            }
        }
    }

    /// Adds `weight` to the (symmetric) pair `(a, b)`.
    pub fn add_pair(&mut self, a: u32, b: u32, weight: f64) {
        debug_assert!((a as usize) < self.size && (b as usize) < self.size);
        *self.rows[a as usize].entry(b).or_insert(0.0) += weight;
        self.row_sums[a as usize] += weight;
        if a != b {
            *self.rows[b as usize].entry(a).or_insert(0.0) += weight;
            self.row_sums[b as usize] += weight;
            self.total += 2.0 * weight;
        } else {
            self.total += weight;
        }
    }

    /// Vocabulary size.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Count of the pair `(a, b)`.
    pub fn count(&self, a: u32, b: u32) -> f64 {
        self.rows
            .get(a as usize)
            .and_then(|r| r.get(&b))
            .copied()
            .unwrap_or(0.0)
    }

    /// Marginal count of token `a` (its row sum).
    pub fn row_sum(&self, a: u32) -> f64 {
        self.row_sums.get(a as usize).copied().unwrap_or(0.0)
    }

    /// Grand total of all counts.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Number of stored non-zero entries (counting each symmetric pair twice).
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(FxHashMap::len).sum()
    }

    /// Iterates over the non-zero entries of row `a`.
    pub fn row_iter(&self, a: u32) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.rows[a as usize].iter().map(|(&c, &v)| (c, v))
    }

    /// Sparse matrix–dense matrix product `self * other` where `other` is
    /// `size × k`. Used by the randomized SVD.
    pub fn matmul_dense(&self, other: &crate::linalg::DenseMatrix) -> crate::linalg::DenseMatrix {
        assert_eq!(other.rows(), self.size, "dimension mismatch");
        let k = other.cols();
        let mut out = crate::linalg::DenseMatrix::zeros(self.size, k);
        for (r, row) in self.rows.iter().enumerate() {
            for (&c, &v) in row {
                for j in 0..k {
                    out.set(r, j, out.get(r, j) + v * other.get(c as usize, j));
                }
            }
        }
        out
    }

    /// Applies an element-wise transform to the stored values, keeping sparsity.
    /// Entries mapped to zero or below are dropped. Row sums and totals are
    /// recomputed.
    pub fn map_values(&self, f: impl Fn(u32, u32, f64) -> f64) -> CooccurrenceMatrix {
        let mut out = CooccurrenceMatrix::new(self.size);
        for (r, row) in self.rows.iter().enumerate() {
            for (&c, &v) in row {
                // Only visit each symmetric pair once (r <= c) to avoid double counting.
                if (r as u32) <= c {
                    let t = f(r as u32, c, v);
                    if t > 0.0 {
                        out.add_pair(r as u32, c, t);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(v: u32) -> SkillId {
        SkillId(v)
    }

    #[test]
    fn counts_pairs_within_bags() {
        let bags = [vec![sid(0), sid(1), sid(2)], vec![sid(0), sid(1)]];
        let m = CooccurrenceMatrix::from_bags(bags.iter().map(|b| b.as_slice()), 3);
        assert_eq!(m.count(0, 1), 2.0);
        assert_eq!(m.count(1, 0), 2.0);
        assert_eq!(m.count(0, 2), 1.0);
        assert_eq!(m.count(1, 2), 1.0);
        assert_eq!(m.count(2, 2), 0.0);
    }

    #[test]
    fn out_of_vocabulary_tokens_are_ignored() {
        let bag = vec![sid(0), sid(9)];
        let m = CooccurrenceMatrix::from_bags([bag.as_slice()], 2);
        assert_eq!(m.total(), 0.0);
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn repeated_tokens_contribute_diagonal_counts() {
        let bag = vec![sid(0), sid(0)];
        let m = CooccurrenceMatrix::from_bags([bag.as_slice()], 1);
        assert_eq!(m.count(0, 0), 1.0);
        assert_eq!(m.total(), 1.0);
    }

    #[test]
    fn row_sums_and_total_are_consistent() {
        let bags = [vec![sid(0), sid(1), sid(2)], vec![sid(1), sid(2)]];
        let m = CooccurrenceMatrix::from_bags(bags.iter().map(|b| b.as_slice()), 3);
        let sum_of_rows: f64 = (0..3).map(|i| m.row_sum(i)).sum();
        assert!((sum_of_rows - m.total()).abs() < 1e-12);
    }

    #[test]
    fn matmul_dense_matches_manual_computation() {
        let bags = [vec![sid(0), sid(1)]];
        let m = CooccurrenceMatrix::from_bags(bags.iter().map(|b| b.as_slice()), 2);
        // M = [[0,1],[1,0]]
        let x = crate::linalg::DenseMatrix::from_fn(2, 1, |r, _| (r + 1) as f64); // [1,2]
        let y = m.matmul_dense(&x);
        assert_eq!(y.get(0, 0), 2.0);
        assert_eq!(y.get(1, 0), 1.0);
    }

    #[test]
    fn map_values_preserves_symmetry_and_drops_zeros() {
        let bags = [
            vec![sid(0), sid(1)],
            vec![sid(1), sid(2)],
            vec![sid(1), sid(2)],
        ];
        let m = CooccurrenceMatrix::from_bags(bags.iter().map(|b| b.as_slice()), 3);
        // Keep only counts >= 2.
        let filtered = m.map_values(|_, _, v| if v >= 2.0 { v } else { 0.0 });
        assert_eq!(filtered.count(0, 1), 0.0);
        assert_eq!(filtered.count(1, 2), 2.0);
        assert_eq!(filtered.count(2, 1), 2.0);
    }

    #[test]
    fn row_iter_yields_all_entries() {
        let bags = [vec![sid(0), sid(1), sid(2)]];
        let m = CooccurrenceMatrix::from_bags(bags.iter().map(|b| b.as_slice()), 3);
        let row0: Vec<(u32, f64)> = m.row_iter(0).collect();
        assert_eq!(row0.len(), 2);
    }
}
