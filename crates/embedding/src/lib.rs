//! # exes-embedding
//!
//! The skill-embedding substrate used by ExES **Pruning Strategy 4** (word
//! embeddings guide which skills to add or remove in counterfactual search).
//!
//! The paper trains Word2Vec on the textual expertise corpus. We substitute the
//! classical count-based pipeline — skill–skill co-occurrence counts → positive
//! pointwise mutual information (PPMI) → truncated SVD — which is a
//! well-established equivalent of skip-gram with negative sampling for the only
//! property ExES needs: *skills that co-occur in the same documents end up close
//! in the embedding space*.
//!
//! The crate exposes its building blocks ([`CooccurrenceMatrix`], [`ppmi`],
//! [`svd`], [`linalg`]) because the link-prediction crate reuses them to embed
//! graph nodes from random-walk co-occurrences.
//!
//! ```
//! use exes_embedding::{EmbeddingConfig, SkillEmbedding};
//! use exes_graph::SkillId;
//!
//! // Two "topics": {0,1,2} co-occur, {3,4} co-occur.
//! let bags: Vec<Vec<SkillId>> = vec![
//!     vec![SkillId(0), SkillId(1), SkillId(2)],
//!     vec![SkillId(0), SkillId(1)],
//!     vec![SkillId(1), SkillId(2)],
//!     vec![SkillId(3), SkillId(4)],
//!     vec![SkillId(3), SkillId(4)],
//! ];
//! let emb = SkillEmbedding::train(bags.iter().map(|b| b.as_slice()), 5, &EmbeddingConfig::default());
//! assert!(emb.similarity(SkillId(0), SkillId(1)) > emb.similarity(SkillId(0), SkillId(4)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cooccurrence;
pub mod linalg;
pub mod model;
pub mod ppmi;
pub mod svd;

pub use cooccurrence::CooccurrenceMatrix;
pub use model::{EmbeddingConfig, SkillEmbedding};
