//! Minimal dense linear algebra used by the truncated-SVD embedding pipeline.
//!
//! Only what the randomized subspace iteration needs: a row-major dense matrix,
//! matrix products, modified Gram–Schmidt orthonormalisation, and a Jacobi
//! eigen-solver for small symmetric matrices. Everything is `f64` and plain
//! `Vec`-backed; the matrices involved are `n × k` with small `k` (embedding
//! dimension plus oversampling), so cache-friendly simplicity beats cleverness.

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Returns row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self * other`.
    pub fn matmul(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, other.rows, "dimension mismatch in matmul");
        let mut out = DenseMatrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.data[i * other.cols + j] += a * other.get(k, j);
                }
            }
        }
        out
    }

    /// `selfᵀ * other`.
    pub fn transpose_matmul(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(
            self.rows, other.rows,
            "dimension mismatch in transpose_matmul"
        );
        let mut out = DenseMatrix::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            for i in 0..self.cols {
                let a = self.get(k, i);
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.data[i * other.cols + j] += a * other.get(k, j);
                }
            }
        }
        out
    }

    /// In-place modified Gram–Schmidt: orthonormalises the columns.
    /// Columns with (near-)zero norm after projection are set to zero.
    pub fn orthonormalize_columns(&mut self) {
        for c in 0..self.cols {
            // Project out previous columns.
            for prev in 0..c {
                let mut dot = 0.0;
                for r in 0..self.rows {
                    dot += self.get(r, c) * self.get(r, prev);
                }
                for r in 0..self.rows {
                    let v = self.get(r, c) - dot * self.get(r, prev);
                    self.set(r, c, v);
                }
            }
            let mut norm = 0.0;
            for r in 0..self.rows {
                norm += self.get(r, c) * self.get(r, c);
            }
            let norm = norm.sqrt();
            if norm > 1e-12 {
                for r in 0..self.rows {
                    let v = self.get(r, c) / norm;
                    self.set(r, c, v);
                }
            } else {
                for r in 0..self.rows {
                    self.set(r, c, 0.0);
                }
            }
        }
    }
}

/// Jacobi eigen-decomposition of a small symmetric matrix.
///
/// Returns `(eigenvalues, eigenvectors)` where `eigenvectors` holds the
/// eigenvectors as **columns**, sorted by descending absolute eigenvalue.
pub fn symmetric_eigen(mat: &DenseMatrix) -> (Vec<f64>, DenseMatrix) {
    assert_eq!(
        mat.rows(),
        mat.cols(),
        "eigen-decomposition needs a square matrix"
    );
    let n = mat.rows();
    let mut a = mat.clone();
    let mut v = DenseMatrix::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 });

    for _sweep in 0..100 {
        // Largest off-diagonal magnitude.
        let mut off = 0.0;
        for r in 0..n {
            for c in (r + 1)..n {
                off += a.get(r, c) * a.get(r, c);
            }
        }
        if off.sqrt() < 1e-12 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a.get(p, q);
                if apq.abs() < 1e-15 {
                    continue;
                }
                let app = a.get(p, p);
                let aqq = a.get(q, q);
                let theta = 0.5 * (aqq - app) / apq;
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for k in 0..n {
                    let akp = a.get(k, p);
                    let akq = a.get(k, q);
                    a.set(k, p, c * akp - s * akq);
                    a.set(k, q, s * akp + c * akq);
                }
                for k in 0..n {
                    let apk = a.get(p, k);
                    let aqk = a.get(q, k);
                    a.set(p, k, c * apk - s * aqk);
                    a.set(q, k, s * apk + c * aqk);
                }
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| {
        a.get(j, j)
            .abs()
            .partial_cmp(&a.get(i, i).abs())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let eigenvalues: Vec<f64> = order.iter().map(|&i| a.get(i, i)).collect();
    let eigenvectors = DenseMatrix::from_fn(n, n, |r, c| v.get(r, order[c]));
    (eigenvalues, eigenvectors)
}

/// Cosine similarity between two equal-length vectors; 0 when either is zero.
pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut dot = 0.0;
    let mut na = 0.0;
    let mut nb = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na <= 1e-24 || nb <= 1e-24 {
        0.0
    } else {
        dot / (na.sqrt() * nb.sqrt())
    }
}

/// Dot product of two equal-length vectors.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small_example() {
        let a = DenseMatrix::from_fn(2, 3, |r, c| (r * 3 + c) as f64); // [[0,1,2],[3,4,5]]
        let b = DenseMatrix::from_fn(3, 2, |r, c| (r * 2 + c) as f64); // [[0,1],[2,3],[4,5]]
        let c = a.matmul(&b);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        assert_eq!(c.get(0, 0), 10.0);
        assert_eq!(c.get(0, 1), 13.0);
        assert_eq!(c.get(1, 0), 28.0);
        assert_eq!(c.get(1, 1), 40.0);
    }

    #[test]
    fn transpose_matmul_matches_explicit_transpose() {
        let a = DenseMatrix::from_fn(3, 2, |r, c| (r + c) as f64);
        let b = DenseMatrix::from_fn(3, 2, |r, c| (r * c + 1) as f64);
        let via_helper = a.transpose_matmul(&b);
        let at = DenseMatrix::from_fn(2, 3, |r, c| a.get(c, r));
        let expected = at.matmul(&b);
        for r in 0..2 {
            for c in 0..2 {
                assert!((via_helper.get(r, c) - expected.get(r, c)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn gram_schmidt_produces_orthonormal_columns() {
        let mut m =
            DenseMatrix::from_fn(4, 3, |r, c| ((r + 1) * (c + 2)) as f64 + (r as f64) * 0.3);
        m.set(2, 1, 7.0);
        m.set(3, 2, -1.0);
        m.orthonormalize_columns();
        for c1 in 0..3 {
            for c2 in 0..3 {
                let mut dot = 0.0;
                for r in 0..4 {
                    dot += m.get(r, c1) * m.get(r, c2);
                }
                let expected = if c1 == c2 { 1.0 } else { 0.0 };
                assert!(
                    (dot - expected).abs() < 1e-9,
                    "columns {c1},{c2} dot {dot} != {expected}"
                );
            }
        }
    }

    #[test]
    fn gram_schmidt_zeroes_dependent_columns() {
        // Second column is a multiple of the first.
        let mut m = DenseMatrix::from_fn(3, 2, |r, c| {
            if c == 0 {
                (r + 1) as f64
            } else {
                2.0 * (r + 1) as f64
            }
        });
        m.orthonormalize_columns();
        let norm2: f64 = (0..3).map(|r| m.get(r, 1) * m.get(r, 1)).sum();
        assert!(norm2 < 1e-12);
    }

    #[test]
    fn jacobi_recovers_known_eigenvalues() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let m = DenseMatrix::from_fn(2, 2, |r, c| if r == c { 2.0 } else { 1.0 });
        let (vals, vecs) = symmetric_eigen(&m);
        assert!((vals[0] - 3.0).abs() < 1e-9);
        assert!((vals[1] - 1.0).abs() < 1e-9);
        // Check A v = λ v for both eigenvectors.
        for (col, &val) in vals.iter().enumerate().take(2) {
            for r in 0..2 {
                let av: f64 = (0..2).map(|k| m.get(r, k) * vecs.get(k, col)).sum();
                assert!((av - val * vecs.get(r, col)).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn jacobi_sorts_by_absolute_value() {
        let mut m = DenseMatrix::zeros(3, 3);
        m.set(0, 0, -5.0);
        m.set(1, 1, 2.0);
        m.set(2, 2, 0.5);
        let (vals, _) = symmetric_eigen(&m);
        assert_eq!(vals, vec![-5.0, 2.0, 0.5]);
    }

    #[test]
    fn cosine_properties() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-12);
        assert!((cosine(&[1.0, 1.0], &[-1.0, -1.0]) + 1.0).abs() < 1e-12);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }
}
