//! The trained skill-embedding model (`W` in the paper's Algorithm 1).

use crate::linalg::{cosine, DenseMatrix};
use crate::ppmi::ppmi;
use crate::svd::{truncated_symmetric_embedding, SvdOptions};
use crate::CooccurrenceMatrix;
use exes_graph::SkillId;

/// Training configuration for [`SkillEmbedding`].
#[derive(Debug, Clone, Copy)]
pub struct EmbeddingConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// PPMI shift (`ln k` of the emulated negative-sampling constant).
    pub ppmi_shift: f64,
    /// Power iterations for the truncated decomposition.
    pub power_iterations: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EmbeddingConfig {
    fn default() -> Self {
        EmbeddingConfig {
            dim: 32,
            ppmi_shift: 0.0,
            power_iterations: 2,
            seed: 0xE_B0D,
        }
    }
}

/// A dense vector embedding of every skill in the vocabulary.
///
/// This is the word-embedding model `W` used by Pruning Strategy 4 to propose
/// which skills to add to (or remove from) a person or a query.
#[derive(Debug, Clone)]
pub struct SkillEmbedding {
    vectors: DenseMatrix,
}

impl SkillEmbedding {
    /// Trains the embedding from bags of skill tokens (documents).
    pub fn train<'a, I>(bags: I, vocab_size: usize, config: &EmbeddingConfig) -> Self
    where
        I: IntoIterator<Item = &'a [SkillId]>,
    {
        let counts = CooccurrenceMatrix::from_bags(bags, vocab_size);
        Self::from_counts(&counts, config)
    }

    /// Trains the embedding from a pre-computed co-occurrence matrix.
    pub fn from_counts(counts: &CooccurrenceMatrix, config: &EmbeddingConfig) -> Self {
        let weights = ppmi(counts, config.ppmi_shift);
        let vectors = truncated_symmetric_embedding(
            &weights,
            &SvdOptions {
                dim: config.dim,
                oversample: 8,
                power_iterations: config.power_iterations,
                seed: config.seed,
            },
        );
        SkillEmbedding { vectors }
    }

    /// Number of skills covered by the model.
    pub fn vocab_size(&self) -> usize {
        self.vectors.rows()
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.vectors.cols()
    }

    /// The embedding vector of a skill (all zeros for skills never observed).
    pub fn vector(&self, s: SkillId) -> &[f64] {
        self.vectors.row(s.index())
    }

    /// Cosine similarity between two skills.
    pub fn similarity(&self, a: SkillId, b: SkillId) -> f64 {
        if a.index() >= self.vocab_size() || b.index() >= self.vocab_size() {
            return 0.0;
        }
        cosine(self.vector(a), self.vector(b))
    }

    /// Mean embedding of a set of skills (the "centroid" of a query or a skill set).
    pub fn centroid(&self, skills: &[SkillId]) -> Vec<f64> {
        let dim = self.dim();
        let mut acc = vec![0.0; dim];
        let mut n = 0.0;
        for &s in skills {
            if s.index() < self.vocab_size() {
                for (a, v) in acc.iter_mut().zip(self.vector(s)) {
                    *a += v;
                }
                n += 1.0;
            }
        }
        if n > 0.0 {
            for a in &mut acc {
                *a /= n;
            }
        }
        acc
    }

    /// Cosine similarity between a skill and a set of reference skills.
    pub fn similarity_to_set(&self, s: SkillId, reference: &[SkillId]) -> f64 {
        if s.index() >= self.vocab_size() {
            return 0.0;
        }
        cosine(self.vector(s), &self.centroid(reference))
    }

    /// The `t` skills most similar to the reference set, excluding any skill in
    /// `exclude`. This is the candidate generator of Pruning Strategy 4.
    pub fn most_similar(
        &self,
        reference: &[SkillId],
        t: usize,
        exclude: &[SkillId],
    ) -> Vec<(SkillId, f64)> {
        let centroid = self.centroid(reference);
        let mut scored: Vec<(SkillId, f64)> = (0..self.vocab_size())
            .map(SkillId::from_index)
            .filter(|s| !exclude.contains(s))
            .map(|s| (s, cosine(self.vector(s), &centroid)))
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1));
        scored.truncate(t);
        scored
    }

    /// The `t` skills *least* similar to the reference set (used to propose
    /// query augmentations that push an expert out of the top-k), excluding
    /// skills in `exclude`.
    pub fn least_similar(
        &self,
        reference: &[SkillId],
        t: usize,
        exclude: &[SkillId],
    ) -> Vec<(SkillId, f64)> {
        let centroid = self.centroid(reference);
        let mut scored: Vec<(SkillId, f64)> = (0..self.vocab_size())
            .map(SkillId::from_index)
            .filter(|s| !exclude.contains(s))
            .map(|s| (s, cosine(self.vector(s), &centroid)))
            .collect();
        scored.sort_by(|a, b| a.1.total_cmp(&b.1));
        scored.truncate(t);
        scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(v: u32) -> SkillId {
        SkillId(v)
    }

    /// Bags with two topical clusters: {0,1,2} and {3,4,5}; skill 6 never appears.
    fn clustered_bags() -> Vec<Vec<SkillId>> {
        let mut bags = Vec::new();
        for _ in 0..30 {
            bags.push(vec![sid(0), sid(1), sid(2)]);
            bags.push(vec![sid(0), sid(2)]);
            bags.push(vec![sid(3), sid(4), sid(5)]);
            bags.push(vec![sid(4), sid(5)]);
        }
        bags
    }

    fn model() -> SkillEmbedding {
        let bags = clustered_bags();
        SkillEmbedding::train(
            bags.iter().map(|b| b.as_slice()),
            7,
            &EmbeddingConfig {
                dim: 8,
                ..Default::default()
            },
        )
    }

    #[test]
    fn intra_cluster_similarity_beats_cross_cluster() {
        let m = model();
        assert!(m.similarity(sid(0), sid(1)) > m.similarity(sid(0), sid(4)));
        assert!(m.similarity(sid(3), sid(5)) > m.similarity(sid(1), sid(5)));
    }

    #[test]
    fn most_similar_returns_cluster_mates_first() {
        let m = model();
        let top = m.most_similar(&[sid(0)], 3, &[sid(0)]);
        assert_eq!(top.len(), 3);
        let top_ids: Vec<SkillId> = top.iter().map(|&(s, _)| s).collect();
        assert!(top_ids.contains(&sid(1)));
        assert!(top_ids.contains(&sid(2)));
        // Scores are sorted descending.
        assert!(top[0].1 >= top[1].1 && top[1].1 >= top[2].1);
    }

    #[test]
    fn least_similar_prefers_the_other_cluster() {
        let m = model();
        let bottom = m.least_similar(&[sid(0), sid(1)], 2, &[]);
        for (s, _) in &bottom {
            assert!(
                [sid(3), sid(4), sid(5), sid(6)].contains(s),
                "unexpected least-similar skill {s:?}"
            );
        }
    }

    #[test]
    fn exclusions_are_respected() {
        let m = model();
        let top = m.most_similar(&[sid(0)], 6, &[sid(1), sid(2)]);
        assert!(top.iter().all(|&(s, _)| s != sid(1) && s != sid(2)));
    }

    #[test]
    fn unseen_skill_has_zero_vector_and_zero_similarity() {
        let m = model();
        assert!(m.vector(sid(6)).iter().all(|&v| v == 0.0));
        assert_eq!(m.similarity(sid(6), sid(0)), 0.0);
    }

    #[test]
    fn out_of_range_skills_are_handled_gracefully() {
        let m = model();
        assert_eq!(m.similarity(sid(100), sid(0)), 0.0);
        assert_eq!(m.similarity_to_set(sid(100), &[sid(0)]), 0.0);
    }

    #[test]
    fn similarity_is_symmetric() {
        let m = model();
        for a in 0..6u32 {
            for b in 0..6u32 {
                assert!((m.similarity(sid(a), sid(b)) - m.similarity(sid(b), sid(a))).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn centroid_of_empty_set_is_zero() {
        let m = model();
        assert!(m.centroid(&[]).iter().all(|&v| v == 0.0));
        assert_eq!(m.similarity_to_set(sid(0), &[]), 0.0);
    }

    #[test]
    fn training_is_deterministic() {
        let a = model();
        let b = model();
        for s in 0..7u32 {
            assert_eq!(a.vector(sid(s)), b.vector(sid(s)));
        }
    }
}
