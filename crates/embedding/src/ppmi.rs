//! Positive pointwise mutual information (PPMI) transform.
//!
//! PMI(i, j) = log( P(i, j) / (P(i) P(j)) ); PPMI keeps only the positive part.
//! A shifted variant (`shift = log k`) mirrors the negative-sampling constant of
//! skip-gram, which is the theoretical bridge between count-based embeddings and
//! Word2Vec (Levy & Goldberg, 2014).

use crate::CooccurrenceMatrix;

/// Transforms raw co-occurrence counts into a (shifted) PPMI matrix.
///
/// `shift` is subtracted from the PMI before clamping at zero; `0.0` gives plain
/// PPMI, `ln(k)` emulates skip-gram with `k` negative samples.
pub fn ppmi(counts: &CooccurrenceMatrix, shift: f64) -> CooccurrenceMatrix {
    let total = counts.total();
    if total <= 0.0 {
        return CooccurrenceMatrix::new(counts.size());
    }
    counts.map_values(|a, b, v| {
        let pa = counts.row_sum(a) / total;
        let pb = counts.row_sum(b) / total;
        if pa <= 0.0 || pb <= 0.0 {
            return 0.0;
        }
        let pab = v / total;
        let pmi = (pab / (pa * pb)).ln() - shift;
        pmi.max(0.0)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use exes_graph::SkillId;

    fn sid(v: u32) -> SkillId {
        SkillId(v)
    }

    #[test]
    fn ppmi_is_nonnegative_and_symmetric() {
        let bags = [
            vec![sid(0), sid(1)],
            vec![sid(0), sid(1)],
            vec![sid(2), sid(3)],
            vec![sid(0), sid(3)],
        ];
        let counts = CooccurrenceMatrix::from_bags(bags.iter().map(|b| b.as_slice()), 4);
        let p = ppmi(&counts, 0.0);
        for a in 0..4 {
            for b in 0..4 {
                assert!(p.count(a, b) >= 0.0);
                assert!((p.count(a, b) - p.count(b, a)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn frequent_pairs_score_higher_than_rare_cross_pairs() {
        let bags = [
            vec![sid(0), sid(1)],
            vec![sid(0), sid(1)],
            vec![sid(0), sid(1)],
            vec![sid(2), sid(3)],
            vec![sid(2), sid(3)],
            vec![sid(2), sid(3)],
            vec![sid(1), sid(2)],
        ];
        let counts = CooccurrenceMatrix::from_bags(bags.iter().map(|b| b.as_slice()), 4);
        let p = ppmi(&counts, 0.0);
        assert!(p.count(0, 1) > p.count(1, 2));
        assert!(p.count(2, 3) > p.count(1, 2));
    }

    #[test]
    fn shift_reduces_scores() {
        let bags = [
            vec![sid(0), sid(1)],
            vec![sid(0), sid(1)],
            vec![sid(2), sid(3)],
        ];
        let counts = CooccurrenceMatrix::from_bags(bags.iter().map(|b| b.as_slice()), 4);
        let plain = ppmi(&counts, 0.0);
        let shifted = ppmi(&counts, 1.0);
        assert!(shifted.count(0, 1) <= plain.count(0, 1));
    }

    #[test]
    fn empty_counts_give_empty_ppmi() {
        let counts = CooccurrenceMatrix::new(3);
        let p = ppmi(&counts, 0.0);
        assert_eq!(p.nnz(), 0);
        assert_eq!(p.total(), 0.0);
    }

    #[test]
    fn independent_pairs_get_zero_ppmi() {
        // Construct counts where pair (0,1) occurs exactly as often as expected
        // under independence: with 4 tokens all co-occurring uniformly, PMI ~ 0.
        let bags = [
            vec![sid(0), sid(1)],
            vec![sid(0), sid(2)],
            vec![sid(0), sid(3)],
            vec![sid(1), sid(2)],
            vec![sid(1), sid(3)],
            vec![sid(2), sid(3)],
        ];
        let counts = CooccurrenceMatrix::from_bags(bags.iter().map(|b| b.as_slice()), 4);
        let p = ppmi(&counts, 0.0);
        // Perfectly uniform co-occurrence: PMI = ln( (1/6) / (1/4 * 1/4) ) = ln(8/3) > 0,
        // but all pairs get the *same* value — check uniformity rather than zero.
        let v01 = p.count(0, 1);
        for a in 0..4u32 {
            for b in (a + 1)..4u32 {
                assert!((p.count(a, b) - v01).abs() < 1e-9);
            }
        }
    }
}
