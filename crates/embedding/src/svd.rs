//! Truncated symmetric eigen-embedding via randomized subspace iteration.
//!
//! Given a (sparse, symmetric) matrix `M` we compute an approximate rank-`k`
//! factorisation and return the embedding `Q · V · |Λ|^{1/2}` where `Q V Λ Vᵀ Qᵀ
//! ≈ M`. For a symmetric PPMI matrix this is exactly the classical
//! "SVD of PPMI" word-embedding construction.

use crate::linalg::{symmetric_eigen, DenseMatrix};
use crate::CooccurrenceMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Options for the randomized truncated decomposition.
#[derive(Debug, Clone, Copy)]
pub struct SvdOptions {
    /// Target embedding dimension `k`.
    pub dim: usize,
    /// Oversampling columns added to the random sketch (improves accuracy).
    pub oversample: usize,
    /// Number of power iterations (each sharpens the spectrum separation).
    pub power_iterations: usize,
    /// RNG seed for the Gaussian sketch.
    pub seed: u64,
}

impl Default for SvdOptions {
    fn default() -> Self {
        SvdOptions {
            dim: 32,
            oversample: 8,
            power_iterations: 2,
            seed: 0x5EED,
        }
    }
}

/// Computes a rank-`dim` embedding of the rows of the symmetric matrix `m`.
///
/// Returns an `n × dim` dense matrix whose rows are the embedding vectors. If
/// the matrix is empty (all zeros) the embedding is all zeros.
pub fn truncated_symmetric_embedding(m: &CooccurrenceMatrix, opts: &SvdOptions) -> DenseMatrix {
    let n = m.size();
    let k = opts.dim.min(n.max(1));
    if n == 0 {
        return DenseMatrix::zeros(0, opts.dim);
    }
    if m.total() <= 0.0 {
        return DenseMatrix::zeros(n, k);
    }
    let sketch_cols = (k + opts.oversample).min(n);

    // Gaussian random sketch (Box–Muller from uniform draws keeps us independent
    // of rand_distr).
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut omega = DenseMatrix::zeros(n, sketch_cols);
    for r in 0..n {
        for c in 0..sketch_cols {
            let u1: f64 = rng.gen_range(1e-12..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let g = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            omega.set(r, c, g);
        }
    }

    // Subspace iteration: Q ≈ orthonormal basis of the dominant eigenspace.
    let mut q = m.matmul_dense(&omega);
    q.orthonormalize_columns();
    for _ in 0..opts.power_iterations {
        q = m.matmul_dense(&q);
        q.orthonormalize_columns();
    }

    // Small projected matrix B = Qᵀ M Q (sketch_cols × sketch_cols, symmetric).
    let mq = m.matmul_dense(&q);
    let b = q.transpose_matmul(&mq);
    let (eigenvalues, eigenvectors) = symmetric_eigen(&b);

    // Embedding = Q · V_k · Λ_k^{1/2}, keeping the k *largest* (most positive)
    // eigenvalues and clamping negatives to zero (a PSD truncation: for PPMI
    // inputs the dominant spectrum is positive and the negative tail only adds
    // noise to cosine similarities).
    let mut order: Vec<usize> = (0..eigenvalues.len()).collect();
    order.sort_by(|&i, &j| {
        eigenvalues[j]
            .partial_cmp(&eigenvalues[i])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut scaled = DenseMatrix::zeros(sketch_cols, k);
    for (c, &src) in order.iter().take(k).enumerate() {
        let scale = eigenvalues[src].max(0.0).sqrt();
        for r in 0..sketch_cols {
            scaled.set(r, c, eigenvectors.get(r, src) * scale);
        }
    }
    q.matmul(&scaled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::cosine;
    use exes_graph::SkillId;

    fn sid(v: u32) -> SkillId {
        SkillId(v)
    }

    /// Two disjoint cliques of tokens must embed into two separated clusters.
    #[test]
    fn block_structure_is_recovered() {
        let mut bags = Vec::new();
        for _ in 0..20 {
            bags.push(vec![sid(0), sid(1), sid(2)]);
            bags.push(vec![sid(3), sid(4), sid(5)]);
        }
        let counts = CooccurrenceMatrix::from_bags(bags.iter().map(|b| b.as_slice()), 6);
        let emb = truncated_symmetric_embedding(
            &counts,
            &SvdOptions {
                dim: 4,
                oversample: 2,
                power_iterations: 3,
                seed: 1,
            },
        );
        let sim_within = cosine(emb.row(0), emb.row(1));
        let sim_across = cosine(emb.row(0), emb.row(4));
        assert!(
            sim_within > sim_across + 0.5,
            "within {sim_within} across {sim_across}"
        );
    }

    #[test]
    fn rank_one_pattern_collapses_to_identical_directions() {
        // A single repeated pair: the dominant (positive) eigenvector assigns both
        // tokens the same embedding direction.
        let mut bags = Vec::new();
        for _ in 0..10 {
            bags.push(vec![sid(0), sid(1)]);
        }
        let counts = CooccurrenceMatrix::from_bags(bags.iter().map(|b| b.as_slice()), 2);
        let emb = truncated_symmetric_embedding(
            &counts,
            &SvdOptions {
                dim: 2,
                oversample: 0,
                power_iterations: 2,
                seed: 3,
            },
        );
        assert!(
            cosine(emb.row(0), emb.row(1)) > 0.99,
            "expected identical directions, got cosine {}",
            cosine(emb.row(0), emb.row(1))
        );
        // The dominant eigenvalue is 10 with eigenvector [1,1]/√2, so the PSD
        // truncation reconstructs λ·v₀·v₁ = 10 · ½ = 5 for the off-diagonal.
        let dot01: f64 = (0..2).map(|c| emb.get(0, c) * emb.get(1, c)).sum();
        assert!(
            (dot01 - 5.0).abs() < 0.5,
            "reconstructed off-diagonal {dot01}"
        );
    }

    #[test]
    fn empty_matrix_gives_zero_embedding() {
        let counts = CooccurrenceMatrix::new(4);
        let emb = truncated_symmetric_embedding(&counts, &SvdOptions::default());
        assert_eq!(emb.rows(), 4);
        for r in 0..4 {
            assert!(emb.row(r).iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn dimension_is_capped_by_matrix_size() {
        let bags = [vec![sid(0), sid(1)]];
        let counts = CooccurrenceMatrix::from_bags(bags.iter().map(|b| b.as_slice()), 2);
        let emb = truncated_symmetric_embedding(
            &counts,
            &SvdOptions {
                dim: 16,
                ..Default::default()
            },
        );
        assert_eq!(emb.rows(), 2);
        assert_eq!(emb.cols(), 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let bags = [vec![sid(0), sid(1), sid(2)], vec![sid(1), sid(2)]];
        let counts = CooccurrenceMatrix::from_bags(bags.iter().map(|b| b.as_slice()), 3);
        let a = truncated_symmetric_embedding(&counts, &SvdOptions::default());
        let b = truncated_symmetric_embedding(&counts, &SvdOptions::default());
        assert_eq!(a, b);
    }
}
