//! ExES configuration: the paper's tunables (Table 3 and Section 4.1 defaults).

use crate::probe::ProbeBudget;
use exes_shap::ShapConfig;
use std::time::Duration;

/// How the black box's answer is turned into the scalar that SHAP attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputMode {
    /// The paper's formulation: the binary relevance / membership status
    /// (`1.0` if the person is selected, `0.0` otherwise).
    Binary,
    /// A smoothed variant, `sigmoid((k + ½ − rank) / τ)`: still anchored at the
    /// decision boundary but with informative magnitudes for force plots and
    /// case studies. Factual explanation *sizes* are reported with
    /// [`OutputMode::Binary`] in the benchmark harness to stay comparable with
    /// the paper.
    SmoothRank,
}

/// All ExES tunables. Field names follow the paper's symbols (Table 3).
#[derive(Debug, Clone)]
pub struct ExesConfig {
    /// Top-`k` cutoff defining the relevance status for expert search.
    pub k: usize,
    /// Neighbourhood radius `d` for skill factuals, skill counterfactuals and
    /// collaboration-addition counterfactuals (paper default: 1).
    pub skill_radius: usize,
    /// Neighbourhood radius for collaboration factuals and collaboration-removal
    /// counterfactuals (paper default: 2).
    pub collab_radius: usize,
    /// Beam width `b` (paper default: 30).
    pub beam_width: usize,
    /// Maximum perturbation (explanation) size `γ` (paper default: 5).
    pub max_explanation_size: usize,
    /// Number of counterfactual explanations requested, `e` (paper default: 5).
    pub num_explanations: usize,
    /// Number of candidate features `t` selected by the embedding / link
    /// predictor (paper default: 10).
    pub num_candidates: usize,
    /// SHAP threshold `τ` used by the influential-collaboration expansion
    /// (paper default: 0.1).
    pub tau: f64,
    /// Wall-clock budget for a single explanation request; `None` means no limit.
    /// The paper uses 1000 s for its (much larger) datasets.
    pub timeout: Option<Duration>,
    /// How the decision is scalarised for SHAP.
    pub output_mode: OutputMode,
    /// Whether probe batches (counterfactual candidate scoring and factual
    /// SHAP coalitions) run on all cores. Results are byte-identical either
    /// way; disable for differential testing or single-core deployments.
    pub parallel_probes: bool,
    /// Maximum number of memoised probes a [`crate::probe::ProbeCache`] built
    /// from this configuration retains (`0` = unbounded). When the bound is
    /// exceeded the least-recently-used quarter of the affected shard is
    /// evicted in bulk, keeping eviction cost amortised O(1) per insert.
    pub probe_cache_capacity: usize,
    /// Number of independently locked shards in a
    /// [`crate::probe::ProbeCache`]; parallel probe workers contend on a shard
    /// only when their keys hash to it.
    pub probe_cache_shards: usize,
    /// Shapley estimator configuration.
    pub shap: ShapConfig,
    /// Upper bound on *black-box* probes a single explanation may spend
    /// (cache hits are free). The whole request is billed against it: the
    /// initial decision probe, candidate scoring, and the search itself all
    /// draw from one allowance. When the budget runs out, counterfactual
    /// searches return best-so-far marked
    /// [`Completeness::Budgeted`](crate::probe::Completeness) and factual
    /// SHAP truncates its permutation sample, reporting wider confidence
    /// intervals. [`ProbeBudget::UNBOUNDED`] (the default) leaves every byte
    /// of every result unchanged. One caveat: the initial decision probe is
    /// issued unconditionally when the cache cannot answer it (a
    /// counterfactual question cannot even be posed without the reference
    /// decision), so a zero budget over a cold cache still spends one probe.
    pub probe_budget: ProbeBudget,
}

impl Default for ExesConfig {
    fn default() -> Self {
        ExesConfig {
            k: 10,
            skill_radius: 1,
            collab_radius: 2,
            beam_width: 30,
            max_explanation_size: 5,
            num_explanations: 5,
            num_candidates: 10,
            tau: 0.1,
            timeout: Some(Duration::from_secs(1000)),
            output_mode: OutputMode::Binary,
            parallel_probes: true,
            probe_cache_capacity: 1 << 18,
            probe_cache_shards: 16,
            shap: ShapConfig::default(),
            probe_budget: ProbeBudget::UNBOUNDED,
        }
    }
}

impl ExesConfig {
    /// The paper's default configuration (identical to [`Default`]).
    pub fn paper_defaults() -> Self {
        Self::default()
    }

    /// A configuration scaled down for unit tests and examples on tiny graphs.
    pub fn fast() -> Self {
        ExesConfig {
            k: 5,
            beam_width: 8,
            max_explanation_size: 3,
            num_explanations: 3,
            num_candidates: 5,
            timeout: Some(Duration::from_secs(30)),
            ..Self::default()
        }
    }

    /// Builder-style setter for `k`.
    pub fn with_k(mut self, k: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        self.k = k;
        self
    }

    /// Builder-style setter for the beam width `b`.
    pub fn with_beam_width(mut self, b: usize) -> Self {
        assert!(b >= 1, "beam width must be at least 1");
        self.beam_width = b;
        self
    }

    /// Builder-style setter for the candidate count `t`.
    pub fn with_num_candidates(mut self, t: usize) -> Self {
        assert!(t >= 1, "candidate count must be at least 1");
        self.num_candidates = t;
        self
    }

    /// Builder-style setter for the skill-neighbourhood radius `d`.
    pub fn with_skill_radius(mut self, d: usize) -> Self {
        self.skill_radius = d;
        self
    }

    /// Builder-style setter for the SHAP expansion threshold `τ`.
    pub fn with_tau(mut self, tau: f64) -> Self {
        assert!(tau >= 0.0, "tau must be non-negative");
        self.tau = tau;
        self
    }

    /// Builder-style setter for the output mode.
    pub fn with_output_mode(mut self, mode: OutputMode) -> Self {
        self.output_mode = mode;
        self
    }

    /// Builder-style setter for parallel probe scoring.
    pub fn with_parallel_probes(mut self, parallel: bool) -> Self {
        self.parallel_probes = parallel;
        self
    }

    /// Builder-style setter for the probe memo-cache entry bound
    /// (`0` = unbounded).
    pub fn with_probe_cache_capacity(mut self, capacity: usize) -> Self {
        self.probe_cache_capacity = capacity;
        self
    }

    /// Builder-style setter for the probe memo-cache shard count.
    pub fn with_probe_cache_shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "cache shard count must be at least 1");
        self.probe_cache_shards = shards;
        self
    }

    /// Builder-style setter for the per-explanation probe budget.
    pub fn with_probe_budget(mut self, budget: ProbeBudget) -> Self {
        self.probe_budget = budget;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = ExesConfig::paper_defaults();
        assert_eq!(c.k, 10);
        assert_eq!(c.beam_width, 30);
        assert_eq!(c.max_explanation_size, 5);
        assert_eq!(c.num_explanations, 5);
        assert_eq!(c.num_candidates, 10);
        assert_eq!(c.skill_radius, 1);
        assert_eq!(c.collab_radius, 2);
        assert!((c.tau - 0.1).abs() < 1e-12);
        assert_eq!(c.timeout, Some(Duration::from_secs(1000)));
        assert_eq!(c.output_mode, OutputMode::Binary);
        assert!(c.parallel_probes);
        assert_eq!(c.probe_cache_capacity, 1 << 18);
        assert_eq!(c.probe_cache_shards, 16);
        assert_eq!(c.probe_budget, ProbeBudget::UNBOUNDED);
    }

    #[test]
    fn probe_budget_builder_updates_the_field() {
        let c = ExesConfig::fast().with_probe_budget(ProbeBudget::bounded(64));
        assert_eq!(c.probe_budget.limit(), Some(64));
        assert!(c.probe_budget.is_bounded());
        assert!(!ProbeBudget::UNBOUNDED.is_bounded());
    }

    #[test]
    fn cache_builders_update_fields() {
        let c = ExesConfig::fast()
            .with_probe_cache_capacity(128)
            .with_probe_cache_shards(4);
        assert_eq!(c.probe_cache_capacity, 128);
        assert_eq!(c.probe_cache_shards, 4);
    }

    #[test]
    #[should_panic(expected = "cache shard count")]
    fn zero_cache_shards_is_rejected() {
        let _ = ExesConfig::default().with_probe_cache_shards(0);
    }

    #[test]
    fn builders_update_fields() {
        let c = ExesConfig::fast()
            .with_k(3)
            .with_beam_width(4)
            .with_num_candidates(2)
            .with_skill_radius(2)
            .with_tau(0.05)
            .with_output_mode(OutputMode::SmoothRank);
        assert_eq!(c.k, 3);
        assert_eq!(c.beam_width, 4);
        assert_eq!(c.num_candidates, 2);
        assert_eq!(c.skill_radius, 2);
        assert!((c.tau - 0.05).abs() < 1e-12);
        assert_eq!(c.output_mode, OutputMode::SmoothRank);
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_is_rejected() {
        let _ = ExesConfig::default().with_k(0);
    }

    #[test]
    #[should_panic(expected = "beam width")]
    fn zero_beam_is_rejected() {
        let _ = ExesConfig::default().with_beam_width(0);
    }
}
