//! Beam search over perturbation sets — Algorithm 1 (Pruning Strategy 3).

use super::{CounterfactualExplanation, CounterfactualKind, CounterfactualResult};
use crate::config::ExesConfig;
use crate::tasks::DecisionModel;
use exes_graph::{CollabGraph, Perturbation, PerturbationSet, Query};
use rustc_hash::FxHashSet;
use std::time::Instant;

/// Runs the paper's beam search (Algorithm 1) over the given candidate
/// perturbations, looking for up to `cfg.num_explanations` minimal perturbation
/// sets that flip the task's decision.
///
/// * `candidates` — the pruned candidate features produced by Pruning
///   Strategies 4/5 (or an unpruned list, for ablations).
/// * `deadline` — optional wall-clock cutoff; when reached, whatever has been
///   found so far is returned with `timed_out = true`.
pub fn beam_search<D: DecisionModel>(
    task: &D,
    graph: &CollabGraph,
    query: &Query,
    candidates: &[Perturbation],
    kind: CounterfactualKind,
    cfg: &ExesConfig,
    deadline: Option<Instant>,
) -> CounterfactualResult {
    let mut result = CounterfactualResult::default();
    let initial = task.probe(graph, query);
    result.probes += 1;
    let initial_relevance = initial.positive;

    // Beam of (signal, perturbation set). Starts from the empty perturbation.
    let mut queue: Vec<(f64, PerturbationSet)> = vec![(initial.signal, PerturbationSet::new())];
    let mut seen: FxHashSet<Vec<Perturbation>> = FxHashSet::default();

    'outer: while result.explanations.len() < cfg.num_explanations && !queue.is_empty() {
        let mut expanded_queue: Vec<(f64, PerturbationSet)> = Vec::new();
        for (_, state) in &queue {
            for &feature in candidates {
                if state.contains(&feature) {
                    continue;
                }
                let expanded = state.with(feature);
                let mut key: Vec<Perturbation> = expanded.iter().copied().collect();
                key.sort_by_key(|p| format!("{p:?}"));
                if !seen.insert(key) {
                    continue;
                }
                // Skip supersets of explanations we already found: they cannot be
                // minimal.
                if result
                    .explanations
                    .iter()
                    .any(|e| e.perturbations.is_subset_of(&expanded))
                {
                    continue;
                }
                let (view, perturbed_query) = expanded.apply(graph, query);
                let probe = task.probe(&view, &perturbed_query);
                result.probes += 1;
                if probe.positive != initial_relevance {
                    result.explanations.push(CounterfactualExplanation {
                        perturbations: expanded.clone(),
                        new_signal: probe.signal,
                        kind,
                    });
                    if result.explanations.len() >= cfg.num_explanations {
                        break 'outer;
                    }
                } else if expanded.len() < cfg.max_explanation_size {
                    expanded_queue.push((probe.signal, expanded));
                }
                if let Some(deadline) = deadline {
                    if Instant::now() >= deadline {
                        result.timed_out = true;
                        break 'outer;
                    }
                }
            }
        }
        // Keep the b most promising states. If the subject is currently selected
        // we want perturbations that push it *out* (higher signal first);
        // otherwise perturbations that pull it *in* (lower signal first).
        if initial_relevance {
            expanded_queue.sort_by(|a, b| {
                b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal)
            });
        } else {
            expanded_queue.sort_by(|a, b| {
                a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal)
            });
        }
        expanded_queue.truncate(cfg.beam_width);
        queue = expanded_queue;
    }

    // Non-experts are being pulled in, so lower signal is the stronger effect.
    result.sort(!initial_relevance);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::ExpertRelevanceTask;
    use exes_expert_search::{ExpertRanker, TfIdfRanker};
    use exes_graph::{CollabGraphBuilder, PersonId};

    /// Ada(db, ml) leads; Bob(db) is second; Cig(vision) is last.
    fn graph() -> CollabGraph {
        let mut b = CollabGraphBuilder::new();
        let a = b.add_person("Ada", ["db", "ml"]);
        let bo = b.add_person("Bob", ["db"]);
        let c = b.add_person("Cig", ["vision"]);
        b.add_edge(a, bo);
        b.add_edge(bo, c);
        b.build()
    }

    fn cfg() -> ExesConfig {
        ExesConfig::fast().with_k(1).with_beam_width(4)
    }

    #[test]
    fn finds_single_feature_counterfactual_for_an_expert() {
        let g = graph();
        let q = Query::parse("db ml", g.vocab()).unwrap();
        let ranker = TfIdfRanker::default();
        let task = ExpertRelevanceTask::new(&ranker, PersonId(0), 1);
        let ml = g.vocab().id("ml").unwrap();
        let db = g.vocab().id("db").unwrap();
        let candidates = vec![
            Perturbation::RemoveSkill { person: PersonId(0), skill: ml },
            Perturbation::RemoveSkill { person: PersonId(0), skill: db },
        ];
        let result = beam_search(
            &task,
            &g,
            &q,
            &candidates,
            CounterfactualKind::SkillRemoval,
            &cfg(),
            None,
        );
        assert!(!result.is_empty());
        // Every returned explanation must genuinely flip the decision.
        for e in &result.explanations {
            let (view, pq) = e.perturbations.apply(&g, &q);
            assert!(!task.probe(&view, &pq).positive);
        }
        assert!(result.minimal_size().unwrap() <= 2);
        assert!(!result.timed_out);
        assert!(result.probes > 0);
    }

    #[test]
    fn finds_addition_counterfactual_for_a_non_expert() {
        let g = graph();
        let q = Query::parse("db ml", g.vocab()).unwrap();
        let ranker = TfIdfRanker::default();
        // Explain why Cig is not in the top-1 and what would change that.
        let task = ExpertRelevanceTask::new(&ranker, PersonId(2), 1);
        let ml = g.vocab().id("ml").unwrap();
        let db = g.vocab().id("db").unwrap();
        let vision = g.vocab().id("vision").unwrap();
        let candidates = vec![
            Perturbation::AddSkill { person: PersonId(2), skill: ml },
            Perturbation::AddSkill { person: PersonId(2), skill: db },
            Perturbation::AddQueryTerm { skill: vision },
        ];
        let result = beam_search(
            &task,
            &g,
            &q,
            &candidates,
            CounterfactualKind::SkillAddition,
            &cfg(),
            None,
        );
        assert!(!result.is_empty(), "should find a way to promote Cig");
        for e in &result.explanations {
            let (view, pq) = e.perturbations.apply(&g, &q);
            assert!(task.probe(&view, &pq).positive);
        }
    }

    #[test]
    fn respects_max_explanation_size() {
        let g = graph();
        let q = Query::parse("db ml", g.vocab()).unwrap();
        let ranker = TfIdfRanker::default();
        let task = ExpertRelevanceTask::new(&ranker, PersonId(2), 1);
        // Only useless candidates: no explanation should be found and the search
        // must terminate (bounded by γ).
        let vision = g.vocab().id("vision").unwrap();
        let candidates = vec![Perturbation::AddQueryTerm { skill: vision }];
        let mut config = cfg();
        config.max_explanation_size = 2;
        let result = beam_search(
            &task,
            &g,
            &q,
            &candidates,
            CounterfactualKind::QueryAugmentation,
            &config,
            None,
        );
        // Adding "vision" to the query actually helps Cig, so either it is found
        // as an explanation or nothing is; in both cases sizes stay within γ.
        for e in &result.explanations {
            assert!(e.size() <= 2);
        }
    }

    #[test]
    fn returns_at_most_e_explanations() {
        let g = graph();
        let q = Query::parse("db ml", g.vocab()).unwrap();
        let ranker = TfIdfRanker::default();
        let task = ExpertRelevanceTask::new(&ranker, PersonId(0), 1);
        let candidates: Vec<Perturbation> = g
            .vocab()
            .ids()
            .map(|s| Perturbation::RemoveSkill { person: PersonId(0), skill: s })
            .chain(g.vocab().ids().map(|s| Perturbation::AddQueryTerm { skill: s }))
            .collect();
        let mut config = cfg();
        config.num_explanations = 2;
        let result = beam_search(
            &task,
            &g,
            &q,
            &candidates,
            CounterfactualKind::SkillRemoval,
            &config,
            None,
        );
        assert!(result.len() <= 2);
    }

    #[test]
    fn expired_deadline_short_circuits() {
        let g = graph();
        let q = Query::parse("db ml", g.vocab()).unwrap();
        let ranker = TfIdfRanker::default();
        let task = ExpertRelevanceTask::new(&ranker, PersonId(0), 1);
        let ml = g.vocab().id("ml").unwrap();
        let candidates = vec![Perturbation::RemoveSkill { person: PersonId(0), skill: ml }];
        let deadline = Some(Instant::now());
        let result = beam_search(
            &task,
            &g,
            &q,
            &candidates,
            CounterfactualKind::SkillRemoval,
            &cfg(),
            deadline,
        );
        assert!(result.timed_out || !result.is_empty());
    }

    #[test]
    fn explanations_are_sorted_by_size() {
        let g = graph();
        let q = Query::parse("db ml", g.vocab()).unwrap();
        let ranker = TfIdfRanker::default();
        let task = ExpertRelevanceTask::new(&ranker, PersonId(0), 1);
        let candidates: Vec<Perturbation> = g
            .vocab()
            .ids()
            .map(|s| Perturbation::RemoveSkill { person: PersonId(0), skill: s })
            .collect();
        let result = beam_search(
            &task,
            &g,
            &q,
            &candidates,
            CounterfactualKind::SkillRemoval,
            &cfg(),
            None,
        );
        let sizes: Vec<usize> = result.explanations.iter().map(|e| e.size()).collect();
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        assert_eq!(sizes, sorted);
        // Sanity: the initial ranking really has Ada on top for this query.
        assert_eq!(ranker.rank_of(&g, &q, PersonId(0)), 1);
    }
}
