//! Beam search over perturbation sets — Algorithm 1 (Pruning Strategy 3),
//! rebuilt around the batched probe engine.
//!
//! Each beam level expands every state by every candidate feature, dedups the
//! expansions, and scores them through [`ProbeBatch`] in fixed-size chunks.
//! Chunks are processed strictly in generation order, so the search is fully
//! deterministic and its results are byte-identical whether probes run on one
//! thread or many (`cfg.parallel_probes`).

use super::{CounterfactualExplanation, CounterfactualKind, CounterfactualResult};
use crate::config::ExesConfig;
use crate::probe::{ProbeBatch, ProbeCache, PROBE_CHUNK};
use crate::tasks::ErasedDecisionModel;
use exes_graph::{CollabGraph, Perturbation, PerturbationSet, Query};
use rustc_hash::FxHashSet;
use std::time::Instant;

/// Runs the paper's beam search (Algorithm 1) over the given candidate
/// perturbations, looking for up to `cfg.num_explanations` minimal perturbation
/// sets that flip the task's decision.
///
/// * `candidates` — the pruned candidate features produced by Pruning
///   Strategies 4/5 (or an unpruned list, for ablations).
/// * `deadline` — optional wall-clock cutoff, checked between probe chunks;
///   when reached, whatever has been found so far is returned with
///   `timed_out = true`.
/// * `cache` — optional probe memo table. A warm cache answers repeated
///   probes without touching the black box; explanations are byte-identical
///   either way, only `result.probes` (and the hit/miss counters) change.
///
/// The search runs under `cfg.probe_budget`: black-box probes (cache hits are
/// free) are counted against it, and once the next probe would overdraw the
/// allowance the search stops and returns its best-so-far explanations marked
/// `Completeness::Budgeted` — never a panic, never a silent truncation. With
/// [`crate::probe::ProbeBudget::UNBOUNDED`] (the default) results are
/// byte-identical to the unbudgeted search.
#[allow(clippy::too_many_arguments)]
pub fn beam_search<D: ErasedDecisionModel + ?Sized>(
    task: &D,
    graph: &CollabGraph,
    query: &Query,
    candidates: &[Perturbation],
    kind: CounterfactualKind,
    cfg: &ExesConfig,
    deadline: Option<Instant>,
    cache: Option<&ProbeCache>,
) -> CounterfactualResult {
    let mut result = CounterfactualResult::default();
    let mut budget = cfg.probe_budget.tracker();
    let (plan, _) = crate::probe::acquire_plan(task, graph, query, cache);
    let engine = ProbeBatch::new(task, graph, query, cfg.parallel_probes)
        .with_cache_opt(cache)
        .with_plan_opt(plan.as_deref());
    let (initial, initial_hit) = if budget.remaining() == Some(0) {
        // A zero budget cannot establish the reference decision unless it is
        // already memoised; probing anyway would overdraw.
        match engine.peek_identity() {
            Some(probe) => (probe, true),
            None => {
                result.completeness = budget.completeness(true);
                return result;
            }
        }
    } else {
        let scored = engine.score_identity_counted();
        if !scored.1 {
            budget.charge(1);
        }
        scored
    };
    if initial_hit {
        result.cache_hits += 1;
    } else {
        result.probes += 1;
        if cache.is_some() {
            result.cache_misses += 1;
        }
    }
    let initial_relevance = initial.positive;

    // Beam of (signal, perturbation set). Starts from the empty perturbation.
    let mut queue: Vec<(f64, PerturbationSet)> = vec![(initial.signal, PerturbationSet::new())];
    let mut seen: FxHashSet<Vec<Perturbation>> = FxHashSet::default();

    'outer: while result.explanations.len() < cfg.num_explanations && !queue.is_empty() {
        // Generate this level's novel expansions, in deterministic beam order.
        let mut pending: Vec<PerturbationSet> = Vec::new();
        for (_, state) in &queue {
            for &feature in candidates {
                if state.contains(&feature) {
                    continue;
                }
                let expanded = state.with(feature);
                // Canonical dedup key: sorted by the derived `Ord` on
                // `Perturbation` — the same order the probe cache keys by.
                if !seen.insert(expanded.canonical_key()) {
                    continue;
                }
                pending.push(expanded);
            }
        }
        if pending.is_empty() {
            break;
        }

        let mut expanded_queue: Vec<(f64, PerturbationSet)> = Vec::new();
        for raw_chunk in pending.chunks(PROBE_CHUNK) {
            if let Some(deadline) = deadline {
                if Instant::now() >= deadline {
                    result.timed_out = true;
                    break 'outer;
                }
            }
            if result.explanations.len() >= cfg.num_explanations {
                break 'outer;
            }
            // Supersets of explanations found in earlier chunks cannot be
            // minimal; drop them before spending probes.
            let chunk: Vec<PerturbationSet> = raw_chunk
                .iter()
                .filter(|set| {
                    !result
                        .explanations
                        .iter()
                        .any(|e| e.perturbations.is_subset_of(set))
                })
                .cloned()
                .collect();
            if chunk.is_empty() {
                continue;
            }
            let (probes, stats, answered) =
                engine.score_counted_budgeted(&chunk, budget.remaining());
            budget.charge(stats.probed);
            result.probes += stats.probed;
            result.cache_hits += stats.cache_hits;
            result.cache_misses += stats.cache_misses;
            result.incremental_rescores += stats.incremental_rescores;
            result.full_rescores += stats.full_rescores;
            let truncated = answered < chunk.len();
            for (set, probe) in chunk.into_iter().take(answered).zip(probes) {
                if probe.positive != initial_relevance {
                    // In-order minimality guard within the chunk: a set whose
                    // subset already flipped is not minimal.
                    if result.explanations.len() >= cfg.num_explanations
                        || result
                            .explanations
                            .iter()
                            .any(|e| e.perturbations.is_subset_of(&set))
                    {
                        continue;
                    }
                    result.explanations.push(CounterfactualExplanation {
                        perturbations: set,
                        new_signal: probe.signal,
                        kind,
                    });
                } else if set.len() < cfg.max_explanation_size {
                    expanded_queue.push((probe.signal, set));
                }
            }
            if truncated {
                // The budget ran out mid-chunk: candidates were dropped
                // unscored, so the result is best-so-far, said explicitly.
                result.completeness = budget.completeness(true);
                break 'outer;
            }
        }

        // Keep the b most promising states. If the subject is currently selected
        // we want perturbations that push it *out* (higher signal first);
        // otherwise perturbations that pull it *in* (lower signal first).
        // `total_cmp` keeps the order well-defined even if a black box ever
        // emits a NaN signal (NaN sorts as larger than every number).
        if initial_relevance {
            expanded_queue.sort_by(|a, b| b.0.total_cmp(&a.0));
        } else {
            expanded_queue.sort_by(|a, b| a.0.total_cmp(&b.0));
        }
        expanded_queue.truncate(cfg.beam_width);
        queue = expanded_queue;
    }

    // Non-experts are being pulled in, so lower signal is the stronger effect.
    result.sort(!initial_relevance);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::Completeness;
    use crate::tasks::{DecisionModel, ExpertRelevanceTask};
    use exes_expert_search::{ExpertRanker, TfIdfRanker};
    use exes_graph::{CollabGraphBuilder, GraphView, PersonId};

    /// Ada(db, ml) leads; Bob(db) is second; Cig(vision) is last.
    fn graph() -> CollabGraph {
        let mut b = CollabGraphBuilder::new();
        let a = b.add_person("Ada", ["db", "ml"]);
        let bo = b.add_person("Bob", ["db"]);
        let c = b.add_person("Cig", ["vision"]);
        b.add_edge(a, bo);
        b.add_edge(bo, c);
        b.build()
    }

    fn cfg() -> ExesConfig {
        ExesConfig::fast().with_k(1).with_beam_width(4)
    }

    #[test]
    fn finds_single_feature_counterfactual_for_an_expert() {
        let g = graph();
        let q = Query::parse("db ml", g.vocab()).unwrap();
        let ranker = TfIdfRanker::default();
        let task = ExpertRelevanceTask::new(&ranker, PersonId(0), 1);
        let ml = g.vocab().id("ml").unwrap();
        let db = g.vocab().id("db").unwrap();
        let candidates = vec![
            Perturbation::RemoveSkill {
                person: PersonId(0),
                skill: ml,
            },
            Perturbation::RemoveSkill {
                person: PersonId(0),
                skill: db,
            },
        ];
        let result = beam_search(
            &task,
            &g,
            &q,
            &candidates,
            CounterfactualKind::SkillRemoval,
            &cfg(),
            None,
            None,
        );
        assert!(!result.is_empty());
        // Every returned explanation must genuinely flip the decision.
        for e in &result.explanations {
            let (view, pq) = e.perturbations.apply(&g, &q);
            assert!(!task.probe(&view, &pq).positive);
        }
        assert!(result.minimal_size().unwrap() <= 2);
        assert!(!result.timed_out);
        assert!(result.probes > 0);
    }

    #[test]
    fn finds_addition_counterfactual_for_a_non_expert() {
        let g = graph();
        let q = Query::parse("db ml", g.vocab()).unwrap();
        let ranker = TfIdfRanker::default();
        // Explain why Cig is not in the top-1 and what would change that.
        let task = ExpertRelevanceTask::new(&ranker, PersonId(2), 1);
        let ml = g.vocab().id("ml").unwrap();
        let db = g.vocab().id("db").unwrap();
        let vision = g.vocab().id("vision").unwrap();
        let candidates = vec![
            Perturbation::AddSkill {
                person: PersonId(2),
                skill: ml,
            },
            Perturbation::AddSkill {
                person: PersonId(2),
                skill: db,
            },
            Perturbation::AddQueryTerm { skill: vision },
        ];
        let result = beam_search(
            &task,
            &g,
            &q,
            &candidates,
            CounterfactualKind::SkillAddition,
            &cfg(),
            None,
            None,
        );
        assert!(!result.is_empty(), "should find a way to promote Cig");
        for e in &result.explanations {
            let (view, pq) = e.perturbations.apply(&g, &q);
            assert!(task.probe(&view, &pq).positive);
        }
    }

    #[test]
    fn respects_max_explanation_size() {
        let g = graph();
        let q = Query::parse("db ml", g.vocab()).unwrap();
        let ranker = TfIdfRanker::default();
        let task = ExpertRelevanceTask::new(&ranker, PersonId(2), 1);
        let vision = g.vocab().id("vision").unwrap();
        let candidates = vec![Perturbation::AddQueryTerm { skill: vision }];
        let mut config = cfg();
        config.max_explanation_size = 2;
        let result = beam_search(
            &task,
            &g,
            &q,
            &candidates,
            CounterfactualKind::QueryAugmentation,
            &config,
            None,
            None,
        );
        for e in &result.explanations {
            assert!(e.size() <= 2);
        }
    }

    #[test]
    fn returns_at_most_e_explanations() {
        let g = graph();
        let q = Query::parse("db ml", g.vocab()).unwrap();
        let ranker = TfIdfRanker::default();
        let task = ExpertRelevanceTask::new(&ranker, PersonId(0), 1);
        let candidates: Vec<Perturbation> = g
            .vocab()
            .ids()
            .map(|s| Perturbation::RemoveSkill {
                person: PersonId(0),
                skill: s,
            })
            .chain(
                g.vocab()
                    .ids()
                    .map(|s| Perturbation::AddQueryTerm { skill: s }),
            )
            .collect();
        let mut config = cfg();
        config.num_explanations = 2;
        let result = beam_search(
            &task,
            &g,
            &q,
            &candidates,
            CounterfactualKind::SkillRemoval,
            &config,
            None,
            None,
        );
        assert!(result.len() <= 2);
    }

    #[test]
    fn expired_deadline_short_circuits() {
        let g = graph();
        let q = Query::parse("db ml", g.vocab()).unwrap();
        let ranker = TfIdfRanker::default();
        let task = ExpertRelevanceTask::new(&ranker, PersonId(0), 1);
        let ml = g.vocab().id("ml").unwrap();
        let candidates = vec![Perturbation::RemoveSkill {
            person: PersonId(0),
            skill: ml,
        }];
        let deadline = Some(Instant::now());
        let result = beam_search(
            &task,
            &g,
            &q,
            &candidates,
            CounterfactualKind::SkillRemoval,
            &cfg(),
            deadline,
            None,
        );
        assert!(result.timed_out || !result.is_empty());
    }

    #[test]
    fn explanations_are_sorted_by_size() {
        let g = graph();
        let q = Query::parse("db ml", g.vocab()).unwrap();
        let ranker = TfIdfRanker::default();
        let task = ExpertRelevanceTask::new(&ranker, PersonId(0), 1);
        let candidates: Vec<Perturbation> = g
            .vocab()
            .ids()
            .map(|s| Perturbation::RemoveSkill {
                person: PersonId(0),
                skill: s,
            })
            .collect();
        let result = beam_search(
            &task,
            &g,
            &q,
            &candidates,
            CounterfactualKind::SkillRemoval,
            &cfg(),
            None,
            None,
        );
        let sizes: Vec<usize> = result.explanations.iter().map(|e| e.size()).collect();
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        assert_eq!(sizes, sorted);
        // Sanity: the initial ranking really has Ada on top for this query.
        assert_eq!(ranker.rank_of(&g, &q, PersonId(0)), 1);
    }

    #[test]
    fn parallel_and_sequential_paths_are_byte_identical() {
        // A graph large enough that each beam level exceeds the parallel
        // threshold, with query-term and skill candidates mixed in.
        let (g, q, candidates) = wide_search_instance();
        let ranker = TfIdfRanker::default();
        let task = ExpertRelevanceTask::new(&ranker, PersonId(0), 3);
        let mut parallel_cfg = ExesConfig::fast().with_k(3).with_beam_width(6);
        parallel_cfg.parallel_probes = true;
        let mut sequential_cfg = parallel_cfg.clone();
        sequential_cfg.parallel_probes = false;
        let run = |config: &ExesConfig| {
            beam_search(
                &task,
                &g,
                &q,
                &candidates,
                CounterfactualKind::SkillRemoval,
                config,
                None,
                None,
            )
        };
        let par = run(&parallel_cfg);
        let seq = run(&sequential_cfg);
        assert_eq!(par.probes, seq.probes);
        assert_eq!(par.timed_out, seq.timed_out);
        assert_eq!(par.explanations, seq.explanations);
    }

    /// A 20-person instance whose beam levels are wide enough to exercise the
    /// parallel scoring path and several probe chunks.
    fn wide_search_instance() -> (CollabGraph, Query, Vec<Perturbation>) {
        let mut b = CollabGraphBuilder::new();
        let people: Vec<_> = (0..20)
            .map(|i| {
                b.add_person(
                    &format!("p{i}"),
                    [format!("s{}", i % 6), format!("s{}", (i + 1) % 6)],
                )
            })
            .collect();
        for w in people.windows(3) {
            b.add_edge(w[0], w[2]);
            b.add_edge(w[0], w[1]);
        }
        let g = b.build();
        let q = Query::parse("s0 s1", g.vocab()).unwrap();
        let candidates: Vec<Perturbation> = g
            .people()
            .flat_map(|p| {
                g.person_skills(p)
                    .iter()
                    .map(move |&s| Perturbation::RemoveSkill {
                        person: p,
                        skill: s,
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        (g, q, candidates)
    }

    #[test]
    fn exhausted_budget_is_deterministic_across_thread_counts() {
        let (g, q, candidates) = wide_search_instance();
        let ranker = TfIdfRanker::default();
        let task = ExpertRelevanceTask::new(&ranker, PersonId(0), 3);
        // Small enough to exhaust mid-search (the unbounded run spends far
        // more), large enough to cross at least one full probe chunk.
        let budget = 140;
        let base = ExesConfig::fast()
            .with_k(3)
            .with_beam_width(6)
            .with_probe_budget(crate::probe::ProbeBudget::bounded(budget));
        let run = |parallel: bool| {
            beam_search(
                &task,
                &g,
                &q,
                &candidates,
                CounterfactualKind::SkillRemoval,
                &base.clone().with_parallel_probes(parallel),
                None,
                None,
            )
        };
        let par = run(true);
        let seq = run(false);
        assert_eq!(par.completeness, seq.completeness);
        assert_eq!(par.probes, seq.probes);
        assert_eq!(par.explanations, seq.explanations);
        // The budget genuinely bit, is honestly reported, and was never
        // overdrawn.
        assert!(
            par.probes <= budget,
            "spent {} > budget {budget}",
            par.probes
        );
        match par.completeness {
            Completeness::Budgeted { spent, budget: b } => {
                assert_eq!(spent, par.probes);
                assert_eq!(b, budget);
            }
            Completeness::Exhaustive => panic!("a {budget}-probe budget must truncate this search"),
        }
    }

    #[test]
    fn zero_budget_without_a_cache_returns_the_honest_degenerate() {
        let (g, q, candidates) = wide_search_instance();
        let ranker = TfIdfRanker::default();
        let task = ExpertRelevanceTask::new(&ranker, PersonId(0), 3);
        let config = ExesConfig::fast()
            .with_k(3)
            .with_probe_budget(crate::probe::ProbeBudget::bounded(0));
        let result = beam_search(
            &task,
            &g,
            &q,
            &candidates,
            CounterfactualKind::SkillRemoval,
            &config,
            None,
            None,
        );
        assert!(result.is_empty());
        assert_eq!(result.probes, 0);
        assert_eq!(
            result.completeness,
            Completeness::Budgeted {
                spent: 0,
                budget: 0
            }
        );
    }

    #[test]
    fn ample_budget_is_byte_identical_to_unbounded_search() {
        let (g, q, candidates) = wide_search_instance();
        let ranker = TfIdfRanker::default();
        let task = ExpertRelevanceTask::new(&ranker, PersonId(0), 3);
        let base = ExesConfig::fast().with_k(3).with_beam_width(6);
        let run = |config: &ExesConfig| {
            beam_search(
                &task,
                &g,
                &q,
                &candidates,
                CounterfactualKind::SkillRemoval,
                config,
                None,
                None,
            )
        };
        let unbounded = run(&base);
        // A budget exactly equal to the unbounded spend changes nothing:
        // same explanations, same counters, still marked exhaustive.
        let bounded = run(&base
            .clone()
            .with_probe_budget(crate::probe::ProbeBudget::bounded(unbounded.probes)));
        assert_eq!(bounded.explanations, unbounded.explanations);
        assert_eq!(bounded.probes, unbounded.probes);
        assert_eq!(bounded.completeness, Completeness::Exhaustive);
        // One probe less must bite.
        let starved = run(&base
            .clone()
            .with_probe_budget(crate::probe::ProbeBudget::bounded(unbounded.probes - 1)));
        assert!(starved.completeness.is_budgeted());
    }

    #[test]
    fn zero_budget_with_a_warm_cache_replays_the_full_search_free() {
        let (g, q, candidates) = wide_search_instance();
        let ranker = TfIdfRanker::default();
        let task = ExpertRelevanceTask::new(&ranker, PersonId(0), 3);
        let cache = ProbeCache::new(0);
        let base = ExesConfig::fast().with_k(3).with_beam_width(6);
        let run = |config: &ExesConfig| {
            beam_search(
                &task,
                &g,
                &q,
                &candidates,
                CounterfactualKind::SkillRemoval,
                config,
                None,
                Some(&cache),
            )
        };
        let warmup = run(&base);
        assert!(warmup.probes > 0);
        // Every probe is now memoised: hits are free, so even a zero budget
        // completes the identical search without touching the black box.
        let replay = run(&base
            .clone()
            .with_probe_budget(crate::probe::ProbeBudget::bounded(0)));
        assert_eq!(replay.explanations, warmup.explanations);
        assert_eq!(replay.probes, 0);
        assert_eq!(replay.completeness, Completeness::Exhaustive);
    }
}
