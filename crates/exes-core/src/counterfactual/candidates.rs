//! Candidate-feature generation for counterfactual search
//! (`getCandidateFeatures`, line 1 of Algorithm 1): Pruning Strategies 4 and 5.

use crate::config::ExesConfig;
use crate::probe::{BatchStats, ProbeBatch, ProbeCache};
use crate::tasks::ErasedDecisionModel;
use exes_embedding::SkillEmbedding;
use exes_graph::{
    CollabGraph, GraphView, Neighborhood, PersonId, Perturbation, PerturbationSet, Query, SkillId,
};
use exes_linkpred::LinkPredictor;

/// Skill-removal candidates for a currently selected subject (Section 3.3.1):
/// for every person in the subject's radius-`d` neighbourhood, the up-to-`t` of
/// their skills most similar to the query according to the embedding `W`.
pub fn skill_removal_candidates(
    graph: &CollabGraph,
    query: &Query,
    subject: PersonId,
    embedding: &SkillEmbedding,
    cfg: &ExesConfig,
) -> Vec<Perturbation> {
    let neighborhood = Neighborhood::compute(graph, subject, cfg.skill_radius);
    let mut candidates = Vec::new();
    for &person in neighborhood.members() {
        let mut scored: Vec<(SkillId, f64)> = graph
            .person_skills(person)
            .iter()
            .map(|&s| (s, embedding.similarity_to_set(s, query.skills())))
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1));
        for (skill, _) in scored.into_iter().take(cfg.num_candidates) {
            candidates.push(Perturbation::RemoveSkill { person, skill });
        }
    }
    candidates
}

/// Skill-addition candidates for a currently unselected subject: the `t` skills
/// most similar to the query (Pruning Strategy 4), each offered to the subject
/// and to every neighbour within radius `d` that does not already hold it.
pub fn skill_addition_candidates(
    graph: &CollabGraph,
    query: &Query,
    subject: PersonId,
    embedding: &SkillEmbedding,
    cfg: &ExesConfig,
) -> Vec<Perturbation> {
    let neighborhood = Neighborhood::compute(graph, subject, cfg.skill_radius);
    let similar = candidate_skills_for_addition(query, embedding, cfg.num_candidates);
    let mut candidates = Vec::new();
    for &person in neighborhood.members() {
        for &skill in &similar {
            if !graph.person_has_skill(person, skill) {
                candidates.push(Perturbation::AddSkill { person, skill });
            }
        }
    }
    candidates
}

/// The `t` skills most similar to the query (query keywords themselves first:
/// giving someone the exact requested skill is always the most direct edit).
pub fn candidate_skills_for_addition(
    query: &Query,
    embedding: &SkillEmbedding,
    t: usize,
) -> Vec<SkillId> {
    let mut skills: Vec<SkillId> = query.skills().to_vec();
    for (s, _) in embedding.most_similar(query.skills(), t, query.skills()) {
        if skills.len() >= t.max(query.len()) {
            break;
        }
        skills.push(s);
    }
    skills.truncate(t.max(query.len()));
    skills
}

/// Query-augmentation candidates (Section 3.3.2). Keywords are only *added*
/// (expert-search queries are short, removal is rarely meaningful):
///
/// * for a selected subject (goal: evict them), keywords similar to the query
///   but foreign to the subject's skill set;
/// * for an unselected subject (goal: include them), keywords similar to the
///   subject's skills and the query.
pub fn query_augmentation_candidates(
    graph: &CollabGraph,
    query: &Query,
    subject: PersonId,
    currently_selected: bool,
    embedding: &SkillEmbedding,
    cfg: &ExesConfig,
) -> Vec<Perturbation> {
    let subject_skills = graph.person_skills(subject);
    let mut exclude: Vec<SkillId> = query.skills().to_vec();
    let reference: Vec<SkillId> = if currently_selected {
        // Similar to the query but *not* held by the subject.
        exclude.extend(subject_skills.iter().copied());
        query.skills().to_vec()
    } else {
        // Similar to both the subject's profile and the query.
        subject_skills
            .iter()
            .copied()
            .chain(query.skills().iter().copied())
            .collect()
    };
    embedding
        .most_similar(&reference, cfg.num_candidates, &exclude)
        .into_iter()
        .map(|(skill, _)| Perturbation::AddQueryTerm { skill })
        .collect()
}

/// Link-removal candidates (Section 3.3.3): the `t` edges inside the subject's
/// radius-`d` neighbourhood whose individual removal worsens the subject's rank
/// signal the most (each candidate edge is probed once, through the batched —
/// and, when a cache is given, memoised — probe engine).
///
/// `max_probes` caps the black-box probes candidate scoring may issue (cache
/// hits stay free); when the cap stops the scoring early only the affordable
/// prefix of edges competes for the `t` slots, and the `bool` in the return
/// reports that truncation so the caller can mark the final result
/// [`Completeness::Budgeted`](crate::probe::Completeness). `None` is
/// unbounded.
///
/// Returns the candidate perturbations, the scoring batch's probe accounting
/// (`probed` is the number of probes that actually reached the black box),
/// and whether the probe cap truncated the scoring.
pub fn link_removal_candidates<D: ErasedDecisionModel + ?Sized>(
    task: &D,
    graph: &CollabGraph,
    query: &Query,
    cfg: &ExesConfig,
    cache: Option<&ProbeCache>,
    max_probes: Option<usize>,
) -> (Vec<Perturbation>, BatchStats, bool) {
    let subject = task.subject_id();
    let neighborhood = Neighborhood::compute(graph, subject, cfg.collab_radius);
    let edges = neighborhood.edges_within(graph);
    let perturbations: Vec<Perturbation> = edges
        .into_iter()
        .map(|(a, b)| Perturbation::RemoveEdge { a, b })
        .collect();
    let sets: Vec<PerturbationSet> = perturbations
        .iter()
        .map(|&p| PerturbationSet::singleton(p))
        .collect();
    let (plan, _) = crate::probe::acquire_plan(task, graph, query, cache);
    let engine = ProbeBatch::new(task, graph, query, cfg.parallel_probes)
        .with_cache_opt(cache)
        .with_plan_opt(plan.as_deref());
    let (probes, stats, answered) = engine.score_counted_budgeted(&sets, max_probes);
    let truncated = answered < sets.len();
    let mut scored: Vec<(Perturbation, f64)> = perturbations
        .into_iter()
        .take(answered)
        .zip(probes.into_iter().map(|p| p.signal))
        .collect();
    // Higher signal = worse rank = more damaging removal; keep the t most damaging.
    scored.sort_by(|a, b| b.1.total_cmp(&a.1));
    scored.truncate(cfg.num_candidates);
    (
        scored.into_iter().map(|(p, _)| p).collect(),
        stats,
        truncated,
    )
}

/// Link-addition candidates (Pruning Strategy 5): people within an extended
/// neighbourhood of the subject who are not yet collaborators, ranked by the
/// link-prediction model `L`; the top `t` become `AddEdge(subject, ·)`
/// candidates.
pub fn link_addition_candidates<L: LinkPredictor>(
    graph: &CollabGraph,
    subject: PersonId,
    link_predictor: &L,
    cfg: &ExesConfig,
) -> Vec<Perturbation> {
    // Use a radius one larger than the skill radius so that "friends of friends"
    // are reachable even with the paper's default d = 1.
    let radius = cfg.skill_radius + 1;
    let neighborhood = Neighborhood::compute(graph, subject, radius);
    let mut pool: Vec<PersonId> = neighborhood
        .members()
        .iter()
        .copied()
        .filter(|&p| p != subject && !graph.has_edge(subject, p))
        .collect();
    // Sparse neighbourhoods (isolated people) fall back to the whole graph.
    if pool.len() < cfg.num_candidates {
        pool = graph
            .people()
            .filter(|&p| p != subject && !graph.has_edge(subject, p))
            .collect();
    }
    link_predictor
        .top_candidates(graph, subject, &pool, cfg.num_candidates)
        .into_iter()
        .map(|(other, _)| Perturbation::AddEdge {
            a: subject,
            b: other,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::ExpertRelevanceTask;
    use exes_datasets::{DatasetConfig, SyntheticDataset};
    use exes_embedding::EmbeddingConfig;
    use exes_expert_search::PropagationRanker;
    use exes_linkpred::CommonNeighbors;

    struct Fixture {
        ds: SyntheticDataset,
        embedding: SkillEmbedding,
    }

    fn fixture() -> Fixture {
        let ds = SyntheticDataset::generate(&DatasetConfig::tiny("cand", 21));
        let embedding = SkillEmbedding::train(
            ds.corpus.token_bags(),
            ds.graph.vocab().len(),
            &EmbeddingConfig {
                dim: 16,
                ..Default::default()
            },
        );
        Fixture { ds, embedding }
    }

    fn any_query(ds: &SyntheticDataset) -> Query {
        let skills: Vec<SkillId> = ds
            .graph
            .person_skills(PersonId(3))
            .iter()
            .copied()
            .take(3)
            .collect();
        Query::new(skills).unwrap()
    }

    fn cfg() -> ExesConfig {
        ExesConfig::fast().with_num_candidates(4)
    }

    #[test]
    fn removal_candidates_stay_in_the_neighborhood_and_exist() {
        let f = fixture();
        let q = any_query(&f.ds);
        let subject = PersonId(3);
        let cands = skill_removal_candidates(&f.ds.graph, &q, subject, &f.embedding, &cfg());
        assert!(!cands.is_empty());
        let neighborhood = Neighborhood::compute(&f.ds.graph, subject, cfg().skill_radius);
        for c in &cands {
            match *c {
                Perturbation::RemoveSkill { person, skill } => {
                    assert!(neighborhood.contains(person));
                    assert!(f.ds.graph.person_has_skill(person, skill));
                }
                _ => panic!("unexpected candidate {c:?}"),
            }
        }
    }

    #[test]
    fn addition_candidates_only_propose_missing_skills() {
        let f = fixture();
        let q = any_query(&f.ds);
        let subject = PersonId(10);
        let cands = skill_addition_candidates(&f.ds.graph, &q, subject, &f.embedding, &cfg());
        for c in &cands {
            match *c {
                Perturbation::AddSkill { person, skill } => {
                    assert!(!f.ds.graph.person_has_skill(person, skill));
                }
                _ => panic!("unexpected candidate {c:?}"),
            }
        }
        // The exact query skills are always among the proposals for the subject
        // (unless they already hold them all).
        let holds_all = q
            .skills()
            .iter()
            .all(|&s| f.ds.graph.person_has_skill(subject, s));
        if !holds_all {
            assert!(cands.iter().any(|c| matches!(
                c,
                Perturbation::AddSkill { person, skill }
                    if *person == subject && q.contains(*skill)
            )));
        }
    }

    #[test]
    fn query_augmentation_excludes_existing_keywords() {
        let f = fixture();
        let q = any_query(&f.ds);
        for selected in [true, false] {
            let cands = query_augmentation_candidates(
                &f.ds.graph,
                &q,
                PersonId(5),
                selected,
                &f.embedding,
                &cfg(),
            );
            for c in &cands {
                match *c {
                    Perturbation::AddQueryTerm { skill } => assert!(!q.contains(skill)),
                    _ => panic!("unexpected candidate {c:?}"),
                }
            }
        }
    }

    #[test]
    fn eviction_augmentation_avoids_subject_skills() {
        let f = fixture();
        let q = any_query(&f.ds);
        let subject = PersonId(3);
        let cands =
            query_augmentation_candidates(&f.ds.graph, &q, subject, true, &f.embedding, &cfg());
        for c in &cands {
            if let Perturbation::AddQueryTerm { skill } = *c {
                assert!(!f.ds.graph.person_has_skill(subject, skill));
            }
        }
    }

    #[test]
    fn link_removal_candidates_are_real_local_edges() {
        let f = fixture();
        let q = any_query(&f.ds);
        let ranker = PropagationRanker::default();
        let task = ExpertRelevanceTask::new(&ranker, PersonId(3), 5);
        let (cands, stats, truncated) =
            link_removal_candidates(&task, &f.ds.graph, &q, &cfg(), None, None);
        assert!(!truncated);
        assert!(stats.probed >= cands.len());
        assert_eq!(stats.cache_hits, 0);
        assert!(cands.len() <= cfg().num_candidates);
        let neighborhood = Neighborhood::compute(&f.ds.graph, PersonId(3), cfg().collab_radius);
        for c in &cands {
            match *c {
                Perturbation::RemoveEdge { a, b } => {
                    assert!(f.ds.graph.has_edge(a, b));
                    assert!(neighborhood.contains(a) && neighborhood.contains(b));
                }
                _ => panic!("unexpected candidate {c:?}"),
            }
        }
    }

    #[test]
    fn link_removal_scoring_respects_a_probe_cap() {
        let f = fixture();
        let q = any_query(&f.ds);
        let ranker = PropagationRanker::default();
        let task = ExpertRelevanceTask::new(&ranker, PersonId(3), 5);
        let (unbounded, full_stats, _) =
            link_removal_candidates(&task, &f.ds.graph, &q, &cfg(), None, None);
        assert!(
            full_stats.probed > 2,
            "fixture must have enough local edges"
        );
        let cap = 2;
        let (capped, stats, truncated) =
            link_removal_candidates(&task, &f.ds.graph, &q, &cfg(), None, Some(cap));
        assert!(truncated, "a {cap}-probe cap must truncate the scoring");
        assert!(stats.probed <= cap);
        assert!(capped.len() <= unbounded.len());
        // A cap covering the full scoring changes nothing.
        let (all, all_stats, all_truncated) = link_removal_candidates(
            &task,
            &f.ds.graph,
            &q,
            &cfg(),
            None,
            Some(full_stats.probed),
        );
        assert!(!all_truncated);
        assert_eq!(all, unbounded);
        assert_eq!(all_stats.probed, full_stats.probed);
    }

    #[test]
    fn link_addition_candidates_are_new_edges_from_the_subject() {
        let f = fixture();
        let subject = PersonId(7);
        let cands = link_addition_candidates(&f.ds.graph, subject, &CommonNeighbors, &cfg());
        assert!(!cands.is_empty());
        assert!(cands.len() <= cfg().num_candidates);
        for c in &cands {
            match *c {
                Perturbation::AddEdge { a, b } => {
                    assert_eq!(a, subject);
                    assert!(!f.ds.graph.has_edge(a, b));
                    assert_ne!(a, b);
                }
                _ => panic!("unexpected candidate {c:?}"),
            }
        }
    }

    #[test]
    fn candidate_skills_include_query_terms_first() {
        let f = fixture();
        let q = any_query(&f.ds);
        let skills = candidate_skills_for_addition(&q, &f.embedding, 6);
        assert!(q.skills().iter().all(|s| skills.contains(s)));
        assert!(skills.len() <= 6.max(q.len()));
    }
}
