//! Exhaustive counterfactual search — the no-pruning baseline of Tables
//! 8/10/12/14, rebuilt around the batched probe engine.

use super::{CounterfactualExplanation, CounterfactualKind, CounterfactualResult};
use crate::config::ExesConfig;
use crate::probe::{ProbeBatch, ProbeCache, PROBE_CHUNK};
use crate::tasks::ErasedDecisionModel;
use exes_graph::{
    CollabGraph, GraphView, Neighborhood, PersonId, Perturbation, PerturbationSet, Query, SkillId,
};
use std::time::Instant;

/// Enumerates perturbation subsets in order of increasing size (1, then 2, ...)
/// over the full candidate space, recording every subset that flips the
/// decision, until `e` explanations are found, the size budget `γ` is exhausted,
/// or the deadline passes.
///
/// This is the paper's exhaustive baseline: no beam, no embedding/link-prediction
/// guidance — only the subset-size ordering that guarantees minimality of the
/// returned explanations. Combinations are buffered into fixed-size chunks and
/// scored through [`ProbeBatch`] (in parallel when `cfg.parallel_probes`);
/// chunks are processed in enumeration order, so results are byte-identical to
/// the sequential path. The deadline is checked between chunks.
///
/// An optional [`ProbeCache`] memoises probes exactly as in
/// [`super::beam::beam_search`]: results are byte-identical with or without
/// it, only `result.probes` and the hit/miss counters change.
///
/// `cfg.probe_budget` bounds the number of *black-box* probes (cache hits are
/// free). When the budget runs out mid-enumeration the search stops at the
/// last affordable subset and returns best-so-far, marked
/// [`Completeness::Budgeted`](crate::probe::Completeness) — never a panic or a
/// silent truncation. An unbounded budget leaves every byte of the result
/// unchanged.
#[allow(clippy::too_many_arguments)]
pub fn exhaustive_search<D: ErasedDecisionModel + ?Sized>(
    task: &D,
    graph: &CollabGraph,
    query: &Query,
    candidates: &[Perturbation],
    kind: CounterfactualKind,
    cfg: &ExesConfig,
    deadline: Option<Instant>,
    cache: Option<&ProbeCache>,
) -> CounterfactualResult {
    let mut result = CounterfactualResult::default();
    let mut budget = cfg.probe_budget.tracker();
    let (plan, _) = crate::probe::acquire_plan(task, graph, query, cache);
    let engine = ProbeBatch::new(task, graph, query, cfg.parallel_probes)
        .with_cache_opt(cache)
        .with_plan_opt(plan.as_deref());
    let (initial, initial_hit) = if budget.remaining() == Some(0) {
        match engine.peek_identity() {
            Some(probe) => (probe, true),
            None => {
                // Not even the reference decision is affordable: the only
                // honest answer is an empty, explicitly-budgeted result.
                result.completeness = budget.completeness(true);
                return result;
            }
        }
    } else {
        let scored = engine.score_identity_counted();
        if !scored.1 {
            budget.charge(1);
        }
        scored
    };
    if initial_hit {
        result.cache_hits += 1;
    } else {
        result.probes += 1;
        if cache.is_some() {
            result.cache_misses += 1;
        }
    }
    let initial_relevance = initial.positive;

    // Scores a buffered chunk in enumeration order; returns false when the
    // search must stop (explanation count reached, probe budget spent, or
    // deadline passed).
    let score_chunk = |chunk: &mut Vec<PerturbationSet>,
                       result: &mut CounterfactualResult,
                       budget: &mut crate::probe::BudgetTracker|
     -> bool {
        if chunk.is_empty() {
            return true;
        }
        if let Some(deadline) = deadline {
            if Instant::now() >= deadline {
                result.timed_out = true;
                chunk.clear();
                return false;
            }
        }
        let (probes, stats, answered) = engine.score_counted_budgeted(chunk, budget.remaining());
        budget.charge(stats.probed);
        result.probes += stats.probed;
        result.cache_hits += stats.cache_hits;
        result.cache_misses += stats.cache_misses;
        result.incremental_rescores += stats.incremental_rescores;
        result.full_rescores += stats.full_rescores;
        let truncated = answered < chunk.len();
        for (set, probe) in chunk.drain(..).zip(probes) {
            if probe.positive != initial_relevance
                && result.explanations.len() < cfg.num_explanations
            {
                result.explanations.push(CounterfactualExplanation {
                    perturbations: set,
                    new_signal: probe.signal,
                    kind,
                });
            }
        }
        if truncated {
            // The budget ran out mid-chunk: subsets were dropped unscored,
            // so the result is best-so-far, said explicitly.
            result.completeness = budget.completeness(true);
            return false;
        }
        result.explanations.len() < cfg.num_explanations
    };

    let max_size = cfg.max_explanation_size.min(candidates.len());
    'sizes: for size in 1..=max_size {
        let mut indices: Vec<usize> = (0..size).collect();
        let mut chunk: Vec<PerturbationSet> = Vec::with_capacity(PROBE_CHUNK);
        loop {
            // Buffer the current combination (duplicate candidates can collapse
            // below the target size; those sets are skipped, as before).
            let set: PerturbationSet = indices.iter().map(|&i| candidates[i]).collect();
            if set.len() == size {
                chunk.push(set);
                if chunk.len() >= PROBE_CHUNK && !score_chunk(&mut chunk, &mut result, &mut budget)
                {
                    break 'sizes;
                }
            }
            // Advance to the next combination of `size` indices.
            if !next_combination(&mut indices, candidates.len()) {
                break;
            }
        }
        if !score_chunk(&mut chunk, &mut result, &mut budget) {
            break 'sizes;
        }
        // Minimality: once any explanation of this size exists, larger sizes
        // cannot be minimal.
        if !result.explanations.is_empty() {
            break;
        }
    }

    result.sort(!initial_relevance);
    result
}

/// Advances `indices` to the next k-combination of `0..n` in lexicographic
/// order; returns false when exhausted.
fn next_combination(indices: &mut [usize], n: usize) -> bool {
    let k = indices.len();
    if k == 0 {
        return false;
    }
    let mut i = k;
    while i > 0 {
        i -= 1;
        if indices[i] < n - (k - i) {
            indices[i] += 1;
            for j in (i + 1)..k {
                indices[j] = indices[j - 1] + 1;
            }
            return true;
        }
    }
    false
}

/// The unpruned candidate space for skill-removal counterfactuals: every
/// `(person, skill)` assignment present in the graph.
pub fn all_skill_removals(graph: &CollabGraph) -> Vec<Perturbation> {
    graph
        .people()
        .flat_map(|p| {
            graph
                .person_skills(p)
                .iter()
                .map(move |&s| Perturbation::RemoveSkill {
                    person: p,
                    skill: s,
                })
        })
        .collect()
}

/// The "Exhaustive neighbourhood" (N) baseline for skill additions: the whole
/// network's people crossed with the *pruned* candidate skill set.
pub fn skill_additions_all_people(
    graph: &CollabGraph,
    candidate_skills: &[SkillId],
) -> Vec<Perturbation> {
    graph
        .people()
        .flat_map(|p| {
            candidate_skills
                .iter()
                .copied()
                .filter(move |&s| !graph.person_has_skill(p, s))
                .map(move |s| Perturbation::AddSkill {
                    person: p,
                    skill: s,
                })
        })
        .collect()
}

/// The "Exhaustive skills" (S) baseline for skill additions: the full skill
/// universe crossed with the subject's neighbourhood.
pub fn skill_additions_all_skills(
    graph: &CollabGraph,
    subject: PersonId,
    radius: usize,
) -> Vec<Perturbation> {
    let neighborhood = Neighborhood::compute(graph, subject, radius);
    neighborhood
        .members()
        .iter()
        .flat_map(|&p| {
            graph
                .vocab()
                .ids()
                .filter(move |&s| !graph.person_has_skill(p, s))
                .map(move |s| Perturbation::AddSkill {
                    person: p,
                    skill: s,
                })
        })
        .collect()
}

/// The unpruned candidate space for query augmentation: every skill not already
/// in the query.
pub fn all_query_augmentations(graph: &CollabGraph, query: &Query) -> Vec<Perturbation> {
    graph
        .vocab()
        .ids()
        .filter(|s| !query.contains(*s))
        .map(|skill| Perturbation::AddQueryTerm { skill })
        .collect()
}

/// The unpruned candidate space for link removal: every edge of the graph.
pub fn all_link_removals(graph: &CollabGraph) -> Vec<Perturbation> {
    graph
        .edge_list()
        .iter()
        .map(|&(a, b)| Perturbation::RemoveEdge { a, b })
        .collect()
}

/// The unpruned candidate space for link addition: every missing edge incident
/// to the subject (the paper's full space is every missing edge in the graph;
/// restricting to the subject keeps the candidate *list* constructible at paper
/// scale while remaining a strict superset of the pruned space).
pub fn all_link_additions(graph: &CollabGraph, subject: PersonId) -> Vec<Perturbation> {
    graph
        .people()
        .filter(|&p| p != subject && !graph.has_edge(subject, p))
        .map(|p| Perturbation::AddEdge { a: subject, b: p })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::{DecisionModel, ExpertRelevanceTask};
    use exes_expert_search::TfIdfRanker;
    use exes_graph::CollabGraphBuilder;
    use std::time::Duration;

    fn graph() -> CollabGraph {
        let mut b = CollabGraphBuilder::new();
        let a = b.add_person("Ada", ["db", "ml"]);
        let bo = b.add_person("Bob", ["db"]);
        let c = b.add_person("Cig", ["vision"]);
        b.add_edge(a, bo);
        b.add_edge(bo, c);
        b.build()
    }

    #[test]
    fn next_combination_enumerates_all_subsets() {
        let mut indices = vec![0, 1];
        let mut count = 1;
        while next_combination(&mut indices, 4) {
            count += 1;
        }
        assert_eq!(count, 6); // C(4,2)
        assert!(!next_combination(&mut Vec::new(), 4));
    }

    #[test]
    fn exhaustive_search_finds_minimal_explanations() {
        let g = graph();
        let q = Query::parse("db ml", g.vocab()).unwrap();
        let ranker = TfIdfRanker::default();
        let task = ExpertRelevanceTask::new(&ranker, PersonId(0), 1);
        let candidates = all_skill_removals(&g);
        let result = exhaustive_search(
            &task,
            &g,
            &q,
            &candidates,
            CounterfactualKind::SkillRemoval,
            &ExesConfig::fast().with_k(1),
            None,
            None,
        );
        assert!(!result.is_empty());
        let minimal = result.minimal_size().unwrap();
        // Every reported explanation has the minimal size (size-ordered search).
        assert!(result.explanations.iter().all(|e| e.size() == minimal));
        for e in &result.explanations {
            let (view, pq) = e.perturbations.apply(&g, &q);
            assert!(!task.probe(&view, &pq).positive);
        }
    }

    #[test]
    fn candidate_space_generators_have_expected_sizes() {
        let g = graph();
        let q = Query::parse("db", g.vocab()).unwrap();
        assert_eq!(all_skill_removals(&g).len(), 4);
        assert_eq!(all_query_augmentations(&g, &q).len(), g.vocab().len() - 1);
        assert_eq!(all_link_removals(&g).len(), 2);
        assert_eq!(all_link_additions(&g, PersonId(0)).len(), 1);
        let skills: Vec<SkillId> = g.vocab().ids().collect();
        // Every person × every skill they lack.
        assert_eq!(
            skill_additions_all_people(&g, &skills).len(),
            3 * g.vocab().len() - 4
        );
        let around_ada = skill_additions_all_skills(&g, PersonId(0), 1);
        // Ada lacks 1 skill, Bob lacks 2.
        assert_eq!(around_ada.len(), 3);
    }

    #[test]
    fn instant_deadline_times_out() {
        let g = graph();
        let q = Query::parse("db ml", g.vocab()).unwrap();
        let ranker = TfIdfRanker::default();
        let task = ExpertRelevanceTask::new(&ranker, PersonId(2), 1);
        let candidates = all_query_augmentations(&g, &q);
        let deadline = Some(Instant::now() - Duration::from_millis(1));
        let result = exhaustive_search(
            &task,
            &g,
            &q,
            &candidates,
            CounterfactualKind::QueryAugmentation,
            &ExesConfig::fast().with_k(1),
            deadline,
            None,
        );
        assert!(result.timed_out || !result.is_empty());
    }

    #[test]
    fn budget_truncates_the_baseline_honestly() {
        let g = graph();
        let q = Query::parse("db ml", g.vocab()).unwrap();
        let ranker = TfIdfRanker::default();
        let task = ExpertRelevanceTask::new(&ranker, PersonId(0), 1);
        let candidates = all_skill_removals(&g);
        let run = |budget: crate::probe::ProbeBudget| {
            exhaustive_search(
                &task,
                &g,
                &q,
                &candidates,
                CounterfactualKind::SkillRemoval,
                &ExesConfig::fast().with_k(1).with_probe_budget(budget),
                None,
                None,
            )
        };
        let unbounded = run(crate::probe::ProbeBudget::UNBOUNDED);
        assert_eq!(
            unbounded.completeness,
            crate::probe::Completeness::Exhaustive
        );
        // Matching the unbounded spend exactly changes nothing.
        let matched = run(crate::probe::ProbeBudget::bounded(unbounded.probes));
        assert_eq!(matched.explanations, unbounded.explanations);
        assert_eq!(matched.completeness, crate::probe::Completeness::Exhaustive);
        // A 2-probe budget (identity + one subset) is overdrawn mid-chunk.
        let starved = run(crate::probe::ProbeBudget::bounded(2));
        assert!(starved.probes <= 2);
        assert_eq!(
            starved.completeness,
            crate::probe::Completeness::Budgeted {
                spent: starved.probes,
                budget: 2
            }
        );
    }

    #[test]
    fn empty_candidate_list_returns_empty_result() {
        let g = graph();
        let q = Query::parse("db", g.vocab()).unwrap();
        let ranker = TfIdfRanker::default();
        let task = ExpertRelevanceTask::new(&ranker, PersonId(0), 1);
        let result = exhaustive_search(
            &task,
            &g,
            &q,
            &[],
            CounterfactualKind::SkillRemoval,
            &ExesConfig::fast(),
            None,
            None,
        );
        assert!(result.is_empty());
        assert!(!result.timed_out);
    }
}
