//! Counterfactual explanations: minimal perturbation sets that flip the
//! decision (Section 3.3).

pub mod beam;
pub mod candidates;
pub mod exhaustive;

pub use crate::probe::{Completeness, ProbeBudget};
use exes_graph::{CollabGraph, PerturbationSet};

/// Which family of counterfactual explanation was requested.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CounterfactualKind {
    /// Remove skills from the subject's neighbourhood (turn experts into
    /// non-experts, Section 3.3.1).
    SkillRemoval,
    /// Add skills to the subject or their neighbours (turn non-experts into
    /// experts, Section 3.3.1).
    SkillAddition,
    /// Add keywords to the query (Section 3.3.2).
    QueryAugmentation,
    /// Remove collaborations in the subject's neighbourhood (Section 3.3.3).
    LinkRemoval,
    /// Add collaborations involving the subject (Section 3.3.3).
    LinkAddition,
}

/// One counterfactual explanation: a perturbation set that flips the decision.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterfactualExplanation {
    /// The perturbations to apply.
    pub perturbations: PerturbationSet,
    /// The subject's signal (rank) after applying the perturbations.
    pub new_signal: f64,
    /// The explanation family this belongs to.
    pub kind: CounterfactualKind,
}

impl CounterfactualExplanation {
    /// Explanation size: the number of perturbed features.
    pub fn size(&self) -> usize {
        self.perturbations.len()
    }

    /// Human-readable description.
    pub fn describe(&self, graph: &CollabGraph) -> String {
        format!(
            "[size {}] {} (new rank signal: {:.1})",
            self.size(),
            self.perturbations.describe(graph),
            self.new_signal
        )
    }
}

/// The outcome of a counterfactual search (pruned or exhaustive).
#[derive(Debug, Clone, Default)]
pub struct CounterfactualResult {
    /// Explanations found, sorted by size and then by how strongly they move the
    /// subject's rank in the desired direction.
    pub explanations: Vec<CounterfactualExplanation>,
    /// Number of probes issued to the underlying system. With a
    /// [`crate::probe::ProbeCache`] attached this counts only the probes that
    /// actually reached the black box (the cache misses plus any probes issued
    /// outside the cached engine); a warm cache makes it drop.
    pub probes: usize,
    /// Probe requests answered by the attached [`crate::probe::ProbeCache`]
    /// (0 when the search ran uncached).
    pub cache_hits: usize,
    /// Probe requests that went through the attached cache and missed
    /// (0 when the search ran uncached).
    pub cache_misses: usize,
    /// Black-box probes answered through the incremental (delta-localized)
    /// rescoring path of a per-context baseline plan (0 when the model has no
    /// incremental capability).
    pub incremental_rescores: usize,
    /// Black-box probes that performed a full re-rank — the honest fallback
    /// when no plan exists or a delta falls outside its guarantees.
    pub full_rescores: usize,
    /// Whether the search stopped because the configured timeout elapsed.
    pub timed_out: bool,
    /// Whether the search ran to its natural end or was cut short by the
    /// configured [`ProbeBudget`] (`ExesConfig::probe_budget`). A `Budgeted`
    /// result is best-so-far, never a panic or a silent truncation.
    pub completeness: Completeness,
}

impl CounterfactualResult {
    /// Number of explanations found.
    pub fn len(&self) -> usize {
        self.explanations.len()
    }

    /// True when no explanation was found.
    pub fn is_empty(&self) -> bool {
        self.explanations.is_empty()
    }

    /// The size of the smallest explanation, if any were found.
    pub fn minimal_size(&self) -> Option<usize> {
        self.explanations
            .iter()
            .map(CounterfactualExplanation::size)
            .min()
    }

    /// Mean explanation size (the paper reports this per table row).
    pub fn mean_size(&self) -> f64 {
        if self.explanations.is_empty() {
            0.0
        } else {
            self.explanations
                .iter()
                .map(|e| e.size() as f64)
                .sum::<f64>()
                / self.explanations.len() as f64
        }
    }

    /// Total probe requests the search made, whether served by the black box
    /// or the memo cache.
    pub fn probe_requests(&self) -> usize {
        self.probes + self.cache_hits
    }

    /// Sorts explanations by size, then by the strength of their effect.
    /// `prefer_low_signal` is true when the goal was to *improve* the subject's
    /// rank (bring a non-expert in), false when the goal was to evict them.
    /// Signals are compared with [`f64::total_cmp`] so a NaN signal cannot
    /// scramble the order between runs.
    pub(crate) fn sort(&mut self, prefer_low_signal: bool) {
        self.explanations.sort_by(|a, b| {
            a.size().cmp(&b.size()).then_with(|| {
                if prefer_low_signal {
                    a.new_signal.total_cmp(&b.new_signal)
                } else {
                    b.new_signal.total_cmp(&a.new_signal)
                }
            })
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exes_graph::{CollabGraphBuilder, Perturbation};

    fn explanation(size: usize, signal: f64) -> CounterfactualExplanation {
        let perturbations: PerturbationSet = (0..size)
            .map(|i| Perturbation::AddQueryTerm {
                skill: exes_graph::SkillId(i as u32),
            })
            .collect();
        CounterfactualExplanation {
            perturbations,
            new_signal: signal,
            kind: CounterfactualKind::QueryAugmentation,
        }
    }

    #[test]
    fn result_statistics() {
        let mut result = CounterfactualResult {
            explanations: vec![
                explanation(2, 4.0),
                explanation(1, 12.0),
                explanation(3, 2.0),
            ],
            probes: 10,
            ..Default::default()
        };
        assert_eq!(result.len(), 3);
        assert_eq!(result.probe_requests(), 10);
        assert!(!result.is_empty());
        assert_eq!(result.minimal_size(), Some(1));
        assert!((result.mean_size() - 2.0).abs() < 1e-12);
        result.sort(true);
        let sizes: Vec<usize> = result.explanations.iter().map(|e| e.size()).collect();
        assert_eq!(sizes, vec![1, 2, 3]);
    }

    #[test]
    fn sort_breaks_ties_by_effect_direction() {
        let mut result = CounterfactualResult {
            explanations: vec![explanation(1, 5.0), explanation(1, 2.0)],
            ..Default::default()
        };
        result.sort(true);
        assert_eq!(result.explanations[0].new_signal, 2.0);
        result.sort(false);
        assert_eq!(result.explanations[0].new_signal, 5.0);
    }

    #[test]
    fn empty_result_statistics() {
        let r = CounterfactualResult::default();
        assert!(r.is_empty());
        assert_eq!(r.minimal_size(), None);
        assert_eq!(r.mean_size(), 0.0);
    }

    #[test]
    fn describe_mentions_size_and_content() {
        let mut b = CollabGraphBuilder::new();
        b.add_person("Ada", ["db"]);
        let g = b.build();
        let e = CounterfactualExplanation {
            perturbations: PerturbationSet::singleton(Perturbation::AddQueryTerm {
                skill: g.vocab().id("db").unwrap(),
            }),
            new_signal: 3.0,
            kind: CounterfactualKind::QueryAugmentation,
        };
        let text = e.describe(&g);
        assert!(text.contains("size 1"));
        assert!(text.contains("db"));
        assert_eq!(e.size(), 1);
    }
}
