//! The `Exes` facade: one entry point per explanation type, pruned and exhaustive.

use crate::config::ExesConfig;
use crate::counterfactual::{
    beam::beam_search,
    candidates,
    exhaustive::{
        all_link_additions, all_link_removals, all_query_augmentations, all_skill_removals,
        exhaustive_search, skill_additions_all_people, skill_additions_all_skills,
    },
    CounterfactualKind, CounterfactualResult,
};
use crate::factual::{
    explain_collaborations, explain_query_terms, explain_skills, FactualExplanation,
};
use crate::probe::{BatchStats, BudgetTracker, Completeness, ProbeBatch, ProbeBudget, ProbeCache};
use crate::tasks::{ErasedDecisionModel, Probe};
use exes_embedding::SkillEmbedding;
use exes_graph::{CollabGraph, Query};
use exes_linkpred::LinkPredictor;
use std::sync::Arc;
use std::time::Instant;

/// Which of the two skill-addition exhaustive baselines to run (Section 4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkillAdditionBaseline {
    /// "Exhaustive neighbourhood" (N): all people × the pruned candidate skills.
    AllPeople,
    /// "Exhaustive skills" (S): the subject's neighbourhood × the full skill universe.
    AllSkills,
}

/// The ExES explainer: bundles the configuration with the two auxiliary models
/// the pruning strategies need — the skill embedding `W` (Pruning Strategy 4)
/// and the link predictor `L` (Pruning Strategy 5) — plus an optional probe
/// memo cache shared by every explanation computed through this instance.
///
/// Every method is generic over `D: ErasedDecisionModel + ?Sized` (every
/// [`crate::tasks::DecisionModel`] qualifies, and so does the boxed
/// `dyn ErasedDecisionModel` the model registry stores), so the same explainer
/// instance serves expert-search relevance and team-membership questions.
#[derive(Debug, Clone)]
pub struct Exes<L> {
    config: ExesConfig,
    embedding: SkillEmbedding,
    link_predictor: L,
    probe_cache: Option<Arc<ProbeCache>>,
}

impl<L: LinkPredictor> Exes<L> {
    /// Assembles an explainer.
    pub fn new(config: ExesConfig, embedding: SkillEmbedding, link_predictor: L) -> Self {
        Exes {
            config,
            embedding,
            link_predictor,
            probe_cache: None,
        }
    }

    /// Attaches a shared probe memo cache. Every subsequent explanation —
    /// counterfactual searches and factual SHAP coalitions alike — goes
    /// through it; results are byte-identical to uncached runs, only the
    /// probe counts change.
    ///
    /// The cache keys by (graph, query) context, subject, **and** the
    /// decision model's fingerprint
    /// ([`crate::tasks::DecisionModel::model_fingerprint`]: ranker name +
    /// parameters + `k` + a team former's seed), so one cache is sound to
    /// share across many model configurations — [`crate::service::ExesService`]
    /// serves its whole model registry from a single persistent cache.
    pub fn with_probe_cache(mut self, cache: Arc<ProbeCache>) -> Self {
        self.probe_cache = Some(cache);
        self
    }

    /// Detaches the stored probe cache.
    pub fn without_probe_cache(mut self) -> Self {
        self.probe_cache = None;
        self
    }

    /// The attached probe cache, if any.
    pub fn probe_cache(&self) -> Option<&ProbeCache> {
        self.probe_cache.as_deref()
    }

    /// The active configuration.
    pub fn config(&self) -> &ExesConfig {
        &self.config
    }

    /// Mutable access to the configuration (used by parameter-sensitivity sweeps).
    pub fn config_mut(&mut self) -> &mut ExesConfig {
        &mut self.config
    }

    /// The skill embedding used for Pruning Strategy 4.
    pub fn embedding(&self) -> &SkillEmbedding {
        &self.embedding
    }

    fn deadline(&self) -> Option<Instant> {
        self.config.timeout.map(|t| Instant::now() + t)
    }

    /// A copy of the configuration whose probe budget is what the
    /// request-level `budget` has left, so the downstream search spends only
    /// the request's remainder. With [`ProbeBudget::UNBOUNDED`] this is a
    /// plain clone and the search path is byte-identical to the pre-budget
    /// code.
    fn remaining_config(&self, budget: &BudgetTracker) -> ExesConfig {
        let remaining = match budget.remaining() {
            Some(r) => ProbeBudget::bounded(r),
            None => ProbeBudget::UNBOUNDED,
        };
        self.config.clone().with_probe_budget(remaining)
    }

    /// Rewrites a search-local [`Completeness`] marker into request-level
    /// accounting: `spent` becomes the request's *total* black-box probes —
    /// the initial decision probe and any candidate scoring included — against
    /// the configured budget. `pre_search_truncated` marks requests whose
    /// candidate scoring (not the search itself) ran out of budget.
    fn finish_accounting(&self, result: &mut CounterfactualResult, pre_search_truncated: bool) {
        if let Some(limit) = self.config.probe_budget.limit() {
            if pre_search_truncated || result.completeness.is_budgeted() {
                result.completeness = Completeness::Budgeted {
                    spent: result.probes,
                    budget: limit,
                };
            }
        }
    }

    /// The initial (unperturbed) decision, routed through the cache when one
    /// is attached so a warm cache answers it for free. Returns the probe and
    /// whether it was a cache hit.
    fn initial_probe<D: ErasedDecisionModel + ?Sized>(
        &self,
        task: &D,
        graph: &CollabGraph,
        query: &Query,
        cache: Option<&ProbeCache>,
    ) -> (Probe, bool) {
        ProbeBatch::new(task, graph, query, self.config.parallel_probes)
            .with_cache_opt(cache)
            .score_identity_counted()
    }

    /// Folds the initial probe into a finished search result's accounting.
    fn account_initial(result: &mut CounterfactualResult, hit: bool, cached: bool) {
        if hit {
            result.cache_hits += 1;
        } else {
            result.probes += 1;
            if cached {
                result.cache_misses += 1;
            }
        }
    }

    // ------------------------------------------------------------------
    // Factual explanations
    // ------------------------------------------------------------------

    /// Skill factual explanation (Pruning Strategy 1 when `pruned`).
    pub fn factual_skills<D: ErasedDecisionModel + ?Sized>(
        &self,
        task: &D,
        graph: &CollabGraph,
        query: &Query,
        pruned: bool,
    ) -> FactualExplanation {
        self.factual_skills_with(task, graph, query, pruned, self.probe_cache())
    }

    /// [`Exes::factual_skills`] with an explicit probe cache, overriding any
    /// cache stored on the explainer. [`crate::service::ExesService`] routes
    /// factual requests through this so SHAP coalitions share the service's
    /// persistent cache.
    pub fn factual_skills_with<D: ErasedDecisionModel + ?Sized>(
        &self,
        task: &D,
        graph: &CollabGraph,
        query: &Query,
        pruned: bool,
        cache: Option<&ProbeCache>,
    ) -> FactualExplanation {
        explain_skills(task, graph, query, &self.config, pruned, cache)
    }

    /// Query-term factual explanation (no pruning applies).
    pub fn factual_query_terms<D: ErasedDecisionModel + ?Sized>(
        &self,
        task: &D,
        graph: &CollabGraph,
        query: &Query,
    ) -> FactualExplanation {
        self.factual_query_terms_with(task, graph, query, self.probe_cache())
    }

    /// [`Exes::factual_query_terms`] with an explicit probe cache.
    pub fn factual_query_terms_with<D: ErasedDecisionModel + ?Sized>(
        &self,
        task: &D,
        graph: &CollabGraph,
        query: &Query,
        cache: Option<&ProbeCache>,
    ) -> FactualExplanation {
        explain_query_terms(task, graph, query, &self.config, cache)
    }

    /// Collaboration factual explanation (Pruning Strategy 2 when `pruned`).
    pub fn factual_collaborations<D: ErasedDecisionModel + ?Sized>(
        &self,
        task: &D,
        graph: &CollabGraph,
        query: &Query,
        pruned: bool,
    ) -> FactualExplanation {
        self.factual_collaborations_with(task, graph, query, pruned, self.probe_cache())
    }

    /// [`Exes::factual_collaborations`] with an explicit probe cache.
    pub fn factual_collaborations_with<D: ErasedDecisionModel + ?Sized>(
        &self,
        task: &D,
        graph: &CollabGraph,
        query: &Query,
        pruned: bool,
        cache: Option<&ProbeCache>,
    ) -> FactualExplanation {
        explain_collaborations(task, graph, query, &self.config, pruned, cache)
    }

    // ------------------------------------------------------------------
    // Counterfactual explanations — pruned (beam search + strategies 4/5)
    // ------------------------------------------------------------------

    /// Skill counterfactuals: removals when the subject is currently selected,
    /// additions otherwise (Section 3.3.1).
    pub fn counterfactual_skills<D: ErasedDecisionModel + ?Sized>(
        &self,
        task: &D,
        graph: &CollabGraph,
        query: &Query,
    ) -> CounterfactualResult {
        self.counterfactual_skills_with(task, graph, query, self.probe_cache())
    }

    /// [`Exes::counterfactual_skills`] with an explicit probe cache, overriding
    /// any cache stored on the explainer. [`crate::service::ExesService`] uses
    /// this to share one cache per (graph, query) request group.
    pub fn counterfactual_skills_with<D: ErasedDecisionModel + ?Sized>(
        &self,
        task: &D,
        graph: &CollabGraph,
        query: &Query,
        cache: Option<&ProbeCache>,
    ) -> CounterfactualResult {
        let mut budget = self.config.probe_budget.tracker();
        let (initial, initial_hit) = self.initial_probe(task, graph, query, cache);
        if !initial_hit {
            budget.charge(1);
        }
        let initially_selected = initial.positive;
        let (candidates, kind) = if initially_selected {
            (
                candidates::skill_removal_candidates(
                    graph,
                    query,
                    task.subject_id(),
                    &self.embedding,
                    &self.config,
                ),
                CounterfactualKind::SkillRemoval,
            )
        } else {
            (
                candidates::skill_addition_candidates(
                    graph,
                    query,
                    task.subject_id(),
                    &self.embedding,
                    &self.config,
                ),
                CounterfactualKind::SkillAddition,
            )
        };
        let search_cfg = self.remaining_config(&budget);
        let mut result = beam_search(
            task,
            graph,
            query,
            &candidates,
            kind,
            &search_cfg,
            self.deadline(),
            cache,
        );
        Self::account_initial(&mut result, initial_hit, cache.is_some());
        self.finish_accounting(&mut result, false);
        result
    }

    /// Query-augmentation counterfactuals (Section 3.3.2).
    pub fn counterfactual_query<D: ErasedDecisionModel + ?Sized>(
        &self,
        task: &D,
        graph: &CollabGraph,
        query: &Query,
    ) -> CounterfactualResult {
        self.counterfactual_query_with(task, graph, query, self.probe_cache())
    }

    /// [`Exes::counterfactual_query`] with an explicit probe cache.
    pub fn counterfactual_query_with<D: ErasedDecisionModel + ?Sized>(
        &self,
        task: &D,
        graph: &CollabGraph,
        query: &Query,
        cache: Option<&ProbeCache>,
    ) -> CounterfactualResult {
        let mut budget = self.config.probe_budget.tracker();
        let (initial, initial_hit) = self.initial_probe(task, graph, query, cache);
        if !initial_hit {
            budget.charge(1);
        }
        let initially_selected = initial.positive;
        let candidates = candidates::query_augmentation_candidates(
            graph,
            query,
            task.subject_id(),
            initially_selected,
            &self.embedding,
            &self.config,
        );
        let search_cfg = self.remaining_config(&budget);
        let mut result = beam_search(
            task,
            graph,
            query,
            &candidates,
            CounterfactualKind::QueryAugmentation,
            &search_cfg,
            self.deadline(),
            cache,
        );
        Self::account_initial(&mut result, initial_hit, cache.is_some());
        self.finish_accounting(&mut result, false);
        result
    }

    /// Collaboration counterfactuals: link removals when the subject is selected,
    /// link additions otherwise (Section 3.3.3, Pruning Strategy 5).
    pub fn counterfactual_links<D: ErasedDecisionModel + ?Sized>(
        &self,
        task: &D,
        graph: &CollabGraph,
        query: &Query,
    ) -> CounterfactualResult {
        self.counterfactual_links_with(task, graph, query, self.probe_cache())
    }

    /// [`Exes::counterfactual_links`] with an explicit probe cache.
    pub fn counterfactual_links_with<D: ErasedDecisionModel + ?Sized>(
        &self,
        task: &D,
        graph: &CollabGraph,
        query: &Query,
        cache: Option<&ProbeCache>,
    ) -> CounterfactualResult {
        let mut budget = self.config.probe_budget.tracker();
        let (initial, initial_hit) = self.initial_probe(task, graph, query, cache);
        if !initial_hit {
            budget.charge(1);
        }
        let initially_selected = initial.positive;
        let (candidates, kind, extra, candidates_truncated) = if initially_selected {
            let (cands, stats, truncated) = candidates::link_removal_candidates(
                task,
                graph,
                query,
                &self.config,
                cache,
                budget.remaining(),
            );
            budget.charge(stats.probed);
            (cands, CounterfactualKind::LinkRemoval, stats, truncated)
        } else {
            (
                candidates::link_addition_candidates(
                    graph,
                    task.subject_id(),
                    &self.link_predictor,
                    &self.config,
                ),
                CounterfactualKind::LinkAddition,
                BatchStats::default(),
                false,
            )
        };
        let search_cfg = self.remaining_config(&budget);
        let mut result = beam_search(
            task,
            graph,
            query,
            &candidates,
            kind,
            &search_cfg,
            self.deadline(),
            cache,
        );
        result.probes += extra.probed;
        result.cache_hits += extra.cache_hits;
        result.cache_misses += extra.cache_misses;
        result.incremental_rescores += extra.incremental_rescores;
        result.full_rescores += extra.full_rescores;
        Self::account_initial(&mut result, initial_hit, cache.is_some());
        self.finish_accounting(&mut result, candidates_truncated);
        result
    }

    // ------------------------------------------------------------------
    // Counterfactual explanations — exhaustive baselines
    // ------------------------------------------------------------------

    /// Exhaustive skill counterfactuals. For selected subjects this searches all
    /// skill removals in the network; for unselected subjects the
    /// `addition_baseline` chooses between the paper's N and S baselines.
    pub fn counterfactual_skills_exhaustive<D: ErasedDecisionModel + ?Sized>(
        &self,
        task: &D,
        graph: &CollabGraph,
        query: &Query,
        addition_baseline: SkillAdditionBaseline,
    ) -> CounterfactualResult {
        let cache = self.probe_cache();
        let mut budget = self.config.probe_budget.tracker();
        let (initial, initial_hit) = self.initial_probe(task, graph, query, cache);
        if !initial_hit {
            budget.charge(1);
        }
        let initially_selected = initial.positive;
        let (candidates, kind) = if initially_selected {
            (all_skill_removals(graph), CounterfactualKind::SkillRemoval)
        } else {
            let cands = match addition_baseline {
                SkillAdditionBaseline::AllPeople => {
                    let skills = candidates::candidate_skills_for_addition(
                        query,
                        &self.embedding,
                        self.config.num_candidates,
                    );
                    skill_additions_all_people(graph, &skills)
                }
                SkillAdditionBaseline::AllSkills => {
                    skill_additions_all_skills(graph, task.subject_id(), self.config.skill_radius)
                }
            };
            (cands, CounterfactualKind::SkillAddition)
        };
        let search_cfg = self.remaining_config(&budget);
        let mut result = exhaustive_search(
            task,
            graph,
            query,
            &candidates,
            kind,
            &search_cfg,
            self.deadline(),
            cache,
        );
        Self::account_initial(&mut result, initial_hit, cache.is_some());
        self.finish_accounting(&mut result, false);
        result
    }

    /// Exhaustive query-augmentation counterfactuals (every skill not in the query).
    pub fn counterfactual_query_exhaustive<D: ErasedDecisionModel + ?Sized>(
        &self,
        task: &D,
        graph: &CollabGraph,
        query: &Query,
    ) -> CounterfactualResult {
        // No extra initial probe here: unlike the skill/link variants, this
        // method never asks for the unperturbed decision outside the search,
        // so only the search's own identity probe is counted.
        let candidates = all_query_augmentations(graph, query);
        exhaustive_search(
            task,
            graph,
            query,
            &candidates,
            CounterfactualKind::QueryAugmentation,
            &self.config,
            self.deadline(),
            self.probe_cache(),
        )
    }

    /// Exhaustive collaboration counterfactuals: all edge removals (selected
    /// subjects) or all missing edges incident to the subject (unselected).
    pub fn counterfactual_links_exhaustive<D: ErasedDecisionModel + ?Sized>(
        &self,
        task: &D,
        graph: &CollabGraph,
        query: &Query,
    ) -> CounterfactualResult {
        let cache = self.probe_cache();
        let mut budget = self.config.probe_budget.tracker();
        let (initial, initial_hit) = self.initial_probe(task, graph, query, cache);
        if !initial_hit {
            budget.charge(1);
        }
        let initially_selected = initial.positive;
        let (candidates, kind) = if initially_selected {
            (all_link_removals(graph), CounterfactualKind::LinkRemoval)
        } else {
            (
                all_link_additions(graph, task.subject_id()),
                CounterfactualKind::LinkAddition,
            )
        };
        let search_cfg = self.remaining_config(&budget);
        let mut result = exhaustive_search(
            task,
            graph,
            query,
            &candidates,
            kind,
            &search_cfg,
            self.deadline(),
            cache,
        );
        Self::account_initial(&mut result, initial_hit, cache.is_some());
        self.finish_accounting(&mut result, false);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OutputMode;
    use crate::tasks::{DecisionModel, ExpertRelevanceTask};
    use exes_datasets::{DatasetConfig, QueryWorkload, SyntheticDataset};
    use exes_embedding::EmbeddingConfig;
    use exes_expert_search::{ExpertRanker, PropagationRanker};
    use exes_graph::GraphView;
    use exes_graph::PersonId;
    use exes_linkpred::CommonNeighbors;

    struct Fixture {
        ds: SyntheticDataset,
        exes: Exes<CommonNeighbors>,
        ranker: PropagationRanker,
    }

    fn fixture() -> Fixture {
        let ds = SyntheticDataset::generate(&DatasetConfig::tiny("exes", 33));
        let embedding = SkillEmbedding::train(
            ds.corpus.token_bags(),
            ds.graph.vocab().len(),
            &EmbeddingConfig {
                dim: 16,
                ..Default::default()
            },
        );
        let cfg = ExesConfig::fast()
            .with_k(5)
            .with_num_candidates(6)
            .with_output_mode(OutputMode::SmoothRank);
        Fixture {
            ds,
            exes: Exes::new(cfg, embedding, CommonNeighbors),
            ranker: PropagationRanker::default(),
        }
    }

    /// A query someone actually matches, plus one person inside the top-k and one outside.
    fn query_and_subjects(f: &Fixture) -> (Query, PersonId, PersonId) {
        let workload = QueryWorkload::answerable(&f.ds.graph, 5, 2, 3, 3, 7);
        if let Some(q) = workload.queries().iter().next() {
            let ranking = f.ranker.rank_all(&f.ds.graph, q);
            let top = ranking.top_k(f.exes.config().k);
            let inside = top[0];
            let outside = ranking.entries()[f.exes.config().k + 2].0;
            return (q.clone(), inside, outside);
        }
        unreachable!("workload is non-empty");
    }

    #[test]
    fn factual_explanations_run_end_to_end() {
        let f = fixture();
        let (q, inside, _) = query_and_subjects(&f);
        let task = ExpertRelevanceTask::new(&f.ranker, inside, f.exes.config().k);
        let skills = f.exes.factual_skills(&task, &f.ds.graph, &q, true);
        assert!(skills.num_features() > 0);
        let query_terms = f.exes.factual_query_terms(&task, &f.ds.graph, &q);
        assert_eq!(query_terms.num_features(), q.len());
        let collabs = f.exes.factual_collaborations(&task, &f.ds.graph, &q, true);
        assert!(collabs.num_features() <= f.ds.graph.num_edges());
    }

    #[test]
    fn counterfactual_skill_explanations_flip_the_decision() {
        let f = fixture();
        let (q, inside, outside) = query_and_subjects(&f);
        let k = f.exes.config().k;

        let expert_task = ExpertRelevanceTask::new(&f.ranker, inside, k);
        let removal = f.exes.counterfactual_skills(&expert_task, &f.ds.graph, &q);
        for e in &removal.explanations {
            let (view, pq) = e.perturbations.apply(&f.ds.graph, &q);
            assert!(!expert_task.probe(&view, &pq).positive);
            assert_eq!(e.kind, CounterfactualKind::SkillRemoval);
        }

        let non_expert_task = ExpertRelevanceTask::new(&f.ranker, outside, k);
        let addition = f
            .exes
            .counterfactual_skills(&non_expert_task, &f.ds.graph, &q);
        for e in &addition.explanations {
            let (view, pq) = e.perturbations.apply(&f.ds.graph, &q);
            assert!(non_expert_task.probe(&view, &pq).positive);
            assert_eq!(e.kind, CounterfactualKind::SkillAddition);
        }
    }

    #[test]
    fn counterfactual_query_and_link_explanations_flip_the_decision() {
        let f = fixture();
        let (q, inside, outside) = query_and_subjects(&f);
        let k = f.exes.config().k;

        for (subject, expect_positive_after) in [(inside, false), (outside, true)] {
            let task = ExpertRelevanceTask::new(&f.ranker, subject, k);
            for result in [
                f.exes.counterfactual_query(&task, &f.ds.graph, &q),
                f.exes.counterfactual_links(&task, &f.ds.graph, &q),
            ] {
                for e in &result.explanations {
                    let (view, pq) = e.perturbations.apply(&f.ds.graph, &q);
                    assert_eq!(task.probe(&view, &pq).positive, expect_positive_after);
                }
            }
        }
    }

    #[test]
    fn exhaustive_baselines_agree_on_flip_validity() {
        let f = fixture();
        let (q, inside, _) = query_and_subjects(&f);
        let task = ExpertRelevanceTask::new(&f.ranker, inside, f.exes.config().k);
        let exhaustive = f
            .exes
            .counterfactual_query_exhaustive(&task, &f.ds.graph, &q);
        for e in &exhaustive.explanations {
            let (view, pq) = e.perturbations.apply(&f.ds.graph, &q);
            assert!(!task.probe(&view, &pq).positive);
        }
        // Exhaustive minimality: if both found explanations, the baseline's
        // minimum can never exceed the pruned search's minimum.
        let pruned = f.exes.counterfactual_query(&task, &f.ds.graph, &q);
        if let (Some(b), Some(p)) = (exhaustive.minimal_size(), pruned.minimal_size()) {
            assert!(b <= p);
        }
    }

    #[test]
    fn config_mut_allows_parameter_sweeps() {
        let mut f = fixture();
        f.exes.config_mut().beam_width = 2;
        assert_eq!(f.exes.config().beam_width, 2);
        assert!(f.exes.embedding().vocab_size() > 0);
    }
}
