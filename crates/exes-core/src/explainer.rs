//! The `Exes` facade: one entry point per explanation type, pruned and exhaustive.

use crate::config::ExesConfig;
use crate::counterfactual::{
    beam::beam_search,
    candidates,
    exhaustive::{
        all_link_additions, all_link_removals, all_query_augmentations, all_skill_removals,
        exhaustive_search, skill_additions_all_people, skill_additions_all_skills,
    },
    CounterfactualKind, CounterfactualResult,
};
use crate::factual::{
    explain_collaborations, explain_query_terms, explain_skills, FactualExplanation,
};
use crate::tasks::DecisionModel;
use exes_embedding::SkillEmbedding;
use exes_graph::{CollabGraph, Query};
use exes_linkpred::LinkPredictor;
use std::time::Instant;

/// Which of the two skill-addition exhaustive baselines to run (Section 4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkillAdditionBaseline {
    /// "Exhaustive neighbourhood" (N): all people × the pruned candidate skills.
    AllPeople,
    /// "Exhaustive skills" (S): the subject's neighbourhood × the full skill universe.
    AllSkills,
}

/// The ExES explainer: bundles the configuration with the two auxiliary models
/// the pruning strategies need — the skill embedding `W` (Pruning Strategy 4)
/// and the link predictor `L` (Pruning Strategy 5).
///
/// Every method is generic over the [`DecisionModel`], so the same explainer
/// instance serves expert-search relevance and team-membership questions.
#[derive(Debug, Clone)]
pub struct Exes<L> {
    config: ExesConfig,
    embedding: SkillEmbedding,
    link_predictor: L,
}

impl<L: LinkPredictor> Exes<L> {
    /// Assembles an explainer.
    pub fn new(config: ExesConfig, embedding: SkillEmbedding, link_predictor: L) -> Self {
        Exes {
            config,
            embedding,
            link_predictor,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ExesConfig {
        &self.config
    }

    /// Mutable access to the configuration (used by parameter-sensitivity sweeps).
    pub fn config_mut(&mut self) -> &mut ExesConfig {
        &mut self.config
    }

    /// The skill embedding used for Pruning Strategy 4.
    pub fn embedding(&self) -> &SkillEmbedding {
        &self.embedding
    }

    fn deadline(&self) -> Option<Instant> {
        self.config.timeout.map(|t| Instant::now() + t)
    }

    // ------------------------------------------------------------------
    // Factual explanations
    // ------------------------------------------------------------------

    /// Skill factual explanation (Pruning Strategy 1 when `pruned`).
    pub fn factual_skills<D: DecisionModel>(
        &self,
        task: &D,
        graph: &CollabGraph,
        query: &Query,
        pruned: bool,
    ) -> FactualExplanation {
        explain_skills(task, graph, query, &self.config, pruned)
    }

    /// Query-term factual explanation (no pruning applies).
    pub fn factual_query_terms<D: DecisionModel>(
        &self,
        task: &D,
        graph: &CollabGraph,
        query: &Query,
    ) -> FactualExplanation {
        explain_query_terms(task, graph, query, &self.config)
    }

    /// Collaboration factual explanation (Pruning Strategy 2 when `pruned`).
    pub fn factual_collaborations<D: DecisionModel>(
        &self,
        task: &D,
        graph: &CollabGraph,
        query: &Query,
        pruned: bool,
    ) -> FactualExplanation {
        explain_collaborations(task, graph, query, &self.config, pruned)
    }

    // ------------------------------------------------------------------
    // Counterfactual explanations — pruned (beam search + strategies 4/5)
    // ------------------------------------------------------------------

    /// Skill counterfactuals: removals when the subject is currently selected,
    /// additions otherwise (Section 3.3.1).
    pub fn counterfactual_skills<D: DecisionModel>(
        &self,
        task: &D,
        graph: &CollabGraph,
        query: &Query,
    ) -> CounterfactualResult {
        let initially_selected = task.probe(graph, query).positive;
        let (candidates, kind) = if initially_selected {
            (
                candidates::skill_removal_candidates(
                    graph,
                    query,
                    task.subject(),
                    &self.embedding,
                    &self.config,
                ),
                CounterfactualKind::SkillRemoval,
            )
        } else {
            (
                candidates::skill_addition_candidates(
                    graph,
                    query,
                    task.subject(),
                    &self.embedding,
                    &self.config,
                ),
                CounterfactualKind::SkillAddition,
            )
        };
        let mut result = beam_search(
            task,
            graph,
            query,
            &candidates,
            kind,
            &self.config,
            self.deadline(),
        );
        result.probes += 1; // the initial probe above
        result
    }

    /// Query-augmentation counterfactuals (Section 3.3.2).
    pub fn counterfactual_query<D: DecisionModel>(
        &self,
        task: &D,
        graph: &CollabGraph,
        query: &Query,
    ) -> CounterfactualResult {
        let initially_selected = task.probe(graph, query).positive;
        let candidates = candidates::query_augmentation_candidates(
            graph,
            query,
            task.subject(),
            initially_selected,
            &self.embedding,
            &self.config,
        );
        let mut result = beam_search(
            task,
            graph,
            query,
            &candidates,
            CounterfactualKind::QueryAugmentation,
            &self.config,
            self.deadline(),
        );
        result.probes += 1;
        result
    }

    /// Collaboration counterfactuals: link removals when the subject is selected,
    /// link additions otherwise (Section 3.3.3, Pruning Strategy 5).
    pub fn counterfactual_links<D: DecisionModel>(
        &self,
        task: &D,
        graph: &CollabGraph,
        query: &Query,
    ) -> CounterfactualResult {
        let initially_selected = task.probe(graph, query).positive;
        let (candidates, kind, extra_probes) = if initially_selected {
            let (cands, probes) =
                candidates::link_removal_candidates(task, graph, query, &self.config);
            (cands, CounterfactualKind::LinkRemoval, probes)
        } else {
            (
                candidates::link_addition_candidates(
                    graph,
                    task.subject(),
                    &self.link_predictor,
                    &self.config,
                ),
                CounterfactualKind::LinkAddition,
                0,
            )
        };
        let mut result = beam_search(
            task,
            graph,
            query,
            &candidates,
            kind,
            &self.config,
            self.deadline(),
        );
        result.probes += extra_probes + 1;
        result
    }

    // ------------------------------------------------------------------
    // Counterfactual explanations — exhaustive baselines
    // ------------------------------------------------------------------

    /// Exhaustive skill counterfactuals. For selected subjects this searches all
    /// skill removals in the network; for unselected subjects the
    /// `addition_baseline` chooses between the paper's N and S baselines.
    pub fn counterfactual_skills_exhaustive<D: DecisionModel>(
        &self,
        task: &D,
        graph: &CollabGraph,
        query: &Query,
        addition_baseline: SkillAdditionBaseline,
    ) -> CounterfactualResult {
        let initially_selected = task.probe(graph, query).positive;
        let (candidates, kind) = if initially_selected {
            (all_skill_removals(graph), CounterfactualKind::SkillRemoval)
        } else {
            let cands = match addition_baseline {
                SkillAdditionBaseline::AllPeople => {
                    let skills = candidates::candidate_skills_for_addition(
                        query,
                        &self.embedding,
                        self.config.num_candidates,
                    );
                    skill_additions_all_people(graph, &skills)
                }
                SkillAdditionBaseline::AllSkills => {
                    skill_additions_all_skills(graph, task.subject(), self.config.skill_radius)
                }
            };
            (cands, CounterfactualKind::SkillAddition)
        };
        let mut result = exhaustive_search(
            task,
            graph,
            query,
            &candidates,
            kind,
            &self.config,
            self.deadline(),
        );
        result.probes += 1;
        result
    }

    /// Exhaustive query-augmentation counterfactuals (every skill not in the query).
    pub fn counterfactual_query_exhaustive<D: DecisionModel>(
        &self,
        task: &D,
        graph: &CollabGraph,
        query: &Query,
    ) -> CounterfactualResult {
        let candidates = all_query_augmentations(graph, query);
        let mut result = exhaustive_search(
            task,
            graph,
            query,
            &candidates,
            CounterfactualKind::QueryAugmentation,
            &self.config,
            self.deadline(),
        );
        result.probes += 1;
        result
    }

    /// Exhaustive collaboration counterfactuals: all edge removals (selected
    /// subjects) or all missing edges incident to the subject (unselected).
    pub fn counterfactual_links_exhaustive<D: DecisionModel>(
        &self,
        task: &D,
        graph: &CollabGraph,
        query: &Query,
    ) -> CounterfactualResult {
        let initially_selected = task.probe(graph, query).positive;
        let (candidates, kind) = if initially_selected {
            (all_link_removals(graph), CounterfactualKind::LinkRemoval)
        } else {
            (
                all_link_additions(graph, task.subject()),
                CounterfactualKind::LinkAddition,
            )
        };
        let mut result = exhaustive_search(
            task,
            graph,
            query,
            &candidates,
            kind,
            &self.config,
            self.deadline(),
        );
        result.probes += 1;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OutputMode;
    use crate::tasks::ExpertRelevanceTask;
    use exes_datasets::{DatasetConfig, QueryWorkload, SyntheticDataset};
    use exes_embedding::EmbeddingConfig;
    use exes_expert_search::{ExpertRanker, PropagationRanker};
    use exes_graph::GraphView;
    use exes_graph::PersonId;
    use exes_linkpred::CommonNeighbors;

    struct Fixture {
        ds: SyntheticDataset,
        exes: Exes<CommonNeighbors>,
        ranker: PropagationRanker,
    }

    fn fixture() -> Fixture {
        let ds = SyntheticDataset::generate(&DatasetConfig::tiny("exes", 33));
        let embedding = SkillEmbedding::train(
            ds.corpus.token_bags(),
            ds.graph.vocab().len(),
            &EmbeddingConfig {
                dim: 16,
                ..Default::default()
            },
        );
        let cfg = ExesConfig::fast()
            .with_k(5)
            .with_num_candidates(6)
            .with_output_mode(OutputMode::SmoothRank);
        Fixture {
            ds,
            exes: Exes::new(cfg, embedding, CommonNeighbors),
            ranker: PropagationRanker::default(),
        }
    }

    /// A query someone actually matches, plus one person inside the top-k and one outside.
    fn query_and_subjects(f: &Fixture) -> (Query, PersonId, PersonId) {
        let workload = QueryWorkload::answerable(&f.ds.graph, 5, 2, 3, 3, 7);
        if let Some(q) = workload.queries().iter().next() {
            let ranking = f.ranker.rank_all(&f.ds.graph, q);
            let top = ranking.top_k(f.exes.config().k);
            let inside = top[0];
            let outside = ranking.entries()[f.exes.config().k + 2].0;
            return (q.clone(), inside, outside);
        }
        unreachable!("workload is non-empty");
    }

    #[test]
    fn factual_explanations_run_end_to_end() {
        let f = fixture();
        let (q, inside, _) = query_and_subjects(&f);
        let task = ExpertRelevanceTask::new(&f.ranker, inside, f.exes.config().k);
        let skills = f.exes.factual_skills(&task, &f.ds.graph, &q, true);
        assert!(skills.num_features() > 0);
        let query_terms = f.exes.factual_query_terms(&task, &f.ds.graph, &q);
        assert_eq!(query_terms.num_features(), q.len());
        let collabs = f.exes.factual_collaborations(&task, &f.ds.graph, &q, true);
        assert!(collabs.num_features() <= f.ds.graph.num_edges());
    }

    #[test]
    fn counterfactual_skill_explanations_flip_the_decision() {
        let f = fixture();
        let (q, inside, outside) = query_and_subjects(&f);
        let k = f.exes.config().k;

        let expert_task = ExpertRelevanceTask::new(&f.ranker, inside, k);
        let removal = f.exes.counterfactual_skills(&expert_task, &f.ds.graph, &q);
        for e in &removal.explanations {
            let (view, pq) = e.perturbations.apply(&f.ds.graph, &q);
            assert!(!expert_task.probe(&view, &pq).positive);
            assert_eq!(e.kind, CounterfactualKind::SkillRemoval);
        }

        let non_expert_task = ExpertRelevanceTask::new(&f.ranker, outside, k);
        let addition = f
            .exes
            .counterfactual_skills(&non_expert_task, &f.ds.graph, &q);
        for e in &addition.explanations {
            let (view, pq) = e.perturbations.apply(&f.ds.graph, &q);
            assert!(non_expert_task.probe(&view, &pq).positive);
            assert_eq!(e.kind, CounterfactualKind::SkillAddition);
        }
    }

    #[test]
    fn counterfactual_query_and_link_explanations_flip_the_decision() {
        let f = fixture();
        let (q, inside, outside) = query_and_subjects(&f);
        let k = f.exes.config().k;

        for (subject, expect_positive_after) in [(inside, false), (outside, true)] {
            let task = ExpertRelevanceTask::new(&f.ranker, subject, k);
            for result in [
                f.exes.counterfactual_query(&task, &f.ds.graph, &q),
                f.exes.counterfactual_links(&task, &f.ds.graph, &q),
            ] {
                for e in &result.explanations {
                    let (view, pq) = e.perturbations.apply(&f.ds.graph, &q);
                    assert_eq!(task.probe(&view, &pq).positive, expect_positive_after);
                }
            }
        }
    }

    #[test]
    fn exhaustive_baselines_agree_on_flip_validity() {
        let f = fixture();
        let (q, inside, _) = query_and_subjects(&f);
        let task = ExpertRelevanceTask::new(&f.ranker, inside, f.exes.config().k);
        let exhaustive = f
            .exes
            .counterfactual_query_exhaustive(&task, &f.ds.graph, &q);
        for e in &exhaustive.explanations {
            let (view, pq) = e.perturbations.apply(&f.ds.graph, &q);
            assert!(!task.probe(&view, &pq).positive);
        }
        // Exhaustive minimality: if both found explanations, the baseline's
        // minimum can never exceed the pruned search's minimum.
        let pruned = f.exes.counterfactual_query(&task, &f.ds.graph, &q);
        if let (Some(b), Some(p)) = (exhaustive.minimal_size(), pruned.minimal_size()) {
            assert!(b <= p);
        }
    }

    #[test]
    fn config_mut_allows_parameter_sweeps() {
        let mut f = fixture();
        f.exes.config_mut().beam_width = 2;
        assert_eq!(f.exes.config().beam_width, 2);
        assert!(f.exes.embedding().vocab_size() > 0);
    }
}
