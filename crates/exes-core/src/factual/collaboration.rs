//! Collaboration factual explanations (Pruning Strategy 2: influential collaborations).

use super::{skill::explain_features, FactualExplanation, FeatureMaskModel};
use crate::config::ExesConfig;
use crate::features::Feature;
use crate::probe::{Completeness, ProbeBudget, ProbeCache};
use crate::tasks::ErasedDecisionModel;
use exes_graph::{CollabGraph, Neighborhood, PersonId, Query};
use exes_shap::{CachingModel, ShapExplainer};
use rustc_hash::FxHashSet;
use std::collections::VecDeque;

/// The exhaustive collaboration feature space: every edge of the network.
pub fn collaboration_features_exhaustive(graph: &CollabGraph) -> Vec<Feature> {
    graph
        .edge_list()
        .iter()
        .map(|&(a, b)| Feature::Edge(a, b))
        .collect()
}

/// Computes a collaboration factual explanation.
///
/// With `pruned == true` the paper's Pruning Strategy 2 is used: starting from
/// the subject, repeatedly expand the next "impactful" person, score their
/// incident edges (restricted to the radius-`d` neighbourhood), and keep only
/// edges whose |SHAP| exceeds `τ`; the final explanation re-scores exactly that
/// impactful set. With `false` every edge of the graph is scored.
///
/// `cfg.probe_budget` bounds the black-box probes of the *whole* explanation:
/// each expansion pass spends against the remainder, and when it runs out the
/// expansion stops and the result is marked
/// [`Completeness::Budgeted`] — best-so-far, never a silent truncation.
pub fn explain_collaborations<D: ErasedDecisionModel + ?Sized>(
    task: &D,
    graph: &CollabGraph,
    query: &Query,
    cfg: &ExesConfig,
    pruned: bool,
    cache: Option<&ProbeCache>,
) -> FactualExplanation {
    if !pruned {
        let features = collaboration_features_exhaustive(graph);
        return explain_features(task, graph, query, cfg, features, cache);
    }

    let subject = task.subject_id();
    let neighborhood = Neighborhood::compute(graph, subject, cfg.collab_radius);
    let mut impactful: Vec<Feature> = Vec::new();
    let mut impactful_set: FxHashSet<(u32, u32)> = FxHashSet::default();
    let mut expanded: FxHashSet<PersonId> = FxHashSet::default();
    let mut queue: VecDeque<PersonId> = VecDeque::new();
    queue.push_back(subject);
    let mut total_probes = 0usize;
    let mut total_cache_hits = 0usize;
    let mut total_incremental = 0usize;
    let mut total_full = 0usize;
    let mut budget = cfg.probe_budget.tracker();
    let mut expansion_truncated = false;
    // Guard against runaway expansion on dense neighbourhoods.
    let max_impactful = 64usize;

    while let Some(px) = queue.pop_front() {
        if !expanded.insert(px) {
            continue;
        }
        if impactful.len() >= max_impactful {
            break;
        }
        if budget.remaining() == Some(0) {
            expansion_truncated = true;
            break;
        }
        // Incident edges of px that stay inside the neighbourhood and are new.
        let incident: Vec<Feature> = graph
            .base_neighbors(px)
            .iter()
            .copied()
            .filter(|&py| neighborhood.contains(py))
            .map(|py| {
                let (a, b) = if px < py { (px, py) } else { (py, px) };
                Feature::Edge(a, b)
            })
            .filter(|f| match f {
                Feature::Edge(a, b) => !impactful_set.contains(&(a.0, b.0)),
                _ => false,
            })
            .collect();
        if incident.is_empty() {
            continue;
        }
        let model = CachingModel::new(FeatureMaskModel::new(
            task, graph, query, &incident, cfg, cache,
        ));
        let sampled = ShapExplainer::new(cfg.shap).explain_sampled(&model, budget.remaining());
        let shap = sampled.values;
        if sampled.truncated {
            expansion_truncated = true;
        }
        let inner = model.into_inner();
        budget.charge(inner.probes_issued());
        total_probes += inner.probes_issued();
        total_cache_hits += inner.cache_hits();
        total_incremental += inner.incremental_rescores();
        total_full += inner.full_rescores();
        for (i, &feature) in incident.iter().enumerate() {
            if shap.value(i).abs() >= cfg.tau {
                if let Feature::Edge(a, b) = feature {
                    if impactful_set.insert((a.0, b.0)) {
                        impactful.push(feature);
                        // Enqueue the endpoint that is not the one we expanded.
                        let other = if a == px { b } else { a };
                        if !expanded.contains(&other) {
                            queue.push_back(other);
                        }
                    }
                }
            }
        }
    }

    // Final pass: SHAP values over exactly the impactful edge set, spending
    // whatever budget the expansion left over.
    let final_cfg = cfg.clone().with_probe_budget(match budget.remaining() {
        Some(remaining) => ProbeBudget::bounded(remaining),
        None => ProbeBudget::UNBOUNDED,
    });
    let final_explanation = explain_features(task, graph, query, &final_cfg, impactful, cache);
    let probes = total_probes + final_explanation.probes();
    let completeness = match (
        expansion_truncated || final_explanation.completeness().is_budgeted(),
        cfg.probe_budget.limit(),
    ) {
        (true, Some(limit)) => Completeness::Budgeted {
            spent: probes,
            budget: limit,
        },
        _ => Completeness::Exhaustive,
    };
    let half_widths = final_explanation.half_widths().to_vec();
    FactualExplanation::with_cache_hits(
        final_explanation.features().to_vec(),
        final_explanation.shap_values().clone(),
        probes,
        total_cache_hits + final_explanation.cache_hits(),
    )
    .with_rescores(
        total_incremental + final_explanation.incremental_rescores(),
        total_full + final_explanation.full_rescores(),
    )
    .with_sampling(half_widths, completeness)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OutputMode;
    use crate::tasks::ExpertRelevanceTask;
    use exes_expert_search::{PropagationRanker, TfIdfRanker};
    use exes_graph::CollabGraphBuilder;

    /// Ada(db) — Expert(db, ml) and Ada — Irrelevant(vision); Competitor(db) —
    /// Dee(db) form a rival pair without access to "ml". Ada's place in the
    /// top-2 for "db ml" hinges on her collaboration with Expert.
    fn graph() -> CollabGraph {
        let mut b = CollabGraphBuilder::new();
        let ada = b.add_person("Ada", ["db"]);
        let expert = b.add_person("Expert", ["db", "ml"]);
        let irrelevant = b.add_person("Irrelevant", ["vision"]);
        let competitor = b.add_person("Competitor", ["db"]);
        let dee = b.add_person("Dee", ["db"]);
        b.add_edge(ada, expert);
        b.add_edge(ada, irrelevant);
        b.add_edge(competitor, dee);
        b.build()
    }

    fn cfg() -> ExesConfig {
        ExesConfig::fast()
            .with_k(1)
            .with_output_mode(OutputMode::SmoothRank)
            .with_tau(0.01)
    }

    #[test]
    fn exhaustive_space_is_every_edge() {
        let g = graph();
        assert_eq!(collaboration_features_exhaustive(&g).len(), 3);
    }

    #[test]
    fn helpful_collaboration_scores_above_irrelevant_one() {
        let g = graph();
        let q = Query::parse("db ml", g.vocab()).unwrap();
        let ranker = PropagationRanker::default();
        let task = ExpertRelevanceTask::new(&ranker, PersonId(0), 2);
        let cfg = cfg().with_k(2);
        let exp = explain_collaborations(&task, &g, &q, &cfg, true, None);
        let to_expert = exp.value_of(&Feature::Edge(PersonId(0), PersonId(1)));
        let to_irrelevant = exp.value_of(&Feature::Edge(PersonId(0), PersonId(2)));
        match (to_expert, to_irrelevant) {
            (Some(e), Some(i)) => assert!(e > i, "expert edge {e} vs irrelevant edge {i}"),
            (Some(e), None) => assert!(e > 0.0),
            other => panic!("expert edge missing from explanation: {other:?}"),
        }
    }

    #[test]
    fn pruned_explanation_only_contains_neighborhood_edges() {
        let g = graph();
        let q = Query::parse("db ml", g.vocab()).unwrap();
        let ranker = PropagationRanker::default();
        let task = ExpertRelevanceTask::new(&ranker, PersonId(0), 2);
        let exp = explain_collaborations(&task, &g, &q, &cfg().with_k(2), true, None);
        assert!(exp.features().iter().all(|f| f.involves(PersonId(0))
            || f.involves(PersonId(1))
            || f.involves(PersonId(2))));
    }

    #[test]
    fn network_blind_ranker_yields_no_impactful_edges() {
        let g = graph();
        let q = Query::parse("db ml", g.vocab()).unwrap();
        // TF-IDF ignores collaborations entirely, so every edge has zero impact.
        let ranker = TfIdfRanker::default();
        let task = ExpertRelevanceTask::new(&ranker, PersonId(0), 3);
        let exp = explain_collaborations(&task, &g, &q, &cfg().with_k(3), true, None);
        assert_eq!(exp.size(), 0);
    }

    #[test]
    fn larger_tau_never_enlarges_the_explanation() {
        let g = graph();
        let q = Query::parse("db ml", g.vocab()).unwrap();
        let ranker = PropagationRanker::default();
        let task = ExpertRelevanceTask::new(&ranker, PersonId(0), 2);
        let small_tau =
            explain_collaborations(&task, &g, &q, &cfg().with_k(2).with_tau(0.01), true, None);
        let large_tau =
            explain_collaborations(&task, &g, &q, &cfg().with_k(2).with_tau(0.3), true, None);
        assert!(large_tau.num_features() <= small_tau.num_features());
    }
}
