//! Factual explanations: SHAP attributions over input features (Section 3.2).

mod collaboration;
mod query;
mod skill;

pub use collaboration::{collaboration_features_exhaustive, explain_collaborations};
pub use query::explain_query_terms;
pub use skill::{explain_skills, skill_features_exhaustive, skill_features_pruned};

use crate::config::{ExesConfig, OutputMode};
use crate::features::Feature;
use crate::probe::{Completeness, ProbeCache};
use crate::tasks::ErasedDecisionModel;
use exes_graph::{CollabGraph, PerturbationSet, Query};
use exes_shap::{MaskedModel, ShapValues};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A factual explanation: one SHAP value per scored feature.
#[derive(Debug, Clone)]
pub struct FactualExplanation {
    features: Vec<Feature>,
    shap: ShapValues,
    /// Number of probes issued to the underlying system while computing it.
    probes: usize,
    /// Coalition probes answered by an attached [`ProbeCache`].
    cache_hits: usize,
    /// Coalition probes answered through the incremental rescoring path.
    incremental_rescores: usize,
    /// Coalition probes that fell back to a full re-rank.
    full_rescores: usize,
    /// Per-feature 95% confidence half-widths (all zero for deterministic
    /// estimators; parallel to `features`).
    half_widths: Vec<f64>,
    /// Whether the estimator ran to its natural end or was cut short by the
    /// configured probe budget.
    completeness: Completeness,
}

impl FactualExplanation {
    pub(crate) fn with_cache_hits(
        features: Vec<Feature>,
        shap: ShapValues,
        probes: usize,
        cache_hits: usize,
    ) -> Self {
        debug_assert_eq!(features.len(), shap.len());
        let half_widths = vec![0.0; features.len()];
        FactualExplanation {
            features,
            shap,
            probes,
            cache_hits,
            incremental_rescores: 0,
            full_rescores: 0,
            half_widths,
            completeness: Completeness::Exhaustive,
        }
    }

    /// Records the incremental-vs-full rescoring split of the coalition
    /// probes behind this explanation.
    pub(crate) fn with_rescores(mut self, incremental: usize, full: usize) -> Self {
        self.incremental_rescores = incremental;
        self.full_rescores = full;
        self
    }

    /// Records the sampling uncertainty and budget outcome of the estimator
    /// run behind this explanation.
    pub(crate) fn with_sampling(
        mut self,
        half_widths: Vec<f64>,
        completeness: Completeness,
    ) -> Self {
        debug_assert_eq!(half_widths.len(), self.features.len());
        self.half_widths = half_widths;
        self.completeness = completeness;
        self
    }

    /// The scored features, in scoring order.
    pub fn features(&self) -> &[Feature] {
        &self.features
    }

    /// The raw SHAP values (parallel to [`FactualExplanation::features`]).
    pub fn shap_values(&self) -> &ShapValues {
        &self.shap
    }

    /// Iterates over `(feature, shap value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Feature, f64)> + '_ {
        self.features
            .iter()
            .copied()
            .zip(self.shap.values().iter().copied())
    }

    /// The SHAP value of a specific feature, if it was scored.
    pub fn value_of(&self, feature: &Feature) -> Option<f64> {
        self.features
            .iter()
            .position(|f| f == feature)
            .map(|i| self.shap.value(i))
    }

    /// The paper's "explanation size": number of features with non-zero SHAP value.
    pub fn size(&self) -> usize {
        self.shap.explanation_size()
    }

    /// Number of scored features (the SHAP feature space after pruning).
    pub fn num_features(&self) -> usize {
        self.features.len()
    }

    /// Number of black-box probes issued while computing the explanation.
    /// With a warm [`ProbeCache`] attached this drops, while the SHAP values
    /// stay identical.
    pub fn probes(&self) -> usize {
        self.probes
    }

    /// Number of coalition probes answered by the attached [`ProbeCache`]
    /// (0 when the explanation was computed uncached).
    pub fn cache_hits(&self) -> usize {
        self.cache_hits
    }

    /// Coalition probes answered through the incremental (delta-localized)
    /// rescoring path of a per-context baseline plan.
    pub fn incremental_rescores(&self) -> usize {
        self.incremental_rescores
    }

    /// Coalition probes that performed a full re-rank (no plan, or a delta
    /// outside its localization guarantees).
    pub fn full_rescores(&self) -> usize {
        self.full_rescores
    }

    /// Per-feature 95% confidence half-widths, parallel to
    /// [`FactualExplanation::features`]. All zero when the attribution came
    /// from a deterministic estimator (exact enumeration, kernel regression).
    pub fn half_widths(&self) -> &[f64] {
        &self.half_widths
    }

    /// Whether the estimator ran to its natural end or was truncated by the
    /// configured [`crate::probe::ProbeBudget`]. A `Budgeted` explanation is
    /// an honest partial estimate — its `half_widths` say how partial.
    pub fn completeness(&self) -> Completeness {
        self.completeness
    }

    /// The `k` most influential features by |SHAP|, most influential first.
    pub fn top_k(&self, k: usize) -> Vec<(Feature, f64)> {
        self.shap
            .top_k(k)
            .into_iter()
            .map(|i| (self.features[i], self.shap.value(i)))
            .collect()
    }

    /// Features with positive SHAP value (supporting the positive decision),
    /// sorted by descending value.
    pub fn supporting(&self) -> Vec<(Feature, f64)> {
        let mut v: Vec<(Feature, f64)> = self.iter().filter(|&(_, s)| s > 0.0).collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1));
        v
    }

    /// Features with negative SHAP value (working against the positive
    /// decision), sorted by ascending value (most harmful first).
    pub fn opposing(&self) -> Vec<(Feature, f64)> {
        let mut v: Vec<(Feature, f64)> = self.iter().filter(|&(_, s)| s < 0.0).collect();
        v.sort_by(|a, b| a.1.total_cmp(&b.1));
        v
    }

    /// A plain-text force-plot-like rendering (used by the examples to mirror
    /// the paper's Figures 3 and 10).
    pub fn render(&self, graph: &CollabGraph, max_rows: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "base value = {:.3}, f(input) = {:.3}\n",
            self.shap.base_value(),
            self.shap.full_value()
        ));
        for (feature, value) in self.top_k(max_rows) {
            let bar_len = (value.abs() * 40.0).round() as usize;
            let bar: String =
                std::iter::repeat_n(if value >= 0.0 { '+' } else { '-' }, bar_len.clamp(1, 40))
                    .collect();
            out.push_str(&format!(
                "{value:>8.3}  {bar:<40}  {}\n",
                feature.describe(graph)
            ));
        }
        out
    }
}

/// The masked model handed to the Shapley engine: masking a feature out applies
/// its removal perturbation to the graph/query before probing the black box.
/// Batched coalition evaluations are routed through the parallel
/// [`crate::probe::ProbeBatch`] engine, so exact-SHAP enumeration and
/// KernelSHAP sampling use every core just like counterfactual search — and,
/// when a [`ProbeCache`] is attached, share its memoised probes with the
/// counterfactual searches of the same (graph, query, subject).
pub(crate) struct FeatureMaskModel<'a, D: ?Sized> {
    task: &'a D,
    graph: &'a CollabGraph,
    query: &'a Query,
    features: &'a [Feature],
    output_mode: OutputMode,
    k: usize,
    parallel: bool,
    cache: Option<&'a ProbeCache>,
    /// Shared baseline plan for the incremental coalition-rescoring path
    /// (built once per model, memoised per context through the cache).
    plan: Option<std::sync::Arc<crate::probe::BaselinePlan>>,
    /// Probes that actually reached the black box through this model.
    probed: AtomicUsize,
    /// Probe requests answered by the attached cache.
    cache_hits: AtomicUsize,
    /// Black-box probes answered through the incremental rescoring path.
    incremental: AtomicUsize,
    /// Black-box probes that fell back to a full re-rank.
    full: AtomicUsize,
}

impl<'a, D: ErasedDecisionModel + ?Sized> FeatureMaskModel<'a, D> {
    pub(crate) fn new(
        task: &'a D,
        graph: &'a CollabGraph,
        query: &'a Query,
        features: &'a [Feature],
        cfg: &ExesConfig,
        cache: Option<&'a ProbeCache>,
    ) -> Self {
        FeatureMaskModel {
            task,
            graph,
            query,
            features,
            output_mode: cfg.output_mode,
            // SmoothRank centres its sigmoid on the *model's* decision
            // boundary: a task probing a top-k cutoff reports it through
            // `ErasedDecisionModel::cutoff`, so a model registered at its own
            // k is attributed against that k, not the explainer-wide default
            // (models without a rank cutoff, e.g. team membership, keep the
            // configured smoothing anchor).
            k: task.cutoff().unwrap_or(cfg.k),
            parallel: cfg.parallel_probes,
            cache,
            plan: crate::probe::acquire_plan(task, graph, query, cache).0,
            probed: AtomicUsize::new(0),
            cache_hits: AtomicUsize::new(0),
            incremental: AtomicUsize::new(0),
            full: AtomicUsize::new(0),
        }
    }

    /// Probes that actually reached the black box (cache misses, or every
    /// evaluation when no cache is attached).
    pub(crate) fn probes_issued(&self) -> usize {
        self.probed.load(Ordering::Relaxed)
    }

    /// Probe requests answered by the attached [`ProbeCache`].
    pub(crate) fn cache_hits(&self) -> usize {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Black-box probes answered through the incremental rescoring path.
    pub(crate) fn incremental_rescores(&self) -> usize {
        self.incremental.load(Ordering::Relaxed)
    }

    /// Black-box probes that fell back to a full re-rank.
    pub(crate) fn full_rescores(&self) -> usize {
        self.full.load(Ordering::Relaxed)
    }

    /// The perturbation set that realises a mask (absent features removed).
    fn delta_for(&self, mask: &[bool]) -> PerturbationSet {
        let mut delta = PerturbationSet::new();
        for (i, &present) in mask.iter().enumerate() {
            if !present {
                delta.push(self.features[i].removal());
            }
        }
        delta
    }

    /// Scalarises a probe according to the configured output mode.
    fn scalarise(&self, probe: crate::tasks::Probe) -> f64 {
        match self.output_mode {
            OutputMode::Binary => {
                if probe.positive {
                    1.0
                } else {
                    0.0
                }
            }
            OutputMode::SmoothRank => {
                let temperature = (self.k as f64 / 4.0).max(0.5);
                let margin = self.k as f64 + 0.5 - probe.signal;
                1.0 / (1.0 + (-margin / temperature).exp())
            }
        }
    }
}

impl<D: ErasedDecisionModel + ?Sized> MaskedModel for FeatureMaskModel<'_, D> {
    fn num_features(&self) -> usize {
        self.features.len()
    }

    fn evaluate(&self, mask: &[bool]) -> f64 {
        self.evaluate_batch(std::slice::from_ref(&mask.to_vec()))[0]
    }

    fn evaluate_batch(&self, masks: &[Vec<bool>]) -> Vec<f64> {
        let deltas: Vec<PerturbationSet> = masks.iter().map(|m| self.delta_for(m)).collect();
        let engine =
            crate::probe::ProbeBatch::new(self.task, self.graph, self.query, self.parallel)
                .with_cache_opt(self.cache)
                .with_plan_opt(self.plan.as_deref());
        let (probes, stats) = engine.score_counted(&deltas);
        self.probed.fetch_add(stats.probed, Ordering::Relaxed);
        self.cache_hits
            .fetch_add(stats.cache_hits, Ordering::Relaxed);
        self.incremental
            .fetch_add(stats.incremental_rescores, Ordering::Relaxed);
        self.full.fetch_add(stats.full_rescores, Ordering::Relaxed);
        probes
            .into_iter()
            .map(|probe| self.scalarise(probe))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::ExpertRelevanceTask;
    use exes_expert_search::TfIdfRanker;
    use exes_graph::{CollabGraphBuilder, PersonId};
    use exes_shap::ShapValues;

    fn graph() -> CollabGraph {
        let mut b = CollabGraphBuilder::new();
        let a = b.add_person("Ada", ["db", "ml"]);
        let c = b.add_person("Bob", ["db"]);
        let d = b.add_person("Cig", ["vision"]);
        b.add_edge(a, c);
        b.add_edge(c, d);
        b.build()
    }

    #[test]
    fn explanation_accessors_and_ordering() {
        let g = graph();
        let db = g.vocab().id("db").unwrap();
        let ml = g.vocab().id("ml").unwrap();
        let features = vec![
            Feature::Skill(PersonId(0), db),
            Feature::Skill(PersonId(0), ml),
            Feature::QueryTerm(db),
        ];
        let shap = ShapValues::new(vec![0.4, -0.1, 0.0], 0.0, 0.3);
        let exp = FactualExplanation::with_cache_hits(features.clone(), shap, 12, 3);
        assert_eq!(exp.num_features(), 3);
        assert_eq!(exp.size(), 2);
        assert_eq!(exp.probes(), 12);
        assert_eq!(exp.value_of(&features[0]), Some(0.4));
        assert_eq!(exp.value_of(&Feature::QueryTerm(ml)), None);
        assert_eq!(exp.top_k(1)[0].0, features[0]);
        assert_eq!(exp.supporting().len(), 1);
        assert_eq!(exp.opposing().len(), 1);
        let text = exp.render(&g, 3);
        assert!(text.contains("Ada's skill 'db'"));
    }

    #[test]
    fn mask_model_binary_output_tracks_the_decision() {
        let g = graph();
        let q = Query::parse("db ml", g.vocab()).unwrap();
        let ranker = TfIdfRanker::default();
        let task = ExpertRelevanceTask::new(&ranker, PersonId(0), 1);
        let db = g.vocab().id("db").unwrap();
        let ml = g.vocab().id("ml").unwrap();
        let features = vec![
            Feature::Skill(PersonId(0), db),
            Feature::Skill(PersonId(0), ml),
        ];
        let cfg = ExesConfig::fast().with_k(1);
        let model = FeatureMaskModel::new(&task, &g, &q, &features, &cfg, None);
        assert_eq!(model.num_features(), 2);
        assert_eq!(model.evaluate(&[true, true]), 1.0);
        // Remove both of Ada's matching skills: Bob overtakes her for k = 1.
        assert_eq!(model.evaluate(&[false, false]), 0.0);
    }

    #[test]
    fn smooth_output_is_anchored_at_the_tasks_own_cutoff() {
        let g = graph();
        let q = Query::parse("db ml", g.vocab()).unwrap();
        let ranker = TfIdfRanker::default();
        // Bob is ranked 2nd: selected under the task's k = 2, even though the
        // explainer-wide configuration says k = 1. The smooth scalarisation
        // must centre on the task's boundary (2.5), not the config's (1.5).
        let bob = PersonId(1);
        let task = ExpertRelevanceTask::new(&ranker, bob, 2);
        assert!(task.probe_graph(&g, &q).positive);
        let db = g.vocab().id("db").unwrap();
        let features = vec![Feature::Skill(bob, db)];
        let cfg = ExesConfig::fast()
            .with_k(1)
            .with_output_mode(OutputMode::SmoothRank);
        let model = FeatureMaskModel::new(&task, &g, &q, &features, &cfg, None);
        let full = model.evaluate(&[true]);
        assert!(
            full > 0.5,
            "a selected subject must scalarise above the boundary, got {full}"
        );
    }

    #[test]
    fn mask_model_smooth_output_is_monotone_in_rank() {
        let g = graph();
        let q = Query::parse("db ml", g.vocab()).unwrap();
        let ranker = TfIdfRanker::default();
        let task = ExpertRelevanceTask::new(&ranker, PersonId(0), 1);
        let db = g.vocab().id("db").unwrap();
        let ml = g.vocab().id("ml").unwrap();
        let features = vec![
            Feature::Skill(PersonId(0), db),
            Feature::Skill(PersonId(0), ml),
        ];
        let cfg = ExesConfig::fast()
            .with_k(1)
            .with_output_mode(OutputMode::SmoothRank);
        let model = FeatureMaskModel::new(&task, &g, &q, &features, &cfg, None);
        let full = model.evaluate(&[true, true]);
        let none = model.evaluate(&[false, false]);
        assert!(full > 0.5);
        assert!(none < full);
    }
}
