//! Query-term factual explanations.
//!
//! The feature space is just the query keywords, so no pruning applies (Table 4:
//! the complexity is the same for ExES and exhaustive search) and the exact
//! Shapley enumeration is always affordable (`|q| ≤ 5` in the evaluation).

use super::{skill::explain_features, FactualExplanation};
use crate::config::ExesConfig;
use crate::features::Feature;
use crate::probe::ProbeCache;
use crate::tasks::ErasedDecisionModel;
use exes_graph::{CollabGraph, Query};

/// Computes SHAP values for every keyword of the query. An optional
/// [`ProbeCache`] memoises coalition probes across repeated explanations.
pub fn explain_query_terms<D: ErasedDecisionModel + ?Sized>(
    task: &D,
    graph: &CollabGraph,
    query: &Query,
    cfg: &ExesConfig,
    cache: Option<&ProbeCache>,
) -> FactualExplanation {
    let features: Vec<Feature> = query
        .skills()
        .iter()
        .map(|&s| Feature::QueryTerm(s))
        .collect();
    explain_features(task, graph, query, cfg, features, cache)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OutputMode;
    use crate::tasks::ExpertRelevanceTask;
    use exes_expert_search::TfIdfRanker;
    use exes_graph::{CollabGraphBuilder, PersonId};

    fn graph() -> CollabGraph {
        let mut b = CollabGraphBuilder::new();
        b.add_person("Ada", ["db", "ml"]);
        b.add_person("Bob", ["db", "vision"]);
        b.add_person("Cig", ["vision"]);
        b.build()
    }

    #[test]
    fn feature_space_is_exactly_the_query() {
        let g = graph();
        let q = Query::parse("db ml vision", g.vocab()).unwrap();
        let ranker = TfIdfRanker::default();
        let task = ExpertRelevanceTask::new(&ranker, PersonId(0), 1);
        let exp = explain_query_terms(&task, &g, &q, &ExesConfig::fast().with_k(1), None);
        assert_eq!(exp.num_features(), 3);
        assert!(exp
            .features()
            .iter()
            .all(|f| matches!(f, Feature::QueryTerm(_))));
    }

    #[test]
    fn matching_terms_support_and_foreign_terms_oppose() {
        let g = graph();
        let q = Query::parse("ml vision", g.vocab()).unwrap();
        let ranker = TfIdfRanker::default();
        // Explain Ada (holds ml, lacks vision) with k = 1: "ml" keeps her on top,
        // "vision" pulls Bob and Cig up.
        let task = ExpertRelevanceTask::new(&ranker, PersonId(0), 1);
        let cfg = ExesConfig::fast()
            .with_k(1)
            .with_output_mode(OutputMode::SmoothRank);
        let exp = explain_query_terms(&task, &g, &q, &cfg, None);
        let ml = g.vocab().id("ml").unwrap();
        let vision = g.vocab().id("vision").unwrap();
        let v_ml = exp.value_of(&Feature::QueryTerm(ml)).unwrap();
        let v_vision = exp.value_of(&Feature::QueryTerm(vision)).unwrap();
        assert!(
            v_ml > v_vision,
            "ml ({v_ml}) should outrank vision ({v_vision})"
        );
    }

    #[test]
    fn single_term_query_gets_all_attribution() {
        let g = graph();
        let q = Query::parse("db", g.vocab()).unwrap();
        let ranker = TfIdfRanker::default();
        let task = ExpertRelevanceTask::new(&ranker, PersonId(0), 2);
        let exp = explain_query_terms(&task, &g, &q, &ExesConfig::fast().with_k(2), None);
        assert_eq!(exp.num_features(), 1);
        // Efficiency: the single feature carries the full base-to-full gap.
        assert!(exp.shap_values().efficiency_gap() < 1e-9);
    }
}
