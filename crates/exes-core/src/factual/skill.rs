//! Skill factual explanations (Pruning Strategy 1: network locality).

use super::{FactualExplanation, FeatureMaskModel};
use crate::config::ExesConfig;
use crate::features::Feature;
use crate::probe::ProbeCache;
use crate::tasks::ErasedDecisionModel;
use exes_graph::{CollabGraph, GraphView, Neighborhood, Query};
use exes_shap::{CachingModel, ShapExplainer};

/// The pruned skill feature space `S_N(p_i)`: every `(person, skill)` pair held
/// by someone within `radius` hops of the subject.
pub fn skill_features_pruned(
    graph: &CollabGraph,
    subject: exes_graph::PersonId,
    radius: usize,
) -> Vec<Feature> {
    let neighborhood = Neighborhood::compute(graph, subject, radius);
    neighborhood
        .skills(graph)
        .pairs()
        .iter()
        .map(|&(p, s)| Feature::Skill(p, s))
        .collect()
}

/// The exhaustive skill feature space: every `(person, skill)` pair in the whole
/// network (`Σᵢ |Sᵢ|`, worst case `|P| × |S|`). Used by the no-pruning baseline.
pub fn skill_features_exhaustive(graph: &CollabGraph) -> Vec<Feature> {
    graph
        .people()
        .flat_map(|p| {
            graph
                .person_skills(p)
                .iter()
                .map(move |&s| Feature::Skill(p, s))
        })
        .collect()
}

/// Computes a skill factual explanation for the task's subject.
///
/// With `pruned == true` the feature space is restricted to the subject's
/// radius-`d` neighbourhood (the paper's Pruning Strategy 1); with `false` every
/// skill assignment in the network is scored, which is the exhaustive baseline
/// of Tables 7/9/11/13. An optional [`ProbeCache`] memoises coalition probes
/// across repeated explanations of the same (graph, query, subject); SHAP
/// values are identical either way.
pub fn explain_skills<D: ErasedDecisionModel + ?Sized>(
    task: &D,
    graph: &CollabGraph,
    query: &Query,
    cfg: &ExesConfig,
    pruned: bool,
    cache: Option<&ProbeCache>,
) -> FactualExplanation {
    let features = if pruned {
        skill_features_pruned(graph, task.subject_id(), cfg.skill_radius)
    } else {
        skill_features_exhaustive(graph)
    };
    explain_features(task, graph, query, cfg, features, cache)
}

/// Shared driver: score an arbitrary feature list with the configured Shapley
/// estimator. A per-explanation coalition-dedup wrapper sits in front of the
/// mask model regardless, so `probes` counts *distinct* coalitions — and with
/// a [`ProbeCache`] attached, only the coalitions the cache could not answer.
///
/// `cfg.probe_budget` caps the estimator's *model evaluations*; distinct
/// probes never exceed evaluations, so the budget bounds black-box probes
/// too. A truncated sample is reported as
/// [`Completeness::Budgeted`](crate::probe::Completeness) with honest
/// (wider) confidence half-widths.
pub(crate) fn explain_features<D: ErasedDecisionModel + ?Sized>(
    task: &D,
    graph: &CollabGraph,
    query: &Query,
    cfg: &ExesConfig,
    features: Vec<Feature>,
    cache: Option<&ProbeCache>,
) -> FactualExplanation {
    let model = CachingModel::new(FeatureMaskModel::new(
        task, graph, query, &features, cfg, cache,
    ));
    let sampled = ShapExplainer::new(cfg.shap).explain_sampled(&model, cfg.probe_budget.limit());
    let (probes, cache_hits, incremental, full) = {
        let inner = model.into_inner();
        (
            inner.probes_issued(),
            inner.cache_hits(),
            inner.incremental_rescores(),
            inner.full_rescores(),
        )
    };
    let completeness = match (sampled.truncated, cfg.probe_budget.limit()) {
        (true, Some(budget)) => crate::probe::Completeness::Budgeted {
            spent: probes,
            budget,
        },
        _ => crate::probe::Completeness::Exhaustive,
    };
    FactualExplanation::with_cache_hits(features, sampled.values, probes, cache_hits)
        .with_rescores(incremental, full)
        .with_sampling(sampled.half_widths, completeness)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OutputMode;
    use crate::tasks::ExpertRelevanceTask;
    use exes_expert_search::{PropagationRanker, TfIdfRanker};
    use exes_graph::{CollabGraphBuilder, PersonId};

    /// Ada(db, ml) — Bob(db) — Cig(vision); Dot(db, ml) is disconnected and
    /// competes with Ada for the top spot.
    fn graph() -> CollabGraph {
        let mut b = CollabGraphBuilder::new();
        let a = b.add_person("Ada", ["db", "ml"]);
        let bo = b.add_person("Bob", ["db"]);
        let c = b.add_person("Cig", ["vision"]);
        let _d = b.add_person("Dot", ["db", "ml"]);
        b.add_edge(a, bo);
        b.add_edge(bo, c);
        b.build()
    }

    #[test]
    fn pruned_feature_space_is_local() {
        let g = graph();
        let features = skill_features_pruned(&g, PersonId(0), 1);
        // Ada's 2 skills + Bob's 1 skill; Cig and Dot are outside radius 1.
        assert_eq!(features.len(), 3);
        assert!(features.iter().all(|f| match f {
            Feature::Skill(p, _) => p.index() <= 1,
            _ => false,
        }));
    }

    #[test]
    fn exhaustive_feature_space_covers_everyone() {
        let g = graph();
        let features = skill_features_exhaustive(&g);
        assert_eq!(features.len(), 6);
    }

    #[test]
    fn pruned_space_is_a_subset_of_exhaustive() {
        let g = graph();
        let pruned = skill_features_pruned(&g, PersonId(0), 1);
        let all = skill_features_exhaustive(&g);
        assert!(pruned.iter().all(|f| all.contains(f)));
    }

    #[test]
    fn own_matching_skills_get_positive_attribution() {
        let g = graph();
        let q = Query::parse("db ml", g.vocab()).unwrap();
        let ranker = TfIdfRanker::default();
        let task = ExpertRelevanceTask::new(&ranker, PersonId(0), 1);
        let cfg = ExesConfig::fast()
            .with_k(1)
            .with_output_mode(OutputMode::SmoothRank);
        let exp = explain_skills(&task, &g, &q, &cfg, true, None);
        let db = g.vocab().id("db").unwrap();
        let ml = g.vocab().id("ml").unwrap();
        assert!(exp.value_of(&Feature::Skill(PersonId(0), db)).unwrap() > 0.0);
        assert!(exp.value_of(&Feature::Skill(PersonId(0), ml)).unwrap() > 0.0);
        assert!(exp.probes() > 0);
    }

    #[test]
    fn neighbors_matching_skills_matter_for_propagation_rankers() {
        // Ada(db, ml) — Bob(db); Competitor(db) — Dee(db). Bob's place in the
        // top-2 depends on Ada's "ml": without it he ties the competitors and
        // loses on the id tie-break.
        let mut b = CollabGraphBuilder::new();
        let ada = b.add_person("Ada", ["db", "ml"]);
        let comp = b.add_person("Competitor", ["db"]);
        let dee = b.add_person("Dee", ["db"]);
        let bob = b.add_person("Bob", ["db"]);
        b.add_edge(ada, bob);
        b.add_edge(comp, dee);
        let g = b.build();
        let q = Query::parse("db ml", g.vocab()).unwrap();
        let ranker = PropagationRanker::default();
        let task = ExpertRelevanceTask::new(&ranker, bob, 2);
        let cfg = ExesConfig::fast()
            .with_k(2)
            .with_output_mode(OutputMode::SmoothRank)
            .with_skill_radius(1);
        let exp = explain_skills(&task, &g, &q, &cfg, true, None);
        let ml = g.vocab().id("ml").unwrap();
        let ada_ml = exp.value_of(&Feature::Skill(ada, ml)).unwrap();
        assert!(
            ada_ml > 0.0,
            "Ada's 'ml' should support Bob's relevance under propagation, got {ada_ml}"
        );
    }

    #[test]
    fn probe_budget_truncates_factual_sampling_honestly() {
        let g = graph();
        let q = Query::parse("db ml", g.vocab()).unwrap();
        let ranker = TfIdfRanker::default();
        let task = ExpertRelevanceTask::new(&ranker, PersonId(0), 1);
        let base = ExesConfig::fast()
            .with_k(1)
            .with_output_mode(OutputMode::SmoothRank);
        let unbounded = explain_skills(&task, &g, &q, &base, false, None);
        assert_eq!(
            unbounded.completeness(),
            crate::probe::Completeness::Exhaustive
        );
        assert_eq!(unbounded.half_widths().len(), unbounded.num_features());
        // 6 features → exact enumeration needs 64 evaluations; 10 don't fit,
        // so the anytime sampler takes over and reports the truncation.
        let budget = 10;
        let cfg = base.with_probe_budget(crate::probe::ProbeBudget::bounded(budget));
        let exp = explain_skills(&task, &g, &q, &cfg, false, None);
        assert!(exp.probes() <= budget, "spent {} > {budget}", exp.probes());
        match exp.completeness() {
            crate::probe::Completeness::Budgeted { spent, budget: b } => {
                assert_eq!(spent, exp.probes());
                assert_eq!(b, budget);
            }
            crate::probe::Completeness::Exhaustive => {
                panic!("a {budget}-evaluation budget must truncate 64 exact coalitions")
            }
        }
        assert_eq!(exp.half_widths().len(), exp.num_features());
    }

    #[test]
    fn binary_mode_explanation_is_no_larger_than_feature_space() {
        let g = graph();
        let q = Query::parse("db", g.vocab()).unwrap();
        let ranker = TfIdfRanker::default();
        let task = ExpertRelevanceTask::new(&ranker, PersonId(0), 1);
        let cfg = ExesConfig::fast().with_k(1);
        let exp = explain_skills(&task, &g, &q, &cfg, true, None);
        assert!(exp.size() <= exp.num_features());
    }

    #[test]
    fn exhaustive_explanation_scores_remote_features_too() {
        let g = graph();
        let q = Query::parse("db ml", g.vocab()).unwrap();
        let ranker = TfIdfRanker::default();
        let task = ExpertRelevanceTask::new(&ranker, PersonId(0), 1);
        let cfg = ExesConfig::fast()
            .with_k(1)
            .with_output_mode(OutputMode::SmoothRank);
        let exp = explain_skills(&task, &g, &q, &cfg, false, None);
        let ml = g.vocab().id("ml").unwrap();
        // Dot's competing "ml" skill is only visible to the exhaustive variant
        // and should *oppose* Ada's relevance (Dot competes for the top spot).
        let dot_ml = exp.value_of(&Feature::Skill(PersonId(3), ml)).unwrap();
        assert!(
            dot_ml <= 0.0,
            "competitor skill should not support Ada, got {dot_ml}"
        );
    }
}
