//! The explanation feature space: query terms, node skills, and collaborations.

use exes_graph::{CollabGraph, PersonId, Perturbation, SkillId};

/// A feature of the (query, collaboration network) input whose influence on the
/// decision can be scored factually or perturbed counterfactually.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Feature {
    /// A keyword of the query.
    QueryTerm(SkillId),
    /// A skill held by a person in the network.
    Skill(PersonId, SkillId),
    /// A collaboration edge.
    Edge(PersonId, PersonId),
}

impl Feature {
    /// The perturbation that *removes* this feature from the input (what masking
    /// the feature out means for factual SHAP values).
    pub fn removal(&self) -> Perturbation {
        match *self {
            Feature::QueryTerm(skill) => Perturbation::RemoveQueryTerm { skill },
            Feature::Skill(person, skill) => Perturbation::RemoveSkill { person, skill },
            Feature::Edge(a, b) => Perturbation::RemoveEdge { a, b },
        }
    }

    /// The perturbation that *adds* this feature to the input.
    pub fn addition(&self) -> Perturbation {
        match *self {
            Feature::QueryTerm(skill) => Perturbation::AddQueryTerm { skill },
            Feature::Skill(person, skill) => Perturbation::AddSkill { person, skill },
            Feature::Edge(a, b) => Perturbation::AddEdge { a, b },
        }
    }

    /// Human-readable description against a concrete graph.
    pub fn describe(&self, graph: &CollabGraph) -> String {
        let vocab = graph.vocab();
        match *self {
            Feature::QueryTerm(skill) => {
                format!("query term '{}'", vocab.name(skill).unwrap_or("<unknown>"))
            }
            Feature::Skill(person, skill) => format!(
                "{}'s skill '{}'",
                graph.person_name(person),
                vocab.name(skill).unwrap_or("<unknown>")
            ),
            Feature::Edge(a, b) => format!(
                "collaboration {} — {}",
                graph.person_name(a),
                graph.person_name(b)
            ),
        }
    }

    /// True if this feature concerns the given person (as skill holder or edge
    /// endpoint). Query terms concern nobody.
    pub fn involves(&self, p: PersonId) -> bool {
        match *self {
            Feature::QueryTerm(_) => false,
            Feature::Skill(person, _) => person == p,
            Feature::Edge(a, b) => a == p || b == p,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exes_graph::CollabGraphBuilder;

    fn graph() -> CollabGraph {
        let mut b = CollabGraphBuilder::new();
        let a = b.add_person("Ada", ["db"]);
        let c = b.add_person("Bob", ["ml"]);
        b.add_edge(a, c);
        b.build()
    }

    #[test]
    fn removal_and_addition_are_inverses_in_kind() {
        let g = graph();
        let db = g.vocab().id("db").unwrap();
        let features = [
            Feature::QueryTerm(db),
            Feature::Skill(PersonId(0), db),
            Feature::Edge(PersonId(0), PersonId(1)),
        ];
        for f in features {
            let rem = f.removal();
            let add = f.addition();
            assert_ne!(rem, add);
            match f {
                Feature::QueryTerm(_) => {
                    assert!(rem.is_query_perturbation() && add.is_query_perturbation())
                }
                Feature::Skill(..) => {
                    assert!(rem.is_skill_perturbation() && add.is_skill_perturbation())
                }
                Feature::Edge(..) => {
                    assert!(rem.is_edge_perturbation() && add.is_edge_perturbation())
                }
            }
        }
    }

    #[test]
    fn describe_names_people_and_skills() {
        let g = graph();
        let db = g.vocab().id("db").unwrap();
        assert_eq!(Feature::QueryTerm(db).describe(&g), "query term 'db'");
        assert_eq!(
            Feature::Skill(PersonId(0), db).describe(&g),
            "Ada's skill 'db'"
        );
        assert_eq!(
            Feature::Edge(PersonId(0), PersonId(1)).describe(&g),
            "collaboration Ada — Bob"
        );
    }

    #[test]
    fn involvement_checks() {
        let db = SkillId(0);
        assert!(Feature::Skill(PersonId(2), db).involves(PersonId(2)));
        assert!(!Feature::Skill(PersonId(2), db).involves(PersonId(3)));
        assert!(Feature::Edge(PersonId(0), PersonId(1)).involves(PersonId(1)));
        assert!(!Feature::QueryTerm(db).involves(PersonId(0)));
    }
}
