//! # exes-core
//!
//! ExES: factual and counterfactual explanations for expert-search and
//! team-formation systems, with the paper's five pruning strategies.
//!
//! ## What gets explained
//!
//! ExES is *post-hoc* and *model-agnostic*: it never inspects the system being
//! explained, it only probes it with perturbed inputs through the
//! [`DecisionModel`] trait. Two ready-made tasks are provided:
//!
//! * [`ExpertRelevanceTask`] — "is person *p* ranked inside the top-*k* by this
//!   [`exes_expert_search::ExpertRanker`]?" (`C_{p_i}(q, G)` in the paper),
//! * [`TeamMembershipTask`] — "is person *p* on the team formed by this
//!   [`exes_team::TeamFormer`]?" (`M_{p_i}(q, G)`).
//!
//! ## Explanation families
//!
//! * **Factual** ([`factual`]): SHAP attributions over query terms, neighbourhood
//!   skills, and neighbourhood collaborations, using Pruning Strategies 1
//!   (network locality) and 2 (influential collaborations).
//! * **Counterfactual** ([`counterfactual`]): minimal perturbation sets that flip
//!   the decision, found by beam search (Pruning Strategy 3) over candidates
//!   proposed by a skill embedding (Pruning Strategy 4) and a link predictor
//!   (Pruning Strategy 5). Exhaustive baselines for both families live in
//!   [`counterfactual::exhaustive`] and behind `pruned: false` switches, and are
//!   what the evaluation tables compare against.
//!
//! The [`Exes`] facade bundles a configuration, an embedding and a link
//! predictor, and exposes one method per explanation type.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod counterfactual;
pub mod explainer;
pub mod factual;
pub mod features;
pub mod metrics;
pub mod model;
pub mod probe;
pub mod service;
pub mod tasks;

pub use config::{ExesConfig, OutputMode};
pub use counterfactual::{CounterfactualExplanation, CounterfactualKind};
pub use explainer::Exes;
pub use factual::FactualExplanation;
pub use features::Feature;
pub use metrics::{counterfactual_precision, factual_precision_at_k, PrecisionReport};
pub use model::{ModelFamilyKind, ModelId, ModelRegistry, ModelSpec, ModelSpecError, SeedPolicy};
pub use probe::{BaselinePlan, Completeness, CostEstimate, ProbeBatch, ProbeBudget, ProbeCache};
pub use service::{
    ExesService, ExesServiceBuilder, Explanation, ExplanationKind, ExplanationRequest,
    RequestError, ServiceReport,
};
pub use tasks::{
    DecisionModel, ErasedDecisionModel, ExpertRelevanceTask, Probe, TeamMembershipTask,
};
