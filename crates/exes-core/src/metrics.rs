//! Evaluation metrics from Section 4.1: Precision@k for factual explanations,
//! Precision / Precision* for counterfactual explanations.

use crate::counterfactual::CounterfactualResult;
use crate::factual::FactualExplanation;

/// Precision@k of a pruned factual explanation against the exhaustive baseline:
/// the fraction of the top-`k` features (by |SHAP|) found by ExES that also
/// receive a non-zero score in the exhaustive explanation.
///
/// Returns 1.0 when the pruned explanation has no non-zero features at all
/// (there is nothing to contradict), mirroring how empty cases are treated in
/// the paper's averages.
pub fn factual_precision_at_k(
    pruned: &FactualExplanation,
    exhaustive: &FactualExplanation,
    k: usize,
) -> f64 {
    let top: Vec<_> = pruned
        .top_k(k)
        .into_iter()
        .filter(|&(_, v)| v.abs() > 1e-12)
        .collect();
    if top.is_empty() {
        return 1.0;
    }
    let hits = top
        .iter()
        .filter(|(feature, _)| {
            exhaustive
                .value_of(feature)
                .map(|v| v.abs() > 1e-12)
                .unwrap_or(false)
        })
        .count();
    hits as f64 / top.len() as f64
}

/// Counterfactual precision summary for one explained individual.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionReport {
    /// Fraction of ExES explanations whose size equals the minimal size found by
    /// the exhaustive baseline.
    pub precision: f64,
    /// Fraction of ExES explanations within one perturbation of the minimal size.
    pub precision_star: f64,
    /// The minimal size used as the reference (from the baseline when available,
    /// otherwise from ExES itself).
    pub reference_minimal_size: usize,
}

/// Computes Precision and Precision* of ExES's counterfactuals against the
/// exhaustive baseline's minimal explanation size.
///
/// When the baseline found nothing (e.g. it timed out before reaching any
/// explanation), ExES's own minimal size is used as the reference — this is the
/// most conservative interpretation that still yields a defined number, and it
/// matches how incomparable cases are excluded from harm in the paper.
/// Returns `None` when ExES itself found nothing (no explanations to score).
pub fn counterfactual_precision(
    exes: &CounterfactualResult,
    baseline: &CounterfactualResult,
) -> Option<PrecisionReport> {
    let exes_min = exes.minimal_size()?;
    let reference = baseline.minimal_size().unwrap_or(exes_min);
    let total = exes.explanations.len() as f64;
    let exact = exes
        .explanations
        .iter()
        .filter(|e| e.size() == reference)
        .count() as f64;
    let near = exes
        .explanations
        .iter()
        .filter(|e| e.size() <= reference + 1)
        .count() as f64;
    Some(PrecisionReport {
        precision: exact / total,
        precision_star: near / total,
        reference_minimal_size: reference,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counterfactual::{CounterfactualExplanation, CounterfactualKind};
    use crate::features::Feature;
    use exes_graph::{Perturbation, PerturbationSet, SkillId};
    use exes_shap::ShapValues;

    fn factual(features: Vec<Feature>, values: Vec<f64>) -> FactualExplanation {
        let shap = ShapValues::new(values, 0.0, 1.0);
        FactualExplanation::with_cache_hits(features, shap, 0, 0)
    }

    fn cf(size: usize) -> CounterfactualExplanation {
        CounterfactualExplanation {
            perturbations: (0..size)
                .map(|i| Perturbation::AddQueryTerm {
                    skill: SkillId(i as u32),
                })
                .collect::<PerturbationSet>(),
            new_signal: 1.0,
            kind: CounterfactualKind::QueryAugmentation,
        }
    }

    fn result(sizes: &[usize]) -> CounterfactualResult {
        CounterfactualResult {
            explanations: sizes.iter().map(|&s| cf(s)).collect(),
            ..Default::default()
        }
    }

    #[test]
    fn factual_precision_counts_overlapping_nonzero_features() {
        let f = |i: u32| Feature::QueryTerm(SkillId(i));
        let pruned = factual(vec![f(0), f(1), f(2)], vec![0.9, 0.5, 0.0]);
        let exhaustive = factual(vec![f(0), f(1), f(2), f(3)], vec![0.8, 0.0, 0.1, 0.2]);
        // Pruned top-2 = {f0, f1}; only f0 is non-zero in the baseline.
        assert!((factual_precision_at_k(&pruned, &exhaustive, 2) - 0.5).abs() < 1e-12);
        // Top-1 = {f0}: full precision.
        assert!((factual_precision_at_k(&pruned, &exhaustive, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn factual_precision_handles_missing_and_empty_features() {
        let f = |i: u32| Feature::QueryTerm(SkillId(i));
        let pruned = factual(vec![f(7)], vec![0.4]);
        let exhaustive = factual(vec![f(0)], vec![0.4]);
        // The pruned feature does not even exist in the baseline: precision 0.
        assert_eq!(factual_precision_at_k(&pruned, &exhaustive, 1), 0.0);
        let empty = factual(vec![f(1)], vec![0.0]);
        assert_eq!(factual_precision_at_k(&empty, &exhaustive, 5), 1.0);
    }

    #[test]
    fn counterfactual_precision_against_baseline() {
        let exes = result(&[1, 2, 1, 3]);
        let baseline = result(&[1]);
        let report = counterfactual_precision(&exes, &baseline).unwrap();
        assert!((report.precision - 0.5).abs() < 1e-12);
        assert!((report.precision_star - 0.75).abs() < 1e-12);
        assert_eq!(report.reference_minimal_size, 1);
    }

    #[test]
    fn missing_baseline_falls_back_to_exes_minimum() {
        let exes = result(&[2, 2, 3]);
        let baseline = result(&[]);
        let report = counterfactual_precision(&exes, &baseline).unwrap();
        assert_eq!(report.reference_minimal_size, 2);
        assert!((report.precision - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(report.precision_star, 1.0);
    }

    #[test]
    fn empty_exes_result_yields_none() {
        assert!(counterfactual_precision(&result(&[]), &result(&[1])).is_none());
    }
}
