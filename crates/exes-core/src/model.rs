//! The model registry: named, type-erased decision-model configurations.
//!
//! ExES is model-agnostic — the same explainer answers "why is this person a
//! top-`k` expert under ranker X?" and "why is this person on the team formed
//! by F?". A production service therefore hosts *many* model configurations
//! at once: different rankers, different cutoffs, different team formers with
//! their seed policies. [`ModelRegistry`] stores them behind the sealed
//! [`crate::tasks::ErasedDecisionModel`] erasure layer and hands out opaque
//! [`ModelId`]s that [`crate::service::ExplanationRequest`]s address; the
//! per-model fingerprint (ranker name + parameters + `k` + seed) is mixed
//! into every [`crate::probe::ProbeCache`] key, so one persistent cache can
//! soundly serve every registered model without cross-talk.

use crate::tasks::{ErasedDecisionModel, ExpertRelevanceTask, TeamMembershipTask};
use exes_expert_search::ExpertRanker;
use exes_graph::PersonId;
use exes_team::TeamFormer;
use rustc_hash::FxHashMap;
use std::fmt;

/// Opaque handle to a model registered in a [`ModelRegistry`] (and hence in
/// an [`crate::service::ExesService`]).
///
/// Ids are only meaningful for the registry that issued them; addressing a
/// request to a foreign or stale id panics with a descriptive message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModelId(pub(crate) u32);

impl ModelId {
    /// The id's position in registration order (0-based).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// How a team-formation model picks the required "main member" seed handed to
/// the [`TeamFormer`] on every probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SeedPolicy {
    /// Form teams without a required seed.
    Unseeded,
    /// Always seed the team with this person (the paper's evaluated former
    /// builds teams around a user-chosen main member).
    Fixed(PersonId),
}

impl SeedPolicy {
    /// The seed handed to [`TeamFormer::form_team`].
    pub fn seed(self) -> Option<PersonId> {
        match self {
            SeedPolicy::Unseeded => None,
            SeedPolicy::Fixed(p) => Some(p),
        }
    }
}

/// Why a [`ModelSpec`] was rejected by [`ModelRegistry::register`] (or a task
/// constructor such as [`ExpertRelevanceTask::try_new`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelSpecError {
    /// The top-`k` cutoff was 0; a relevance decision needs `k >= 1`.
    ZeroK,
    /// The model name is already taken in this registry.
    DuplicateName(String),
}

impl fmt::Display for ModelSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelSpecError::ZeroK => {
                write!(f, "the top-k cutoff must be at least 1 (got k = 0)")
            }
            ModelSpecError::DuplicateName(name) => {
                write!(f, "a model named '{name}' is already registered")
            }
        }
    }
}

impl std::error::Error for ModelSpecError {}

/// Internal erasure of one model configuration: binds a subject to produce a
/// probe-ready [`ErasedDecisionModel`]. Object-safe so the registry can store
/// arbitrary ranker / former types side by side.
trait ModelFamily: Send + Sync {
    /// Instantiates the decision model for one subject.
    fn bind<'a>(&'a self, subject: PersonId) -> Box<dyn ErasedDecisionModel + 'a>;

    /// Validates the configuration without instantiating per-request state.
    fn validate(&self) -> Result<(), ModelSpecError>;

    /// Which explanation family the model belongs to.
    fn family(&self) -> ModelFamilyKind;

    /// Human-readable configuration summary (for `Debug` and diagnostics).
    fn describe(&self) -> String;
}

/// The two decision families the paper explains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelFamilyKind {
    /// Top-`k` relevance under an [`ExpertRanker`].
    ExpertRelevance,
    /// Membership in the team formed by a [`TeamFormer`].
    TeamMembership,
}

struct ExpertModel<R> {
    ranker: R,
    k: usize,
}

impl<R: ExpertRanker + Send + Sync> ModelFamily for ExpertModel<R> {
    fn bind<'a>(&'a self, subject: PersonId) -> Box<dyn ErasedDecisionModel + 'a> {
        Box::new(ExpertRelevanceTask::new(&self.ranker, subject, self.k))
    }

    fn validate(&self) -> Result<(), ModelSpecError> {
        // Route through the non-panicking constructor so the registry and the
        // task agree on what "valid" means.
        ExpertRelevanceTask::try_new(&self.ranker, PersonId(0), self.k).map(|_| ())
    }

    fn family(&self) -> ModelFamilyKind {
        ModelFamilyKind::ExpertRelevance
    }

    fn describe(&self) -> String {
        format!("expert ranker '{}' at k = {}", self.ranker.name(), self.k)
    }
}

struct TeamModel<F, R> {
    former: F,
    signal_ranker: R,
    seed: SeedPolicy,
}

impl<F, R> ModelFamily for TeamModel<F, R>
where
    F: TeamFormer + Send + Sync,
    R: ExpertRanker + Send + Sync,
{
    fn bind<'a>(&'a self, subject: PersonId) -> Box<dyn ErasedDecisionModel + 'a> {
        Box::new(TeamMembershipTask::new(
            &self.former,
            &self.signal_ranker,
            subject,
            self.seed.seed(),
        ))
    }

    fn validate(&self) -> Result<(), ModelSpecError> {
        Ok(())
    }

    fn family(&self) -> ModelFamilyKind {
        ModelFamilyKind::TeamMembership
    }

    fn describe(&self) -> String {
        format!(
            "team former '{}' (signal ranker '{}', seed {:?})",
            self.former.name(),
            self.signal_ranker.name(),
            self.seed
        )
    }
}

/// One model configuration, ready to be registered under a name.
///
/// A spec owns its ranker / former, so registered models live as long as the
/// service hosting them. Build one with [`ModelSpec::expert_ranker`] or
/// [`ModelSpec::team_former`].
pub struct ModelSpec {
    family: Box<dyn ModelFamily>,
}

impl ModelSpec {
    /// Top-`k` expert relevance under `ranker`: requests against this model
    /// explain "is the subject ranked within the top-`k`?".
    ///
    /// `k == 0` is representable here but rejected with
    /// [`ModelSpecError::ZeroK`] at registration.
    pub fn expert_ranker<R>(ranker: R, k: usize) -> Self
    where
        R: ExpertRanker + Send + Sync + 'static,
    {
        ModelSpec {
            family: Box::new(ExpertModel { ranker, k }),
        }
    }

    /// Team membership under `former`: requests against this model explain
    /// "is the subject on the team formed for the query?". The former is
    /// seeded per [`SeedPolicy`]; `signal_ranker` supplies the beam-search
    /// ordering signal (the decision itself always comes from the former).
    pub fn team_former<F, R>(former: F, signal_ranker: R, seed: SeedPolicy) -> Self
    where
        F: TeamFormer + Send + Sync + 'static,
        R: ExpertRanker + Send + Sync + 'static,
    {
        ModelSpec {
            family: Box::new(TeamModel {
                former,
                signal_ranker,
                seed,
            }),
        }
    }

    /// Which decision family this spec configures.
    pub fn family(&self) -> ModelFamilyKind {
        self.family.family()
    }
}

impl fmt::Debug for ModelSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ModelSpec")
            .field("config", &self.family.describe())
            .finish()
    }
}

struct RegisteredModel {
    name: String,
    spec: ModelSpec,
    fingerprint: u64,
}

/// Named decision-model configurations, addressable by [`ModelId`].
///
/// The registry validates specs on entry (a `k = 0` expert model or a
/// duplicate name is rejected with a typed [`ModelSpecError`]) and records
/// each model's cache fingerprint — the value every probe of that model mixes
/// into its [`crate::probe::ProbeCache`] key. The fingerprint is
/// *content-derived* (ranker name + parameters + `k` + seed): two registered
/// models with identical configurations share cached probes (which is sound —
/// they answer identically), while any parameter difference isolates them.
#[derive(Default)]
pub struct ModelRegistry {
    models: Vec<RegisteredModel>,
    by_name: FxHashMap<String, ModelId>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `spec` under `name`, returning its [`ModelId`].
    ///
    /// Fails with [`ModelSpecError::DuplicateName`] when the name is taken
    /// and with the spec's own validation error (e.g.
    /// [`ModelSpecError::ZeroK`]) when the configuration is invalid; the
    /// registry is unchanged on failure.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        spec: ModelSpec,
    ) -> Result<ModelId, ModelSpecError> {
        let name = name.into();
        if self.by_name.contains_key(&name) {
            return Err(ModelSpecError::DuplicateName(name));
        }
        spec.family.validate()?;
        // The spec's fingerprint is, by construction, the fingerprint every
        // task bound from it reports to the probe cache (the subject is a
        // separate key component, so any subject works here).
        let fingerprint = spec.family.bind(PersonId(0)).fingerprint();
        let id = ModelId(u32::try_from(self.models.len()).expect("fewer than 2^32 models"));
        self.by_name.insert(name.clone(), id);
        self.models.push(RegisteredModel {
            name,
            spec,
            fingerprint,
        });
        Ok(id)
    }

    /// Looks a model up by name.
    pub fn id(&self, name: &str) -> Option<ModelId> {
        self.by_name.get(name).copied()
    }

    /// The name a model was registered under.
    pub fn name(&self, id: ModelId) -> Option<&str> {
        self.models.get(id.index()).map(|m| m.name.as_str())
    }

    /// The model's cache-isolation fingerprint.
    pub fn fingerprint(&self, id: ModelId) -> Option<u64> {
        self.models.get(id.index()).map(|m| m.fingerprint)
    }

    /// Which decision family a registered model belongs to.
    pub fn family(&self, id: ModelId) -> Option<ModelFamilyKind> {
        self.models.get(id.index()).map(|m| m.spec.family())
    }

    /// Iterates over `(id, name)` pairs in registration order.
    pub fn models(&self) -> impl Iterator<Item = (ModelId, &str)> {
        self.models
            .iter()
            .enumerate()
            .map(|(i, m)| (ModelId(i as u32), m.name.as_str()))
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Instantiates the decision model `id` for one subject.
    ///
    /// # Panics
    ///
    /// Panics when `id` was not issued by this registry.
    pub(crate) fn bind(&self, id: ModelId, subject: PersonId) -> Box<dyn ErasedDecisionModel + '_> {
        match self.models.get(id.index()) {
            Some(model) => model.spec.family.bind(subject),
            None => panic!(
                "ModelId({}) is not registered here ({} model(s) known); \
                 ids are only valid for the registry/service that issued them",
                id.0,
                self.models.len()
            ),
        }
    }
}

impl fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut map = f.debug_map();
        for m in &self.models {
            map.entry(&m.name, &m.spec.family.describe());
        }
        map.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::DecisionModel;
    use exes_expert_search::{PropagationRanker, TfIdfRanker};
    use exes_graph::CollabGraphBuilder;
    use exes_team::GreedyCoverTeamFormer;

    #[test]
    fn register_validates_and_names_models() {
        let mut reg = ModelRegistry::new();
        assert!(reg.is_empty());
        let a = reg
            .register(
                "tfidf@3",
                ModelSpec::expert_ranker(TfIdfRanker::default(), 3),
            )
            .unwrap();
        let b = reg
            .register(
                "team",
                ModelSpec::team_former(
                    GreedyCoverTeamFormer::new(TfIdfRanker::default()),
                    PropagationRanker::default(),
                    SeedPolicy::Unseeded,
                ),
            )
            .unwrap();
        assert_ne!(a, b);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.id("tfidf@3"), Some(a));
        assert_eq!(reg.name(b), Some("team"));
        assert_eq!(reg.family(a), Some(ModelFamilyKind::ExpertRelevance));
        assert_eq!(reg.family(b), Some(ModelFamilyKind::TeamMembership));
        assert_eq!(reg.id("unknown"), None);
        let listed: Vec<_> = reg.models().collect();
        assert_eq!(listed, vec![(a, "tfidf@3"), (b, "team")]);
        let debug = format!("{reg:?}");
        assert!(debug.contains("tfidf@3") && debug.contains("greedy-cover"));
    }

    #[test]
    fn invalid_and_duplicate_specs_are_rejected_with_typed_errors() {
        let mut reg = ModelRegistry::new();
        assert_eq!(
            reg.register("bad", ModelSpec::expert_ranker(TfIdfRanker::default(), 0))
                .err(),
            Some(ModelSpecError::ZeroK)
        );
        assert!(reg.is_empty(), "rejected specs must not be registered");
        reg.register("x", ModelSpec::expert_ranker(TfIdfRanker::default(), 3))
            .unwrap();
        assert_eq!(
            reg.register("x", ModelSpec::expert_ranker(TfIdfRanker::default(), 5))
                .err(),
            Some(ModelSpecError::DuplicateName("x".into()))
        );
        assert_eq!(reg.len(), 1);
        // Errors render usefully.
        assert!(ModelSpecError::ZeroK.to_string().contains("at least 1"));
        assert!(ModelSpecError::DuplicateName("x".into())
            .to_string()
            .contains('x'));
    }

    #[test]
    fn fingerprints_match_bound_tasks_and_separate_configurations() {
        let mut reg = ModelRegistry::new();
        let k3 = reg
            .register("k3", ModelSpec::expert_ranker(TfIdfRanker::default(), 3))
            .unwrap();
        let k5 = reg
            .register("k5", ModelSpec::expert_ranker(TfIdfRanker::default(), 5))
            .unwrap();
        let k3_again = reg
            .register(
                "k3-copy",
                ModelSpec::expert_ranker(TfIdfRanker::default(), 3),
            )
            .unwrap();
        assert_ne!(reg.fingerprint(k3), reg.fingerprint(k5));
        // Identical configurations share a fingerprint (sound cache sharing).
        assert_eq!(reg.fingerprint(k3), reg.fingerprint(k3_again));
        // And the registry fingerprint is exactly what a directly-built task
        // reports, so facade calls and service calls hit the same entries.
        let ranker = TfIdfRanker::default();
        let direct = ExpertRelevanceTask::new(&ranker, PersonId(7), 3);
        assert_eq!(reg.fingerprint(k3), Some(direct.model_fingerprint()));
    }

    #[test]
    fn bound_models_probe_like_their_concrete_tasks() {
        let mut b = CollabGraphBuilder::new();
        let ada = b.add_person("ada", ["db", "ml"]);
        let bob = b.add_person("bob", ["db"]);
        b.add_edge(ada, bob);
        let g = b.build();
        let q = exes_graph::Query::parse("db ml", g.vocab()).unwrap();

        let mut reg = ModelRegistry::new();
        let id = reg
            .register(
                "tfidf@1",
                ModelSpec::expert_ranker(TfIdfRanker::default(), 1),
            )
            .unwrap();
        let bound = reg.bind(id, ada);
        let ranker = TfIdfRanker::default();
        let direct = ExpertRelevanceTask::new(&ranker, ada, 1);
        assert_eq!(bound.subject_id(), ada);
        assert_eq!(bound.probe_graph(&g, &q), direct.probe(&g, &q));
    }

    #[test]
    #[should_panic(expected = "not registered here")]
    fn foreign_ids_panic_with_a_clear_message() {
        let reg = ModelRegistry::new();
        let _ = reg.bind(ModelId(0), PersonId(0));
    }

    #[test]
    fn seed_policy_resolves() {
        assert_eq!(SeedPolicy::Unseeded.seed(), None);
        assert_eq!(SeedPolicy::Fixed(PersonId(4)).seed(), Some(PersonId(4)));
    }
}
