//! The batched probe engine: the one place where candidate perturbation sets
//! meet the black box — plus the memo cache that keeps them from meeting it
//! twice.
//!
//! ExES spends essentially all of its time here — every counterfactual
//! explanation issues hundreds to thousands of probes, each of which ranks the
//! whole (perturbed) graph. Probes are pure functions of `(graph, query,
//! perturbation set)`, so a batch of candidates can be scored on every core
//! the machine has. [`ProbeBatch::score`] does exactly that, with one hard
//! guarantee: **the returned probes are identical, in content and order, to
//! scoring the batch sequentially.** Beam search and the exhaustive baseline
//! both lean on that guarantee to stay deterministic.
//!
//! The same purity makes probes memoisable: [`ProbeCache`] is a sharded,
//! bounded memo table keyed by the canonical (sorted) perturbation set, shared
//! freely between parallel workers and across repeated explanation requests.
//! Attach one with [`ProbeBatch::with_cache`] and repeated probes become hash
//! lookups — with results still byte-identical to uncached scoring, because a
//! cached probe *is* the probe that would have been issued.

use crate::config::ExesConfig;
use crate::tasks::{ErasedDecisionModel, Probe};
use exes_graph::{CollabGraph, PersonId, Perturbation, PerturbationSet, Query};
use rustc_hash::{FxHashMap, FxHasher};
use std::any::Any;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of candidate sets scored per batch by the search loops. Bounds how
/// much work is in flight between deadline checks and early-exit tests.
pub const PROBE_CHUNK: usize = 128;

// ---------------------------------------------------------------------------
// ProbeBudget & Completeness
// ---------------------------------------------------------------------------

/// A cap on the black-box probes one explanation search may issue.
///
/// The budget counts **actual model evaluations** — cache hits are free, so a
/// warm context can finish a search a cold one would have to truncate. Every
/// search that accepts a budget guarantees two things: it never issues more
/// probes than the budget allows (enforced before each scoring chunk), and it
/// reports honestly through [`Completeness`] whenever the budget cut it short.
/// [`ProbeBudget::UNBOUNDED`] (the default) leaves every search byte-identical
/// to the pre-budget code path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ProbeBudget(Option<usize>);

impl ProbeBudget {
    /// No cap: searches run to their natural end (the default).
    pub const UNBOUNDED: ProbeBudget = ProbeBudget(None);

    /// At most `max_probes` black-box probes per search.
    pub const fn bounded(max_probes: usize) -> Self {
        ProbeBudget(Some(max_probes))
    }

    /// The cap, or `None` when unbounded.
    pub fn limit(self) -> Option<usize> {
        self.0
    }

    /// True when a finite cap is set.
    pub fn is_bounded(self) -> bool {
        self.0.is_some()
    }

    /// Starts per-search spend tracking against this budget.
    pub(crate) fn tracker(self) -> BudgetTracker {
        BudgetTracker {
            limit: self.0,
            spent: 0,
        }
    }
}

/// Per-search probe-spend ledger for one [`ProbeBudget`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct BudgetTracker {
    limit: Option<usize>,
    spent: usize,
}

impl BudgetTracker {
    /// Probes still available, or `None` when unbounded.
    pub(crate) fn remaining(&self) -> Option<usize> {
        self.limit.map(|limit| limit - self.spent.min(limit))
    }

    /// Records probes actually issued (cache hits cost nothing).
    pub(crate) fn charge(&mut self, probes: usize) {
        self.spent += probes;
    }

    /// The [`Completeness`] marker for a search that was cut short
    /// (`truncated`) or ran to its natural end.
    pub(crate) fn completeness(&self, truncated: bool) -> Completeness {
        match (truncated, self.limit) {
            (true, Some(budget)) => Completeness::Budgeted {
                spent: self.spent,
                budget,
            },
            _ => Completeness::Exhaustive,
        }
    }
}

/// Whether a search ran to its natural end or was cut short by a
/// [`ProbeBudget`].
///
/// "Exhaustive" means the search itself terminated (beam search converged, the
/// exhaustive baseline enumerated its space, the SHAP sampler completed its
/// permutations) — not that every conceivable perturbation was tried. A
/// `Budgeted` result is the best answer found within `spent` probes of a
/// `budget`-probe allowance, surfaced explicitly instead of panicking or
/// silently truncating.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Completeness {
    /// The search ran to its natural end; results are what an unbudgeted run
    /// would have returned.
    #[default]
    Exhaustive,
    /// The probe budget ran out first: results are best-so-far.
    Budgeted {
        /// Black-box probes actually issued before the search stopped.
        spent: usize,
        /// The probe allowance the search ran under.
        budget: usize,
    },
}

impl Completeness {
    /// True when the result was cut short by a probe budget.
    pub fn is_budgeted(self) -> bool {
        matches!(self, Completeness::Budgeted { .. })
    }
}

/// Pre-probe cost classification of one explanation request, derived purely
/// from [`ProbeCache`] and plan-memo state — no black box is consulted.
///
/// The serving layer routes on this: `Warm` and `Incremental` requests go to
/// the fast admission lane, `Cold` ones to the slow lane, so a cold beam
/// search can never head-of-line-block warm traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CostEstimate {
    /// The context's identity probe is memoised: this (graph, query, model,
    /// subject) was explained before and most probes will be cache hits.
    Warm,
    /// No memoised probes for this subject, but the context's baseline plan
    /// is memoised: probes skip the full-baseline build and use incremental
    /// rescoring.
    Incremental,
    /// Neither probes nor a plan are memoised: expect a full baseline build
    /// plus cold probes.
    Cold,
}

impl CostEstimate {
    /// True for the expensive class (no memoised state at all).
    pub fn is_cold(self) -> bool {
        matches!(self, CostEstimate::Cold)
    }

    /// Stable lowercase tag (`"warm"` / `"incremental"` / `"cold"`).
    pub fn tag(self) -> &'static str {
        match self {
            CostEstimate::Warm => "warm",
            CostEstimate::Incremental => "incremental",
            CostEstimate::Cold => "cold",
        }
    }
}

// ---------------------------------------------------------------------------
// BaselinePlan
// ---------------------------------------------------------------------------

/// Maximum number of memoised baseline plans a [`ProbeCache`] retains — one
/// per live (graph epoch, query, model) context. Plans are a few person-length
/// vectors each, so a handful cover a serving batch.
const PLAN_CAPACITY: usize = 16;

/// A per-(graph, query, model) baseline evaluation plan, computed once and
/// shared across every probe of the same context.
///
/// The payload is type-erased: the decision model that built the plan
/// ([`crate::tasks::DecisionModel::build_plan`]) is the only code that looks
/// inside, via [`BaselinePlan::payload`]. For the built-in expert-relevance
/// task it is an [`exes_expert_search::RankerBaseline`] — the full baseline
/// ranking plus whatever per-ranker state the incremental rescoring path
/// needs. The probe engine treats plans as opaque: it hands them back to the
/// model through `probe_with_plan` and falls back to a full re-rank whenever
/// the model declines.
pub struct BaselinePlan {
    payload: Box<dyn Any + Send + Sync>,
}

impl BaselinePlan {
    /// Wraps a model-specific baseline payload.
    pub fn new<T: Any + Send + Sync>(payload: T) -> Self {
        BaselinePlan {
            payload: Box::new(payload),
        }
    }

    /// Downcasts the payload to the concrete baseline type the model stored
    /// (`None` for a plan built by a different model type).
    pub fn payload<T: Any>(&self) -> Option<&T> {
        self.payload.downcast_ref()
    }
}

impl std::fmt::Debug for BaselinePlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BaselinePlan").finish_non_exhaustive()
    }
}

/// Acquires the baseline plan for a probing context: memoised through the
/// cache's plan store when a cache is attached, built directly otherwise.
/// `None` when the model has no planned evaluation path.
///
/// The returned [`BatchStats`] carries only the plan-memo accounting of this
/// acquisition (`plan_hits` when the memo served it, `plan_misses` when a
/// plan had to be built), ready to merge into a search's running stats.
pub(crate) fn acquire_plan<D: ErasedDecisionModel + ?Sized>(
    task: &D,
    graph: &CollabGraph,
    query: &Query,
    cache: Option<&ProbeCache>,
) -> (Option<Arc<BaselinePlan>>, BatchStats) {
    let mut stats = BatchStats::default();
    let plan = match cache {
        Some(cache) => cache.plan_for_counted(graph, query, task, &mut stats),
        None => {
            let plan = task.plan(graph, query).map(Arc::new);
            if plan.is_some() {
                stats.plan_misses = 1;
            }
            plan
        }
    };
    (plan, stats)
}

// ---------------------------------------------------------------------------
// ProbeCache
// ---------------------------------------------------------------------------

/// A memo key: the probe context fingerprint, the subject being probed, and
/// the canonical (sorted) perturbation set.
type CacheKey = (u64, PersonId, Vec<Perturbation>);

/// One shard of the memo table. `tick` is a shard-local logical clock bumped
/// on every hit/insert; entries carry their last-touched tick so bulk eviction
/// can drop the least-recently-used quarter.
#[derive(Default)]
struct Shard {
    map: FxHashMap<CacheKey, (Probe, u64)>,
    tick: u64,
}

/// A sharded, bounded memo table for black-box probes.
///
/// Keys are canonical: the perturbation set is sorted by the derived
/// [`Ord`] on [`Perturbation`] (via [`PerturbationSet::canonical_key`]), so
/// insertion order never splits cache lines, and the key additionally carries
///
/// * the **subject** — a probe answers "is *this person* selected", so probes
///   of different subjects must never alias, and
/// * a **context fingerprint** of the (graph, query, model) triple — guarding
///   against accidentally reusing one cache across different queries, graphs,
///   or model configurations.
///
/// The model component comes from
/// [`crate::tasks::DecisionModel::model_fingerprint`] (ranker name +
/// parameters + `k` + a team former's seed), so one cache is sound to share
/// across *every* model configuration whose tasks fingerprint themselves —
/// exactly what lets [`crate::service::ExesService`] serve its whole
/// [`crate::model::ModelRegistry`] from one persistent cache, and what makes
/// a reconfigured model (say, a changed `k` via
/// [`crate::explainer::Exes::config_mut`]) miss cold instead of replaying
/// another configuration's probes.
///
/// Interior locking is sharded: parallel probe workers contend only when their
/// keys hash to the same shard. Hit/miss counters are global atomics, cheap
/// enough to keep always-on; the search loops additionally report per-request
/// counts in [`crate::counterfactual::CounterfactualResult`].
///
/// When `capacity` is exceeded, the over-full shard evicts its
/// least-recently-used quarter in one sweep — O(shard len) per eviction, but
/// amortised O(1) per insert.
pub struct ProbeCache {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evicted: AtomicU64,
    eviction_sweeps: AtomicU64,
    plan_hits: AtomicU64,
    plan_misses: AtomicU64,
    /// Memoised [`BaselinePlan`]s, keyed by the same context fingerprint as
    /// probe entries but *not* by subject: one plan serves every subject
    /// probed under the same (epoch, query, model). Bounded to
    /// [`PLAN_CAPACITY`] live contexts, evicted oldest-first.
    plans: Mutex<Vec<(u64, Arc<BaselinePlan>)>>,
}

impl ProbeCache {
    /// Creates a cache bounded to `capacity` entries (`0` = unbounded) with a
    /// default shard count of 16.
    pub fn new(capacity: usize) -> Self {
        Self::with_shards(capacity, 16)
    }

    /// Creates a cache with an explicit shard count (`shards >= 1`).
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        assert!(shards >= 1, "cache shard count must be at least 1");
        ProbeCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            capacity_per_shard: capacity.div_ceil(shards),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            eviction_sweeps: AtomicU64::new(0),
            plan_hits: AtomicU64::new(0),
            plan_misses: AtomicU64::new(0),
            plans: Mutex::new(Vec::new()),
        }
    }

    /// Creates a cache sized by the configuration's
    /// `probe_cache_capacity` / `probe_cache_shards` knobs.
    pub fn for_config(cfg: &ExesConfig) -> Self {
        Self::with_shards(cfg.probe_cache_capacity, cfg.probe_cache_shards)
    }

    /// Fingerprint of the probe context: the query keywords (in order — a
    /// perturbed query is a different context), the graph's epoch identity
    /// ([`CollabGraph::fingerprint`]), and the decision model's identity
    /// ([`crate::tasks::DecisionModel::model_fingerprint`]). The graph
    /// fingerprint is content-derived (two graphs assembled from identical
    /// rows share it; any structural difference, or a committed
    /// [`exes_graph::GraphStore`] epoch, moves it), so the context is O(1)
    /// to compute per attached engine instead of rehashing the graph — a
    /// snapshot that hasn't changed keeps its warm cache across requests,
    /// while an update (or a reconfigured model) naturally misses into fresh
    /// entries.
    pub(crate) fn context(graph: &CollabGraph, query: &Query, model: u64) -> u64 {
        let mut h = FxHasher::default();
        query.skills().hash(&mut h);
        graph.fingerprint().hash(&mut h);
        model.hash(&mut h);
        h.finish()
    }

    fn shard_of(&self, key: &CacheKey) -> &Mutex<Shard> {
        let mut h = FxHasher::default();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    fn lookup_key(&self, key: &CacheKey) -> Option<Probe> {
        let mut shard = self.shard_of(key).lock().expect("cache shard poisoned");
        shard.tick += 1;
        let tick = shard.tick;
        match shard.map.get_mut(key) {
            Some((probe, last_used)) => {
                *last_used = tick;
                let probe = *probe;
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(probe)
            }
            None => {
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn insert_key(&self, key: CacheKey, probe: Probe) {
        let mut shard = self.shard_of(&key).lock().expect("cache shard poisoned");
        shard.tick += 1;
        let tick = shard.tick;
        shard.map.insert(key, (probe, tick));
        if self.capacity_per_shard > 0 && shard.map.len() > self.capacity_per_shard {
            // Evict the least-recently-used quarter in one sweep. Ticks are
            // unique within a shard, so this removes at least len/4 entries.
            let before = shard.map.len();
            let mut ticks: Vec<u64> = shard.map.values().map(|&(_, t)| t).collect();
            ticks.sort_unstable();
            let cutoff = ticks[ticks.len() / 4];
            shard.map.retain(|_, &mut (_, t)| t > cutoff);
            let dropped = (before - shard.map.len()) as u64;
            drop(shard);
            self.evicted.fetch_add(dropped, Ordering::Relaxed);
            self.eviction_sweeps.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Looks up the memoised probe for `delta` applied on behalf of the
    /// model's subject in the given (graph, query, model) context. Bumps the
    /// hit/miss counters.
    pub fn lookup(
        &self,
        graph: &CollabGraph,
        query: &Query,
        model: &dyn ErasedDecisionModel,
        delta: &PerturbationSet,
    ) -> Option<Probe> {
        self.lookup_key(&(
            Self::context(graph, query, model.fingerprint()),
            model.subject_id(),
            delta.canonical_key(),
        ))
    }

    /// Memoises a probe under the canonical key of `delta`.
    pub fn insert(
        &self,
        graph: &CollabGraph,
        query: &Query,
        model: &dyn ErasedDecisionModel,
        delta: &PerturbationSet,
        probe: Probe,
    ) {
        self.insert_key(
            (
                Self::context(graph, query, model.fingerprint()),
                model.subject_id(),
                delta.canonical_key(),
            ),
            probe,
        );
    }

    /// Returns the memoised [`BaselinePlan`] for the `(graph, query, model)`
    /// context, building (and storing) it on first request. `None` when the
    /// model does not support planned evaluation
    /// ([`crate::tasks::DecisionModel::build_plan`] returned `None`).
    ///
    /// Plans are keyed by the context fingerprint only — *not* by subject —
    /// so one plan serves every subject probed under the same (epoch, query,
    /// model): a whole [`ProbeBatch`], and a whole serving batch, share a
    /// single baseline evaluation. A committed graph epoch or a reconfigured
    /// model moves the fingerprint and misses into a fresh plan, exactly like
    /// probe entries.
    pub fn plan_for<D: ErasedDecisionModel + ?Sized>(
        &self,
        graph: &CollabGraph,
        query: &Query,
        model: &D,
    ) -> Option<Arc<BaselinePlan>> {
        let mut stats = BatchStats::default();
        self.plan_for_counted(graph, query, model, &mut stats)
    }

    /// [`ProbeCache::plan_for`] with plan-memo accounting: sets `plan_hits`
    /// or `plan_misses` on `stats` (and the cache's lifetime counters) so the
    /// memo's efficiency is observable like the probe cache's already is.
    pub fn plan_for_counted<D: ErasedDecisionModel + ?Sized>(
        &self,
        graph: &CollabGraph,
        query: &Query,
        model: &D,
        stats: &mut BatchStats,
    ) -> Option<Arc<BaselinePlan>> {
        let ctx = Self::context(graph, query, model.fingerprint());
        {
            let plans = self.plans.lock().expect("plan store poisoned");
            if let Some((_, plan)) = plans.iter().find(|(key, _)| *key == ctx) {
                let plan = Arc::clone(plan);
                drop(plans);
                stats.plan_hits += 1;
                self.plan_hits.fetch_add(1, Ordering::Relaxed);
                return Some(plan);
            }
        }
        // Build outside the lock: plan construction ranks the whole graph,
        // and concurrent builders for the same context produce identical
        // plans (probes are pure), so the race is benign.
        let plan = Arc::new(model.plan(graph, query)?);
        stats.plan_misses += 1;
        self.plan_misses.fetch_add(1, Ordering::Relaxed);
        let mut plans = self.plans.lock().expect("plan store poisoned");
        if !plans.iter().any(|(key, _)| *key == ctx) {
            if plans.len() >= PLAN_CAPACITY {
                plans.remove(0);
            }
            plans.push((ctx, Arc::clone(&plan)));
        }
        Some(plan)
    }

    /// Classifies the expected cost of probing `model` in this (graph, query)
    /// context, **without** touching the hit/miss counters — estimation is a
    /// pre-admission peek, not a probe.
    ///
    /// `Warm` when the identity probe of the model's subject is memoised,
    /// `Incremental` when (only) the context's baseline plan is, `Cold`
    /// otherwise.
    pub fn estimate<D: ErasedDecisionModel + ?Sized>(
        &self,
        graph: &CollabGraph,
        query: &Query,
        model: &D,
    ) -> CostEstimate {
        let ctx = Self::context(graph, query, model.fingerprint());
        let identity: CacheKey = (ctx, model.subject_id(), Vec::new());
        if self.peek_key(&identity) {
            return CostEstimate::Warm;
        }
        let planned = self
            .plans
            .lock()
            .expect("plan store poisoned")
            .iter()
            .any(|(key, _)| *key == ctx);
        if planned {
            CostEstimate::Incremental
        } else {
            CostEstimate::Cold
        }
    }

    /// Whether `key` is memoised, without bumping counters or recency ticks.
    fn peek_key(&self, key: &CacheKey) -> bool {
        self.shard_of(key)
            .lock()
            .expect("cache shard poisoned")
            .map
            .contains_key(key)
    }

    /// Number of baseline plans currently memoised.
    pub fn plans_len(&self) -> usize {
        self.plans.lock().expect("plan store poisoned").len()
    }

    /// Total lookups that found a memoised probe, across the cache's lifetime.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Total lookups that missed, across the cache's lifetime.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Total memoised probes dropped by bulk evictions — the cache's
    /// eviction-pressure gauge. A warm cache that keeps evicting is too small
    /// for its working set (`ExesConfig::probe_cache_capacity`).
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Number of bulk eviction sweeps (each drops the least-recently-used
    /// quarter of one over-full shard).
    pub fn eviction_sweeps(&self) -> u64 {
        self.eviction_sweeps.load(Ordering::Relaxed)
    }

    /// Plan requests served from the plan memo, across the cache's lifetime.
    pub fn plan_hits(&self) -> u64 {
        self.plan_hits.load(Ordering::Relaxed)
    }

    /// Plan requests that had to build a fresh baseline plan, across the
    /// cache's lifetime.
    pub fn plan_misses(&self) -> u64 {
        self.plan_misses.load(Ordering::Relaxed)
    }

    /// Fraction of lookups served from memory (`0.0` when nothing was looked
    /// up yet).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits() as f64;
        let total = hits + self.misses() as f64;
        if total == 0.0 {
            0.0
        } else {
            hits / total
        }
    }

    /// Number of memoised probes currently resident.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// True when no probes are memoised.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Exports every memoised probe as raw `(context, subject, canonical
    /// perturbations, probe)` tuples, for the durability layer to persist
    /// across restarts.
    ///
    /// The context fingerprint folds the query skills, graph fingerprint and
    /// model fingerprint and cannot be decomposed, so entries are exported
    /// with it verbatim; soundness across a restart comes from the graph
    /// fingerprint being restored chained-exact by
    /// [`exes_graph::GraphStore::resume`] and model fingerprints being pure
    /// functions of configuration. Iteration order is unspecified. Does not
    /// touch the hit/miss counters.
    pub fn export_entries(&self) -> Vec<(u64, PersonId, Vec<Perturbation>, Probe)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("cache shard poisoned");
            out.extend(
                shard
                    .map
                    .iter()
                    .map(|((ctx, subject, delta), &(probe, _))| {
                        (*ctx, *subject, delta.clone(), probe)
                    }),
            );
        }
        out
    }

    /// Re-inserts entries produced by [`ProbeCache::export_entries`], as if
    /// freshly memoised (normal capacity/eviction rules apply). Returns the
    /// number of entries inserted.
    ///
    /// Callers are responsible for only importing entries whose context is
    /// still meaningful — the durability layer guards whole files with the
    /// graph fingerprint they were exported under.
    pub fn import_entries(
        &self,
        entries: impl IntoIterator<Item = (u64, PersonId, Vec<Perturbation>, Probe)>,
    ) -> usize {
        let mut inserted = 0;
        for (ctx, subject, delta, probe) in entries {
            self.insert_key((ctx, subject, delta), probe);
            inserted += 1;
        }
        inserted
    }

    /// Drops every memoised probe and baseline plan and resets the
    /// hit/miss/eviction counters.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock().expect("cache shard poisoned");
            shard.map.clear();
            shard.tick = 0;
        }
        self.plans.lock().expect("plan store poisoned").clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evicted.store(0, Ordering::Relaxed);
        self.eviction_sweeps.store(0, Ordering::Relaxed);
        self.plan_hits.store(0, Ordering::Relaxed);
        self.plan_misses.store(0, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for ProbeCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProbeCache")
            .field("shards", &self.shards.len())
            .field("capacity_per_shard", &self.capacity_per_shard)
            .field("len", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .field("evicted", &self.evicted())
            .field("eviction_sweeps", &self.eviction_sweeps())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// ProbeBatch
// ---------------------------------------------------------------------------

/// Per-batch accounting returned by [`ProbeBatch::score_counted`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Probes actually issued to the black box (cache misses, or the whole
    /// batch when no cache is attached).
    pub probed: usize,
    /// Probes answered from the memo cache (always 0 without a cache).
    pub cache_hits: usize,
    /// Probes that went through an attached cache and missed (always 0
    /// without a cache; equal to `probed` with one).
    pub cache_misses: usize,
    /// Overlay probes answered through the incremental (delta-localized)
    /// rescoring path of an attached [`BaselinePlan`] (always 0 without one).
    pub incremental_rescores: usize,
    /// Overlay probes that fell back to a full re-rank — no plan attached,
    /// the model has no incremental path, the query itself was perturbed, or
    /// the delta's neighbourhood exceeded the localization cap.
    /// `incremental_rescores + full_rescores == probed`.
    pub full_rescores: usize,
    /// Baseline-plan acquisitions served from the [`ProbeCache`] plan memo
    /// (always 0 for plain scoring — plans are acquired per search, not per
    /// batch, and merged in by the search loops).
    pub plan_hits: usize,
    /// Baseline-plan acquisitions that built a fresh plan.
    pub plan_misses: usize,
}

impl BatchStats {
    /// Accumulates another stats record into this one, field by field.
    pub fn merge(&mut self, other: &BatchStats) {
        self.probed += other.probed;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.incremental_rescores += other.incremental_rescores;
        self.full_rescores += other.full_rescores;
        self.plan_hits += other.plan_hits;
        self.plan_misses += other.plan_misses;
    }
}

/// Scores batches of candidate [`PerturbationSet`]s against one decision
/// model, in parallel when profitable, optionally memoised.
///
/// The engine is deliberately stateless between calls: each probe builds its
/// own [`exes_graph::PerturbedGraph`] overlay (construction cost proportional
/// to the delta, not the graph) and ranks through it. Overlay accessors are
/// allocation-free borrows, so per-probe cost is dominated by the black box
/// itself — which is what makes spreading probes across threads worthwhile,
/// and skipping repeated probes through a [`ProbeCache`] worthwhile again.
///
/// The model bound is `D: ErasedDecisionModel + ?Sized`: concrete tasks go
/// through with static dispatch (every [`crate::tasks::DecisionModel`] is an
/// [`ErasedDecisionModel`]), while the serving layer's boxed registry models
/// probe through `ProbeBatch<'_, dyn ErasedDecisionModel>` — same engine,
/// same guarantees.
pub struct ProbeBatch<'a, D: ?Sized> {
    task: &'a D,
    graph: &'a CollabGraph,
    query: &'a Query,
    parallel: bool,
    cache: Option<&'a ProbeCache>,
    /// Precomputed [`ProbeCache::context`] fingerprint (0 when uncached).
    ctx: u64,
    /// Shared baseline plan for the incremental rescoring path, if any.
    plan: Option<&'a BaselinePlan>,
}

impl<D: ?Sized> Clone for ProbeBatch<'_, D> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<D: ?Sized> Copy for ProbeBatch<'_, D> {}

impl<D: ?Sized> std::fmt::Debug for ProbeBatch<'_, D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProbeBatch")
            .field("parallel", &self.parallel)
            .field("cached", &self.cache.is_some())
            .field("planned", &self.plan.is_some())
            .field("ctx", &self.ctx)
            .finish_non_exhaustive()
    }
}

impl<'a, D: ErasedDecisionModel + ?Sized> ProbeBatch<'a, D> {
    /// Creates the engine. `parallel == false` forces sequential scoring
    /// (useful for differential tests and single-core deployments); the
    /// results are identical either way.
    pub fn new(task: &'a D, graph: &'a CollabGraph, query: &'a Query, parallel: bool) -> Self {
        ProbeBatch {
            task,
            graph,
            query,
            parallel,
            cache: None,
            ctx: 0,
            plan: None,
        }
    }

    /// Attaches a memo cache. Results stay byte-identical to uncached scoring;
    /// only the number of black-box probes changes.
    pub fn with_cache(mut self, cache: &'a ProbeCache) -> Self {
        self.ctx = ProbeCache::context(self.graph, self.query, self.task.fingerprint());
        self.cache = Some(cache);
        self
    }

    /// Attaches a memo cache when one is provided ([`ProbeBatch::with_cache`]
    /// otherwise a no-op), keeping call sites free of `match`es.
    pub fn with_cache_opt(self, cache: Option<&'a ProbeCache>) -> Self {
        match cache {
            Some(cache) => self.with_cache(cache),
            None => self,
        }
    }

    /// Attaches a shared [`BaselinePlan`]: each overlay probe is first offered
    /// to the model's incremental rescoring path
    /// ([`crate::tasks::DecisionModel::probe_with_plan`]) and only falls back
    /// to a full re-rank when the model declines. Exact rankers answer
    /// byte-identically to the full path; bounded-error rankers (personalized
    /// PageRank) document their tolerance.
    pub fn with_plan(mut self, plan: &'a BaselinePlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Attaches a plan when one is provided ([`ProbeBatch::with_plan`]
    /// otherwise a no-op), mirroring [`ProbeBatch::with_cache_opt`].
    pub fn with_plan_opt(self, plan: Option<&'a BaselinePlan>) -> Self {
        match plan {
            Some(plan) => self.with_plan(plan),
            None => self,
        }
    }

    /// Whether this engine scores batches in parallel.
    pub fn is_parallel(&self) -> bool {
        self.parallel
    }

    /// Whether a memo cache is attached.
    pub fn is_cached(&self) -> bool {
        self.cache.is_some()
    }

    /// Whether a baseline plan is attached.
    pub fn is_planned(&self) -> bool {
        self.plan.is_some()
    }

    /// Evaluates one candidate set, preferring the incremental path when a
    /// plan is attached. Returns the probe and whether the incremental path
    /// answered it.
    fn eval(&self, set: &PerturbationSet) -> (Probe, bool) {
        let (view, perturbed_query) = set.apply(self.graph, self.query);
        if let Some(plan) = self.plan {
            if let Some(probe) = self
                .task
                .probe_overlay_planned(plan, &view, &perturbed_query)
            {
                return (probe, true);
            }
        }
        (self.task.probe_overlay(&view, &perturbed_query), false)
    }

    fn eval_batch(&self, sets: &[PerturbationSet]) -> Vec<(Probe, bool)> {
        let eval = |set: &PerturbationSet| self.eval(set);
        if self.parallel {
            exes_parallel::parallel_map(sets, eval)
        } else {
            sets.iter().map(eval).collect()
        }
    }

    /// Probes the black box once per candidate set, returning probes in input
    /// order. Equivalent to [`ProbeBatch::score_counted`] with the accounting
    /// discarded.
    pub fn score(&self, sets: &[PerturbationSet]) -> Vec<Probe> {
        self.score_counted(sets).0
    }

    /// Scores a batch and reports how many probes actually reached the black
    /// box versus were answered by the attached [`ProbeCache`].
    ///
    /// The returned probes are byte-identical to an uncached, sequential
    /// scoring of the same batch: a memoised probe is the value the black box
    /// returned for that exact canonical key earlier (probes are pure), and
    /// misses are scored in input order.
    pub fn score_counted(&self, sets: &[PerturbationSet]) -> (Vec<Probe>, BatchStats) {
        let Some(cache) = self.cache else {
            let evals = self.eval_batch(sets);
            let incremental = evals.iter().filter(|&&(_, inc)| inc).count();
            let stats = BatchStats {
                probed: sets.len(),
                incremental_rescores: incremental,
                full_rescores: sets.len() - incremental,
                ..BatchStats::default()
            };
            return (evals.into_iter().map(|(p, _)| p).collect(), stats);
        };
        let subject = self.task.subject_id();
        let mut out: Vec<Option<Probe>> = vec![None; sets.len()];
        // Canonicalise each key exactly once; misses keep theirs for the
        // insert below, and the sets themselves are scored by reference.
        let mut misses: Vec<(usize, CacheKey)> = Vec::new();
        for (i, set) in sets.iter().enumerate() {
            let key = (self.ctx, subject, set.canonical_key());
            match cache.lookup_key(&key) {
                Some(probe) => out[i] = Some(probe),
                None => misses.push((i, key)),
            }
        }
        let mut stats = BatchStats {
            probed: misses.len(),
            cache_hits: sets.len() - misses.len(),
            cache_misses: misses.len(),
            ..BatchStats::default()
        };
        if !misses.is_empty() {
            let eval = |&(i, _): &(usize, CacheKey)| self.eval(&sets[i]);
            let probes = if self.parallel {
                exes_parallel::parallel_map(&misses, eval)
            } else {
                misses.iter().map(eval).collect()
            };
            for ((i, key), (probe, incremental)) in misses.into_iter().zip(probes) {
                if incremental {
                    stats.incremental_rescores += 1;
                } else {
                    stats.full_rescores += 1;
                }
                cache.insert_key(key, probe);
                out[i] = Some(probe);
            }
        }
        let probes = out
            .into_iter()
            .map(|p| p.expect("every batch slot scored"))
            .collect();
        (probes, stats)
    }

    /// Budget-aware scoring: answers the longest prefix of `sets` that fits
    /// within `max_probes` black-box probes, returning the prefix's probes,
    /// the accounting, and how many sets were answered.
    ///
    /// Cache hits are free — with a warm cache the whole batch can be
    /// answered under a zero budget — and the prefix stops at the first set
    /// that would need a probe the budget no longer allows, so `stats.probed
    /// <= max_probes` always holds. `None` is unbounded and equivalent to
    /// [`ProbeBatch::score_counted`]. Answered probes are byte-identical to
    /// the unbudgeted scoring of the same prefix.
    pub fn score_counted_budgeted(
        &self,
        sets: &[PerturbationSet],
        max_probes: Option<usize>,
    ) -> (Vec<Probe>, BatchStats, usize) {
        let Some(limit) = max_probes else {
            let (probes, stats) = self.score_counted(sets);
            let answered = sets.len();
            return (probes, stats, answered);
        };
        let Some(cache) = self.cache else {
            // Every uncached probe reaches the black box: the affordable
            // prefix is exactly `limit` sets long.
            let answered = sets.len().min(limit);
            let (probes, stats) = self.score_counted(&sets[..answered]);
            return (probes, stats, answered);
        };
        let subject = self.task.subject_id();
        let mut out: Vec<Option<Probe>> = vec![None; sets.len()];
        let mut misses: Vec<(usize, CacheKey)> = Vec::new();
        let mut answered = sets.len();
        for (i, set) in sets.iter().enumerate() {
            let key = (self.ctx, subject, set.canonical_key());
            if misses.len() >= limit {
                // Only a memoised probe can answer this slot now. Peek first:
                // stopping here is admission control, not a lookup, and must
                // not distort the miss counters.
                if !cache.peek_key(&key) {
                    answered = i;
                    break;
                }
            }
            match cache.lookup_key(&key) {
                Some(probe) => out[i] = Some(probe),
                None => misses.push((i, key)),
            }
        }
        let mut stats = BatchStats {
            probed: misses.len(),
            cache_hits: answered - misses.len(),
            cache_misses: misses.len(),
            ..BatchStats::default()
        };
        if !misses.is_empty() {
            let eval = |&(i, _): &(usize, CacheKey)| self.eval(&sets[i]);
            let probes = if self.parallel {
                exes_parallel::parallel_map(&misses, eval)
            } else {
                misses.iter().map(eval).collect()
            };
            for ((i, key), (probe, incremental)) in misses.into_iter().zip(probes) {
                if incremental {
                    stats.incremental_rescores += 1;
                } else {
                    stats.full_rescores += 1;
                }
                cache.insert_key(key, probe);
                out[i] = Some(probe);
            }
        }
        out.truncate(answered);
        let probes = out
            .into_iter()
            .map(|p| p.expect("every answered slot scored"))
            .collect();
        (probes, stats, answered)
    }

    /// Probes the unperturbed input (the reference decision).
    pub fn score_identity(&self) -> Probe {
        self.score_identity_counted().0
    }

    /// Serves the identity probe from the attached cache, without ever
    /// issuing one — `None` when uncached or not memoised. A served probe
    /// counts as a cache hit (it is one); a refusal bumps no counters.
    pub fn peek_identity(&self) -> Option<Probe> {
        let cache = self.cache?;
        let key = (self.ctx, self.task.subject_id(), Vec::new());
        if cache.peek_key(&key) {
            cache.lookup_key(&key)
        } else {
            None
        }
    }

    /// Probes the unperturbed input, reporting whether the probe was answered
    /// by the cache (`true`) or issued to the black box (`false`).
    pub fn score_identity_counted(&self) -> (Probe, bool) {
        if let Some(cache) = self.cache {
            let key = (self.ctx, self.task.subject_id(), Vec::new());
            if let Some(probe) = cache.lookup_key(&key) {
                return (probe, true);
            }
            let probe = self.task.probe_graph(self.graph, self.query);
            cache.insert_key(key, probe);
            return (probe, false);
        }
        (self.task.probe_graph(self.graph, self.query), false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::{DecisionModel, ExpertRelevanceTask};
    use exes_expert_search::TfIdfRanker;
    use exes_graph::{CollabGraph, CollabGraphBuilder, GraphView, PersonId, Perturbation};

    fn graph() -> CollabGraph {
        let mut b = CollabGraphBuilder::new();
        let people: Vec<_> = (0..12)
            .map(|i| b.add_person(&format!("p{i}"), [format!("s{}", i % 4), "common".into()]))
            .collect();
        for w in people.windows(2) {
            b.add_edge(w[0], w[1]);
        }
        b.build()
    }

    fn candidate_sets(g: &CollabGraph) -> Vec<PerturbationSet> {
        let mut sets = Vec::new();
        for p in g.people() {
            for &s in g.person_skills(p) {
                sets.push(PerturbationSet::singleton(Perturbation::RemoveSkill {
                    person: p,
                    skill: s,
                }));
            }
        }
        sets
    }

    #[test]
    fn parallel_and_sequential_scores_are_identical() {
        let g = graph();
        let q = Query::parse("common s0", g.vocab()).unwrap();
        let ranker = TfIdfRanker::default();
        let task = ExpertRelevanceTask::new(&ranker, PersonId(0), 3);
        let sets = candidate_sets(&g);
        assert!(sets.len() > exes_parallel::MIN_PARALLEL_ITEMS);
        let parallel = ProbeBatch::new(&task, &g, &q, true).score(&sets);
        let sequential = ProbeBatch::new(&task, &g, &q, false).score(&sets);
        assert_eq!(parallel, sequential);
        // Drive the probe closure through real worker threads regardless of
        // the host's core count (the engine itself sizes its pool from the
        // hardware, which may be a single core on CI).
        let eval = |set: &PerturbationSet| {
            let (view, pq) = set.apply(&g, &q);
            task.probe(&view, &pq)
        };
        let threaded = exes_parallel::parallel_map_with_threads(&sets, 4, eval);
        assert_eq!(threaded, sequential);
    }

    #[test]
    fn identity_probe_matches_direct_call() {
        let g = graph();
        let q = Query::parse("common", g.vocab()).unwrap();
        let ranker = TfIdfRanker::default();
        let task = ExpertRelevanceTask::new(&ranker, PersonId(2), 3);
        let engine = ProbeBatch::new(&task, &g, &q, true);
        assert_eq!(engine.score_identity(), task.probe(&g, &q));
        assert!(engine.is_parallel());
        assert!(!engine.is_cached());
    }

    #[test]
    fn export_import_roundtrips_entries_into_warm_hits() {
        let g = graph();
        let q = Query::parse("common s1", g.vocab()).unwrap();
        let ranker = TfIdfRanker::default();
        let task = ExpertRelevanceTask::new(&ranker, PersonId(1), 3);
        let cache = ProbeCache::new(256);
        for set in candidate_sets(&g) {
            let (view, pq) = set.apply(&g, &q);
            cache.insert(&g, &q, &task, &set, task.probe(&view, &pq));
        }
        let exported = cache.export_entries();
        assert_eq!(exported.len(), cache.len());

        // A fresh cache fed the exported tuples answers every original key
        // as a hit, with the same probes.
        let restored = ProbeCache::new(256);
        assert_eq!(restored.import_entries(exported), cache.len());
        for set in candidate_sets(&g) {
            let (view, pq) = set.apply(&g, &q);
            assert_eq!(
                restored.lookup(&g, &q, &task, &set),
                Some(task.probe(&view, &pq))
            );
        }
        assert_eq!(restored.misses(), 0);
        // Import plays by capacity rules: a tiny cache ends up bounded.
        let tiny = ProbeCache::with_shards(4, 1);
        tiny.import_entries(cache.export_entries());
        assert!(tiny.len() <= 4);
    }

    #[test]
    fn empty_batch_is_fine() {
        let g = graph();
        let q = Query::parse("common", g.vocab()).unwrap();
        let ranker = TfIdfRanker::default();
        let task = ExpertRelevanceTask::new(&ranker, PersonId(0), 3);
        assert!(ProbeBatch::new(&task, &g, &q, true).score(&[]).is_empty());
    }

    #[test]
    fn cached_scores_match_uncached_and_warm_runs_stop_probing() {
        let g = graph();
        let q = Query::parse("common s0", g.vocab()).unwrap();
        let ranker = TfIdfRanker::default();
        let task = ExpertRelevanceTask::new(&ranker, PersonId(0), 3);
        let sets = candidate_sets(&g);
        let cache = ProbeCache::new(0);
        let uncached = ProbeBatch::new(&task, &g, &q, false).score(&sets);
        let engine = ProbeBatch::new(&task, &g, &q, true).with_cache(&cache);
        assert!(engine.is_cached());
        let (cold, cold_stats) = engine.score_counted(&sets);
        assert_eq!(cold, uncached);
        assert_eq!(cold_stats.probed, sets.len());
        assert_eq!(cold_stats.cache_hits, 0);
        let (warm, warm_stats) = engine.score_counted(&sets);
        assert_eq!(warm, uncached);
        assert_eq!(warm_stats.probed, 0);
        assert_eq!(warm_stats.cache_hits, sets.len());
        assert_eq!(cache.hits(), sets.len() as u64);
        assert_eq!(cache.misses(), sets.len() as u64);
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(cache.len(), sets.len());
    }

    #[test]
    fn cache_keys_are_canonical_and_subject_scoped() {
        let g = graph();
        let q = Query::parse("common s0", g.vocab()).unwrap();
        let ranker = TfIdfRanker::default();
        let task = ExpertRelevanceTask::new(&ranker, PersonId(0), 3);
        let s0 = g.vocab().id("s0").unwrap();
        let common = g.vocab().id("common").unwrap();
        let a = Perturbation::RemoveSkill {
            person: PersonId(0),
            skill: s0,
        };
        let b = Perturbation::RemoveSkill {
            person: PersonId(0),
            skill: common,
        };
        let ab: PerturbationSet = [a, b].into_iter().collect();
        let ba: PerturbationSet = [b, a].into_iter().collect();
        let cache = ProbeCache::new(0);
        let engine = ProbeBatch::new(&task, &g, &q, false).with_cache(&cache);
        let (_, cold) = engine.score_counted(std::slice::from_ref(&ab));
        assert_eq!(cold.probed, 1);
        // Reversed insertion order canonicalises to the same key: pure hit.
        let (_, warm) = engine.score_counted(std::slice::from_ref(&ba));
        assert_eq!(warm.probed, 0);
        assert_eq!(warm.cache_hits, 1);
        // A different subject must not alias, even with an identical delta.
        let other_task = ExpertRelevanceTask::new(&ranker, PersonId(5), 3);
        let other = ProbeBatch::new(&other_task, &g, &q, false).with_cache(&cache);
        let (_, other_stats) = other.score_counted(std::slice::from_ref(&ab));
        assert_eq!(other_stats.probed, 1);
        // A different query changes the context fingerprint: miss again.
        let q2 = Query::parse("s1", g.vocab()).unwrap();
        let requeried = ProbeBatch::new(&task, &g, &q2, false).with_cache(&cache);
        let (_, requeried_stats) = requeried.score_counted(std::slice::from_ref(&ab));
        assert_eq!(requeried_stats.probed, 1);
    }

    #[test]
    fn identity_probe_is_memoised_too() {
        let g = graph();
        let q = Query::parse("common", g.vocab()).unwrap();
        let ranker = TfIdfRanker::default();
        let task = ExpertRelevanceTask::new(&ranker, PersonId(2), 3);
        let cache = ProbeCache::new(0);
        let engine = ProbeBatch::new(&task, &g, &q, false).with_cache(&cache);
        let (cold, cold_hit) = engine.score_identity_counted();
        assert!(!cold_hit);
        let (warm, warm_hit) = engine.score_identity_counted();
        assert!(warm_hit);
        assert_eq!(cold, warm);
        assert_eq!(cold, task.probe(&g, &q));
    }

    #[test]
    fn bounded_cache_evicts_but_stays_correct() {
        let g = graph();
        let q = Query::parse("common s0", g.vocab()).unwrap();
        let ranker = TfIdfRanker::default();
        let task = ExpertRelevanceTask::new(&ranker, PersonId(0), 3);
        let sets = candidate_sets(&g);
        // Tiny single-shard cache: far smaller than the batch, so it must
        // evict repeatedly — correctness (output identity) must survive.
        let cache = ProbeCache::with_shards(4, 1);
        let uncached = ProbeBatch::new(&task, &g, &q, false).score(&sets);
        let engine = ProbeBatch::new(&task, &g, &q, false).with_cache(&cache);
        let (cold, _) = engine.score_counted(&sets);
        assert_eq!(cold, uncached);
        assert!(cache.len() <= 4, "capacity bound violated: {}", cache.len());
        // Eviction pressure is visible: the batch overflows the bound many
        // times over, so entries were dropped in bulk sweeps.
        assert!(cache.evicted() > 0);
        assert!(cache.eviction_sweeps() > 0);
        assert!(format!("{cache:?}").contains("evicted"));
        let (warm, _) = engine.score_counted(&sets);
        assert_eq!(warm, uncached);
        // clear() resets eviction counters alongside hits/misses.
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 0);
        assert_eq!(cache.evicted(), 0);
        assert_eq!(cache.eviction_sweeps(), 0);
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let g = graph();
        let q = Query::parse("common s0", g.vocab()).unwrap();
        let ranker = TfIdfRanker::default();
        let task = ExpertRelevanceTask::new(&ranker, PersonId(0), 3);
        let sets = candidate_sets(&g);
        let cache = ProbeCache::new(0);
        let engine = ProbeBatch::new(&task, &g, &q, false).with_cache(&cache);
        engine.score(&sets);
        engine.score(&sets);
        assert_eq!(cache.evicted(), 0);
        assert_eq!(cache.eviction_sweeps(), 0);
    }

    #[test]
    fn context_tracks_graph_fingerprint_query_and_model() {
        let g = graph();
        let q = Query::parse("common", g.vocab()).unwrap();
        // Same content, separately built: same context (cache survives a
        // graph reload or an identical rebuild).
        let same = graph();
        assert_eq!(
            ProbeCache::context(&g, &q, 7),
            ProbeCache::context(&same, &q, 7)
        );
        // A structural change, a different query, or a different model
        // fingerprint moves the context.
        let changed = g.with_edge_added(PersonId(0), PersonId(5)).unwrap();
        assert_ne!(
            ProbeCache::context(&g, &q, 7),
            ProbeCache::context(&changed, &q, 7)
        );
        let q2 = Query::parse("s1", g.vocab()).unwrap();
        assert_ne!(
            ProbeCache::context(&g, &q, 7),
            ProbeCache::context(&g, &q2, 7)
        );
        assert_ne!(
            ProbeCache::context(&g, &q, 7),
            ProbeCache::context(&g, &q, 8)
        );
    }

    #[test]
    fn caches_isolate_models_by_fingerprint() {
        let g = graph();
        let q = Query::parse("common s0", g.vocab()).unwrap();
        let ranker = TfIdfRanker::default();
        let sets = candidate_sets(&g);
        let cache = ProbeCache::new(0);
        // Same subject, same query, same ranker — but a different cutoff k:
        // a different model fingerprint, so nothing may alias.
        let k3 = ExpertRelevanceTask::new(&ranker, PersonId(0), 3);
        let k4 = ExpertRelevanceTask::new(&ranker, PersonId(0), 4);
        let (_, cold) = ProbeBatch::new(&k3, &g, &q, false)
            .with_cache(&cache)
            .score_counted(&sets);
        assert_eq!(cold.probed, sets.len());
        let (probes, other) = ProbeBatch::new(&k4, &g, &q, false)
            .with_cache(&cache)
            .score_counted(&sets);
        assert_eq!(other.cache_hits, 0, "k=4 must not replay k=3's probes");
        assert_eq!(other.probed, sets.len());
        // And the k=4 answers really are the k=4 model's own.
        let uncached = ProbeBatch::new(&k4, &g, &q, false).score(&sets);
        assert_eq!(probes, uncached);
    }

    #[test]
    fn dyn_erased_tasks_probe_through_the_same_engine() {
        let g = graph();
        let q = Query::parse("common s0", g.vocab()).unwrap();
        let ranker = TfIdfRanker::default();
        let task = ExpertRelevanceTask::new(&ranker, PersonId(0), 3);
        let sets = candidate_sets(&g);
        let cache = ProbeCache::new(0);
        let concrete = ProbeBatch::new(&task, &g, &q, false)
            .with_cache(&cache)
            .score(&sets);
        // The boxed, type-erased view of the same task shares fingerprints
        // and results with the concrete one — warm from its cache entries.
        let erased: &dyn crate::tasks::ErasedDecisionModel = &task;
        let engine: ProbeBatch<'_, dyn crate::tasks::ErasedDecisionModel> =
            ProbeBatch::new(erased, &g, &q, false).with_cache(&cache);
        let (probes, stats) = engine.score_counted(&sets);
        assert_eq!(probes, concrete);
        assert_eq!(stats.probed, 0, "erased view must hit the concrete entries");
        assert_eq!(engine.score_identity(), task.probe(&g, &q));
    }

    #[test]
    fn planned_scoring_is_identical_and_counts_incremental_rescores() {
        use crate::tasks::ErasedDecisionModel;
        let g = graph();
        let q = Query::parse("common s0", g.vocab()).unwrap();
        let ranker = TfIdfRanker::default();
        let task = ExpertRelevanceTask::new(&ranker, PersonId(0), 3);
        let sets = candidate_sets(&g);
        let unplanned = ProbeBatch::new(&task, &g, &q, false).score(&sets);
        let plan = ErasedDecisionModel::plan(&task, &g, &q).expect("tf-idf supports plans");
        let engine = ProbeBatch::new(&task, &g, &q, false).with_plan(&plan);
        assert!(engine.is_planned());
        let (probes, stats) = engine.score_counted(&sets);
        // TF-IDF's incremental path is exact: planned scoring is
        // byte-identical to the full path.
        assert_eq!(probes, unplanned);
        assert_eq!(stats.probed, sets.len());
        assert_eq!(stats.incremental_rescores + stats.full_rescores, sets.len());
        assert!(
            stats.incremental_rescores > 0,
            "skill/edge singletons on a 12-person graph must localize"
        );
    }

    #[test]
    fn plans_are_memoised_per_context_through_the_cache() {
        let g = graph();
        let q = Query::parse("common s0", g.vocab()).unwrap();
        let ranker = TfIdfRanker::default();
        let cache = ProbeCache::new(0);
        let a = ExpertRelevanceTask::new(&ranker, PersonId(0), 3);
        let b = ExpertRelevanceTask::new(&ranker, PersonId(5), 3);
        let plan_a = cache.plan_for(&g, &q, &a).expect("plan built");
        // A second subject of the same (graph, query, model) context shares
        // the cached plan: the baseline is subject-independent.
        let plan_b = cache.plan_for(&g, &q, &b).expect("plan shared");
        assert!(Arc::ptr_eq(&plan_a, &plan_b));
        assert_eq!(cache.plans_len(), 1);
        // A different query is a different context.
        let q2 = Query::parse("s1", g.vocab()).unwrap();
        let _ = cache.plan_for(&g, &q2, &a).expect("plan built");
        assert_eq!(cache.plans_len(), 2);
        // clear() drops memoised plans alongside probes.
        cache.clear();
        assert_eq!(cache.plans_len(), 0);
    }

    #[test]
    fn plan_memo_hits_and_misses_are_counted() {
        let g = graph();
        let q = Query::parse("common s0", g.vocab()).unwrap();
        let ranker = TfIdfRanker::default();
        let cache = ProbeCache::new(0);
        let a = ExpertRelevanceTask::new(&ranker, PersonId(0), 3);
        let b = ExpertRelevanceTask::new(&ranker, PersonId(5), 3);
        assert_eq!((cache.plan_hits(), cache.plan_misses()), (0, 0));
        let mut stats = BatchStats::default();
        let _ = cache.plan_for_counted(&g, &q, &a, &mut stats);
        assert_eq!((stats.plan_hits, stats.plan_misses), (0, 1));
        // A second subject of the same context is a memo hit.
        let mut stats = BatchStats::default();
        let _ = cache.plan_for_counted(&g, &q, &b, &mut stats);
        assert_eq!((stats.plan_hits, stats.plan_misses), (1, 0));
        assert_eq!((cache.plan_hits(), cache.plan_misses()), (1, 1));
        // clear() resets the lifetime counters alongside everything else.
        cache.clear();
        assert_eq!((cache.plan_hits(), cache.plan_misses()), (0, 0));
    }

    #[test]
    fn cost_estimates_classify_without_touching_counters() {
        let g = graph();
        let q = Query::parse("common s0", g.vocab()).unwrap();
        let ranker = TfIdfRanker::default();
        let task = ExpertRelevanceTask::new(&ranker, PersonId(0), 3);
        let cache = ProbeCache::new(0);
        // Nothing memoised: cold, and the peek bumps no counters.
        assert_eq!(cache.estimate(&g, &q, &task), CostEstimate::Cold);
        assert!(CostEstimate::Cold.is_cold());
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
        // A memoised plan upgrades the context to incremental.
        let _ = cache.plan_for(&g, &q, &task).expect("plan built");
        assert_eq!(cache.estimate(&g, &q, &task), CostEstimate::Incremental);
        // A memoised identity probe upgrades the subject to warm …
        let engine = ProbeBatch::new(&task, &g, &q, false).with_cache(&cache);
        let _ = engine.score_identity_counted();
        assert_eq!(cache.estimate(&g, &q, &task), CostEstimate::Warm);
        assert!(!CostEstimate::Warm.is_cold());
        // … but only for that subject: another subject of the same context
        // still classifies as incremental (the plan is shared, probes aren't).
        let other = ExpertRelevanceTask::new(&ranker, PersonId(5), 3);
        assert_eq!(cache.estimate(&g, &q, &other), CostEstimate::Incremental);
        // A different query is a fresh, cold context.
        let q2 = Query::parse("s1", g.vocab()).unwrap();
        assert_eq!(cache.estimate(&g, &q2, &task), CostEstimate::Cold);
        assert_eq!(CostEstimate::Warm.tag(), "warm");
        assert_eq!(CostEstimate::Incremental.tag(), "incremental");
        assert_eq!(CostEstimate::Cold.tag(), "cold");
    }

    #[test]
    fn budget_tracker_charges_and_reports() {
        let unbounded = ProbeBudget::UNBOUNDED.tracker();
        assert_eq!(unbounded.remaining(), None);
        assert_eq!(unbounded.completeness(false), Completeness::Exhaustive);
        assert!(!ProbeBudget::UNBOUNDED.is_bounded());
        assert_eq!(ProbeBudget::bounded(7).limit(), Some(7));

        let mut tracker = ProbeBudget::bounded(10).tracker();
        assert_eq!(tracker.remaining(), Some(10));
        tracker.charge(6);
        assert_eq!(tracker.remaining(), Some(4));
        tracker.charge(4);
        assert_eq!(tracker.remaining(), Some(0));
        assert_eq!(
            tracker.completeness(true),
            Completeness::Budgeted {
                spent: 10,
                budget: 10
            }
        );
        assert!(tracker.completeness(true).is_budgeted());
        // A search that finished within budget stays exhaustive.
        assert_eq!(tracker.completeness(false), Completeness::Exhaustive);
        assert_eq!(Completeness::default(), Completeness::Exhaustive);

        let zero = ProbeBudget::bounded(0).tracker();
        assert_eq!(zero.remaining(), Some(0));
        assert_eq!(
            zero.completeness(true),
            Completeness::Budgeted {
                spent: 0,
                budget: 0
            }
        );
    }

    #[test]
    fn budgeted_scoring_answers_the_affordable_prefix() {
        let g = graph();
        let q = Query::parse("common s0", g.vocab()).unwrap();
        let ranker = TfIdfRanker::default();
        let task = ExpertRelevanceTask::new(&ranker, PersonId(0), 3);
        let sets = candidate_sets(&g);
        let reference = ProbeBatch::new(&task, &g, &q, false).score(&sets);

        // Uncached: the prefix is exactly the budget.
        let engine = ProbeBatch::new(&task, &g, &q, false);
        let (probes, stats, answered) = engine.score_counted_budgeted(&sets, Some(5));
        assert_eq!(answered, 5);
        assert_eq!(stats.probed, 5);
        assert_eq!(probes, reference[..5]);
        // Unbounded budget is plain scoring.
        let (all, _, n) = engine.score_counted_budgeted(&sets, None);
        assert_eq!(n, sets.len());
        assert_eq!(all, reference);

        // Cached & warm: hits are free, so a zero budget answers everything.
        let cache = ProbeCache::new(0);
        let cached = ProbeBatch::new(&task, &g, &q, false).with_cache(&cache);
        let (_, cold_stats, cold_n) = cached.score_counted_budgeted(&sets, Some(3));
        assert_eq!(cold_n, 3);
        assert_eq!(cold_stats.probed, 3);
        let (warm, warm_stats, warm_n) = cached.score_counted_budgeted(&sets, Some(0));
        assert_eq!(warm_n, 3, "the three memoised probes are free");
        assert_eq!(warm_stats.probed, 0);
        assert_eq!(warm, reference[..3]);
        // Fully warmed, a zero budget answers the entire batch.
        let _ = cached.score_counted(&sets);
        let (full, full_stats, full_n) = cached.score_counted_budgeted(&sets, Some(0));
        assert_eq!(full_n, sets.len());
        assert_eq!(full_stats.probed, 0);
        assert_eq!(full, reference);
    }

    #[test]
    fn identity_peek_never_probes() {
        let g = graph();
        let q = Query::parse("common", g.vocab()).unwrap();
        let ranker = TfIdfRanker::default();
        let task = ExpertRelevanceTask::new(&ranker, PersonId(2), 3);
        // Uncached engines have nothing to peek at.
        assert!(ProbeBatch::new(&task, &g, &q, false)
            .peek_identity()
            .is_none());
        let cache = ProbeCache::new(0);
        let engine = ProbeBatch::new(&task, &g, &q, false).with_cache(&cache);
        assert!(engine.peek_identity().is_none());
        // A refused peek bumps no counters.
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
        let (probe, _) = engine.score_identity_counted();
        // A served peek is a real cache hit and counts as one.
        assert_eq!(engine.peek_identity(), Some(probe));
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn batch_stats_merge_accumulates_every_field() {
        let mut acc = BatchStats {
            probed: 1,
            cache_hits: 2,
            cache_misses: 3,
            incremental_rescores: 4,
            full_rescores: 5,
            plan_hits: 6,
            plan_misses: 7,
        };
        acc.merge(&acc.clone());
        assert_eq!(
            acc,
            BatchStats {
                probed: 2,
                cache_hits: 4,
                cache_misses: 6,
                incremental_rescores: 8,
                full_rescores: 10,
                plan_hits: 12,
                plan_misses: 14,
            }
        );
    }
}
