//! The batched probe engine: the one place where candidate perturbation sets
//! meet the black box.
//!
//! ExES spends essentially all of its time here — every counterfactual
//! explanation issues hundreds to thousands of probes, each of which ranks the
//! whole (perturbed) graph. Probes are pure functions of `(graph, query,
//! perturbation set)`, so a batch of candidates can be scored on every core
//! the machine has. [`ProbeBatch::score`] does exactly that, with one hard
//! guarantee: **the returned probes are identical, in content and order, to
//! scoring the batch sequentially.** Beam search and the exhaustive baseline
//! both lean on that guarantee to stay deterministic.

use crate::tasks::{DecisionModel, Probe};
use exes_graph::{CollabGraph, PerturbationSet, Query};

/// Number of candidate sets scored per batch by the search loops. Bounds how
/// much work is in flight between deadline checks and early-exit tests.
pub const PROBE_CHUNK: usize = 128;

/// Scores batches of candidate [`PerturbationSet`]s against one decision
/// model, in parallel when profitable.
///
/// The engine is deliberately stateless between calls: each probe builds its
/// own [`exes_graph::PerturbedGraph`] overlay (construction cost proportional
/// to the delta, not the graph) and ranks through it. Overlay accessors are
/// allocation-free borrows, so per-probe cost is dominated by the black box
/// itself — which is what makes spreading probes across threads worthwhile.
#[derive(Debug, Clone, Copy)]
pub struct ProbeBatch<'a, D> {
    task: &'a D,
    graph: &'a CollabGraph,
    query: &'a Query,
    parallel: bool,
}

impl<'a, D: DecisionModel> ProbeBatch<'a, D> {
    /// Creates the engine. `parallel == false` forces sequential scoring
    /// (useful for differential tests and single-core deployments); the
    /// results are identical either way.
    pub fn new(task: &'a D, graph: &'a CollabGraph, query: &'a Query, parallel: bool) -> Self {
        ProbeBatch {
            task,
            graph,
            query,
            parallel,
        }
    }

    /// Whether this engine scores batches in parallel.
    pub fn is_parallel(&self) -> bool {
        self.parallel
    }

    /// Probes the black box once per candidate set, returning probes in input
    /// order.
    pub fn score(&self, sets: &[PerturbationSet]) -> Vec<Probe> {
        let eval = |set: &PerturbationSet| {
            let (view, perturbed_query) = set.apply(self.graph, self.query);
            self.task.probe(&view, &perturbed_query)
        };
        if self.parallel {
            exes_parallel::parallel_map(sets, eval)
        } else {
            sets.iter().map(eval).collect()
        }
    }

    /// Probes the unperturbed input (the reference decision).
    pub fn score_identity(&self) -> Probe {
        self.task.probe(self.graph, self.query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::ExpertRelevanceTask;
    use exes_expert_search::TfIdfRanker;
    use exes_graph::{CollabGraph, CollabGraphBuilder, GraphView, PersonId, Perturbation};

    fn graph() -> CollabGraph {
        let mut b = CollabGraphBuilder::new();
        let people: Vec<_> = (0..12)
            .map(|i| b.add_person(&format!("p{i}"), [format!("s{}", i % 4), "common".into()]))
            .collect();
        for w in people.windows(2) {
            b.add_edge(w[0], w[1]);
        }
        b.build()
    }

    fn candidate_sets(g: &CollabGraph) -> Vec<PerturbationSet> {
        let mut sets = Vec::new();
        for p in g.people() {
            for &s in g.person_skills(p) {
                sets.push(PerturbationSet::singleton(Perturbation::RemoveSkill {
                    person: p,
                    skill: s,
                }));
            }
        }
        sets
    }

    #[test]
    fn parallel_and_sequential_scores_are_identical() {
        let g = graph();
        let q = Query::parse("common s0", g.vocab()).unwrap();
        let ranker = TfIdfRanker::default();
        let task = ExpertRelevanceTask::new(&ranker, PersonId(0), 3);
        let sets = candidate_sets(&g);
        assert!(sets.len() > exes_parallel::MIN_PARALLEL_ITEMS);
        let parallel = ProbeBatch::new(&task, &g, &q, true).score(&sets);
        let sequential = ProbeBatch::new(&task, &g, &q, false).score(&sets);
        assert_eq!(parallel, sequential);
        // Drive the probe closure through real worker threads regardless of
        // the host's core count (the engine itself sizes its pool from the
        // hardware, which may be a single core on CI).
        let eval = |set: &PerturbationSet| {
            let (view, pq) = set.apply(&g, &q);
            task.probe(&view, &pq)
        };
        let threaded = exes_parallel::parallel_map_with_threads(&sets, 4, eval);
        assert_eq!(threaded, sequential);
    }

    #[test]
    fn identity_probe_matches_direct_call() {
        let g = graph();
        let q = Query::parse("common", g.vocab()).unwrap();
        let ranker = TfIdfRanker::default();
        let task = ExpertRelevanceTask::new(&ranker, PersonId(2), 3);
        let engine = ProbeBatch::new(&task, &g, &q, true);
        assert_eq!(engine.score_identity(), task.probe(&g, &q));
        assert!(engine.is_parallel());
    }

    #[test]
    fn empty_batch_is_fine() {
        let g = graph();
        let q = Query::parse("common", g.vocab()).unwrap();
        let ranker = TfIdfRanker::default();
        let task = ExpertRelevanceTask::new(&ranker, PersonId(0), 3);
        assert!(ProbeBatch::new(&task, &g, &q, true).score(&[]).is_empty());
    }
}
