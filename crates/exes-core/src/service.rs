//! Multi-subject explanation serving: the batch front-door over the explainer.
//!
//! An interactive deployment of ExES does not answer one explanation request
//! at a time — it answers *floods* of them: every member of a search result
//! page may ask "why am I (not) in the top-k?", and popular queries repeat
//! across users. [`ExesService`] is the first step toward that serving story:
//!
//! * requests are **grouped by query** (the graph is fixed per batch), and
//!   each group shares one [`ProbeCache`] — probes memoised for one subject's
//!   search are reused by every later request for the same subject and by
//!   repeated identical requests;
//! * **identical requests are deduplicated** — computed once, answered
//!   everywhere;
//! * distinct requests within a group are **sharded across the
//!   `exes-parallel` pool**, one worker per request (per-probe parallelism is
//!   disabled inside workers so the pool is not oversubscribed);
//! * responses are **deterministic and position-stable**: response `i` answers
//!   request `i`, and its explanations are byte-identical to running that
//!   request alone, because probes are pure functions and the cache only ever
//!   returns what the black box would have said.
//!
//! The per-request hit/miss *counters* (unlike the explanations) can vary
//! slightly between runs when concurrent workers race to fill the same cache
//! entry; [`ServiceReport`] aggregates them per batch.

use crate::config::ExesConfig;
use crate::counterfactual::CounterfactualResult;
use crate::explainer::Exes;
use crate::probe::ProbeCache;
use crate::tasks::ExpertRelevanceTask;
use exes_expert_search::ExpertRanker;
use exes_graph::{CollabGraph, PersonId, Query};
use exes_linkpred::LinkPredictor;
use rustc_hash::FxHashMap;

/// Which counterfactual family a request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExplanationKind {
    /// Skill removals/additions (Section 3.3.1).
    Skills,
    /// Query augmentations (Section 3.3.2).
    QueryAugmentation,
    /// Collaboration link removals/additions (Section 3.3.3).
    Links,
}

/// One explanation request: "explain `subject`'s decision for `query`".
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ExplanationRequest {
    /// The person whose selection status is being explained.
    pub subject: PersonId,
    /// The query the decision was made for.
    pub query: Query,
    /// The counterfactual family requested.
    pub kind: ExplanationKind,
}

impl ExplanationRequest {
    /// A skill-counterfactual request.
    pub fn skills(subject: PersonId, query: Query) -> Self {
        ExplanationRequest {
            subject,
            query,
            kind: ExplanationKind::Skills,
        }
    }

    /// A query-augmentation request.
    pub fn query_augmentation(subject: PersonId, query: Query) -> Self {
        ExplanationRequest {
            subject,
            query,
            kind: ExplanationKind::QueryAugmentation,
        }
    }

    /// A collaboration-link request.
    pub fn links(subject: PersonId, query: Query) -> Self {
        ExplanationRequest {
            subject,
            query,
            kind: ExplanationKind::Links,
        }
    }
}

/// Aggregate accounting for one [`ExesService::explain_batch`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceReport {
    /// Number of requests in the batch.
    pub requests: usize,
    /// Number of (graph, query) groups the batch was split into — one probe
    /// cache is created per group.
    pub groups: usize,
    /// Requests answered by cloning another identical request's result
    /// instead of searching again.
    pub duplicate_requests: usize,
    /// Probe lookups answered by the per-group caches.
    pub cache_hits: u64,
    /// Probe lookups that missed and went to the black box.
    pub cache_misses: u64,
    /// Black-box probes issued while answering the batch (sum of
    /// [`CounterfactualResult::probes`] over *unique* computations —
    /// deduplicated responses are clones and issue none).
    pub probes: usize,
}

impl ServiceReport {
    /// Fraction of cache lookups served from memory (0.0 for an empty batch).
    pub fn hit_rate(&self) -> f64 {
        let total = (self.cache_hits + self.cache_misses) as f64;
        if total == 0.0 {
            0.0
        } else {
            self.cache_hits as f64 / total
        }
    }
}

/// A batch explanation server over one graph, one expert ranker, and one
/// explainer configuration.
///
/// The service owns a clone of the explainer with per-probe parallelism
/// disabled: parallelism comes from sharding *requests* across the
/// `exes-parallel` pool instead, which scales with batch size and avoids
/// nested thread pools. Single requests can still be answered through the
/// plain [`Exes`] facade when intra-request parallelism is preferable.
#[derive(Debug)]
pub struct ExesService<'a, L, R> {
    exes: Exes<L>,
    ranker: &'a R,
    graph: &'a CollabGraph,
}

impl<'a, L, R> ExesService<'a, L, R>
where
    L: LinkPredictor + Clone + Sync,
    R: ExpertRanker + Sync,
{
    /// Builds the service from an explainer (cloned; any stored probe cache is
    /// detached — the service manages one cache per request group itself), the
    /// expert ranker whose decisions are being explained, and the graph every
    /// request in this service targets.
    pub fn new(exes: &Exes<L>, ranker: &'a R, graph: &'a CollabGraph) -> Self {
        let mut inner = exes.clone().without_probe_cache();
        inner.config_mut().parallel_probes = false;
        ExesService {
            exes: inner,
            ranker,
            graph,
        }
    }

    /// The service's (request-sharded) configuration.
    pub fn config(&self) -> &ExesConfig {
        self.exes.config()
    }

    /// Answers a batch of requests. Response `i` answers request `i`.
    ///
    /// Requests are grouped by query; each group gets a fresh [`ProbeCache`]
    /// shared by all of the group's workers, and identical requests are
    /// computed once. Explanations are deterministic — byte-identical to
    /// answering each request alone, in any batch composition.
    pub fn explain_batch(
        &self,
        requests: &[ExplanationRequest],
    ) -> (Vec<CounterfactualResult>, ServiceReport) {
        // Group request indices by query, preserving first-occurrence order.
        let mut group_of: FxHashMap<&Query, usize> = FxHashMap::default();
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for (i, request) in requests.iter().enumerate() {
            let next = groups.len();
            let g = *group_of.entry(&request.query).or_insert(next);
            if g == groups.len() {
                groups.push(Vec::new());
            }
            groups[g].push(i);
        }

        let mut report = ServiceReport {
            requests: requests.len(),
            groups: groups.len(),
            ..Default::default()
        };
        let mut responses: Vec<Option<CounterfactualResult>> = vec![None; requests.len()];
        for idxs in &groups {
            // Deduplicate identical requests inside the group: the first
            // occurrence computes, the rest clone its response.
            let mut representative: FxHashMap<&ExplanationRequest, usize> = FxHashMap::default();
            let mut unique: Vec<usize> = Vec::new();
            let mut duplicate_of: Vec<(usize, usize)> = Vec::new();
            for &i in idxs {
                match representative.get(&requests[i]) {
                    Some(&rep) => duplicate_of.push((i, rep)),
                    None => {
                        representative.insert(&requests[i], i);
                        unique.push(i);
                    }
                }
            }
            report.duplicate_requests += duplicate_of.len();

            // One memo cache per (graph, query) group, shared by its workers.
            let cache = ProbeCache::for_config(self.exes.config());
            let answered =
                exes_parallel::parallel_map(&unique, |&i| self.answer(&requests[i], &cache));
            for (&i, result) in unique.iter().zip(answered) {
                // Only unique computations issue probes; duplicate responses
                // below are clones and must not be double-counted.
                report.probes += result.probes;
                responses[i] = Some(result);
            }
            for (i, rep) in duplicate_of {
                responses[i] = responses[rep].clone();
            }
            report.cache_hits += cache.hits();
            report.cache_misses += cache.misses();
        }

        let responses: Vec<CounterfactualResult> = responses
            .into_iter()
            .map(|r| r.expect("every request answered"))
            .collect();
        (responses, report)
    }

    /// Answers one request against the group's shared cache.
    fn answer(&self, request: &ExplanationRequest, cache: &ProbeCache) -> CounterfactualResult {
        let task = ExpertRelevanceTask::new(self.ranker, request.subject, self.exes.config().k);
        match request.kind {
            ExplanationKind::Skills => {
                self.exes
                    .counterfactual_skills_with(&task, self.graph, &request.query, Some(cache))
            }
            ExplanationKind::QueryAugmentation => {
                self.exes
                    .counterfactual_query_with(&task, self.graph, &request.query, Some(cache))
            }
            ExplanationKind::Links => {
                self.exes
                    .counterfactual_links_with(&task, self.graph, &request.query, Some(cache))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OutputMode;
    use exes_datasets::{DatasetConfig, QueryWorkload, SyntheticDataset};
    use exes_embedding::{EmbeddingConfig, SkillEmbedding};
    use exes_expert_search::{ExpertRanker, PropagationRanker};
    use exes_linkpred::CommonNeighbors;

    struct Fixture {
        ds: SyntheticDataset,
        exes: Exes<CommonNeighbors>,
        ranker: PropagationRanker,
    }

    fn fixture() -> Fixture {
        let ds = SyntheticDataset::generate(&DatasetConfig::tiny("service", 7));
        let embedding = SkillEmbedding::train(
            ds.corpus.token_bags(),
            ds.graph.vocab().len(),
            &EmbeddingConfig {
                dim: 16,
                ..Default::default()
            },
        );
        let cfg = ExesConfig::fast()
            .with_k(4)
            .with_num_candidates(5)
            .with_output_mode(OutputMode::SmoothRank);
        Fixture {
            ds,
            exes: Exes::new(cfg, embedding, CommonNeighbors),
            ranker: PropagationRanker::default(),
        }
    }

    fn workload_requests(f: &Fixture) -> Vec<ExplanationRequest> {
        let workload = QueryWorkload::answerable(&f.ds.graph, 2, 2, 3, 3, 11);
        let mut requests = Vec::new();
        for query in workload.queries() {
            let ranking = f.ranker.rank_all(&f.ds.graph, query);
            // A few subjects inside and outside the top-k, mixed kinds.
            for (rank, &(person, _)) in ranking.entries().iter().take(6).enumerate() {
                let kind = match rank % 3 {
                    0 => ExplanationKind::Skills,
                    1 => ExplanationKind::QueryAugmentation,
                    _ => ExplanationKind::Links,
                };
                requests.push(ExplanationRequest {
                    subject: person,
                    query: query.clone(),
                    kind,
                });
            }
        }
        requests
    }

    #[test]
    fn batch_matches_individual_requests_exactly() {
        let f = fixture();
        let service = ExesService::new(&f.exes, &f.ranker, &f.ds.graph);
        let requests = workload_requests(&f);
        let (responses, report) = service.explain_batch(&requests);
        assert_eq!(responses.len(), requests.len());
        assert_eq!(report.requests, requests.len());
        assert_eq!(report.groups, 2);

        // Each response must be byte-identical to answering its request alone
        // through a sequential, uncached explainer.
        let mut solo_exes = f.exes.clone();
        solo_exes.config_mut().parallel_probes = false;
        for (request, response) in requests.iter().zip(&responses) {
            let task = ExpertRelevanceTask::new(&f.ranker, request.subject, solo_exes.config().k);
            let solo = match request.kind {
                ExplanationKind::Skills => {
                    solo_exes.counterfactual_skills(&task, &f.ds.graph, &request.query)
                }
                ExplanationKind::QueryAugmentation => {
                    solo_exes.counterfactual_query(&task, &f.ds.graph, &request.query)
                }
                ExplanationKind::Links => {
                    solo_exes.counterfactual_links(&task, &f.ds.graph, &request.query)
                }
            };
            assert_eq!(response.explanations, solo.explanations);
            assert_eq!(response.timed_out, solo.timed_out);
        }
    }

    #[test]
    fn repeated_requests_are_deduplicated_and_batches_are_deterministic() {
        let f = fixture();
        let service = ExesService::new(&f.exes, &f.ranker, &f.ds.graph);
        let mut requests = workload_requests(&f);
        let n = requests.len();
        // Simulate repeated traffic: the same requests arrive again.
        requests.extend(requests.clone());
        let (responses, report) = service.explain_batch(&requests);
        assert_eq!(report.duplicate_requests, n);
        for i in 0..n {
            assert_eq!(responses[i].explanations, responses[n + i].explanations);
        }
        // Two identical batches produce identical explanations.
        let (again, _) = service.explain_batch(&requests);
        for (a, b) in responses.iter().zip(&again) {
            assert_eq!(a.explanations, b.explanations);
        }
    }

    #[test]
    fn report_accounting_is_sane_and_duplicates_cost_no_probes() {
        let f = fixture();
        let service = ExesService::new(&f.exes, &f.ranker, &f.ds.graph);
        let requests = workload_requests(&f);
        let (_, report) = service.explain_batch(&requests);
        // Cold per-group caches must miss at least once per unique request.
        assert!(report.cache_misses >= requests.len() as u64);
        assert!(report.probes > 0);
        assert!((0.0..=1.0).contains(&report.hit_rate()));
        assert_eq!(report.duplicate_requests, 0);

        // Duplicated traffic answers from the dedup layer: no extra searches,
        // so the black-box probe count cannot grow with the duplicates.
        let mut doubled = requests.clone();
        doubled.extend(requests.clone());
        let (_, doubled_report) = service.explain_batch(&doubled);
        assert_eq!(doubled_report.duplicate_requests, requests.len());
        assert_eq!(doubled_report.groups, report.groups);
    }

    #[test]
    fn empty_batch_is_fine() {
        let f = fixture();
        let service = ExesService::new(&f.exes, &f.ranker, &f.ds.graph);
        let (responses, report) = service.explain_batch(&[]);
        assert!(responses.is_empty());
        assert_eq!(report, ServiceReport::default());
        assert_eq!(report.hit_rate(), 0.0);
        assert!(!service.config().parallel_probes);
    }
}
