//! Multi-subject explanation serving over a live, epoch-versioned graph.
//!
//! An interactive deployment of ExES does not answer one explanation request
//! at a time against a frozen graph — it answers *floods* of requests while
//! skills are learned, collaborations form, and people join. [`ExesService`]
//! is that serving layer:
//!
//! * the service owns an [`Arc<GraphStore>`] rather than borrowing a graph,
//!   so a single long-lived service value can interleave
//!   [`ExesService::commit`] with [`ExesService::explain_batch`] — no
//!   lifetime parameter, no invalidated handles;
//! * each batch pins the **epoch** current at entry ([`GraphSnapshot`]), so
//!   in-flight requests finish against the graph they started on even if a
//!   commit lands mid-batch;
//! * one **persistent [`ProbeCache`]** serves every batch. Keys carry the
//!   `(fingerprint, query, subject, delta)` context, so an unchanged epoch
//!   keeps its warm cache across unrelated requests and batches — repeat
//!   traffic replays entirely from memory, issuing **zero** black-box probes
//!   — while a committed update moves the fingerprint and naturally misses
//!   into fresh entries (stale epochs' entries age out via LRU eviction);
//! * requests are **grouped by query** and **identical requests are
//!   deduplicated** — computed once, answered everywhere;
//! * distinct requests are **sharded across the `exes-parallel` pool**, one
//!   worker per request (per-probe parallelism is disabled inside workers so
//!   the pool is not oversubscribed);
//! * responses are **deterministic and position-stable**: response `i`
//!   answers request `i`, byte-identical to running that request alone,
//!   because probes are pure functions and the cache only ever returns what
//!   the black box would have said.
//!
//! The per-request hit/miss *counters* (unlike the explanations) can vary
//! slightly between runs when concurrent workers race to fill the same cache
//! entry; [`ServiceReport`] aggregates them per batch, alongside the epoch
//! answered and the cache's eviction pressure.

use crate::config::ExesConfig;
use crate::counterfactual::CounterfactualResult;
use crate::explainer::Exes;
use crate::probe::ProbeCache;
use crate::tasks::ExpertRelevanceTask;
use exes_expert_search::ExpertRanker;
use exes_graph::{CollabGraph, GraphSnapshot, GraphStore, PersonId, Query, UpdateBatch};
use exes_linkpred::LinkPredictor;
use rustc_hash::FxHashMap;
use std::sync::Arc;

/// Which counterfactual family a request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExplanationKind {
    /// Skill removals/additions (Section 3.3.1).
    Skills,
    /// Query augmentations (Section 3.3.2).
    QueryAugmentation,
    /// Collaboration link removals/additions (Section 3.3.3).
    Links,
}

/// One explanation request: "explain `subject`'s decision for `query`".
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ExplanationRequest {
    /// The person whose selection status is being explained.
    pub subject: PersonId,
    /// The query the decision was made for.
    pub query: Query,
    /// The counterfactual family requested.
    pub kind: ExplanationKind,
}

impl ExplanationRequest {
    /// A skill-counterfactual request.
    pub fn skills(subject: PersonId, query: Query) -> Self {
        ExplanationRequest {
            subject,
            query,
            kind: ExplanationKind::Skills,
        }
    }

    /// A query-augmentation request.
    pub fn query_augmentation(subject: PersonId, query: Query) -> Self {
        ExplanationRequest {
            subject,
            query,
            kind: ExplanationKind::QueryAugmentation,
        }
    }

    /// A collaboration-link request.
    pub fn links(subject: PersonId, query: Query) -> Self {
        ExplanationRequest {
            subject,
            query,
            kind: ExplanationKind::Links,
        }
    }
}

/// Aggregate accounting for one [`ExesService::explain_batch`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceReport {
    /// The graph epoch the batch was answered against.
    pub epoch: u64,
    /// Number of requests in the batch.
    pub requests: usize,
    /// Number of query groups the batch was split into.
    pub groups: usize,
    /// Requests answered by cloning another identical request's result
    /// instead of searching again.
    pub duplicate_requests: usize,
    /// Probe lookups answered by the service's persistent cache during this
    /// batch.
    pub cache_hits: u64,
    /// Probe lookups that missed and went to the black box during this batch.
    pub cache_misses: u64,
    /// Memoised probes dropped by bulk evictions over this batch's window —
    /// the cache's eviction-pressure gauge. Persistent non-zero values mean
    /// the working set exceeds `ExesConfig::probe_cache_capacity`. Windows
    /// of concurrently running batches overlap, so do not sum this across
    /// reports; `ProbeCache::evicted()` holds the exact lifetime total.
    pub cache_evictions: u64,
    /// Black-box probes issued while answering the batch (sum of
    /// [`CounterfactualResult::probes`] over *unique* computations —
    /// deduplicated responses are clones and issue none).
    pub probes: usize,
}

impl ServiceReport {
    /// Fraction of cache lookups served from memory (0.0 for an empty batch).
    pub fn hit_rate(&self) -> f64 {
        let total = (self.cache_hits + self.cache_misses) as f64;
        if total == 0.0 {
            0.0
        } else {
            self.cache_hits as f64 / total
        }
    }
}

/// A batch explanation server over a live graph store, one expert ranker, and
/// one explainer configuration.
///
/// The service owns everything it needs — explainer clone, ranker, store
/// handle, probe cache — so it has no graph lifetime parameter: it can be
/// moved into threads, stored in application state, and kept alive across
/// arbitrarily many commits. Parallelism comes from sharding *requests*
/// across the `exes-parallel` pool (per-probe parallelism is disabled
/// internally to avoid nested pools); single requests can still be answered
/// through the plain [`Exes`] facade when intra-request parallelism is
/// preferable.
///
/// The persistent probe cache is sound to share across queries, batches and
/// epochs because every key carries the (graph fingerprint, query) context
/// and the subject — but it cannot see the ranker or `k` behind the
/// [`crate::tasks::DecisionModel`] trait, which is why the service owns the
/// ranker: one service = one model configuration = one cache.
#[derive(Debug)]
pub struct ExesService<L, R> {
    exes: Exes<L>,
    ranker: R,
    store: Arc<GraphStore>,
    cache: ProbeCache,
}

impl<L, R> ExesService<L, R>
where
    L: LinkPredictor + Clone + Sync,
    R: ExpertRanker + Sync,
{
    /// Builds the service from an explainer (cloned; any stored probe cache
    /// is detached — the service manages its own persistent cache), the
    /// expert ranker whose decisions are being explained (owned), and the
    /// live store every request in this service targets.
    pub fn new(exes: &Exes<L>, ranker: R, store: Arc<GraphStore>) -> Self {
        let mut inner = exes.clone().without_probe_cache();
        inner.config_mut().parallel_probes = false;
        let cache = ProbeCache::for_config(inner.config());
        ExesService {
            exes: inner,
            ranker,
            store,
            cache,
        }
    }

    /// Convenience constructor wrapping a static graph in a fresh
    /// [`GraphStore`] (epoch 0) with default store tunables.
    pub fn from_graph(exes: &Exes<L>, ranker: R, graph: CollabGraph) -> Self {
        Self::new(exes, ranker, Arc::new(GraphStore::new(graph)))
    }

    /// The service's (request-sharded) configuration.
    pub fn config(&self) -> &ExesConfig {
        self.exes.config()
    }

    /// The live store this service serves from.
    pub fn store(&self) -> &Arc<GraphStore> {
        &self.store
    }

    /// The current epoch's snapshot.
    pub fn snapshot(&self) -> Arc<GraphSnapshot> {
        self.store.snapshot()
    }

    /// The service's persistent probe cache (for inspection/metrics).
    pub fn probe_cache(&self) -> &ProbeCache {
        &self.cache
    }

    /// Commits an update batch to the store, publishing a new epoch.
    ///
    /// Subsequent [`ExesService::explain_batch`] calls answer against the new
    /// epoch; batches already in flight finish against the epoch they pinned
    /// at entry. The persistent cache needs no flush: the new epoch's
    /// fingerprint misses into fresh entries while the old epoch's entries
    /// age out.
    pub fn commit(&self, batch: &UpdateBatch) -> exes_graph::Result<Arc<GraphSnapshot>> {
        self.store.commit(batch)
    }

    /// Answers a batch of requests against the epoch current at entry.
    /// Response `i` answers request `i`.
    ///
    /// Requests are grouped by query and identical requests are computed
    /// once; all groups share the service's persistent cache. Explanations
    /// are deterministic — byte-identical to answering each request alone,
    /// in any batch composition, on any warmth of the cache.
    pub fn explain_batch(
        &self,
        requests: &[ExplanationRequest],
    ) -> (Vec<CounterfactualResult>, ServiceReport) {
        let snapshot = self.store.snapshot();
        self.explain_batch_on(&snapshot, requests)
    }

    /// [`ExesService::explain_batch`] against an explicit (e.g. older)
    /// epoch's snapshot.
    pub fn explain_batch_on(
        &self,
        snapshot: &GraphSnapshot,
        requests: &[ExplanationRequest],
    ) -> (Vec<CounterfactualResult>, ServiceReport) {
        // Group request indices by query, preserving first-occurrence order.
        let mut group_of: FxHashMap<&Query, usize> = FxHashMap::default();
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for (i, request) in requests.iter().enumerate() {
            let next = groups.len();
            let g = *group_of.entry(&request.query).or_insert(next);
            if g == groups.len() {
                groups.push(Vec::new());
            }
            groups[g].push(i);
        }

        let mut report = ServiceReport {
            epoch: snapshot.epoch(),
            requests: requests.len(),
            groups: groups.len(),
            ..Default::default()
        };
        let evicted_before = self.cache.evicted();
        let graph = snapshot.graph();
        let mut responses: Vec<Option<CounterfactualResult>> = vec![None; requests.len()];
        for idxs in &groups {
            // Deduplicate identical requests inside the group: the first
            // occurrence computes, the rest clone its response.
            let mut representative: FxHashMap<&ExplanationRequest, usize> = FxHashMap::default();
            let mut unique: Vec<usize> = Vec::new();
            let mut duplicate_of: Vec<(usize, usize)> = Vec::new();
            for &i in idxs {
                match representative.get(&requests[i]) {
                    Some(&rep) => duplicate_of.push((i, rep)),
                    None => {
                        representative.insert(&requests[i], i);
                        unique.push(i);
                    }
                }
            }
            report.duplicate_requests += duplicate_of.len();

            let answered =
                exes_parallel::parallel_map(&unique, |&i| self.answer(graph, &requests[i]));
            for (&i, result) in unique.iter().zip(answered) {
                // Only unique computations issue probes; duplicate responses
                // below are clones and must not be double-counted. Hit/miss
                // counts come from the per-request results, so they stay
                // exact even when several batches share the service (and its
                // cache) concurrently.
                report.probes += result.probes;
                report.cache_hits += result.cache_hits as u64;
                report.cache_misses += result.cache_misses as u64;
                responses[i] = Some(result);
            }
            for (i, rep) in duplicate_of {
                responses[i] = responses[rep].clone();
            }
        }
        // Eviction pressure is a cache-global gauge, reported as the delta
        // over this batch's window. Windows of concurrent batches overlap,
        // so the same eviction can appear in several reports: read it as a
        // pressure gauge, not a summable counter (ProbeCache::evicted() is
        // the exact cache-lifetime total).
        report.cache_evictions = self.cache.evicted().saturating_sub(evicted_before);

        let responses: Vec<CounterfactualResult> = responses
            .into_iter()
            .map(|r| r.expect("every request answered"))
            .collect();
        (responses, report)
    }

    /// Answers one request against the persistent cache.
    fn answer(&self, graph: &CollabGraph, request: &ExplanationRequest) -> CounterfactualResult {
        let task = ExpertRelevanceTask::new(&self.ranker, request.subject, self.exes.config().k);
        let cache = Some(&self.cache);
        match request.kind {
            ExplanationKind::Skills => {
                self.exes
                    .counterfactual_skills_with(&task, graph, &request.query, cache)
            }
            ExplanationKind::QueryAugmentation => {
                self.exes
                    .counterfactual_query_with(&task, graph, &request.query, cache)
            }
            ExplanationKind::Links => {
                self.exes
                    .counterfactual_links_with(&task, graph, &request.query, cache)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OutputMode;
    use exes_datasets::{DatasetConfig, QueryWorkload, SyntheticDataset};
    use exes_embedding::{EmbeddingConfig, SkillEmbedding};
    use exes_expert_search::{ExpertRanker, PropagationRanker};
    use exes_graph::GraphView;
    use exes_linkpred::CommonNeighbors;

    struct Fixture {
        ds: SyntheticDataset,
        exes: Exes<CommonNeighbors>,
        ranker: PropagationRanker,
    }

    fn fixture() -> Fixture {
        let ds = SyntheticDataset::generate(&DatasetConfig::tiny("service", 7));
        let embedding = SkillEmbedding::train(
            ds.corpus.token_bags(),
            ds.graph.vocab().len(),
            &EmbeddingConfig {
                dim: 16,
                ..Default::default()
            },
        );
        let cfg = ExesConfig::fast()
            .with_k(4)
            .with_num_candidates(5)
            .with_output_mode(OutputMode::SmoothRank);
        Fixture {
            ds,
            exes: Exes::new(cfg, embedding, CommonNeighbors),
            ranker: PropagationRanker::default(),
        }
    }

    fn service(f: &Fixture) -> ExesService<CommonNeighbors, PropagationRanker> {
        ExesService::from_graph(&f.exes, f.ranker, f.ds.graph.clone())
    }

    fn workload_requests(f: &Fixture) -> Vec<ExplanationRequest> {
        let workload = QueryWorkload::answerable(&f.ds.graph, 2, 2, 3, 3, 11);
        let mut requests = Vec::new();
        for query in workload.queries() {
            let ranking = f.ranker.rank_all(&f.ds.graph, query);
            // A few subjects inside and outside the top-k, mixed kinds.
            for (rank, &(person, _)) in ranking.entries().iter().take(6).enumerate() {
                let kind = match rank % 3 {
                    0 => ExplanationKind::Skills,
                    1 => ExplanationKind::QueryAugmentation,
                    _ => ExplanationKind::Links,
                };
                requests.push(ExplanationRequest {
                    subject: person,
                    query: query.clone(),
                    kind,
                });
            }
        }
        requests
    }

    #[test]
    fn batch_matches_individual_requests_exactly() {
        let f = fixture();
        let service = service(&f);
        let requests = workload_requests(&f);
        let (responses, report) = service.explain_batch(&requests);
        assert_eq!(responses.len(), requests.len());
        assert_eq!(report.requests, requests.len());
        assert_eq!(report.groups, 2);
        assert_eq!(report.epoch, 0);

        // Each response must be byte-identical to answering its request alone
        // through a sequential, uncached explainer.
        let mut solo_exes = f.exes.clone();
        solo_exes.config_mut().parallel_probes = false;
        for (request, response) in requests.iter().zip(&responses) {
            let task = ExpertRelevanceTask::new(&f.ranker, request.subject, solo_exes.config().k);
            let solo = match request.kind {
                ExplanationKind::Skills => {
                    solo_exes.counterfactual_skills(&task, &f.ds.graph, &request.query)
                }
                ExplanationKind::QueryAugmentation => {
                    solo_exes.counterfactual_query(&task, &f.ds.graph, &request.query)
                }
                ExplanationKind::Links => {
                    solo_exes.counterfactual_links(&task, &f.ds.graph, &request.query)
                }
            };
            assert_eq!(response.explanations, solo.explanations);
            assert_eq!(response.timed_out, solo.timed_out);
        }
    }

    #[test]
    fn repeated_requests_are_deduplicated_and_batches_are_deterministic() {
        let f = fixture();
        let service = service(&f);
        let mut requests = workload_requests(&f);
        let n = requests.len();
        // Simulate repeated traffic: the same requests arrive again.
        requests.extend(requests.clone());
        let (responses, report) = service.explain_batch(&requests);
        assert_eq!(report.duplicate_requests, n);
        for i in 0..n {
            assert_eq!(responses[i].explanations, responses[n + i].explanations);
        }
        // Two identical batches produce identical explanations.
        let (again, _) = service.explain_batch(&requests);
        for (a, b) in responses.iter().zip(&again) {
            assert_eq!(a.explanations, b.explanations);
        }
    }

    #[test]
    fn warm_epoch_replays_from_cache_with_zero_probes() {
        let f = fixture();
        let service = service(&f);
        let requests = workload_requests(&f);
        let (cold_responses, cold) = service.explain_batch(&requests);
        assert!(cold.probes > 0);
        // Same epoch, same requests: the persistent cache answers everything.
        let (warm_responses, warm) = service.explain_batch(&requests);
        assert_eq!(warm.probes, 0);
        assert_eq!(warm.cache_misses, 0);
        assert!(warm.cache_hits > 0);
        for (a, b) in cold_responses.iter().zip(&warm_responses) {
            assert_eq!(a.explanations, b.explanations);
        }
    }

    #[test]
    fn commit_invalidates_the_warm_cache_and_serves_the_new_epoch() {
        let f = fixture();
        let service = service(&f);
        let requests = workload_requests(&f);
        let (_, cold) = service.explain_batch(&requests);
        assert_eq!(cold.epoch, 0);

        // Commit a real update: the top subject of the first query loses one
        // of their skills.
        let subject = requests[0].subject;
        let skill = f.ds.graph.person_skills(subject)[0];
        let name = f.ds.graph.vocab().name(skill).unwrap().to_string();
        let mut batch = UpdateBatch::new();
        batch.remove_skill(subject, &name);
        let snap = service.commit(&batch).unwrap();
        assert_eq!(snap.epoch(), 1);
        assert!(!snap.graph().person_has_skill(subject, skill));

        // The new epoch misses into fresh entries (cold again) and answers
        // against the updated graph.
        let (responses, after) = service.explain_batch(&requests);
        assert_eq!(after.epoch, 1);
        assert!(after.probes > 0);
        // Responses are byte-identical to a solo uncached run on the new
        // epoch's graph.
        let mut solo_exes = f.exes.clone();
        solo_exes.config_mut().parallel_probes = false;
        let request = &requests[0];
        let task = ExpertRelevanceTask::new(&f.ranker, request.subject, solo_exes.config().k);
        let solo = solo_exes.counterfactual_skills(&task, snap.graph(), &request.query);
        assert_eq!(responses[0].explanations, solo.explanations);

        // The new epoch warms up in turn: repeating the batch replays it.
        let (_, warm_new) = service.explain_batch(&requests);
        assert_eq!(warm_new.epoch, 1);
        assert_eq!(warm_new.probes, 0);
    }

    #[test]
    fn in_flight_snapshot_survives_commits() {
        let f = fixture();
        let service = service(&f);
        let requests = workload_requests(&f);
        let pinned = service.snapshot();
        let (before, _) = service.explain_batch_on(&pinned, &requests);

        let mut batch = UpdateBatch::new();
        batch.add_person("newcomer", ["fresh-skill"]);
        service.commit(&batch).unwrap();
        assert_eq!(service.snapshot().epoch(), 1);

        // The pinned epoch-0 snapshot still answers, byte-identically.
        let (after, report) = service.explain_batch_on(&pinned, &requests);
        assert_eq!(report.epoch, 0);
        for (a, b) in before.iter().zip(&after) {
            assert_eq!(a.explanations, b.explanations);
        }
    }

    #[test]
    fn report_accounting_is_sane_and_duplicates_cost_no_probes() {
        let f = fixture();
        let service = service(&f);
        let requests = workload_requests(&f);
        let (_, report) = service.explain_batch(&requests);
        // A cold persistent cache must miss at least once per unique request.
        assert!(report.cache_misses >= requests.len() as u64);
        assert!(report.probes > 0);
        assert!((0.0..=1.0).contains(&report.hit_rate()));
        assert_eq!(report.duplicate_requests, 0);

        // Duplicated traffic answers from the dedup layer: no extra searches,
        // so the black-box probe count cannot grow with the duplicates.
        let mut doubled = requests.clone();
        doubled.extend(requests.clone());
        let (_, doubled_report) = service.explain_batch(&doubled);
        assert_eq!(doubled_report.duplicate_requests, requests.len());
        assert_eq!(doubled_report.groups, report.groups);
    }

    #[test]
    fn eviction_pressure_is_reported() {
        let f = fixture();
        let mut exes = f.exes.clone();
        // A cache far too small for the workload: evictions must show up.
        exes.config_mut().probe_cache_capacity = 8;
        exes.config_mut().probe_cache_shards = 1;
        let service = ExesService::from_graph(&exes, f.ranker, f.ds.graph.clone());
        let requests = workload_requests(&f);
        let (_, report) = service.explain_batch(&requests);
        assert!(report.cache_evictions > 0);
        assert_eq!(report.cache_evictions, service.probe_cache().evicted());
    }

    #[test]
    fn empty_batch_is_fine() {
        let f = fixture();
        let service = service(&f);
        let (responses, report) = service.explain_batch(&[]);
        assert!(responses.is_empty());
        assert_eq!(report, ServiceReport::default());
        assert_eq!(report.hit_rate(), 0.0);
        assert!(!service.config().parallel_probes);
    }
}
