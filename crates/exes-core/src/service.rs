//! Multi-model explanation serving over a live, epoch-versioned graph.
//!
//! An interactive deployment of ExES does not answer one explanation request
//! at a time against a frozen graph and a single hard-wired model — it
//! answers *floods* of requests, for every explanation family the paper
//! defines, against many model configurations at once, while skills are
//! learned, collaborations form, and people join. [`ExesService`] is that
//! serving layer:
//!
//! * a **model registry** ([`crate::model::ModelRegistry`]) hosts any number
//!   of named decision models — any [`exes_expert_search::ExpertRanker`] at
//!   any `k`, any [`exes_team::TeamFormer`] with its seed policy and signal
//!   ranker — behind the sealed [`crate::tasks::ErasedDecisionModel`] erasure
//!   layer; requests address models by [`ModelId`];
//! * one [`ExplanationRequest`] enum covers **all five of the paper's
//!   explanation families** — counterfactual skill edits, query
//!   augmentations and collaboration edits, plus factual (SHAP)
//!   skill / query-term / collaboration attributions — answered uniformly as
//!   [`Explanation`] responses;
//! * the service owns an [`Arc<GraphStore>`] rather than borrowing a graph,
//!   so a single long-lived service value can interleave
//!   [`ExesService::commit`] with [`ExesService::explain_batch`] — no
//!   lifetime parameter, no invalidated handles; each batch pins the
//!   **epoch** current at entry ([`GraphSnapshot`]);
//! * one **persistent [`ProbeCache`]** serves every batch *and every model*:
//!   keys carry the `(fingerprint, query, model, subject, delta)` context,
//!   where the model component is the registered configuration's fingerprint
//!   (ranker name + parameters + `k` + seed) — so repeat traffic on an
//!   unchanged epoch replays with **zero** black-box probes, while distinct
//!   model configurations can never answer from each other's entries and a
//!   committed update (or a reconfigured model) naturally misses cold;
//! * requests are **grouped by query** (cheaply — queries are [`Arc`]-shared,
//!   so regrouping a batch never clones or re-hashes a term vector that was
//!   already seen), **identical requests are deduplicated**, and distinct
//!   requests are **sharded across the `exes-parallel` pool**;
//! * responses are **deterministic and position-stable**: response `i`
//!   answers request `i`, byte-identical to running that request alone
//!   through the [`Exes`] facade, because probes are pure functions and the
//!   cache only ever returns what the black box would have said.
//!
//! The per-request hit/miss *counters* (unlike the explanations) can vary
//! slightly between runs when concurrent workers race to fill the same cache
//! entry; [`ServiceReport`] aggregates them per batch, alongside the epoch
//! answered and the cache's eviction pressure.

use crate::config::ExesConfig;
use crate::counterfactual::CounterfactualResult;
use crate::explainer::Exes;
use crate::factual::FactualExplanation;
use crate::model::{ModelId, ModelRegistry, ModelSpec, ModelSpecError};
use crate::probe::{Completeness, CostEstimate, ProbeCache};
use exes_graph::{CollabGraph, GraphSnapshot, GraphStore, GraphView, PersonId, Query, UpdateBatch};
use exes_linkpred::LinkPredictor;
use rustc_hash::FxHashMap;
use std::fmt;
use std::sync::Arc;

/// Which explanation family a request asks for — the full menu of Section 3:
/// three counterfactual families (3.3) and three factual SHAP feature spaces
/// (3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExplanationKind {
    /// Counterfactual skill removals/additions (Section 3.3.1).
    CounterfactualSkills,
    /// Counterfactual query augmentations (Section 3.3.2).
    CounterfactualQuery,
    /// Counterfactual collaboration-link removals/additions (Section 3.3.3).
    CounterfactualLinks,
    /// Factual SHAP attributions over neighbourhood skills (Section 3.2,
    /// Pruning Strategy 1).
    FactualSkills,
    /// Factual SHAP attributions over the query's keywords (Section 3.2).
    FactualQueryTerms,
    /// Factual SHAP attributions over collaborations (Section 3.2, Pruning
    /// Strategy 2).
    FactualCollaborations,
}

impl ExplanationKind {
    /// True for the three factual (SHAP) families.
    pub fn is_factual(self) -> bool {
        matches!(
            self,
            ExplanationKind::FactualSkills
                | ExplanationKind::FactualQueryTerms
                | ExplanationKind::FactualCollaborations
        )
    }

    /// True for the three counterfactual families.
    pub fn is_counterfactual(self) -> bool {
        !self.is_factual()
    }
}

/// One explanation request: "explain `model`'s decision about `subject` for
/// `query`, as a `kind` explanation".
///
/// The query is [`Arc`]-shared: building a batch of hundreds of requests over
/// a handful of queries clones pointers, not term vectors, and the service's
/// per-query grouping recognises repeated `Arc`s without re-hashing their
/// contents.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ExplanationRequest {
    /// The registered model whose decision is being explained.
    pub model: ModelId,
    /// The person whose selection status is being explained.
    pub subject: PersonId,
    /// The query the decision was made for.
    pub query: Arc<Query>,
    /// The explanation family requested.
    pub kind: ExplanationKind,
}

impl ExplanationRequest {
    /// A request with an explicit [`ExplanationKind`].
    pub fn new(
        model: ModelId,
        subject: PersonId,
        query: impl Into<Arc<Query>>,
        kind: ExplanationKind,
    ) -> Self {
        ExplanationRequest {
            model,
            subject,
            query: query.into(),
            kind,
        }
    }

    /// A counterfactual skill-edit request.
    pub fn counterfactual_skills(
        model: ModelId,
        subject: PersonId,
        query: impl Into<Arc<Query>>,
    ) -> Self {
        Self::new(model, subject, query, ExplanationKind::CounterfactualSkills)
    }

    /// A counterfactual query-augmentation request.
    pub fn counterfactual_query(
        model: ModelId,
        subject: PersonId,
        query: impl Into<Arc<Query>>,
    ) -> Self {
        Self::new(model, subject, query, ExplanationKind::CounterfactualQuery)
    }

    /// A counterfactual collaboration-edit request.
    pub fn counterfactual_links(
        model: ModelId,
        subject: PersonId,
        query: impl Into<Arc<Query>>,
    ) -> Self {
        Self::new(model, subject, query, ExplanationKind::CounterfactualLinks)
    }

    /// A factual skill-SHAP request.
    pub fn factual_skills(model: ModelId, subject: PersonId, query: impl Into<Arc<Query>>) -> Self {
        Self::new(model, subject, query, ExplanationKind::FactualSkills)
    }

    /// A factual query-term-SHAP request.
    pub fn factual_query_terms(
        model: ModelId,
        subject: PersonId,
        query: impl Into<Arc<Query>>,
    ) -> Self {
        Self::new(model, subject, query, ExplanationKind::FactualQueryTerms)
    }

    /// A factual collaboration-SHAP request.
    pub fn factual_collaborations(
        model: ModelId,
        subject: PersonId,
        query: impl Into<Arc<Query>>,
    ) -> Self {
        Self::new(
            model,
            subject,
            query,
            ExplanationKind::FactualCollaborations,
        )
    }
}

/// Why one request in a batch could not be answered.
///
/// A batch front-door serving untrusted traffic must degrade per request, not
/// per batch: one stale [`ModelId`] or out-of-range subject in a 200-request
/// batch yields one `Err` slot while the other 199 requests are answered
/// normally (see [`ExesService::try_explain_batch`]). Errors are detected
/// before any probing starts, so a failed request never costs a black-box
/// probe and never poisons the shared cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// The request addressed a [`ModelId`] this service never issued.
    UnknownModel(ModelId),
    /// The subject does not exist in the epoch the batch was answered
    /// against.
    SubjectOutOfRange {
        /// The subject the request named.
        subject: PersonId,
        /// How many people the answered epoch's graph actually has.
        num_people: usize,
    },
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestError::UnknownModel(id) => write!(
                f,
                "ModelId({}) is not registered here; ids are only valid for \
                 the service that issued them",
                id.index()
            ),
            RequestError::SubjectOutOfRange {
                subject,
                num_people,
            } => write!(
                f,
                "subject {subject} is out of range for this epoch's graph \
                 ({num_people} people)"
            ),
        }
    }
}

impl std::error::Error for RequestError {}

/// A unified explanation response: counterfactual search results and factual
/// SHAP attributions behind one type, so a mixed batch comes back as one
/// position-stable `Vec<Explanation>`.
#[derive(Debug, Clone)]
pub enum Explanation {
    /// The answer to a counterfactual request.
    Counterfactual(CounterfactualResult),
    /// The answer to a factual (SHAP) request.
    Factual(FactualExplanation),
}

impl Explanation {
    /// The counterfactual result, if this answers a counterfactual request.
    pub fn as_counterfactual(&self) -> Option<&CounterfactualResult> {
        match self {
            Explanation::Counterfactual(r) => Some(r),
            Explanation::Factual(_) => None,
        }
    }

    /// The factual explanation, if this answers a factual request.
    pub fn as_factual(&self) -> Option<&FactualExplanation> {
        match self {
            Explanation::Counterfactual(_) => None,
            Explanation::Factual(f) => Some(f),
        }
    }

    /// The counterfactual result; panics on a factual response (for callers
    /// that know their request's kind — response `i` answers request `i`).
    pub fn expect_counterfactual(&self) -> &CounterfactualResult {
        self.as_counterfactual()
            .expect("response answers a factual request, not a counterfactual one")
    }

    /// The factual explanation; panics on a counterfactual response.
    pub fn expect_factual(&self) -> &FactualExplanation {
        self.as_factual()
            .expect("response answers a counterfactual request, not a factual one")
    }

    /// Black-box probes issued while computing this explanation.
    pub fn probes(&self) -> usize {
        match self {
            Explanation::Counterfactual(r) => r.probes,
            Explanation::Factual(f) => f.probes(),
        }
    }

    /// Probe requests answered by the service's persistent cache.
    pub fn cache_hits(&self) -> usize {
        match self {
            Explanation::Counterfactual(r) => r.cache_hits,
            Explanation::Factual(f) => f.cache_hits(),
        }
    }

    /// Black-box probes answered through the incremental (delta-localized)
    /// rescoring path of a per-context baseline plan.
    pub fn incremental_rescores(&self) -> usize {
        match self {
            Explanation::Counterfactual(r) => r.incremental_rescores,
            Explanation::Factual(f) => f.incremental_rescores(),
        }
    }

    /// Black-box probes that performed a full re-rank (the honest fallback).
    pub fn full_rescores(&self) -> usize {
        match self {
            Explanation::Counterfactual(r) => r.full_rescores,
            Explanation::Factual(f) => f.full_rescores(),
        }
    }

    /// Whether the computation ran to its natural end or was cut short by the
    /// configured [`crate::probe::ProbeBudget`]. A `Budgeted` explanation is
    /// best-so-far, reported honestly — never a silent truncation.
    pub fn completeness(&self) -> Completeness {
        match self {
            Explanation::Counterfactual(r) => r.completeness,
            Explanation::Factual(f) => f.completeness(),
        }
    }
}

/// Aggregate accounting for one [`ExesService::explain_batch`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceReport {
    /// The graph epoch the batch was answered against.
    pub epoch: u64,
    /// Number of requests in the batch.
    pub requests: usize,
    /// Number of query groups the batch was split into.
    pub groups: usize,
    /// Requests answered by cloning another identical request's result
    /// instead of searching again.
    pub duplicate_requests: usize,
    /// Requests answered with a [`RequestError`] instead of an explanation
    /// (unknown model, out-of-range subject). Failed requests never issue
    /// probes. Always 0 for batches answered through the panicking
    /// [`ExesService::explain_batch`] surface.
    pub failed_requests: usize,
    /// Probe lookups answered by the service's persistent cache during this
    /// batch.
    pub cache_hits: u64,
    /// Probe lookups that missed and went to the black box during this batch.
    pub cache_misses: u64,
    /// Memoised probes dropped by bulk evictions over this batch's window —
    /// the cache's eviction-pressure gauge. Persistent non-zero values mean
    /// the working set exceeds `ExesConfig::probe_cache_capacity`. Windows
    /// of concurrently running batches overlap, so do not sum this across
    /// reports; `ProbeCache::evicted()` holds the exact lifetime total.
    pub cache_evictions: u64,
    /// Black-box probes issued while answering the batch (summed over
    /// *unique* computations — deduplicated responses are clones and issue
    /// none).
    pub probes: usize,
    /// Of the batch's black-box probes, those answered through the
    /// incremental (delta-localized) rescoring path of a baseline plan.
    pub incremental_rescores: u64,
    /// Of the batch's black-box probes, those that performed a full re-rank —
    /// no plan for the model, a perturbed query, or a delta outside the plan's
    /// localization guarantees.
    pub full_fallback_rescores: u64,
    /// Baseline-plan requests served from the plan memo over this batch's
    /// window. Like `cache_evictions`, a delta over a cache-global counter:
    /// windows of concurrent batches overlap, so read it as a gauge
    /// (`ProbeCache::plan_hits()` holds the exact lifetime total).
    pub plan_hits: u64,
    /// Baseline-plan requests that built a fresh plan over this batch's
    /// window (same windowing caveat as `plan_hits`).
    pub plan_misses: u64,
    /// Responses whose computation was cut short by the configured
    /// [`crate::probe::ProbeBudget`] and returned best-so-far (marked
    /// [`Completeness::Budgeted`]). Always 0 under an unbounded budget.
    pub budgeted_results: usize,
}

impl ServiceReport {
    /// Fraction of cache lookups served from memory (0.0 for an empty batch).
    pub fn hit_rate(&self) -> f64 {
        let total = (self.cache_hits + self.cache_misses) as f64;
        if total == 0.0 {
            0.0
        } else {
            self.cache_hits as f64 / total
        }
    }

    /// Folds another report into this one, producing the aggregate a routing
    /// tier hands back when one client batch was answered by several workers.
    ///
    /// Every counter sums. `epoch` takes the **minimum** of the two — the
    /// gated floor every contributing worker is guaranteed to have reached —
    /// so a client that read `epoch` from a merged report can pass it back as
    /// a read-your-writes gate and every shard will satisfy it. Fold starting
    /// from a real per-worker report, not `ServiceReport::default()`, or the
    /// default's epoch 0 wins the minimum.
    pub fn merge(&mut self, other: &ServiceReport) {
        self.epoch = self.epoch.min(other.epoch);
        self.requests += other.requests;
        self.groups += other.groups;
        self.duplicate_requests += other.duplicate_requests;
        self.failed_requests += other.failed_requests;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_evictions += other.cache_evictions;
        self.probes += other.probes;
        self.incremental_rescores += other.incremental_rescores;
        self.full_fallback_rescores += other.full_fallback_rescores;
        self.plan_hits += other.plan_hits;
        self.plan_misses += other.plan_misses;
        self.budgeted_results += other.budgeted_results;
    }
}

/// A batch explanation server over a live graph store and a registry of
/// decision models.
///
/// The service owns everything it needs — explainer clone, model registry,
/// store handle, probe cache — so it has no graph lifetime parameter: it can
/// be moved into threads, stored in application state, and kept alive across
/// arbitrarily many commits. Parallelism comes from sharding *requests*
/// across the `exes-parallel` pool (per-probe parallelism is disabled
/// internally to avoid nested pools); single requests can still be answered
/// through the plain [`Exes`] facade when intra-request parallelism is
/// preferable.
///
/// The persistent probe cache is sound to share across queries, batches,
/// epochs **and registered models** because every key carries the (graph
/// fingerprint, query, model fingerprint) context and the subject; the model
/// fingerprint is derived from the registered configuration (ranker name +
/// parameters + `k` + seed), so one service = one cache = many models,
/// isolation guaranteed.
///
/// Build one with [`ExesService::builder`] (registering models up front) or
/// [`ExesService::new`] / [`ExesService::from_graph`] plus
/// [`ExesService::register`].
#[derive(Debug)]
pub struct ExesService<L> {
    exes: Exes<L>,
    registry: ModelRegistry,
    store: Arc<GraphStore>,
    cache: ProbeCache,
}

/// Step-wise construction of an [`ExesService`]: attach the explainer and
/// store, register named models, build.
///
/// ```
/// # use exes_core::{Exes, ExesConfig, ExesService, ModelSpec};
/// # use exes_datasets::{DatasetConfig, SyntheticDataset};
/// # use exes_embedding::{EmbeddingConfig, SkillEmbedding};
/// # use exes_expert_search::TfIdfRanker;
/// # use exes_linkpred::CommonNeighbors;
/// # let ds = SyntheticDataset::generate(&DatasetConfig::tiny("builder-doc", 5));
/// # let embedding = SkillEmbedding::train(
/// #     ds.corpus.token_bags(),
/// #     ds.graph.vocab().len(),
/// #     &EmbeddingConfig { dim: 8, ..Default::default() },
/// # );
/// let exes = Exes::new(ExesConfig::fast(), embedding, CommonNeighbors);
/// let service = ExesService::builder_from_graph(&exes, ds.graph.clone())
///     .model("tfidf@5", ModelSpec::expert_ranker(TfIdfRanker::default(), 5))
///     .expect("valid spec")
///     .build();
/// assert!(service.model_id("tfidf@5").is_some());
/// ```
#[derive(Debug)]
pub struct ExesServiceBuilder<L> {
    service: ExesService<L>,
}

impl<L> ExesServiceBuilder<L>
where
    L: LinkPredictor + Clone + Sync,
{
    /// Registers `spec` under `name`; chainable. Fails with a typed
    /// [`ModelSpecError`] on an invalid spec or duplicate name. Look the id
    /// up after [`ExesServiceBuilder::build`] with [`ExesService::model_id`],
    /// or register through [`ExesService::register`] to receive it directly.
    pub fn model(
        mut self,
        name: impl Into<String>,
        spec: ModelSpec,
    ) -> Result<Self, ModelSpecError> {
        self.service.register(name, spec)?;
        Ok(self)
    }

    /// Finishes construction.
    pub fn build(self) -> ExesService<L> {
        self.service
    }
}

impl<L> ExesService<L>
where
    L: LinkPredictor + Clone + Sync,
{
    /// Builds the service from an explainer (cloned; any stored probe cache
    /// is detached — the service manages its own persistent cache) and the
    /// live store every request in this service targets. The model registry
    /// starts empty: add configurations with [`ExesService::register`].
    pub fn new(exes: &Exes<L>, store: Arc<GraphStore>) -> Self {
        let mut inner = exes.clone().without_probe_cache();
        inner.config_mut().parallel_probes = false;
        let cache = ProbeCache::for_config(inner.config());
        ExesService {
            exes: inner,
            registry: ModelRegistry::new(),
            store,
            cache,
        }
    }

    /// Convenience constructor wrapping a static graph in a fresh
    /// [`GraphStore`] (epoch 0) with default store tunables.
    pub fn from_graph(exes: &Exes<L>, graph: CollabGraph) -> Self {
        Self::new(exes, Arc::new(GraphStore::new(graph)))
    }

    /// Starts an [`ExesServiceBuilder`] over a live store.
    pub fn builder(exes: &Exes<L>, store: Arc<GraphStore>) -> ExesServiceBuilder<L> {
        ExesServiceBuilder {
            service: Self::new(exes, store),
        }
    }

    /// Starts an [`ExesServiceBuilder`] over a static graph (epoch 0).
    pub fn builder_from_graph(exes: &Exes<L>, graph: CollabGraph) -> ExesServiceBuilder<L> {
        ExesServiceBuilder {
            service: Self::from_graph(exes, graph),
        }
    }

    /// Registers a model configuration under `name`, returning the
    /// [`ModelId`] requests address it by.
    ///
    /// Models can be added at any point in the service's life; the persistent
    /// cache needs no flush because every entry is scoped by its model's
    /// fingerprint.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        spec: ModelSpec,
    ) -> Result<ModelId, ModelSpecError> {
        self.registry.register(name, spec)
    }

    /// Looks a registered model up by name.
    pub fn model_id(&self, name: &str) -> Option<ModelId> {
        self.registry.id(name)
    }

    /// The service's model registry (names, families, fingerprints).
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// The service's (request-sharded) configuration.
    pub fn config(&self) -> &ExesConfig {
        self.exes.config()
    }

    /// The live store this service serves from.
    pub fn store(&self) -> &Arc<GraphStore> {
        &self.store
    }

    /// The current epoch's snapshot.
    pub fn snapshot(&self) -> Arc<GraphSnapshot> {
        self.store.snapshot()
    }

    /// The service's persistent probe cache (for inspection/metrics).
    pub fn probe_cache(&self) -> &ProbeCache {
        &self.cache
    }

    /// Commits an update batch to the store, publishing a new epoch.
    ///
    /// Subsequent [`ExesService::explain_batch`] calls answer against the new
    /// epoch; batches already in flight finish against the epoch they pinned
    /// at entry. The persistent cache needs no flush: the new epoch's
    /// fingerprint misses into fresh entries while the old epoch's entries
    /// age out.
    pub fn commit(&self, batch: &UpdateBatch) -> exes_graph::Result<Arc<GraphSnapshot>> {
        self.store.commit(batch)
    }

    /// Answers a batch of requests against the epoch current at entry.
    /// Response `i` answers request `i`.
    ///
    /// Requests are grouped by query and identical requests are computed
    /// once; all groups and all models share the service's persistent cache.
    /// Explanations are deterministic — byte-identical to answering each
    /// request alone, in any batch composition, on any warmth of the cache.
    ///
    /// # Panics
    ///
    /// Panics when a request addresses a [`ModelId`] this service never
    /// issued or a subject outside the epoch's graph. Servers fronting
    /// untrusted traffic should use [`ExesService::try_explain_batch`], which
    /// degrades per request instead.
    pub fn explain_batch(
        &self,
        requests: &[ExplanationRequest],
    ) -> (Vec<Explanation>, ServiceReport) {
        let snapshot = self.store.snapshot();
        self.explain_batch_on(&snapshot, requests)
    }

    /// [`ExesService::explain_batch`] against an explicit (e.g. older)
    /// epoch's snapshot.
    pub fn explain_batch_on(
        &self,
        snapshot: &GraphSnapshot,
        requests: &[ExplanationRequest],
    ) -> (Vec<Explanation>, ServiceReport) {
        let (results, report) = self.try_explain_batch_on(snapshot, requests);
        let responses = results
            .into_iter()
            .map(|r| r.unwrap_or_else(|e| panic!("{e}")))
            .collect();
        (responses, report)
    }

    /// [`ExesService::explain_batch`] with per-request error handling: an
    /// unknown [`ModelId`] or an out-of-range subject turns into an
    /// `Err(`[`RequestError`]`)` in that request's slot instead of a panic,
    /// and the rest of the batch is answered normally. Failed requests are
    /// rejected before any probing, so they cost no black-box probes, cannot
    /// poison the shared cache, and are counted in
    /// [`ServiceReport::failed_requests`].
    pub fn try_explain_batch(
        &self,
        requests: &[ExplanationRequest],
    ) -> (Vec<Result<Explanation, RequestError>>, ServiceReport) {
        let snapshot = self.store.snapshot();
        self.try_explain_batch_on(&snapshot, requests)
    }

    /// [`ExesService::try_explain_batch`] against an explicit (e.g. older)
    /// epoch's snapshot.
    pub fn try_explain_batch_on(
        &self,
        snapshot: &GraphSnapshot,
        requests: &[ExplanationRequest],
    ) -> (Vec<Result<Explanation, RequestError>>, ServiceReport) {
        // Group request indices by query, preserving first-occurrence order.
        // Arc-shared queries take the pointer fast path: a term vector is
        // hashed at most once per distinct Arc, not once per request.
        let mut group_of_arc: FxHashMap<*const Query, usize> = FxHashMap::default();
        let mut group_of: FxHashMap<&Query, usize> = FxHashMap::default();
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for (i, request) in requests.iter().enumerate() {
            let ptr = Arc::as_ptr(&request.query);
            let g = match group_of_arc.get(&ptr) {
                Some(&g) => g,
                None => {
                    let next = groups.len();
                    // Content lookup so equal queries behind distinct Arcs
                    // still share a group (and its dedup scope).
                    let g = *group_of.entry(&*request.query).or_insert(next);
                    if g == groups.len() {
                        groups.push(Vec::new());
                    }
                    group_of_arc.insert(ptr, g);
                    g
                }
            };
            groups[g].push(i);
        }

        let mut report = ServiceReport {
            epoch: snapshot.epoch(),
            requests: requests.len(),
            groups: groups.len(),
            ..Default::default()
        };
        let evicted_before = self.cache.evicted();
        let plan_hits_before = self.cache.plan_hits();
        let plan_misses_before = self.cache.plan_misses();
        let graph = snapshot.graph();
        let num_people = graph.num_people();
        let mut responses: Vec<Option<Result<Explanation, RequestError>>> =
            vec![None; requests.len()];
        for idxs in &groups {
            // Deduplicate identical requests inside the group: the first
            // occurrence computes, the rest clone its response. Queries are
            // equal across the whole group by construction, so the dedup key
            // is just (model, subject, kind) — no term-vector hashing.
            let mut representative: FxHashMap<(ModelId, PersonId, ExplanationKind), usize> =
                FxHashMap::default();
            let mut unique: Vec<usize> = Vec::new();
            let mut duplicate_of: Vec<(usize, usize)> = Vec::new();
            for &i in idxs {
                let r = &requests[i];
                match representative.get(&(r.model, r.subject, r.kind)) {
                    Some(&rep) => duplicate_of.push((i, rep)),
                    None => {
                        representative.insert((r.model, r.subject, r.kind), i);
                        unique.push(i);
                    }
                }
            }
            report.duplicate_requests += duplicate_of.len();

            // Validate before probing: a bad request fails alone, costs no
            // probes, and never reaches the engine (or the shared cache).
            let mut answerable: Vec<usize> = Vec::with_capacity(unique.len());
            for &i in &unique {
                let r = &requests[i];
                if self.registry.name(r.model).is_none() {
                    responses[i] = Some(Err(RequestError::UnknownModel(r.model)));
                } else if r.subject.index() >= num_people {
                    responses[i] = Some(Err(RequestError::SubjectOutOfRange {
                        subject: r.subject,
                        num_people,
                    }));
                } else {
                    answerable.push(i);
                }
            }

            let answered =
                exes_parallel::parallel_map(&answerable, |&i| self.answer(graph, &requests[i]));
            for (&i, result) in answerable.iter().zip(answered) {
                // Only unique computations issue probes; duplicate responses
                // below are clones and must not be double-counted. Hit/miss
                // counts come from the per-request results, so they stay
                // exact even when several batches share the service (and its
                // cache) concurrently. Factual explanations count only the
                // probes that reached the black box, all of which were cache
                // misses here (the service always attaches its cache).
                report.probes += result.probes();
                report.cache_hits += result.cache_hits() as u64;
                report.incremental_rescores += result.incremental_rescores() as u64;
                report.full_fallback_rescores += result.full_rescores() as u64;
                report.cache_misses += match &result {
                    Explanation::Counterfactual(r) => r.cache_misses as u64,
                    Explanation::Factual(f) => f.probes() as u64,
                };
                if result.completeness().is_budgeted() {
                    report.budgeted_results += 1;
                }
                responses[i] = Some(Ok(result));
            }
            for (i, rep) in duplicate_of {
                responses[i] = responses[rep].clone();
            }
        }
        // Eviction pressure is a cache-global gauge, reported as the delta
        // over this batch's window. Windows of concurrent batches overlap,
        // so the same eviction can appear in several reports: read it as a
        // pressure gauge, not a summable counter (ProbeCache::evicted() is
        // the exact cache-lifetime total).
        report.cache_evictions = self.cache.evicted().saturating_sub(evicted_before);
        // Plan-memo efficiency over the same window (same overlap caveat).
        report.plan_hits = self.cache.plan_hits().saturating_sub(plan_hits_before);
        report.plan_misses = self.cache.plan_misses().saturating_sub(plan_misses_before);

        let responses: Vec<Result<Explanation, RequestError>> = responses
            .into_iter()
            .map(|r| r.expect("every request answered"))
            .collect();
        report.failed_requests = responses.iter().filter(|r| r.is_err()).count();
        (responses, report)
    }

    /// Classifies the expected cost of answering `request` against the
    /// current epoch, **without probing**: `Warm` when the subject's identity
    /// probe is already memoised for this (epoch, query, model) context,
    /// `Incremental` when (only) the context's baseline plan is, `Cold`
    /// otherwise. Validation mirrors [`ExesService::try_explain_batch`] —
    /// an unknown model or out-of-range subject is a [`RequestError`], so
    /// admission control can reject before queueing.
    ///
    /// Estimation is a pre-admission peek: it never issues a black-box probe
    /// and never perturbs the cache's hit/miss counters or recency order.
    pub fn estimate(&self, request: &ExplanationRequest) -> Result<CostEstimate, RequestError> {
        let snapshot = self.store.snapshot();
        self.estimate_on(&snapshot, request)
    }

    /// [`ExesService::estimate`] against an explicit (e.g. pinned) epoch's
    /// snapshot.
    pub fn estimate_on(
        &self,
        snapshot: &GraphSnapshot,
        request: &ExplanationRequest,
    ) -> Result<CostEstimate, RequestError> {
        if self.registry.name(request.model).is_none() {
            return Err(RequestError::UnknownModel(request.model));
        }
        let graph = snapshot.graph();
        let num_people = graph.num_people();
        if request.subject.index() >= num_people {
            return Err(RequestError::SubjectOutOfRange {
                subject: request.subject,
                num_people,
            });
        }
        let task = self.registry.bind(request.model, request.subject);
        Ok(self.cache.estimate(graph, &request.query, task.as_ref()))
    }

    /// Answers one request against the persistent cache.
    fn answer(&self, graph: &CollabGraph, request: &ExplanationRequest) -> Explanation {
        let task = self.registry.bind(request.model, request.subject);
        let task = task.as_ref();
        let query: &Query = &request.query;
        let cache = Some(&self.cache);
        match request.kind {
            ExplanationKind::CounterfactualSkills => Explanation::Counterfactual(
                self.exes
                    .counterfactual_skills_with(task, graph, query, cache),
            ),
            ExplanationKind::CounterfactualQuery => Explanation::Counterfactual(
                self.exes
                    .counterfactual_query_with(task, graph, query, cache),
            ),
            ExplanationKind::CounterfactualLinks => Explanation::Counterfactual(
                self.exes
                    .counterfactual_links_with(task, graph, query, cache),
            ),
            ExplanationKind::FactualSkills => Explanation::Factual(
                self.exes
                    .factual_skills_with(task, graph, query, true, cache),
            ),
            ExplanationKind::FactualQueryTerms => Explanation::Factual(
                self.exes
                    .factual_query_terms_with(task, graph, query, cache),
            ),
            ExplanationKind::FactualCollaborations => Explanation::Factual(
                self.exes
                    .factual_collaborations_with(task, graph, query, true, cache),
            ),
        }
    }
}

// Compile-time guarantee, not an incidental property: a service over a
// thread-safe link predictor is itself `Send + Sync`, so server workers can
// share one `ExesService` behind an `Arc` (commits interleaving with batches
// from many threads). If a future field breaks this, the build fails here —
// not in a downstream crate's thread spawn.
#[allow(dead_code)]
fn assert_service_is_send_sync<L>()
where
    L: LinkPredictor + Clone + Sync + Send,
{
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ExesService<L>>();
    assert_send_sync::<ExplanationRequest>();
    assert_send_sync::<Explanation>();
    assert_send_sync::<RequestError>();
    assert_send_sync::<ServiceReport>();
}

const _: () = {
    #[allow(dead_code)]
    fn instantiate_for_a_concrete_predictor() {
        assert_service_is_send_sync::<exes_linkpred::CommonNeighbors>();
    }
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OutputMode;
    use crate::model::SeedPolicy;
    use crate::tasks::{ExpertRelevanceTask, TeamMembershipTask};
    use exes_datasets::{DatasetConfig, QueryWorkload, SyntheticDataset};
    use exes_embedding::{EmbeddingConfig, SkillEmbedding};
    use exes_expert_search::{ExpertRanker, PropagationRanker};
    use exes_graph::GraphView;
    use exes_linkpred::CommonNeighbors;
    use exes_team::GreedyCoverTeamFormer;

    struct Fixture {
        ds: SyntheticDataset,
        exes: Exes<CommonNeighbors>,
        ranker: PropagationRanker,
    }

    fn fixture() -> Fixture {
        let ds = SyntheticDataset::generate(&DatasetConfig::tiny("service", 7));
        let embedding = SkillEmbedding::train(
            ds.corpus.token_bags(),
            ds.graph.vocab().len(),
            &EmbeddingConfig {
                dim: 16,
                ..Default::default()
            },
        );
        let cfg = ExesConfig::fast()
            .with_k(4)
            .with_num_candidates(5)
            .with_output_mode(OutputMode::SmoothRank);
        Fixture {
            ds,
            exes: Exes::new(cfg, embedding, CommonNeighbors),
            ranker: PropagationRanker::default(),
        }
    }

    fn service(f: &Fixture) -> (ExesService<CommonNeighbors>, ModelId) {
        let mut service = ExesService::from_graph(&f.exes, f.ds.graph.clone());
        let id = service
            .register(
                "propagation",
                ModelSpec::expert_ranker(f.ranker, f.exes.config().k),
            )
            .unwrap();
        (service, id)
    }

    fn workload_requests(f: &Fixture, model: ModelId) -> Vec<ExplanationRequest> {
        let workload = QueryWorkload::answerable(&f.ds.graph, 2, 2, 3, 3, 11);
        let mut requests = Vec::new();
        for query in workload.queries() {
            let query = Arc::new(query.clone());
            let ranking = f.ranker.rank_all(&f.ds.graph, &query);
            // A few subjects inside and outside the top-k, cycling through
            // all six request kinds.
            for (rank, &(person, _)) in ranking.entries().iter().take(6).enumerate() {
                let kind = match rank % 6 {
                    0 => ExplanationKind::CounterfactualSkills,
                    1 => ExplanationKind::CounterfactualQuery,
                    2 => ExplanationKind::CounterfactualLinks,
                    3 => ExplanationKind::FactualSkills,
                    4 => ExplanationKind::FactualQueryTerms,
                    _ => ExplanationKind::FactualCollaborations,
                };
                requests.push(ExplanationRequest::new(model, person, query.clone(), kind));
            }
        }
        requests
    }

    /// Answers `request` directly through a sequential, uncached facade.
    fn solo_answer(
        exes: &Exes<CommonNeighbors>,
        ranker: &PropagationRanker,
        graph: &CollabGraph,
        request: &ExplanationRequest,
    ) -> Explanation {
        let task = ExpertRelevanceTask::new(ranker, request.subject, exes.config().k);
        let q: &Query = &request.query;
        match request.kind {
            ExplanationKind::CounterfactualSkills => {
                Explanation::Counterfactual(exes.counterfactual_skills(&task, graph, q))
            }
            ExplanationKind::CounterfactualQuery => {
                Explanation::Counterfactual(exes.counterfactual_query(&task, graph, q))
            }
            ExplanationKind::CounterfactualLinks => {
                Explanation::Counterfactual(exes.counterfactual_links(&task, graph, q))
            }
            ExplanationKind::FactualSkills => {
                Explanation::Factual(exes.factual_skills(&task, graph, q, true))
            }
            ExplanationKind::FactualQueryTerms => {
                Explanation::Factual(exes.factual_query_terms(&task, graph, q))
            }
            ExplanationKind::FactualCollaborations => {
                Explanation::Factual(exes.factual_collaborations(&task, graph, q, true))
            }
        }
    }

    fn assert_same_explanation(a: &Explanation, b: &Explanation) {
        match (a, b) {
            (Explanation::Counterfactual(a), Explanation::Counterfactual(b)) => {
                assert_eq!(a.explanations, b.explanations);
                assert_eq!(a.timed_out, b.timed_out);
            }
            (Explanation::Factual(a), Explanation::Factual(b)) => {
                assert_eq!(a.features(), b.features());
                assert_eq!(a.shap_values().values(), b.shap_values().values());
            }
            _ => panic!("response families differ"),
        }
    }

    #[test]
    fn batch_matches_individual_requests_exactly_across_all_kinds() {
        let f = fixture();
        let (service, model) = service(&f);
        let requests = workload_requests(&f, model);
        let (responses, report) = service.explain_batch(&requests);
        assert_eq!(responses.len(), requests.len());
        assert_eq!(report.requests, requests.len());
        assert_eq!(report.groups, 2);
        assert_eq!(report.epoch, 0);

        // Each response must be byte-identical to answering its request alone
        // through a sequential, uncached explainer.
        let mut solo_exes = f.exes.clone();
        solo_exes.config_mut().parallel_probes = false;
        for (request, response) in requests.iter().zip(&responses) {
            let solo = solo_answer(&solo_exes, &f.ranker, &f.ds.graph, request);
            assert_same_explanation(response, &solo);
        }
    }

    #[test]
    fn repeated_requests_are_deduplicated_and_batches_are_deterministic() {
        let f = fixture();
        let (service, model) = service(&f);
        let mut requests = workload_requests(&f, model);
        let n = requests.len();
        // Simulate repeated traffic: the same requests arrive again.
        requests.extend(requests.clone());
        let (responses, report) = service.explain_batch(&requests);
        assert_eq!(report.duplicate_requests, n);
        for i in 0..n {
            assert_same_explanation(&responses[i], &responses[n + i]);
        }
        // Two identical batches produce identical explanations.
        let (again, _) = service.explain_batch(&requests);
        for (a, b) in responses.iter().zip(&again) {
            assert_same_explanation(a, b);
        }
    }

    #[test]
    fn warm_epoch_replays_from_cache_with_zero_probes() {
        let f = fixture();
        let (service, model) = service(&f);
        let requests = workload_requests(&f, model);
        let (cold_responses, cold) = service.explain_batch(&requests);
        assert!(cold.probes > 0);
        // Same epoch, same requests: the persistent cache answers everything.
        let (warm_responses, warm) = service.explain_batch(&requests);
        assert_eq!(warm.probes, 0);
        assert_eq!(warm.cache_misses, 0);
        assert!(warm.cache_hits > 0);
        for (a, b) in cold_responses.iter().zip(&warm_responses) {
            assert_same_explanation(a, b);
        }
    }

    #[test]
    fn commit_invalidates_the_warm_cache_and_serves_the_new_epoch() {
        let f = fixture();
        let (service, model) = service(&f);
        let requests = workload_requests(&f, model);
        let (_, cold) = service.explain_batch(&requests);
        assert_eq!(cold.epoch, 0);

        // Commit a real update: the top subject of the first query loses one
        // of their skills.
        let subject = requests[0].subject;
        let skill = f.ds.graph.person_skills(subject)[0];
        let name = f.ds.graph.vocab().name(skill).unwrap().to_string();
        let mut batch = UpdateBatch::new();
        batch.remove_skill(subject, &name);
        let snap = service.commit(&batch).unwrap();
        assert_eq!(snap.epoch(), 1);
        assert!(!snap.graph().person_has_skill(subject, skill));

        // The new epoch misses into fresh entries (cold again) and answers
        // against the updated graph.
        let (responses, after) = service.explain_batch(&requests);
        assert_eq!(after.epoch, 1);
        assert!(after.probes > 0);
        // Responses are byte-identical to a solo uncached run on the new
        // epoch's graph.
        let mut solo_exes = f.exes.clone();
        solo_exes.config_mut().parallel_probes = false;
        let solo = solo_answer(&solo_exes, &f.ranker, snap.graph(), &requests[0]);
        assert_same_explanation(&responses[0], &solo);

        // The new epoch warms up in turn: repeating the batch replays it.
        let (_, warm_new) = service.explain_batch(&requests);
        assert_eq!(warm_new.epoch, 1);
        assert_eq!(warm_new.probes, 0);
    }

    #[test]
    fn in_flight_snapshot_survives_commits() {
        let f = fixture();
        let (service, model) = service(&f);
        let requests = workload_requests(&f, model);
        let pinned = service.snapshot();
        let (before, _) = service.explain_batch_on(&pinned, &requests);

        let mut batch = UpdateBatch::new();
        batch.add_person("newcomer", ["fresh-skill"]);
        service.commit(&batch).unwrap();
        assert_eq!(service.snapshot().epoch(), 1);

        // The pinned epoch-0 snapshot still answers, byte-identically.
        let (after, report) = service.explain_batch_on(&pinned, &requests);
        assert_eq!(report.epoch, 0);
        for (a, b) in before.iter().zip(&after) {
            assert_same_explanation(a, b);
        }
    }

    #[test]
    fn two_registered_models_never_share_cache_entries() {
        let f = fixture();
        let mut service = ExesService::from_graph(&f.exes, f.ds.graph.clone());
        let k = f.exes.config().k;
        let shallow = service
            .register("prop@k", ModelSpec::expert_ranker(f.ranker, k))
            .unwrap();
        // Same ranker, different cutoff: a different model configuration.
        let deeper = service
            .register("prop@k+1", ModelSpec::expert_ranker(f.ranker, k + 1))
            .unwrap();

        let requests = workload_requests(&f, shallow);
        let (_, cold) = service.explain_batch(&requests);
        assert!(cold.probes > 0);
        let (_, warm) = service.explain_batch(&requests);
        assert_eq!(warm.probes, 0, "same model must replay warm");

        // The same requests re-addressed to the k+1 model must run cold:
        // per-model fingerprints keep the shallow model's entries invisible.
        // "Cold" is made precise by comparison with a fresh service that
        // never saw the shallow model: identical black-box probe counts, so
        // not a single probe was answered from the other model's entries.
        let readdressed: Vec<ExplanationRequest> = requests
            .iter()
            .map(|r| ExplanationRequest::new(deeper, r.subject, r.query.clone(), r.kind))
            .collect();
        let (responses, other) = service.explain_batch(&readdressed);
        assert!(
            other.probes > 0,
            "a different k must not replay the other model's probes"
        );
        let mut fresh = ExesService::from_graph(&f.exes, f.ds.graph.clone());
        let fresh_deeper = fresh
            .register("prop@k+1", ModelSpec::expert_ranker(f.ranker, k + 1))
            .unwrap();
        let fresh_requests: Vec<ExplanationRequest> = requests
            .iter()
            .map(|r| ExplanationRequest::new(fresh_deeper, r.subject, r.query.clone(), r.kind))
            .collect();
        let (_, fresh_report) = fresh.explain_batch(&fresh_requests);
        assert_eq!(other.probes, fresh_report.probes);
        assert_eq!(other.cache_misses, fresh_report.cache_misses);

        // And the answers really are the k+1 model's own.
        let mut solo_exes = f.exes.clone();
        solo_exes.config_mut().parallel_probes = false;
        solo_exes.config_mut().k = k + 1;
        let solo = solo_answer(&solo_exes, &f.ranker, &f.ds.graph, &readdressed[0]);
        assert_same_explanation(&responses[0], &solo);
    }

    #[test]
    fn mixed_expert_and_team_models_answer_one_batch() {
        let f = fixture();
        let k = f.exes.config().k;
        let mut service = ExesService::from_graph(&f.exes, f.ds.graph.clone());
        let expert = service
            .register("expert", ModelSpec::expert_ranker(f.ranker, k))
            .unwrap();
        let team = service
            .register(
                "team",
                ModelSpec::team_former(
                    GreedyCoverTeamFormer::new(f.ranker),
                    f.ranker,
                    SeedPolicy::Unseeded,
                ),
            )
            .unwrap();

        let workload = QueryWorkload::answerable(&f.ds.graph, 1, 2, 3, 3, 11);
        let query = Arc::new(workload.queries()[0].clone());
        let subject = f.ranker.rank_all(&f.ds.graph, &query).top_k(1)[0];
        let batch = vec![
            ExplanationRequest::counterfactual_skills(expert, subject, query.clone()),
            ExplanationRequest::factual_query_terms(team, subject, query.clone()),
            ExplanationRequest::counterfactual_skills(team, subject, query.clone()),
        ];
        let (responses, report) = service.explain_batch(&batch);
        assert_eq!(report.groups, 1);
        assert_eq!(report.duplicate_requests, 0);

        // Team responses match a direct TeamMembershipTask facade call.
        let mut solo = f.exes.clone();
        solo.config_mut().parallel_probes = false;
        let former = GreedyCoverTeamFormer::new(f.ranker);
        let task = TeamMembershipTask::new(&former, &f.ranker, subject, None);
        let reference = solo.factual_query_terms(&task, &f.ds.graph, &query);
        assert_eq!(
            responses[1].expect_factual().shap_values().values(),
            reference.shap_values().values()
        );
        let reference_cf = solo.counterfactual_skills(&task, &f.ds.graph, &query);
        assert_eq!(
            responses[2].expect_counterfactual().explanations,
            reference_cf.explanations
        );
        // The expert response is a counterfactual, and distinct from team's.
        assert!(responses[0].as_counterfactual().is_some());
    }

    #[test]
    fn report_accounting_is_sane_and_duplicates_cost_no_probes() {
        let f = fixture();
        let (service, model) = service(&f);
        let requests = workload_requests(&f, model);
        let (_, report) = service.explain_batch(&requests);
        // A cold persistent cache must miss at least once per unique request.
        assert!(report.cache_misses >= requests.len() as u64);
        assert!(report.probes > 0);
        assert!((0.0..=1.0).contains(&report.hit_rate()));
        assert_eq!(report.duplicate_requests, 0);

        // Duplicated traffic answers from the dedup layer: no extra searches,
        // so the black-box probe count cannot grow with the duplicates.
        let mut doubled = requests.clone();
        doubled.extend(requests.clone());
        let (_, doubled_report) = service.explain_batch(&doubled);
        assert_eq!(doubled_report.duplicate_requests, requests.len());
        assert_eq!(doubled_report.groups, report.groups);
    }

    #[test]
    fn eviction_pressure_is_reported() {
        let f = fixture();
        let mut exes = f.exes.clone();
        // A cache far too small for the workload: evictions must show up.
        exes.config_mut().probe_cache_capacity = 8;
        exes.config_mut().probe_cache_shards = 1;
        let mut service = ExesService::from_graph(&exes, f.ds.graph.clone());
        let model = service
            .register(
                "propagation",
                ModelSpec::expert_ranker(f.ranker, exes.config().k),
            )
            .unwrap();
        let requests = workload_requests(&f, model);
        let (_, report) = service.explain_batch(&requests);
        assert!(report.cache_evictions > 0);
        assert_eq!(report.cache_evictions, service.probe_cache().evicted());
    }

    #[test]
    fn empty_batch_is_fine_and_invalid_specs_are_rejected() {
        let f = fixture();
        let (mut service, _) = service(&f);
        let (responses, report) = service.explain_batch(&[]);
        assert!(responses.is_empty());
        assert_eq!(report, ServiceReport::default());
        assert_eq!(report.hit_rate(), 0.0);
        assert!(!service.config().parallel_probes);

        assert_eq!(
            service
                .register("zero-k", ModelSpec::expert_ranker(f.ranker, 0))
                .err(),
            Some(ModelSpecError::ZeroK)
        );
        assert_eq!(
            service
                .register("propagation", ModelSpec::expert_ranker(f.ranker, 2))
                .err(),
            Some(ModelSpecError::DuplicateName("propagation".into()))
        );
        assert_eq!(service.registry().len(), 1);
        assert_eq!(
            service.model_id("propagation"),
            service.registry().id("propagation")
        );
    }

    #[test]
    #[should_panic(expected = "not registered here")]
    fn foreign_model_ids_panic() {
        let f = fixture();
        let (_service, model) = service(&f);
        // `other` never issued `model`.
        let other = ExesService::from_graph(&f.exes, f.ds.graph.clone());
        let query =
            Arc::new(QueryWorkload::answerable(&f.ds.graph, 1, 2, 3, 3, 11).queries()[0].clone());
        let request = ExplanationRequest::counterfactual_skills(model, PersonId(0), query);
        let _ = other.explain_batch(&[request]);
    }

    #[test]
    fn try_explain_batch_degrades_per_request_not_per_batch() {
        let f = fixture();
        let (svc, model) = service(&f);
        let requests = workload_requests(&f, model);
        let query = requests[0].query.clone();
        let good = requests[0].clone();
        let foreign =
            ExplanationRequest::counterfactual_skills(ModelId(41), good.subject, query.clone());
        let ghost =
            ExplanationRequest::counterfactual_skills(model, PersonId(u32::MAX), query.clone());
        // One valid request surrounded by invalid ones, plus a duplicate of
        // each: errors must land in their own slots (and their duplicates'),
        // while the valid request is answered exactly as if it were alone.
        let batch = vec![
            foreign.clone(),
            good.clone(),
            ghost.clone(),
            foreign.clone(),
            ghost.clone(),
        ];
        let (results, report) = svc.try_explain_batch(&batch);
        assert_eq!(results.len(), 5);
        assert_eq!(
            results[0].as_ref().err(),
            Some(&RequestError::UnknownModel(ModelId(41)))
        );
        assert!(matches!(
            results[2].as_ref().err(),
            Some(RequestError::SubjectOutOfRange { .. })
        ));
        assert_eq!(
            results[3].as_ref().err(),
            results[0].as_ref().err(),
            "duplicates of a failed request clone its error"
        );
        assert_eq!(results[4].as_ref().err(), results[2].as_ref().err());
        assert_eq!(report.failed_requests, 4);
        assert_eq!(report.duplicate_requests, 2);
        assert_eq!(report.requests, 5);

        // The valid slot is byte-identical to a solo uncached answer, and the
        // batch's probes all belong to it (failures cost nothing).
        let mut solo_exes = f.exes.clone();
        solo_exes.config_mut().parallel_probes = false;
        let solo = solo_answer(&solo_exes, &f.ranker, &f.ds.graph, &good);
        assert_same_explanation(results[1].as_ref().unwrap(), &solo);
        let fresh = service(&f).0;
        let (alone_results, alone) = fresh.try_explain_batch(std::slice::from_ref(&good));
        assert!(alone_results[0].is_ok());
        assert_eq!(report.probes, alone.probes);

        // Errors render usefully and the panicking surface still panics.
        assert!(results[0]
            .as_ref()
            .unwrap_err()
            .to_string()
            .contains("not registered here"));
        assert!(results[2]
            .as_ref()
            .unwrap_err()
            .to_string()
            .contains("out of range"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn explain_batch_panics_on_out_of_range_subjects() {
        let f = fixture();
        let (service, model) = service(&f);
        let query =
            Arc::new(QueryWorkload::answerable(&f.ds.graph, 1, 2, 3, 3, 11).queries()[0].clone());
        let request = ExplanationRequest::counterfactual_skills(model, PersonId(u32::MAX), query);
        let _ = service.explain_batch(&[request]);
    }

    #[test]
    fn one_service_is_shared_across_threads() {
        // The cross-thread smoke test backing the compile-time Send + Sync
        // assertion: one Arc'd service, concurrent batches and a commit, all
        // answers identical to the single-threaded ones.
        let f = fixture();
        let (service, model) = service(&f);
        let service = Arc::new(service);
        let requests = workload_requests(&f, model);
        let (reference, _) = service.explain_batch(&requests);

        let concurrent: Vec<Vec<Explanation>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let service = Arc::clone(&service);
                    let requests = &requests;
                    scope.spawn(move || service.explain_batch(requests).0)
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for responses in &concurrent {
            for (a, b) in reference.iter().zip(responses) {
                assert_same_explanation(a, b);
            }
        }
    }

    #[test]
    fn estimate_classifies_requests_without_probing() {
        let f = fixture();
        let (service, model) = service(&f);
        let requests = workload_requests(&f, model);
        let first = &requests[0];

        // A fresh service knows nothing: cold, and the peek costs no lookups.
        assert_eq!(service.estimate(first), Ok(CostEstimate::Cold));
        assert_eq!(service.probe_cache().hits(), 0);
        assert_eq!(service.probe_cache().misses(), 0);

        // After answering, the same request is warm; a different subject of
        // the same (query, model) context rides the memoised plan.
        let _ = service.explain_batch(std::slice::from_ref(first));
        assert_eq!(service.estimate(first), Ok(CostEstimate::Warm));
        let sibling = ExplanationRequest::new(
            model,
            requests
                .iter()
                .map(|r| r.subject)
                .find(|&s| s != first.subject)
                .unwrap(),
            first.query.clone(),
            first.kind,
        );
        assert_eq!(service.estimate(&sibling), Ok(CostEstimate::Incremental));

        // Estimation is itself free: the classification answers above moved
        // no hit/miss counters.
        let hits = service.probe_cache().hits();
        let misses = service.probe_cache().misses();
        let _ = service.estimate(first);
        let _ = service.estimate(&sibling);
        assert_eq!(service.probe_cache().hits(), hits);
        assert_eq!(service.probe_cache().misses(), misses);

        // Validation mirrors the batch surface.
        let foreign = ExplanationRequest::counterfactual_skills(
            ModelId(77),
            first.subject,
            first.query.clone(),
        );
        assert_eq!(
            service.estimate(&foreign),
            Err(RequestError::UnknownModel(ModelId(77)))
        );
        let ghost = ExplanationRequest::counterfactual_skills(
            model,
            PersonId(u32::MAX),
            first.query.clone(),
        );
        assert!(matches!(
            service.estimate(&ghost),
            Err(RequestError::SubjectOutOfRange { .. })
        ));
    }

    #[test]
    fn plan_memo_efficiency_is_reported_per_batch() {
        let f = fixture();
        let (service, model) = service(&f);
        let requests = workload_requests(&f, model);
        let (_, cold) = service.explain_batch(&requests);
        // One plan built per (query, model) context, then shared.
        assert_eq!(cold.plan_misses, cold.groups as u64);
        assert!(cold.plan_hits > 0);
        // A warm service never rebuilds: every plan request is a memo hit.
        let (_, warm) = service.explain_batch(&requests);
        assert_eq!(warm.plan_misses, 0);
        assert!(warm.plan_hits > 0);
        assert_eq!(
            service.probe_cache().plan_misses(),
            cold.plan_misses,
            "lifetime counter equals the single cold batch's builds"
        );
        assert_eq!(
            service.probe_cache().plan_hits(),
            cold.plan_hits + warm.plan_hits
        );
    }

    #[test]
    fn budgeted_responses_are_counted_and_marked() {
        let f = fixture();
        let mut exes = f.exes.clone();
        *exes.config_mut() = exes
            .config()
            .clone()
            .with_probe_budget(crate::probe::ProbeBudget::bounded(3));
        let mut starved = ExesService::from_graph(&exes, f.ds.graph.clone());
        let model = starved
            .register(
                "propagation",
                ModelSpec::expert_ranker(f.ranker, exes.config().k),
            )
            .unwrap();
        let requests = workload_requests(&f, model);
        let (responses, report) = starved.explain_batch(&requests);
        assert!(
            report.budgeted_results > 0,
            "a 3-probe budget must truncate this workload"
        );
        assert!(report.probes <= 3 * requests.len());
        for response in &responses {
            if response.completeness().is_budgeted() {
                assert!(response.probes() <= 3);
            }
        }
        // An unbounded service reports none.
        let (_, unbounded) = service(&f).0.explain_batch(&requests);
        assert_eq!(unbounded.budgeted_results, 0);
    }

    #[test]
    fn hit_rate_is_zero_when_no_probe_was_looked_up() {
        // The /metrics endpoint divides by (hits + misses); the zero-probe
        // edge must stay a well-defined 0.0, not NaN.
        let report = ServiceReport::default();
        assert_eq!(report.cache_hits + report.cache_misses, 0);
        assert_eq!(report.hit_rate(), 0.0);
        assert!(report.hit_rate().is_finite());
        let hits_only = ServiceReport {
            cache_hits: 3,
            ..Default::default()
        };
        assert_eq!(hits_only.hit_rate(), 1.0);
    }

    #[test]
    fn merged_reports_sum_counters_and_gate_the_epoch_to_the_minimum() {
        let mut merged = ServiceReport {
            epoch: 7,
            requests: 4,
            groups: 2,
            duplicate_requests: 1,
            failed_requests: 0,
            cache_hits: 10,
            cache_misses: 5,
            cache_evictions: 1,
            probes: 5,
            incremental_rescores: 3,
            full_fallback_rescores: 2,
            plan_hits: 4,
            plan_misses: 1,
            budgeted_results: 1,
        };
        let other = ServiceReport {
            epoch: 6,
            requests: 2,
            groups: 1,
            duplicate_requests: 0,
            failed_requests: 2,
            cache_hits: 4,
            cache_misses: 6,
            cache_evictions: 0,
            probes: 6,
            incremental_rescores: 1,
            full_fallback_rescores: 5,
            plan_hits: 0,
            plan_misses: 2,
            budgeted_results: 0,
        };
        merged.merge(&other);
        // The epoch is a read-your-writes gate: a merged report promises only
        // what every contributing worker has reached.
        assert_eq!(merged.epoch, 6);
        assert_eq!(merged.requests, 6);
        assert_eq!(merged.groups, 3);
        assert_eq!(merged.duplicate_requests, 1);
        assert_eq!(merged.failed_requests, 2);
        assert_eq!(merged.cache_hits, 14);
        assert_eq!(merged.cache_misses, 11);
        assert_eq!(merged.cache_evictions, 1);
        assert_eq!(merged.probes, 11);
        assert_eq!(merged.incremental_rescores, 4);
        assert_eq!(merged.full_fallback_rescores, 7);
        assert_eq!(merged.plan_hits, 4);
        assert_eq!(merged.plan_misses, 3);
        assert_eq!(merged.budgeted_results, 1);
        assert_eq!(merged.hit_rate(), 14.0 / 25.0);
        // Merging a single-worker report into itself twice is associative
        // with the fold the router runs: min(epoch) never moves upward.
        let mut again = merged;
        again.merge(&merged);
        assert_eq!(again.epoch, 6);
        assert_eq!(again.requests, 12);
    }

    #[test]
    fn builder_registers_models_up_front() {
        let f = fixture();
        let service = ExesService::builder_from_graph(&f.exes, f.ds.graph.clone())
            .model("a", ModelSpec::expert_ranker(f.ranker, 2))
            .unwrap()
            .model(
                "b",
                ModelSpec::team_former(
                    GreedyCoverTeamFormer::new(f.ranker),
                    f.ranker,
                    SeedPolicy::Fixed(PersonId(0)),
                ),
            )
            .unwrap()
            .build();
        assert_eq!(service.registry().len(), 2);
        assert!(service.model_id("a").is_some());
        assert!(service.model_id("b").is_some());
        assert!(ExesService::builder_from_graph(&f.exes, f.ds.graph.clone())
            .model("bad", ModelSpec::expert_ranker(f.ranker, 0))
            .is_err());
    }
}
