//! The binary decisions ExES explains: relevance status and team membership.
//!
//! Two traits live here. [`DecisionModel`] is the ergonomic, generic interface
//! implementors write against: `probe` is generic over any [`GraphView`], so a
//! model written once works on the base graph, perturbed overlays, and any
//! future view type. That genericity makes the trait non-object-safe — a
//! `Box<dyn DecisionModel>` cannot exist — which is fine for the single-model
//! facade but not for a serving layer hosting *many* model configurations
//! behind one door. [`ErasedDecisionModel`] is the sealed, object-safe twin
//! that closes the gap: it probes the two concrete graph variants the probe
//! engine actually constructs ([`CollabGraph`] for the identity probe,
//! [`PerturbedGraph`] for everything else) and is blanket-implemented for
//! every [`DecisionModel`], so `Box<dyn ErasedDecisionModel>` is always one
//! coercion away and the [`crate::model::ModelRegistry`] can store arbitrary
//! rankers and team formers side by side.

use crate::model::ModelSpecError;
use crate::probe::BaselinePlan;
use exes_expert_search::{ExpertRanker, RankerBaseline};
use exes_graph::{CollabGraph, GraphView, PersonId, PerturbedGraph, Query};
use exes_team::TeamFormer;
use rustc_hash::FxHasher;
use std::hash::{Hash, Hasher};

/// The result of probing the black box on one (possibly perturbed) input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Probe {
    /// The binary decision: was the subject selected (top-`k` / on the team)?
    pub positive: bool,
    /// A monotone "how close to being selected" signal — **lower is better**
    /// (for expert search it is the subject's 1-based rank). Beam search uses
    /// it to order candidate perturbations (line 21 of Algorithm 1).
    pub signal: f64,
}

/// A black-box binary decision about one person, probeable on perturbed inputs.
///
/// Implementations must be deterministic functions of the graph view and
/// query, and `Sync`: the [`crate::probe::ProbeBatch`] engine probes them from
/// multiple threads concurrently (which is safe exactly because probing takes
/// `&self` and must not mutate).
///
/// Every `DecisionModel` automatically implements the object-safe
/// [`ErasedDecisionModel`], so concrete tasks can be boxed into a
/// [`crate::model::ModelRegistry`] without extra glue.
pub trait DecisionModel: Sync {
    /// The person whose selection is being explained (`p_i`).
    fn subject(&self) -> PersonId;

    /// Evaluates the black box on the given input.
    fn probe<G: GraphView + ?Sized>(&self, graph: &G, query: &Query) -> Probe;

    /// The top-`k` cutoff anchoring the decision boundary in the model's
    /// rank signal, when the decision *is* a rank cutoff (`None` otherwise,
    /// e.g. team membership). Factual SHAP's smooth scalarisation
    /// ([`crate::config::OutputMode::SmoothRank`]) centres its sigmoid here,
    /// so a model registered at its own `k` is attributed against its own
    /// boundary rather than the explainer-wide default.
    fn rank_cutoff(&self) -> Option<usize> {
        None
    }

    /// A fingerprint of the model's *identity and parameters* — everything
    /// besides the graph, the query and the subject that can change a probe's
    /// outcome (the ranker and its tunables, the cutoff `k`, a team former's
    /// seed member, ...). [`crate::probe::ProbeCache`] mixes it into every
    /// memo key, which is what lets one persistent cache soundly serve many
    /// registered model configurations: two models with different parameters
    /// can never alias, and a reconfigured model naturally misses cold.
    ///
    /// The default hashes the implementing *type's* name
    /// ([`std::any::type_name`]): distinct custom model types never alias,
    /// and instances of one type share entries. That sharing is only sound
    /// when the type carries no decision-relevant parameters — override this
    /// (hash the name and every such parameter, as the built-in tasks do)
    /// whenever differently-parameterised instances of a custom model can
    /// share a cache.
    fn model_fingerprint(&self) -> u64 {
        let mut h = FxHasher::default();
        std::any::type_name::<Self>().hash(&mut h);
        h.finish()
    }

    /// Builds the model's incremental-rescoring baseline for one
    /// `(graph, query)` context, if the model supports one.
    ///
    /// The plan is the expensive part of a probe (typically one full
    /// `rank_all` plus whatever per-ranker state localized rescoring needs),
    /// computed once and shared across every probe of a batch — and, through
    /// [`crate::probe::ProbeCache`], across batches of the same context. The
    /// default returns `None`: models without an incremental path keep full
    /// re-rank semantics untouched.
    fn build_plan(&self, graph: &CollabGraph, query: &Query) -> Option<BaselinePlan> {
        let _ = (graph, query);
        None
    }

    /// Answers one overlay probe from a previously built plan, rescoring only
    /// the perturbation's affected neighbourhood.
    ///
    /// Returning `None` — for any reason: no incremental support, a perturbed
    /// query, a delta outside the plan's localization guarantees — makes the
    /// engine fall back to the full [`DecisionModel::probe`]. Implementations
    /// must be exact (byte-identical to the full probe) or document their
    /// error bound.
    fn probe_with_plan(
        &self,
        plan: &BaselinePlan,
        view: &PerturbedGraph<'_>,
        query: &Query,
    ) -> Option<Probe> {
        let _ = (plan, view, query);
        None
    }
}

mod sealed {
    /// Seals [`super::ErasedDecisionModel`]: the only way to obtain an
    /// implementation is through the blanket impl for [`super::DecisionModel`],
    /// so the erased trait can never diverge from the generic one.
    pub trait Sealed {}
    impl<D: super::DecisionModel> Sealed for D {}
}

/// The object-safe erasure of [`DecisionModel`].
///
/// `DecisionModel::probe` is generic over `G: GraphView + ?Sized` and so
/// cannot go in a vtable. This trait replaces the generic method with one
/// method per concrete graph variant the probe engine constructs — the base
/// [`CollabGraph`] (identity probes) and the [`PerturbedGraph`] overlay
/// (perturbed probes) — which *is* object-safe. It is **sealed**: every
/// [`DecisionModel`] implements it automatically and nothing else can, so
/// `&dyn ErasedDecisionModel` and `&ConcreteTask` are guaranteed to probe
/// identically.
///
/// The whole explanation stack ([`crate::probe::ProbeBatch`], beam search,
/// the exhaustive baselines, factual SHAP) is generic over
/// `D: ErasedDecisionModel + ?Sized`, so it serves concrete tasks with static
/// dispatch and boxed registry models with dynamic dispatch through the same
/// code path.
pub trait ErasedDecisionModel: sealed::Sealed + Sync {
    /// The person whose selection is being explained
    /// ([`DecisionModel::subject`]).
    fn subject_id(&self) -> PersonId;

    /// Evaluates the black box on the unperturbed base graph.
    fn probe_graph(&self, graph: &CollabGraph, query: &Query) -> Probe;

    /// Evaluates the black box on a perturbed overlay.
    fn probe_overlay(&self, graph: &PerturbedGraph<'_>, query: &Query) -> Probe;

    /// The model's cache-isolation fingerprint
    /// ([`DecisionModel::model_fingerprint`]).
    fn fingerprint(&self) -> u64;

    /// The model's rank-cutoff boundary, if any
    /// ([`DecisionModel::rank_cutoff`]).
    fn cutoff(&self) -> Option<usize>;

    /// Builds the incremental-rescoring baseline plan, if the model supports
    /// one ([`DecisionModel::build_plan`]).
    fn plan(&self, graph: &CollabGraph, query: &Query) -> Option<BaselinePlan>;

    /// Answers one overlay probe from a plan, or declines
    /// ([`DecisionModel::probe_with_plan`]).
    fn probe_overlay_planned(
        &self,
        plan: &BaselinePlan,
        graph: &PerturbedGraph<'_>,
        query: &Query,
    ) -> Option<Probe>;
}

impl<D: DecisionModel> ErasedDecisionModel for D {
    fn subject_id(&self) -> PersonId {
        self.subject()
    }

    fn probe_graph(&self, graph: &CollabGraph, query: &Query) -> Probe {
        self.probe(graph, query)
    }

    fn probe_overlay(&self, graph: &PerturbedGraph<'_>, query: &Query) -> Probe {
        self.probe(graph, query)
    }

    fn fingerprint(&self) -> u64 {
        self.model_fingerprint()
    }

    fn cutoff(&self) -> Option<usize> {
        self.rank_cutoff()
    }

    fn plan(&self, graph: &CollabGraph, query: &Query) -> Option<BaselinePlan> {
        self.build_plan(graph, query)
    }

    fn probe_overlay_planned(
        &self,
        plan: &BaselinePlan,
        graph: &PerturbedGraph<'_>,
        query: &Query,
    ) -> Option<Probe> {
        self.probe_with_plan(plan, graph, query)
    }
}

/// Expert-search relevance: is the subject ranked within the top-`k`?
#[derive(Debug, Clone, Copy)]
pub struct ExpertRelevanceTask<'a, R> {
    ranker: &'a R,
    subject: PersonId,
    k: usize,
}

impl<'a, R: ExpertRanker> ExpertRelevanceTask<'a, R> {
    /// Creates the task for `subject` with cutoff `k`.
    ///
    /// # Panics
    ///
    /// Panics when `k == 0`; use [`ExpertRelevanceTask::try_new`] to handle
    /// invalid cutoffs without unwinding (untrusted model specs go through
    /// that path in [`crate::model::ModelRegistry::register`]).
    pub fn new(ranker: &'a R, subject: PersonId, k: usize) -> Self {
        Self::try_new(ranker, subject, k).expect("k must be at least 1")
    }

    /// Creates the task for `subject` with cutoff `k`, rejecting `k == 0`
    /// with a typed error instead of panicking.
    pub fn try_new(ranker: &'a R, subject: PersonId, k: usize) -> Result<Self, ModelSpecError> {
        if k == 0 {
            return Err(ModelSpecError::ZeroK);
        }
        Ok(ExpertRelevanceTask { ranker, subject, k })
    }

    /// The cutoff `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The wrapped ranker.
    pub fn ranker(&self) -> &'a R {
        self.ranker
    }
}

impl<R: ExpertRanker + Sync> DecisionModel for ExpertRelevanceTask<'_, R> {
    fn subject(&self) -> PersonId {
        self.subject
    }

    fn probe<G: GraphView + ?Sized>(&self, graph: &G, query: &Query) -> Probe {
        let rank = self.ranker.rank_of(graph, query, self.subject);
        Probe {
            positive: rank <= self.k,
            signal: rank as f64,
        }
    }

    fn rank_cutoff(&self) -> Option<usize> {
        Some(self.k)
    }

    fn model_fingerprint(&self) -> u64 {
        let mut h = FxHasher::default();
        "expert-relevance".hash(&mut h);
        self.ranker.name().hash(&mut h);
        self.ranker.hash_params(&mut h);
        self.k.hash(&mut h);
        h.finish()
    }

    fn build_plan(&self, graph: &CollabGraph, query: &Query) -> Option<BaselinePlan> {
        self.ranker
            .build_baseline(graph, query)
            .map(BaselinePlan::new)
    }

    fn probe_with_plan(
        &self,
        plan: &BaselinePlan,
        view: &PerturbedGraph<'_>,
        query: &Query,
    ) -> Option<Probe> {
        let baseline = plan.payload::<RankerBaseline>()?;
        let rank = self
            .ranker
            .incremental_rank_of(baseline, view, query, self.subject)?;
        Some(Probe {
            positive: rank <= self.k,
            signal: rank as f64,
        })
    }
}

/// Team membership: is the subject part of the team formed for the query?
///
/// Team formers return a set rather than a ranking, so the beam-search ordering
/// signal comes from an auxiliary expert ranker (`signal_ranker`): perturbations
/// that improve the subject's expert rank are explored first. The *decision*
/// itself always comes from the team former.
#[derive(Debug, Clone, Copy)]
pub struct TeamMembershipTask<'a, F, R> {
    former: &'a F,
    signal_ranker: &'a R,
    subject: PersonId,
    seed: Option<PersonId>,
}

impl<'a, F: TeamFormer, R: ExpertRanker> TeamMembershipTask<'a, F, R> {
    /// Creates the task. `seed` is the main team member handed to the former
    /// (the paper's evaluated former requires one).
    pub fn new(
        former: &'a F,
        signal_ranker: &'a R,
        subject: PersonId,
        seed: Option<PersonId>,
    ) -> Self {
        TeamMembershipTask {
            former,
            signal_ranker,
            subject,
            seed,
        }
    }

    /// The seed (main member) used when forming teams.
    pub fn seed(&self) -> Option<PersonId> {
        self.seed
    }

    /// The wrapped team former.
    pub fn former(&self) -> &'a F {
        self.former
    }
}

impl<F: TeamFormer + Sync, R: ExpertRanker + Sync> DecisionModel for TeamMembershipTask<'_, F, R> {
    fn subject(&self) -> PersonId {
        self.subject
    }

    fn probe<G: GraphView + ?Sized>(&self, graph: &G, query: &Query) -> Probe {
        let member = self.former.is_member(graph, query, self.seed, self.subject);
        let rank = self.signal_ranker.rank_of(graph, query, self.subject);
        Probe {
            positive: member,
            signal: rank as f64,
        }
    }

    fn model_fingerprint(&self) -> u64 {
        let mut h = FxHasher::default();
        "team-membership".hash(&mut h);
        self.former.name().hash(&mut h);
        self.former.hash_params(&mut h);
        self.signal_ranker.name().hash(&mut h);
        self.signal_ranker.hash_params(&mut h);
        self.seed.map(|p| p.0).hash(&mut h);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exes_expert_search::TfIdfRanker;
    use exes_graph::{CollabGraph, CollabGraphBuilder, Perturbation, PerturbationSet};
    use exes_team::GreedyCoverTeamFormer;

    fn toy() -> CollabGraph {
        let mut b = CollabGraphBuilder::new();
        let a = b.add_person("a", ["db", "ml"]);
        let c = b.add_person("c", ["db"]);
        let d = b.add_person("d", ["vision"]);
        b.add_edge(a, c);
        b.add_edge(c, d);
        b.build()
    }

    #[test]
    fn expert_relevance_probe_reports_rank_and_status() {
        let g = toy();
        let q = Query::parse("db ml", g.vocab()).unwrap();
        let ranker = TfIdfRanker::default();
        let task = ExpertRelevanceTask::new(&ranker, PersonId(0), 1);
        let probe = task.probe(&g, &q);
        assert!(probe.positive);
        assert_eq!(probe.signal, 1.0);
        let task2 = ExpertRelevanceTask::new(&ranker, PersonId(2), 1);
        let probe2 = task2.probe(&g, &q);
        assert!(!probe2.positive);
        assert!(probe2.signal > 1.0);
        assert_eq!(task.k(), 1);
        assert_eq!(task.subject(), PersonId(0));
    }

    #[test]
    fn expert_relevance_probe_reacts_to_perturbations() {
        let g = toy();
        let q = Query::parse("db ml", g.vocab()).unwrap();
        let ranker = TfIdfRanker::default();
        let task = ExpertRelevanceTask::new(&ranker, PersonId(0), 1);
        let ml = g.vocab().id("ml").unwrap();
        let db = g.vocab().id("db").unwrap();
        let delta: PerturbationSet = [
            Perturbation::RemoveSkill {
                person: PersonId(0),
                skill: ml,
            },
            Perturbation::RemoveSkill {
                person: PersonId(0),
                skill: db,
            },
        ]
        .into_iter()
        .collect();
        let view = delta.apply_to_graph(&g);
        assert!(!task.probe(&view, &q).positive);
    }

    #[test]
    fn team_membership_probe() {
        let g = toy();
        let q = Query::parse("db vision", g.vocab()).unwrap();
        let ranker = TfIdfRanker::default();
        let former = GreedyCoverTeamFormer::new(TfIdfRanker::default());
        let task = TeamMembershipTask::new(&former, &ranker, PersonId(2), Some(PersonId(0)));
        let probe = task.probe(&g, &q);
        assert!(probe.positive, "vision holder should be on the team");
        assert_eq!(task.seed(), Some(PersonId(0)));

        let not_needed = TeamMembershipTask::new(&former, &ranker, PersonId(1), Some(PersonId(0)));
        assert!(!not_needed.probe(&g, &q).positive);
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_task_is_rejected() {
        let ranker = TfIdfRanker::default();
        let _ = ExpertRelevanceTask::new(&ranker, PersonId(0), 0);
    }

    #[test]
    fn try_new_rejects_zero_k_without_panicking() {
        let ranker = TfIdfRanker::default();
        assert_eq!(
            ExpertRelevanceTask::try_new(&ranker, PersonId(0), 0).err(),
            Some(ModelSpecError::ZeroK)
        );
        assert!(ExpertRelevanceTask::try_new(&ranker, PersonId(0), 3).is_ok());
    }

    #[test]
    fn erased_probes_match_generic_probes() {
        let g = toy();
        let q = Query::parse("db ml", g.vocab()).unwrap();
        let ranker = TfIdfRanker::default();
        let task = ExpertRelevanceTask::new(&ranker, PersonId(0), 1);
        let erased: &dyn ErasedDecisionModel = &task;
        assert_eq!(erased.subject_id(), DecisionModel::subject(&task));
        assert_eq!(erased.probe_graph(&g, &q), task.probe(&g, &q));
        let ml = g.vocab().id("ml").unwrap();
        let delta = PerturbationSet::singleton(Perturbation::RemoveSkill {
            person: PersonId(0),
            skill: ml,
        });
        let view = delta.apply_to_graph(&g);
        assert_eq!(erased.probe_overlay(&view, &q), task.probe(&view, &q));
        assert_eq!(erased.fingerprint(), task.model_fingerprint());
    }

    #[test]
    fn model_fingerprints_separate_models_and_parameters() {
        let ranker = TfIdfRanker::default();
        let a = ExpertRelevanceTask::new(&ranker, PersonId(0), 3);
        let b = ExpertRelevanceTask::new(&ranker, PersonId(1), 3);
        // The subject is a separate cache-key component, not part of the
        // model identity: two subjects of one model share a fingerprint.
        assert_eq!(a.model_fingerprint(), b.model_fingerprint());
        // A different cutoff is a different model.
        let deeper = ExpertRelevanceTask::new(&ranker, PersonId(0), 4);
        assert_ne!(a.model_fingerprint(), deeper.model_fingerprint());
        // A different ranker parameterisation is a different model.
        let tuned = TfIdfRanker { length_norm: 0.75 };
        let tuned_task = ExpertRelevanceTask::new(&tuned, PersonId(0), 3);
        assert_ne!(a.model_fingerprint(), tuned_task.model_fingerprint());

        // Team tasks: the seed is part of the model identity.
        let former = GreedyCoverTeamFormer::new(TfIdfRanker::default());
        let seeded = TeamMembershipTask::new(&former, &ranker, PersonId(2), Some(PersonId(0)));
        let unseeded = TeamMembershipTask::new(&former, &ranker, PersonId(2), None);
        assert_ne!(seeded.model_fingerprint(), unseeded.model_fingerprint());
        assert_ne!(seeded.model_fingerprint(), a.model_fingerprint());
    }
}
