//! The binary decisions ExES explains: relevance status and team membership.

use exes_expert_search::ExpertRanker;
use exes_graph::{GraphView, PersonId, Query};
use exes_team::TeamFormer;

/// The result of probing the black box on one (possibly perturbed) input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Probe {
    /// The binary decision: was the subject selected (top-`k` / on the team)?
    pub positive: bool,
    /// A monotone "how close to being selected" signal — **lower is better**
    /// (for expert search it is the subject's 1-based rank). Beam search uses
    /// it to order candidate perturbations (line 21 of Algorithm 1).
    pub signal: f64,
}

/// A black-box binary decision about one person, probeable on perturbed inputs.
///
/// Implementations must be deterministic functions of the graph view and
/// query, and `Sync`: the [`crate::probe::ProbeBatch`] engine probes them from
/// multiple threads concurrently (which is safe exactly because probing takes
/// `&self` and must not mutate).
pub trait DecisionModel: Sync {
    /// The person whose selection is being explained (`p_i`).
    fn subject(&self) -> PersonId;

    /// Evaluates the black box on the given input.
    fn probe<G: GraphView + ?Sized>(&self, graph: &G, query: &Query) -> Probe;
}

/// Expert-search relevance: is the subject ranked within the top-`k`?
#[derive(Debug, Clone, Copy)]
pub struct ExpertRelevanceTask<'a, R> {
    ranker: &'a R,
    subject: PersonId,
    k: usize,
}

impl<'a, R: ExpertRanker> ExpertRelevanceTask<'a, R> {
    /// Creates the task for `subject` with cutoff `k`.
    pub fn new(ranker: &'a R, subject: PersonId, k: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        ExpertRelevanceTask { ranker, subject, k }
    }

    /// The cutoff `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The wrapped ranker.
    pub fn ranker(&self) -> &'a R {
        self.ranker
    }
}

impl<R: ExpertRanker + Sync> DecisionModel for ExpertRelevanceTask<'_, R> {
    fn subject(&self) -> PersonId {
        self.subject
    }

    fn probe<G: GraphView + ?Sized>(&self, graph: &G, query: &Query) -> Probe {
        let rank = self.ranker.rank_of(graph, query, self.subject);
        Probe {
            positive: rank <= self.k,
            signal: rank as f64,
        }
    }
}

/// Team membership: is the subject part of the team formed for the query?
///
/// Team formers return a set rather than a ranking, so the beam-search ordering
/// signal comes from an auxiliary expert ranker (`signal_ranker`): perturbations
/// that improve the subject's expert rank are explored first. The *decision*
/// itself always comes from the team former.
#[derive(Debug, Clone, Copy)]
pub struct TeamMembershipTask<'a, F, R> {
    former: &'a F,
    signal_ranker: &'a R,
    subject: PersonId,
    seed: Option<PersonId>,
}

impl<'a, F: TeamFormer, R: ExpertRanker> TeamMembershipTask<'a, F, R> {
    /// Creates the task. `seed` is the main team member handed to the former
    /// (the paper's evaluated former requires one).
    pub fn new(
        former: &'a F,
        signal_ranker: &'a R,
        subject: PersonId,
        seed: Option<PersonId>,
    ) -> Self {
        TeamMembershipTask {
            former,
            signal_ranker,
            subject,
            seed,
        }
    }

    /// The seed (main member) used when forming teams.
    pub fn seed(&self) -> Option<PersonId> {
        self.seed
    }

    /// The wrapped team former.
    pub fn former(&self) -> &'a F {
        self.former
    }
}

impl<F: TeamFormer + Sync, R: ExpertRanker + Sync> DecisionModel for TeamMembershipTask<'_, F, R> {
    fn subject(&self) -> PersonId {
        self.subject
    }

    fn probe<G: GraphView + ?Sized>(&self, graph: &G, query: &Query) -> Probe {
        let member = self.former.is_member(graph, query, self.seed, self.subject);
        let rank = self.signal_ranker.rank_of(graph, query, self.subject);
        Probe {
            positive: member,
            signal: rank as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exes_expert_search::TfIdfRanker;
    use exes_graph::{CollabGraph, CollabGraphBuilder, Perturbation, PerturbationSet};
    use exes_team::GreedyCoverTeamFormer;

    fn toy() -> CollabGraph {
        let mut b = CollabGraphBuilder::new();
        let a = b.add_person("a", ["db", "ml"]);
        let c = b.add_person("c", ["db"]);
        let d = b.add_person("d", ["vision"]);
        b.add_edge(a, c);
        b.add_edge(c, d);
        b.build()
    }

    #[test]
    fn expert_relevance_probe_reports_rank_and_status() {
        let g = toy();
        let q = Query::parse("db ml", g.vocab()).unwrap();
        let ranker = TfIdfRanker::default();
        let task = ExpertRelevanceTask::new(&ranker, PersonId(0), 1);
        let probe = task.probe(&g, &q);
        assert!(probe.positive);
        assert_eq!(probe.signal, 1.0);
        let task2 = ExpertRelevanceTask::new(&ranker, PersonId(2), 1);
        let probe2 = task2.probe(&g, &q);
        assert!(!probe2.positive);
        assert!(probe2.signal > 1.0);
        assert_eq!(task.k(), 1);
        assert_eq!(task.subject(), PersonId(0));
    }

    #[test]
    fn expert_relevance_probe_reacts_to_perturbations() {
        let g = toy();
        let q = Query::parse("db ml", g.vocab()).unwrap();
        let ranker = TfIdfRanker::default();
        let task = ExpertRelevanceTask::new(&ranker, PersonId(0), 1);
        let ml = g.vocab().id("ml").unwrap();
        let db = g.vocab().id("db").unwrap();
        let delta: PerturbationSet = [
            Perturbation::RemoveSkill {
                person: PersonId(0),
                skill: ml,
            },
            Perturbation::RemoveSkill {
                person: PersonId(0),
                skill: db,
            },
        ]
        .into_iter()
        .collect();
        let view = delta.apply_to_graph(&g);
        assert!(!task.probe(&view, &q).positive);
    }

    #[test]
    fn team_membership_probe() {
        let g = toy();
        let q = Query::parse("db vision", g.vocab()).unwrap();
        let ranker = TfIdfRanker::default();
        let former = GreedyCoverTeamFormer::new(TfIdfRanker::default());
        let task = TeamMembershipTask::new(&former, &ranker, PersonId(2), Some(PersonId(0)));
        let probe = task.probe(&g, &q);
        assert!(probe.positive, "vision holder should be on the team");
        assert_eq!(task.seed(), Some(PersonId(0)));

        let not_needed = TeamMembershipTask::new(&former, &ranker, PersonId(1), Some(PersonId(0)));
        assert!(!not_needed.probe(&g, &q).positive);
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_task_is_rejected() {
        let ranker = TfIdfRanker::default();
        let _ = ExpertRelevanceTask::new(&ranker, PersonId(0), 0);
    }
}
