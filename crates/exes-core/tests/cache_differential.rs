//! Differential tests for the probe memo cache: cached and uncached runs must
//! return byte-identical explanations, and warm caches must measurably cut
//! the number of black-box probes (asserted through the hit/miss counters).

use exes_core::counterfactual::beam::beam_search;
use exes_core::counterfactual::exhaustive::{all_skill_removals, exhaustive_search};
use exes_core::counterfactual::CounterfactualKind;
use exes_core::service::{ExesService, ExplanationKind, ExplanationRequest};
use exes_core::{Exes, ExesConfig, ExpertRelevanceTask, ModelSpec, OutputMode, ProbeCache};
use exes_datasets::{
    DatasetConfig, QueryWorkload, SyntheticDataset, UpdateStream, UpdateStreamConfig,
};
use exes_embedding::{EmbeddingConfig, SkillEmbedding};
use exes_expert_search::{ExpertRanker, PropagationRanker};
use exes_graph::{GraphView, PersonId, Perturbation, Query};
use exes_linkpred::CommonNeighbors;
use std::sync::Arc;

struct Fixture {
    ds: SyntheticDataset,
    query: Query,
    ranker: PropagationRanker,
    cfg: ExesConfig,
}

fn fixture() -> Fixture {
    let ds = SyntheticDataset::generate(&DatasetConfig::tiny("cachediff", 19));
    let workload = QueryWorkload::answerable(&ds.graph, 1, 2, 3, 3, 23);
    let query = workload.queries()[0].clone();
    Fixture {
        ds,
        query,
        ranker: PropagationRanker::default(),
        cfg: ExesConfig::fast().with_k(3),
    }
}

/// Skill-removal candidates for a selected subject, unpruned for determinism.
fn removal_candidates(f: &Fixture, subject: PersonId) -> Vec<Perturbation> {
    f.ds.graph
        .person_skills(subject)
        .iter()
        .map(|&s| Perturbation::RemoveSkill {
            person: subject,
            skill: s,
        })
        .chain(
            f.ds.graph
                .vocab()
                .ids()
                .take(12)
                .map(|skill| Perturbation::AddQueryTerm { skill }),
        )
        .collect()
}

fn top_subject(f: &Fixture) -> PersonId {
    f.ranker.rank_all(&f.ds.graph, &f.query).top_k(1)[0]
}

#[test]
fn cached_beam_search_is_byte_identical_and_warm_runs_probe_less() {
    let f = fixture();
    let subject = top_subject(&f);
    let task = ExpertRelevanceTask::new(&f.ranker, subject, f.cfg.k);
    let candidates = removal_candidates(&f, subject);
    let run = |cache: Option<&ProbeCache>| {
        beam_search(
            &task,
            &f.ds.graph,
            &f.query,
            &candidates,
            CounterfactualKind::SkillRemoval,
            &f.cfg,
            None,
            cache,
        )
    };

    let uncached = run(None);
    assert_eq!(uncached.cache_hits, 0);
    assert_eq!(uncached.cache_misses, 0);
    assert!(uncached.probes > 1);

    let cache = ProbeCache::new(0);
    let cold = run(Some(&cache));
    // Cold cache: every probe misses, so the black box sees exactly the
    // uncached workload and the explanations are byte-identical.
    assert_eq!(cold.explanations, uncached.explanations);
    assert_eq!(cold.probes, uncached.probes);
    assert_eq!(cold.cache_misses, cold.probes);
    assert_eq!(cold.cache_hits, 0);

    let warm = run(Some(&cache));
    // Warm cache: identical explanations, but the search re-probes nothing —
    // beam search never generates a duplicate candidate within one run, so
    // every request is a hit and the black box is not consulted at all.
    assert_eq!(warm.explanations, uncached.explanations);
    assert_eq!(warm.cache_hits, cold.cache_misses);
    assert_eq!(warm.probes, 0);
    assert!(warm.probes < cold.probes);
    assert_eq!(warm.probe_requests(), cold.probe_requests());
}

#[test]
fn cached_exhaustive_search_is_byte_identical_and_warm_runs_probe_less() {
    let f = fixture();
    let subject = top_subject(&f);
    let task = ExpertRelevanceTask::new(&f.ranker, subject, f.cfg.k);
    let mut cfg = f.cfg.clone();
    cfg.max_explanation_size = 2;
    let candidates = all_skill_removals(&f.ds.graph);
    let run = |cache: Option<&ProbeCache>| {
        exhaustive_search(
            &task,
            &f.ds.graph,
            &f.query,
            &candidates,
            CounterfactualKind::SkillRemoval,
            &cfg,
            None,
            cache,
        )
    };

    let uncached = run(None);
    let cache = ProbeCache::new(0);
    let cold = run(Some(&cache));
    let warm = run(Some(&cache));
    assert_eq!(cold.explanations, uncached.explanations);
    assert_eq!(cold.probes, uncached.probes);
    assert_eq!(warm.explanations, uncached.explanations);
    assert_eq!(warm.probes, 0);
    assert!(warm.cache_hits > 0);
    assert_eq!(warm.probe_requests(), cold.probe_requests());
}

#[test]
fn cached_shap_explanations_are_identical_and_warm_runs_probe_less() {
    let f = fixture();
    let subject = top_subject(&f);
    let task = ExpertRelevanceTask::new(&f.ranker, subject, f.cfg.k);
    let embedding = SkillEmbedding::train(
        f.ds.corpus.token_bags(),
        f.ds.graph.vocab().len(),
        &EmbeddingConfig {
            dim: 16,
            ..Default::default()
        },
    );
    let cfg = f.cfg.clone().with_output_mode(OutputMode::SmoothRank);
    let uncached_exes = Exes::new(cfg.clone(), embedding.clone(), CommonNeighbors);
    let cache = Arc::new(ProbeCache::for_config(&cfg));
    let cached_exes = Exes::new(cfg, embedding, CommonNeighbors).with_probe_cache(cache.clone());

    let uncached = uncached_exes.factual_skills(&task, &f.ds.graph, &f.query, true);
    let cold = cached_exes.factual_skills(&task, &f.ds.graph, &f.query, true);
    let warm = cached_exes.factual_skills(&task, &f.ds.graph, &f.query, true);

    // SHAP values are byte-identical across uncached, cold and warm runs.
    assert_eq!(uncached.shap_values().values(), cold.shap_values().values());
    assert_eq!(uncached.shap_values().values(), warm.shap_values().values());
    assert_eq!(cold.probes(), uncached.probes());
    // The warm run answers its coalitions from the cache.
    assert!(warm.probes() < cold.probes());
    assert!(warm.cache_hits() > 0);
    assert!(cache.hits() > 0);

    // The counterfactual search for the same (graph, query, subject) shares
    // the very same cache through the facade.
    let before = cache.hits();
    let cf = cached_exes.counterfactual_skills(&task, &f.ds.graph, &f.query);
    let cf_uncached = uncached_exes.counterfactual_skills(&task, &f.ds.graph, &f.query);
    assert_eq!(cf.explanations, cf_uncached.explanations);
    assert!(cache.hits() >= before);
}

/// The epoch differential: on a live store serving a churn stream, every
/// explanation answered on an *untouched* epoch is byte-identical warm vs
/// cold — the warm replay issues zero black-box probes — and every commit
/// moves the service to answers that match a from-scratch uncached run on
/// the new epoch's graph.
#[test]
fn explanations_on_untouched_epochs_are_identical_warm_vs_cold() {
    let f = fixture();
    let embedding = SkillEmbedding::train(
        f.ds.corpus.token_bags(),
        f.ds.graph.vocab().len(),
        &EmbeddingConfig {
            dim: 16,
            ..Default::default()
        },
    );
    let cfg = f.cfg.clone().with_output_mode(OutputMode::SmoothRank);
    let exes = Exes::new(cfg.clone(), embedding, CommonNeighbors);
    let mut service = ExesService::from_graph(&exes, f.ds.graph.clone());
    let model = service
        .register("propagation", ModelSpec::expert_ranker(f.ranker, cfg.k))
        .expect("valid spec");
    let stream = UpdateStream::generate(&f.ds.graph, &UpdateStreamConfig::churn(3, 5, 0xE9));

    let query = Arc::new(f.query.clone());
    let subjects: Vec<PersonId> = f.ranker.rank_all(&f.ds.graph, &f.query).top_k(4);
    let requests: Vec<ExplanationRequest> = subjects
        .iter()
        .flat_map(|&s| {
            [
                ExplanationRequest::counterfactual_skills(model, s, query.clone()),
                ExplanationRequest::counterfactual_query(model, s, query.clone()),
                ExplanationRequest::factual_skills(model, s, query.clone()),
            ]
        })
        .collect();

    let mut solo = exes.clone();
    solo.config_mut().parallel_probes = false;
    for (i, batch) in stream.batches().iter().enumerate() {
        let (cold, cold_report) = service.explain_batch(&requests);
        assert_eq!(cold_report.epoch, i as u64);
        // Warm replay on the untouched epoch: byte-identical, zero probes.
        let (warm, warm_report) = service.explain_batch(&requests);
        assert_eq!(warm_report.probes, 0, "epoch {i} replay probed the box");
        for (c, w) in cold.iter().zip(&warm) {
            match (c, w) {
                (
                    exes_core::Explanation::Counterfactual(c),
                    exes_core::Explanation::Counterfactual(w),
                ) => {
                    assert_eq!(c.explanations, w.explanations);
                    assert_eq!(c.timed_out, w.timed_out);
                }
                (exes_core::Explanation::Factual(c), exes_core::Explanation::Factual(w)) => {
                    assert_eq!(c.shap_values().values(), w.shap_values().values());
                }
                _ => panic!("warm replay changed the response family"),
            }
        }
        // And the cold answers match a from-scratch uncached explainer on
        // this epoch's graph.
        let snapshot = service.snapshot();
        for (request, response) in requests.iter().zip(&cold) {
            let task = ExpertRelevanceTask::new(&f.ranker, request.subject, cfg.k);
            match request.kind {
                ExplanationKind::CounterfactualSkills => {
                    let reference =
                        solo.counterfactual_skills(&task, snapshot.graph(), &request.query);
                    assert_eq!(
                        response.expect_counterfactual().explanations,
                        reference.explanations,
                        "epoch {i}"
                    );
                }
                ExplanationKind::CounterfactualQuery => {
                    let reference =
                        solo.counterfactual_query(&task, snapshot.graph(), &request.query);
                    assert_eq!(
                        response.expect_counterfactual().explanations,
                        reference.explanations,
                        "epoch {i}"
                    );
                }
                ExplanationKind::FactualSkills => {
                    let reference =
                        solo.factual_skills(&task, snapshot.graph(), &request.query, true);
                    assert_eq!(
                        response.expect_factual().shap_values().values(),
                        reference.shap_values().values(),
                        "epoch {i}"
                    );
                }
                _ => unreachable!("kinds used by this test"),
            }
        }
        service.commit(batch).expect("churn batch commits");
    }
}
