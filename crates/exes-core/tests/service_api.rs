//! Differential tests for the unified serving API: one `ExesService` hosting
//! several registered models (an expert ranker and a team former) must answer
//! a single mixed batch spanning every explanation family — counterfactual
//! skills / query-augmentation / links and factual skill- / query-term- /
//! collaboration-SHAP — byte-identically to direct `Exes` facade calls, and
//! models registered side by side must never answer from each other's cache
//! entries.

use exes_core::service::{Explanation, ExplanationKind, ExplanationRequest};
use exes_core::{
    Exes, ExesConfig, ExesService, ExpertRelevanceTask, ModelSpec, OutputMode, SeedPolicy,
    TeamMembershipTask,
};
use exes_datasets::{DatasetConfig, QueryWorkload, SyntheticDataset};
use exes_embedding::{EmbeddingConfig, SkillEmbedding};
use exes_expert_search::{ExpertRanker, PropagationRanker, TfIdfRanker};
use exes_graph::{PersonId, Query};
use exes_linkpred::CommonNeighbors;
use exes_team::GreedyCoverTeamFormer;
use std::sync::Arc;

const ALL_KINDS: [ExplanationKind; 6] = [
    ExplanationKind::CounterfactualSkills,
    ExplanationKind::CounterfactualQuery,
    ExplanationKind::CounterfactualLinks,
    ExplanationKind::FactualSkills,
    ExplanationKind::FactualQueryTerms,
    ExplanationKind::FactualCollaborations,
];

struct Fixture {
    ds: SyntheticDataset,
    exes: Exes<CommonNeighbors>,
    ranker: PropagationRanker,
    query: Arc<Query>,
    subject: PersonId,
    outsider: PersonId,
}

fn fixture() -> Fixture {
    let ds = SyntheticDataset::generate(&DatasetConfig::tiny("service-api", 29));
    let embedding = SkillEmbedding::train(
        ds.corpus.token_bags(),
        ds.graph.vocab().len(),
        &EmbeddingConfig {
            dim: 16,
            ..Default::default()
        },
    );
    let cfg = ExesConfig::fast()
        .with_k(3)
        .with_num_candidates(4)
        .with_output_mode(OutputMode::SmoothRank);
    let exes = Exes::new(cfg, embedding, CommonNeighbors);
    let ranker = PropagationRanker::default();
    let workload = QueryWorkload::answerable(&ds.graph, 1, 2, 3, 3, 17);
    let query = Arc::new(workload.queries()[0].clone());
    let ranking = ranker.rank_all(&ds.graph, &query);
    let subject = ranking.top_k(1)[0];
    let outsider = ranking.entries()[6].0;
    Fixture {
        ds,
        exes,
        ranker,
        query,
        subject,
        outsider,
    }
}

/// The acceptance scenario: one service value, two registered models (an
/// expert ranker and a team former), one mixed batch containing every
/// explanation family for both models — each response byte-identical to the
/// corresponding direct facade call.
#[test]
fn one_service_answers_all_families_across_expert_and_team_models() {
    let f = fixture();
    let k = f.exes.config().k;
    let seed = f.subject;
    let mut service = ExesService::from_graph(&f.exes, f.ds.graph.clone());
    let expert = service
        .register("propagation@k", ModelSpec::expert_ranker(f.ranker, k))
        .unwrap();
    let team = service
        .register(
            "greedy-cover",
            ModelSpec::team_former(
                GreedyCoverTeamFormer::new(f.ranker),
                f.ranker,
                SeedPolicy::Fixed(seed),
            ),
        )
        .unwrap();

    // One batch, twelve requests: all six kinds for each registered model.
    let mut batch = Vec::new();
    for kind in ALL_KINDS {
        batch.push(ExplanationRequest::new(
            expert,
            f.subject,
            f.query.clone(),
            kind,
        ));
    }
    for kind in ALL_KINDS {
        batch.push(ExplanationRequest::new(
            team,
            f.outsider,
            f.query.clone(),
            kind,
        ));
    }
    let (responses, report) = service.explain_batch(&batch);
    assert_eq!(responses.len(), batch.len());
    assert_eq!(report.requests, 12);
    assert_eq!(report.groups, 1, "one shared Arc query, one group");
    assert_eq!(report.duplicate_requests, 0);
    assert!(report.probes > 0);

    // Differential: every response is byte-identical to the direct facade
    // call with the matching concrete task.
    let mut solo = f.exes.clone();
    solo.config_mut().parallel_probes = false;
    let former = GreedyCoverTeamFormer::new(f.ranker);
    let expert_task = ExpertRelevanceTask::new(&f.ranker, f.subject, k);
    let team_task = TeamMembershipTask::new(&former, &f.ranker, f.outsider, Some(seed));

    let check = |kind: ExplanationKind, response: &Explanation, use_team: bool| {
        let g = &f.ds.graph;
        let q: &Query = &f.query;
        macro_rules! facade {
            ($method:ident $(, $extra:expr)*) => {
                if use_team {
                    solo.$method(&team_task, g, q $(, $extra)*)
                } else {
                    solo.$method(&expert_task, g, q $(, $extra)*)
                }
            };
        }
        match kind {
            ExplanationKind::CounterfactualSkills => {
                let reference = facade!(counterfactual_skills);
                let got = response.expect_counterfactual();
                assert_eq!(got.explanations, reference.explanations);
                assert_eq!(got.timed_out, reference.timed_out);
            }
            ExplanationKind::CounterfactualQuery => {
                let reference = facade!(counterfactual_query);
                assert_eq!(
                    response.expect_counterfactual().explanations,
                    reference.explanations
                );
            }
            ExplanationKind::CounterfactualLinks => {
                let reference = facade!(counterfactual_links);
                assert_eq!(
                    response.expect_counterfactual().explanations,
                    reference.explanations
                );
            }
            ExplanationKind::FactualSkills => {
                let reference = facade!(factual_skills, true);
                let got = response.expect_factual();
                assert_eq!(got.features(), reference.features());
                assert_eq!(got.shap_values().values(), reference.shap_values().values());
            }
            ExplanationKind::FactualQueryTerms => {
                let reference = facade!(factual_query_terms);
                let got = response.expect_factual();
                assert_eq!(got.features(), reference.features());
                assert_eq!(got.shap_values().values(), reference.shap_values().values());
            }
            ExplanationKind::FactualCollaborations => {
                let reference = facade!(factual_collaborations, true);
                let got = response.expect_factual();
                assert_eq!(got.features(), reference.features());
                assert_eq!(got.shap_values().values(), reference.shap_values().values());
            }
        }
    };
    for (i, kind) in ALL_KINDS.into_iter().enumerate() {
        check(kind, &responses[i], false);
    }
    for (i, kind) in ALL_KINDS.into_iter().enumerate() {
        check(kind, &responses[6 + i], true);
    }

    // The whole mixed batch replays warm on the unchanged epoch.
    let (_, warm) = service.explain_batch(&batch);
    assert_eq!(warm.probes, 0);
    assert_eq!(warm.cache_misses, 0);
}

/// Per-model cache isolation: re-registering the same ranker at a different
/// `k` must force cold probes — exactly as many as a never-warmed service
/// issues — even though graph, query, subjects and perturbations all match.
#[test]
fn reconfigured_k_forces_cold_probes_on_a_shared_cache() {
    let f = fixture();
    let k = f.exes.config().k;
    let mut service = ExesService::from_graph(&f.exes, f.ds.graph.clone());
    let at_k = service
        .register("prop@k", ModelSpec::expert_ranker(f.ranker, k))
        .unwrap();
    let at_k1 = service
        .register("prop@k+1", ModelSpec::expert_ranker(f.ranker, k + 1))
        .unwrap();
    assert_ne!(
        service.registry().fingerprint(at_k),
        service.registry().fingerprint(at_k1)
    );

    let requests: Vec<ExplanationRequest> = ALL_KINDS
        .into_iter()
        .map(|kind| ExplanationRequest::new(at_k, f.subject, f.query.clone(), kind))
        .collect();
    let (_, cold) = service.explain_batch(&requests);
    assert!(cold.probes > 0);
    let (_, warm) = service.explain_batch(&requests);
    assert_eq!(warm.probes, 0, "same configuration replays warm");

    // Same requests, same service, same warm cache — but addressed to the
    // k+1 configuration: must probe exactly like a fresh service would.
    let readdressed: Vec<ExplanationRequest> = requests
        .iter()
        .map(|r| ExplanationRequest::new(at_k1, r.subject, r.query.clone(), r.kind))
        .collect();
    let (_, shifted) = service.explain_batch(&readdressed);
    assert!(shifted.probes > 0, "a changed k must go cold");

    let mut fresh = ExesService::from_graph(&f.exes, f.ds.graph.clone());
    let fresh_id = fresh
        .register("prop@k+1", ModelSpec::expert_ranker(f.ranker, k + 1))
        .unwrap();
    let fresh_requests: Vec<ExplanationRequest> = requests
        .iter()
        .map(|r| ExplanationRequest::new(fresh_id, r.subject, r.query.clone(), r.kind))
        .collect();
    let (_, fresh_report) = fresh.explain_batch(&fresh_requests);
    assert_eq!(
        shifted.probes, fresh_report.probes,
        "warm entries of the other k leaked into the readdressed batch"
    );
    assert_eq!(shifted.cache_misses, fresh_report.cache_misses);
}

/// Distinct rankers registered on one service stay isolated too, and
/// lookups by name agree with the issued ids.
#[test]
fn distinct_rankers_on_one_service_are_isolated_and_addressable() {
    let f = fixture();
    let k = f.exes.config().k;
    let service = ExesService::builder_from_graph(&f.exes, f.ds.graph.clone())
        .model("propagation", ModelSpec::expert_ranker(f.ranker, k))
        .unwrap()
        .model("tfidf", ModelSpec::expert_ranker(TfIdfRanker::default(), k))
        .unwrap()
        .build();
    let prop = service.model_id("propagation").unwrap();
    let tfidf = service.model_id("tfidf").unwrap();
    assert_ne!(prop, tfidf);
    assert_ne!(
        service.registry().fingerprint(prop),
        service.registry().fingerprint(tfidf)
    );

    let request =
        |model| ExplanationRequest::counterfactual_skills(model, f.subject, f.query.clone());
    let (_, prop_cold) = service.explain_batch(&[request(prop)]);
    assert!(prop_cold.probes > 0);
    // TF-IDF ranks differently, but even the shared perturbation sets must
    // miss: probes equal a fresh single-model service's count.
    let (tfidf_responses, tfidf_cold) = service.explain_batch(&[request(tfidf)]);
    let fresh = ExesService::builder_from_graph(&f.exes, f.ds.graph.clone())
        .model("tfidf", ModelSpec::expert_ranker(TfIdfRanker::default(), k))
        .unwrap()
        .build();
    let fresh_id = fresh.model_id("tfidf").unwrap();
    let (fresh_responses, fresh_report) = fresh.explain_batch(&[request(fresh_id)]);
    assert_eq!(tfidf_cold.probes, fresh_report.probes);
    assert_eq!(
        tfidf_responses[0].expect_counterfactual().explanations,
        fresh_responses[0].expect_counterfactual().explanations
    );
}
