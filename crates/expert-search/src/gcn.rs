//! A deterministic two-layer graph-convolutional expert ranker.
//!
//! The paper's evaluation explains "an expert search model that uses Graph
//! Convolutional Neural Networks and combines ideas from several
//! state-of-the-art solutions". Training a GCN is out of scope here (no GPU, no
//! labels); what ExES needs is a *black box with the same signal structure*:
//! symmetric-normalised message passing over `Â = D^{-1/2}(A + I)D^{-1/2}` applied
//! to query-dependent node features, followed by a learned-looking readout. We
//! therefore build the standard GCN forward pass with weights drawn once from a
//! seeded RNG (made non-negative so the readout is monotone in the relevance
//! features, as a trained ranker's would be).

use crate::ranker::{smoothed_idf, ExpertRanker};
use crate::RankedList;
use exes_graph::{GraphView, PersonId, Query};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const INPUT_DIM: usize = 4;

/// "Pre-trained" two-layer GCN expert ranker with seeded deterministic weights.
#[derive(Debug, Clone)]
pub struct GcnRanker {
    hidden_dim: usize,
    /// `INPUT_DIM × hidden` weight matrix of the first graph convolution.
    w1: Vec<f64>,
    /// `hidden × 1` readout weights of the second graph convolution.
    w2: Vec<f64>,
}

impl Default for GcnRanker {
    fn default() -> Self {
        GcnRanker::with_seed(0x6C1)
    }
}

impl GcnRanker {
    /// Builds the ranker with weights derived deterministically from `seed`.
    pub fn with_seed(seed: u64) -> Self {
        Self::new(8, seed)
    }

    /// Builds the ranker with an explicit hidden width.
    pub fn new(hidden_dim: usize, seed: u64) -> Self {
        assert!(hidden_dim > 0, "hidden dimension must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        // Non-negative Glorot-ish initialisation: |U(-a, a)| with a = sqrt(6 / (fan_in + fan_out)).
        let a1 = (6.0 / (INPUT_DIM + hidden_dim) as f64).sqrt();
        let w1 = (0..INPUT_DIM * hidden_dim)
            .map(|_| rng.gen_range(-a1..a1).abs())
            .collect();
        let a2 = (6.0 / (hidden_dim + 1) as f64).sqrt();
        let w2 = (0..hidden_dim)
            .map(|_| rng.gen_range(-a2..a2).abs())
            .collect();
        GcnRanker { hidden_dim, w1, w2 }
    }

    /// Query-dependent node features:
    /// `[idf-weighted match, match fraction, log-degree, bias]`.
    fn features<G: GraphView + ?Sized>(&self, graph: &G, query: &Query) -> Vec<[f64; INPUT_DIM]> {
        let idfs: Vec<(exes_graph::SkillId, f64)> = query
            .skills()
            .iter()
            .map(|&s| (s, smoothed_idf(graph, s)))
            .collect();
        let idf_total: f64 = idfs.iter().map(|&(_, v)| v).sum::<f64>().max(1e-9);
        let qlen = query.len().max(1) as f64;
        graph
            .people_ids()
            .map(|p| {
                let matched: Vec<&(exes_graph::SkillId, f64)> = idfs
                    .iter()
                    .filter(|&&(s, _)| graph.person_has_skill(p, s))
                    .collect();
                let idf_match: f64 = matched.iter().map(|&&(_, v)| v).sum();
                [
                    idf_match / idf_total,
                    matched.len() as f64 / qlen,
                    (1.0 + graph.degree(p) as f64).ln() / 8.0,
                    1.0,
                ]
            })
            .collect()
    }

    /// One symmetric-normalised propagation step with self-loops:
    /// `out_p = Σ_{n ∈ N(p) ∪ {p}} in_n / sqrt((d_p+1)(d_n+1))`.
    fn propagate<G: GraphView + ?Sized>(
        graph: &G,
        neighbor_lists: &[&[PersonId]],
        input: &[Vec<f64>],
    ) -> Vec<Vec<f64>> {
        let dim = input.first().map(Vec::len).unwrap_or(0);
        let mut out = vec![vec![0.0; dim]; input.len()];
        for p in graph.people_ids() {
            let dp = (neighbor_lists[p.index()].len() + 1) as f64;
            // Self-loop.
            for j in 0..dim {
                out[p.index()][j] += input[p.index()][j] / dp;
            }
            for &n in neighbor_lists[p.index()] {
                let dn = (neighbor_lists[n.index()].len() + 1) as f64;
                let norm = (dp * dn).sqrt();
                for j in 0..dim {
                    out[p.index()][j] += input[n.index()][j] / norm;
                }
            }
        }
        out
    }

    /// Full forward pass, returning one score per person.
    pub fn forward<G: GraphView + ?Sized>(&self, graph: &G, query: &Query) -> Vec<f64> {
        let n = graph.num_people();
        if n == 0 {
            return Vec::new();
        }
        let neighbor_lists: Vec<&[PersonId]> =
            graph.people_ids().map(|p| graph.neighbors(p)).collect();
        let x: Vec<Vec<f64>> = self
            .features(graph, query)
            .into_iter()
            .map(|f| f.to_vec())
            .collect();
        // Layer 1: propagate, then linear + ReLU.
        let agg1 = Self::propagate(graph, &neighbor_lists, &x);
        let h1: Vec<Vec<f64>> = agg1
            .iter()
            .map(|row| {
                (0..self.hidden_dim)
                    .map(|h| {
                        let mut v = 0.0;
                        for (i, &xi) in row.iter().enumerate() {
                            v += xi * self.w1[i * self.hidden_dim + h];
                        }
                        v.max(0.0)
                    })
                    .collect()
            })
            .collect();
        // Layer 2: propagate, then linear readout.
        let agg2 = Self::propagate(graph, &neighbor_lists, &h1);
        agg2.iter()
            .map(|row| row.iter().zip(self.w2.iter()).map(|(a, w)| a * w).sum())
            .collect()
    }
}

impl ExpertRanker for GcnRanker {
    fn score<G: GraphView + ?Sized>(&self, graph: &G, query: &Query, person: PersonId) -> f64 {
        self.forward(graph, query)[person.index()]
    }

    fn name(&self) -> &'static str {
        "gcn"
    }

    fn hash_params(&self, state: &mut dyn std::hash::Hasher) {
        state.write_usize(self.hidden_dim);
        for w in self.w1.iter().chain(&self.w2) {
            state.write_u64(w.to_bits());
        }
    }

    fn rank_all<G: GraphView + ?Sized>(&self, graph: &G, query: &Query) -> RankedList {
        RankedList::from_scores(
            self.forward(graph, query)
                .into_iter()
                .enumerate()
                .map(|(i, s)| (PersonId::from_index(i), s))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exes_datasets::{DatasetConfig, QueryWorkload, SyntheticDataset};
    use exes_graph::{CollabGraph, CollabGraphBuilder, Perturbation, PerturbationSet};

    fn toy() -> CollabGraph {
        let mut b = CollabGraphBuilder::new();
        let expert = b.add_person("expert", ["ml", "graph"]);
        let friend = b.add_person("friend", ["db"]);
        let _stranger = b.add_person("stranger", ["db"]);
        b.add_edge(expert, friend);
        b.build()
    }

    #[test]
    fn construction_is_deterministic() {
        let a = GcnRanker::with_seed(42);
        let b = GcnRanker::with_seed(42);
        assert_eq!(a.w1, b.w1);
        assert_eq!(a.w2, b.w2);
        let c = GcnRanker::with_seed(43);
        assert_ne!(a.w1, c.w1);
    }

    #[test]
    fn expert_outranks_friend_outranks_stranger() {
        let g = toy();
        let q = Query::parse("ml graph", g.vocab()).unwrap();
        let r = GcnRanker::default();
        let list = r.rank_all(&g, &q);
        assert_eq!(list.rank_of(PersonId(0)), Some(1));
        assert!(list.rank_of(PersonId(1)) < list.rank_of(PersonId(2)));
    }

    #[test]
    fn removing_a_query_skill_lowers_the_experts_score() {
        let g = toy();
        let q = Query::parse("ml graph", g.vocab()).unwrap();
        let r = GcnRanker::default();
        let before = r.score(&g, &q, PersonId(0));
        let ml = g.vocab().id("ml").unwrap();
        let delta = PerturbationSet::singleton(Perturbation::RemoveSkill {
            person: PersonId(0),
            skill: ml,
        });
        let view = delta.apply_to_graph(&g);
        let after = r.score(&view, &q, PersonId(0));
        assert!(after < before);
    }

    #[test]
    fn scores_match_rank_all_entries() {
        let g = toy();
        let q = Query::parse("ml", g.vocab()).unwrap();
        let r = GcnRanker::default();
        let list = r.rank_all(&g, &q);
        for &(p, s) in list.entries() {
            assert!((s - r.score(&g, &q, p)).abs() < 1e-12);
        }
    }

    #[test]
    fn top_ranked_people_hold_query_skills_on_synthetic_data() {
        let ds = SyntheticDataset::generate(&DatasetConfig::tiny("gcn", 5));
        let workload = QueryWorkload::answerable(&ds.graph, 1, 2, 3, 3, 17);
        let q = &workload.queries()[0];
        let r = GcnRanker::default();
        let top = r.rank_all(&ds.graph, q).top_k(5);
        // At least one of the top-5 holds at least one query skill directly.
        let holds = top
            .iter()
            .any(|&p| q.skills().iter().any(|&s| ds.graph.person_has_skill(p, s)));
        assert!(holds, "none of the top-5 holds any query skill");
    }

    #[test]
    fn empty_graph_forward_is_empty() {
        let g = CollabGraphBuilder::new().build();
        let mut vb = CollabGraphBuilder::new();
        vb.add_person("x", ["ml"]);
        let vocab_graph = vb.build();
        let q = Query::parse("ml", vocab_graph.vocab()).unwrap();
        assert!(GcnRanker::default().forward(&g, &q).is_empty());
    }

    #[test]
    #[should_panic(expected = "hidden dimension")]
    fn zero_hidden_dim_is_rejected() {
        let _ = GcnRanker::new(0, 1);
    }
}
