//! Shared state for delta-localized (incremental) probe scoring.
//!
//! A [`RankerBaseline`] captures everything a ranker needs to rescore a
//! perturbed overlay without walking the whole graph again: the full ranking
//! of the unperturbed snapshot, the person-indexed score vector behind it,
//! and per-ranker working state (TF-IDF document statistics, propagation base
//! relevances, PageRank iterate trajectories). Each ranker's
//! [`crate::ExpertRanker::incremental_rank_of`] then rescores only the
//! delta's affected neighbourhood and derives the subject's new rank by
//! *counting corrections* against the baseline order — O(affected + log n)
//! instead of O(n log n).

use crate::ranker::idf_from_count;
use crate::RankedList;
use exes_graph::{CollabGraph, GraphView, PersonId, PerturbedGraph, Query, SkillId};

/// Memoized per-(snapshot, query) state enabling incremental probe scoring.
///
/// Built once per (graph fingerprint, query, ranker configuration) by
/// [`crate::ExpertRanker::build_baseline`]; opaque outside this crate. The
/// baseline is immutable and shareable across threads — parallel probe
/// batches read it concurrently.
#[derive(Debug, Clone)]
pub struct RankerBaseline {
    /// The query the baseline was built for; probes against any other query
    /// must fall back to a full re-rank.
    pub(crate) query: Vec<SkillId>,
    /// The full unperturbed ranking.
    pub(crate) ranked: RankedList,
    /// Person-indexed scores, bitwise identical to the entries of `ranked`.
    pub(crate) scores: Vec<f64>,
    /// Ranker-specific working state.
    pub(crate) kind: BaselineKind,
}

impl RankerBaseline {
    /// The full ranking of the unperturbed snapshot.
    pub fn ranked(&self) -> &RankedList {
        &self.ranked
    }

    /// The query this baseline was built for.
    pub fn query(&self) -> &[SkillId] {
        &self.query
    }
}

/// Per-ranker working state carried by a [`RankerBaseline`].
#[derive(Debug, Clone)]
pub(crate) enum BaselineKind {
    /// TF-IDF: per-term document statistics.
    TfIdf(TermStats),
    /// Expertise propagation: term statistics plus the person-indexed base
    /// (0-hop) relevance the neighbourhood averages draw from.
    Propagation {
        /// Per-term document statistics.
        terms: TermStats,
        /// Person-indexed base relevance scores.
        base: Vec<f64>,
    },
    /// Personalized PageRank: the pre-final power iterates `r_0 .. r_{T-1}`
    /// (with `r_0` the restart vector), which the localized delta-push
    /// replays against.
    PageRank {
        /// Rank vector before each of the `T` iterations.
        trajectory: Vec<Vec<f64>>,
    },
}

/// Per-query-term document statistics over the unperturbed snapshot.
#[derive(Debug, Clone)]
pub(crate) struct TermStats {
    /// Smoothed IDF of each query term, in query order.
    pub(crate) idfs: Vec<f64>,
    /// Holder count of each query term.
    pub(crate) counts: Vec<usize>,
    /// Sorted holder lists of each query term.
    pub(crate) holders: Vec<Vec<PersonId>>,
}

impl TermStats {
    /// Collects holder lists, counts and IDFs for every query term.
    pub(crate) fn collect(graph: &CollabGraph, query: &Query) -> TermStats {
        let n = graph.num_people();
        let mut idfs = Vec::with_capacity(query.skills().len());
        let mut counts = Vec::with_capacity(query.skills().len());
        let mut holders = Vec::with_capacity(query.skills().len());
        for &s in query.skills() {
            let hs: Vec<PersonId> = graph
                .people()
                .filter(|&p| graph.person_has_skill(p, s))
                .collect();
            idfs.push(idf_from_count(n, hs.len()));
            counts.push(hs.len());
            holders.push(hs);
        }
        TermStats {
            idfs,
            counts,
            holders,
        }
    }
}

/// How a skill delta moves the per-term statistics: the adjusted IDF vector
/// plus everyone whose score can change through it.
pub(crate) struct SkillDeltaEffect {
    /// Adjusted per-term IDFs (bitwise what a full recount over the view
    /// would produce; terms with unchanged holder counts keep the stored
    /// value untouched).
    pub(crate) idfs: Vec<f64>,
    /// Sorted, deduped union of the skill-delta people and the base holders
    /// of every term whose IDF moved.
    pub(crate) affected: Vec<PersonId>,
}

/// Folds the view's skill delta into `stats`.
pub(crate) fn skill_delta_effect(
    query: &[SkillId],
    stats: &TermStats,
    view: &PerturbedGraph<'_>,
) -> SkillDeltaEffect {
    let mut counts = stats.counts.clone();
    let mut affected: Vec<PersonId> = Vec::new();
    for (p, s) in view.skill_additions() {
        affected.push(p);
        if let Some(i) = query.iter().position(|&t| t == s) {
            counts[i] += 1;
        }
    }
    for (p, s) in view.skill_removals() {
        affected.push(p);
        if let Some(i) = query.iter().position(|&t| t == s) {
            counts[i] -= 1;
        }
    }
    let n = view.num_people();
    let mut idfs = stats.idfs.clone();
    for (i, (&new_count, &old_count)) in counts.iter().zip(stats.counts.iter()).enumerate() {
        if new_count != old_count {
            idfs[i] = idf_from_count(n, new_count);
            affected.extend_from_slice(&stats.holders[i]);
        }
    }
    affected.sort_unstable();
    affected.dedup();
    SkillDeltaEffect { idfs, affected }
}

/// Whether entry `a` orders strictly before entry `b` under the
/// [`RankedList::from_scores`] comparator (descending score, ascending id).
fn orders_before(a: (PersonId, f64), b: (PersonId, f64)) -> bool {
    b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)).is_lt()
}

/// The subject's 1-based rank after the delta, derived by correcting a count
/// against the baseline order.
///
/// `changed` holds the post-delta scores of every person the delta affected
/// (it may or may not include the subject; anyone absent keeps their baseline
/// score). The new rank is `1 +` the number of people ordering before the
/// subject's new key; that count starts from a binary search over the
/// baseline order and is patched per affected person, so the result is
/// *exactly* what a full re-sort of the new score vector would report.
pub(crate) fn corrected_rank(
    baseline: &RankerBaseline,
    subject: PersonId,
    changed: &[(PersonId, f64)],
) -> usize {
    let new_subject_score = changed
        .iter()
        .find(|&&(p, _)| p == subject)
        .map(|&(_, s)| s)
        .unwrap_or_else(|| baseline.scores[subject.index()]);
    let key = (subject, new_subject_score);
    let entries = baseline.ranked.entries();
    let mut before = entries.partition_point(|&e| orders_before(e, key)) as isize;
    // The subject's own baseline entry must not count against it.
    if orders_before((subject, baseline.scores[subject.index()]), key) {
        before -= 1;
    }
    for &(p, new_score) in changed {
        if p == subject {
            continue;
        }
        if orders_before((p, baseline.scores[p.index()]), key) {
            before -= 1;
        }
        if orders_before((p, new_score), key) {
            before += 1;
        }
    }
    debug_assert!(before >= 0, "rank correction underflow");
    before as usize + 1
}

/// Builds the person-indexed score vector backing `ranked`.
pub(crate) fn person_indexed_scores(ranked: &RankedList, n: usize) -> Vec<f64> {
    let mut scores = vec![0.0; n];
    for &(p, s) in ranked.entries() {
        scores[p.index()] = s;
    }
    scores
}

/// Incremental evaluation refuses to "localize" past this fraction of the
/// graph: when the affected neighbourhood covers more than half the people, a
/// full re-rank is at least as cheap and the caller should fall back.
pub(crate) fn affected_cap(num_people: usize) -> usize {
    num_people / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use exes_graph::CollabGraphBuilder;

    fn baseline_of(scores: Vec<(PersonId, f64)>) -> RankerBaseline {
        let ranked = RankedList::from_scores(scores);
        let n = ranked.len();
        let scores = person_indexed_scores(&ranked, n);
        RankerBaseline {
            query: Vec::new(),
            ranked,
            scores,
            kind: BaselineKind::TfIdf(TermStats {
                idfs: Vec::new(),
                counts: Vec::new(),
                holders: Vec::new(),
            }),
        }
    }

    /// Brute-force reference: re-sort the full patched score vector.
    fn resorted_rank(
        baseline: &RankerBaseline,
        subject: PersonId,
        changed: &[(PersonId, f64)],
    ) -> usize {
        let mut scores = baseline.scores.clone();
        for &(p, s) in changed {
            scores[p.index()] = s;
        }
        let list = RankedList::from_scores(
            scores
                .into_iter()
                .enumerate()
                .map(|(i, s)| (PersonId::from_index(i), s))
                .collect(),
        );
        list.rank_of(subject).unwrap()
    }

    #[test]
    fn corrected_rank_matches_a_full_resort() {
        let baseline = baseline_of(vec![
            (PersonId(0), 5.0),
            (PersonId(1), 4.0),
            (PersonId(2), 4.0),
            (PersonId(3), 1.0),
            (PersonId(4), 0.0),
        ]);
        let cases: Vec<Vec<(PersonId, f64)>> = vec![
            vec![],                                       // no change
            vec![(PersonId(3), 9.0)],                     // subject climbs
            vec![(PersonId(0), 0.5)],                     // leader collapses
            vec![(PersonId(3), 4.0)],                     // subject ties the pack
            vec![(PersonId(1), 4.0)],                     // no-op rewrite
            vec![(PersonId(1), 0.0), (PersonId(2), 6.0)], // mixed moves
            vec![(PersonId(4), 4.0), (PersonId(3), 4.0)], // two people join a tie
        ];
        for (i, changed) in cases.iter().enumerate() {
            for subject in (0..5).map(PersonId) {
                assert_eq!(
                    corrected_rank(&baseline, subject, changed),
                    resorted_rank(&baseline, subject, changed),
                    "case {i} subject {subject}"
                );
            }
        }
    }

    #[test]
    fn corrected_rank_randomized_against_resort() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x1AC4);
        for case in 0..200 {
            let n = rng.gen_range(1usize..12);
            let baseline = baseline_of(
                (0..n)
                    .map(|i| (PersonId::from_index(i), f64::from(rng.gen_range(0u32..5))))
                    .collect(),
            );
            let changes = rng.gen_range(0usize..=n);
            let mut changed: Vec<(PersonId, f64)> = Vec::new();
            for _ in 0..changes {
                let p = PersonId::from_index(rng.gen_range(0..n));
                if changed.iter().all(|&(q, _)| q != p) {
                    changed.push((p, f64::from(rng.gen_range(0u32..5))));
                }
            }
            for subject in (0..n).map(PersonId::from_index) {
                assert_eq!(
                    corrected_rank(&baseline, subject, &changed),
                    resorted_rank(&baseline, subject, &changed),
                    "case {case} subject {subject}"
                );
            }
        }
    }

    #[test]
    fn skill_delta_effect_adjusts_only_touched_terms() {
        let mut b = CollabGraphBuilder::new();
        let p0 = b.add_person("a", ["ml", "db"]);
        let p1 = b.add_person("b", ["ml"]);
        let _p2 = b.add_person("c", ["db"]);
        let g = b.build();
        let q = Query::parse("ml db", g.vocab()).unwrap();
        let stats = TermStats::collect(&g, &q);
        assert_eq!(stats.counts, vec![2, 2]);
        assert_eq!(stats.holders[0], vec![p0, p1]);

        let ml = g.vocab().id("ml").unwrap();
        let delta = exes_graph::PerturbationSet::singleton(exes_graph::Perturbation::RemoveSkill {
            person: p1,
            skill: ml,
        });
        let view = delta.apply_to_graph(&g);
        let effect = skill_delta_effect(q.skills(), &stats, &view);
        // "ml" lost a holder: its idf moved and both base holders are affected.
        assert_eq!(effect.idfs[0], idf_from_count(3, 1));
        assert_eq!(effect.idfs[1].to_bits(), stats.idfs[1].to_bits());
        assert_eq!(effect.affected, vec![p0, p1]);
    }
}
