//! # exes-expert-search
//!
//! Expert-search systems over skill-labelled collaboration networks: the
//! black boxes that ExES explains.
//!
//! The paper evaluates ExES against a pre-trained graph-convolutional expert
//! ranker that combines "its skills, the skills of its collaborators and the
//! network structure around it". This crate implements four rankers from
//! scratch that expose exactly those signal families behind one trait,
//! [`ExpertRanker`]:
//!
//! * [`TfIdfRanker`] — document-style ranking on a person's own skills only,
//! * [`PropagationRanker`] — Balog-style expertise propagation from collaborators,
//! * [`PersonalizedPageRank`] — random-walk relevance propagation over the whole
//!   network,
//! * [`GcnRanker`] — a deterministic two-layer graph-convolution scorer with
//!   seeded weights standing in for the paper's pre-trained GCN.
//!
//! ExES is model-agnostic: it only calls [`ExpertRanker::rank_of`] on perturbed
//! inputs, so anything implementing the trait can be explained.
//!
//! ```
//! use exes_datasets::{DatasetConfig, SyntheticDataset, QueryWorkload};
//! use exes_expert_search::{ExpertRanker, GcnRanker};
//! use exes_graph::GraphView;
//!
//! let ds = SyntheticDataset::generate(&DatasetConfig::tiny("es", 1));
//! let ranker = GcnRanker::with_seed(7);
//! let workload = QueryWorkload::answerable(&ds.graph, 1, 2, 3, 2, 5);
//! let q = &workload.queries()[0];
//! let ranking = ranker.rank_all(&ds.graph, q);
//! assert_eq!(ranking.len(), ds.graph.num_people());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gcn;
mod incremental;
mod pagerank;
mod propagation;
mod ranker;
mod tfidf;

pub use gcn::GcnRanker;
pub use incremental::RankerBaseline;
pub use pagerank::PersonalizedPageRank;
pub use propagation::PropagationRanker;
pub use ranker::{ExpertRanker, RankedList};
pub use tfidf::TfIdfRanker;
