//! Personalized-PageRank expert ranking (random-walk relevance propagation).

use crate::ranker::{smoothed_idf, ExpertRanker};
use crate::RankedList;
use exes_graph::{GraphView, PersonId, Query};

/// Personalized PageRank seeded by query–skill match.
///
/// The restart (personalisation) distribution puts mass on people in proportion
/// to their IDF-weighted query match; the walk then diffuses that mass over the
/// collaboration network, so well-connected people near many query-matching
/// experts rank highly even with partial skill overlap — the PageRank-flavoured
/// family the paper cites (reference \[8\] and footnote 1).
#[derive(Debug, Clone, Copy)]
pub struct PersonalizedPageRank {
    /// Damping factor (probability of following an edge rather than restarting).
    pub damping: f64,
    /// Number of power-iteration steps.
    pub iterations: usize,
    /// Weight of the direct (seed) component mixed back into the final score, so
    /// that holding the skills yourself always matters.
    pub seed_mix: f64,
}

impl Default for PersonalizedPageRank {
    fn default() -> Self {
        PersonalizedPageRank {
            damping: 0.85,
            iterations: 15,
            seed_mix: 0.5,
        }
    }
}

impl PersonalizedPageRank {
    fn seed_vector<G: GraphView + ?Sized>(&self, graph: &G, query: &Query) -> Vec<f64> {
        let idfs: Vec<(exes_graph::SkillId, f64)> = query
            .skills()
            .iter()
            .map(|&s| (s, smoothed_idf(graph, s)))
            .collect();
        let mut seeds: Vec<f64> = graph
            .people_ids()
            .map(|p| {
                idfs.iter()
                    .filter(|&&(s, _)| graph.person_has_skill(p, s))
                    .map(|&(_, idf)| idf)
                    .sum()
            })
            .collect();
        let total: f64 = seeds.iter().sum();
        if total > 0.0 {
            for s in &mut seeds {
                *s /= total;
            }
        } else {
            // Nobody matches: uniform restart.
            let n = seeds.len().max(1) as f64;
            for s in &mut seeds {
                *s = 1.0 / n;
            }
        }
        seeds
    }

    /// Runs the power iteration, returning the stationary scores.
    pub fn scores<G: GraphView + ?Sized>(&self, graph: &G, query: &Query) -> Vec<f64> {
        let n = graph.num_people();
        if n == 0 {
            return Vec::new();
        }
        let seeds = self.seed_vector(graph, query);
        let neighbor_lists: Vec<&[PersonId]> =
            graph.people_ids().map(|p| graph.neighbors(p)).collect();
        let mut rank = seeds.clone();
        let mut next = vec![0.0; n];
        for _ in 0..self.iterations {
            next.fill(0.0);
            let mut dangling = 0.0;
            for (i, ns) in neighbor_lists.iter().enumerate() {
                if ns.is_empty() {
                    dangling += rank[i];
                } else {
                    let share = rank[i] / ns.len() as f64;
                    for &nb in *ns {
                        next[nb.index()] += share;
                    }
                }
            }
            for i in 0..n {
                next[i] = (1.0 - self.damping) * seeds[i]
                    + self.damping * (next[i] + dangling * seeds[i]);
            }
            std::mem::swap(&mut rank, &mut next);
        }
        // Mix the seed (direct match) component back in.
        rank.iter()
            .zip(seeds.iter())
            .map(|(&r, &s)| r + self.seed_mix * s)
            .collect()
    }
}

impl ExpertRanker for PersonalizedPageRank {
    fn score<G: GraphView + ?Sized>(&self, graph: &G, query: &Query, person: PersonId) -> f64 {
        self.scores(graph, query)[person.index()]
    }

    fn name(&self) -> &'static str {
        "personalized-pagerank"
    }

    fn hash_params(&self, state: &mut dyn std::hash::Hasher) {
        state.write_u64(self.damping.to_bits());
        state.write_usize(self.iterations);
        state.write_u64(self.seed_mix.to_bits());
    }

    fn rank_all<G: GraphView + ?Sized>(&self, graph: &G, query: &Query) -> RankedList {
        let scores = self.scores(graph, query);
        RankedList::from_scores(
            scores
                .into_iter()
                .enumerate()
                .map(|(i, s)| (PersonId::from_index(i), s))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exes_graph::{CollabGraph, CollabGraphBuilder, Perturbation, PerturbationSet};

    fn toy() -> CollabGraph {
        let mut b = CollabGraphBuilder::new();
        let expert = b.add_person("expert", ["ml", "graph"]);
        let friend = b.add_person("friend", ["db"]);
        let far = b.add_person("far", ["db"]);
        let isolated = b.add_person("isolated", ["db"]);
        b.add_edge(expert, friend);
        b.add_edge(friend, far);
        let _ = isolated;
        b.build()
    }

    #[test]
    fn scores_form_a_rough_probability_mass() {
        let g = toy();
        let q = Query::parse("ml", g.vocab()).unwrap();
        let ppr = PersonalizedPageRank::default();
        let scores = ppr.scores(&g, &q);
        assert_eq!(scores.len(), 4);
        assert!(scores.iter().all(|&s| s >= 0.0));
        let sum: f64 = scores.iter().sum();
        // rank sums to ~1 plus the seed_mix * 1 extra mass.
        assert!((sum - (1.0 + ppr.seed_mix)).abs() < 0.05, "sum {sum}");
    }

    #[test]
    fn expert_ranks_first_and_proximity_matters() {
        let g = toy();
        let q = Query::parse("ml graph", g.vocab()).unwrap();
        let ppr = PersonalizedPageRank::default();
        let list = ppr.rank_all(&g, &q);
        assert_eq!(list.rank_of(PersonId(0)), Some(1));
        // Friend (1 hop) outranks far (2 hops) outranks isolated.
        assert!(list.rank_of(PersonId(1)) < list.rank_of(PersonId(2)));
        assert!(list.rank_of(PersonId(2)) < list.rank_of(PersonId(3)));
    }

    #[test]
    fn no_match_falls_back_to_uniform_restart() {
        let g = toy();
        let q = Query::parse("ml", g.vocab()).unwrap();
        // Remove the only holder's skill: nobody matches.
        let ml = g.vocab().id("ml").unwrap();
        let delta = PerturbationSet::singleton(Perturbation::RemoveSkill {
            person: PersonId(0),
            skill: ml,
        });
        let view = delta.apply_to_graph(&g);
        let ppr = PersonalizedPageRank::default();
        let scores = ppr.scores(&view, &q);
        assert!(scores.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn adding_an_edge_to_the_expert_improves_rank() {
        let g = toy();
        let q = Query::parse("ml graph", g.vocab()).unwrap();
        let ppr = PersonalizedPageRank::default();
        let before = ppr.rank_of(&g, &q, PersonId(3));
        let delta = PerturbationSet::singleton(Perturbation::AddEdge {
            a: PersonId(3),
            b: PersonId(0),
        });
        let view = delta.apply_to_graph(&g);
        let after = ppr.rank_of(&view, &q, PersonId(3));
        assert!(after < before, "rank should improve: {before} -> {after}");
    }

    #[test]
    fn empty_graph_yields_empty_scores() {
        let g = CollabGraphBuilder::new().build();
        let mut vb = CollabGraphBuilder::new();
        vb.add_person("x", ["ml"]);
        let with_vocab = vb.build();
        let q = Query::parse("ml", with_vocab.vocab()).unwrap();
        let ppr = PersonalizedPageRank::default();
        assert!(ppr.scores(&g, &q).is_empty());
    }
}
