//! Personalized-PageRank expert ranking (random-walk relevance propagation).

use crate::incremental::{affected_cap, corrected_rank, BaselineKind, RankerBaseline};
use crate::ranker::{smoothed_idf, ExpertRanker};
use crate::RankedList;
use exes_graph::{GraphView, PersonId, PerturbedGraph, Query};

/// Delta-push entries below this magnitude are dropped, which is what keeps
/// the influence frontier of a localized update bounded instead of flooding
/// the whole component after a few iterations. The dropped mass bounds the
/// score error of the incremental path; see
/// [`PersonalizedPageRank::incremental_rank_of`].
const RESIDUAL_FLOOR: f64 = 1e-14;

/// Personalized PageRank seeded by query–skill match.
///
/// The restart (personalisation) distribution puts mass on people in proportion
/// to their IDF-weighted query match; the walk then diffuses that mass over the
/// collaboration network, so well-connected people near many query-matching
/// experts rank highly even with partial skill overlap — the PageRank-flavoured
/// family the paper cites (reference \[8\] and footnote 1).
#[derive(Debug, Clone, Copy)]
pub struct PersonalizedPageRank {
    /// Damping factor (probability of following an edge rather than restarting).
    pub damping: f64,
    /// Number of power-iteration steps.
    pub iterations: usize,
    /// Weight of the direct (seed) component mixed back into the final score, so
    /// that holding the skills yourself always matters.
    pub seed_mix: f64,
}

impl Default for PersonalizedPageRank {
    fn default() -> Self {
        PersonalizedPageRank {
            damping: 0.85,
            iterations: 15,
            seed_mix: 0.5,
        }
    }
}

impl PersonalizedPageRank {
    fn seed_vector<G: GraphView + ?Sized>(&self, graph: &G, query: &Query) -> Vec<f64> {
        let idfs: Vec<(exes_graph::SkillId, f64)> = query
            .skills()
            .iter()
            .map(|&s| (s, smoothed_idf(graph, s)))
            .collect();
        let mut seeds: Vec<f64> = graph
            .people_ids()
            .map(|p| {
                idfs.iter()
                    .filter(|&&(s, _)| graph.person_has_skill(p, s))
                    .map(|&(_, idf)| idf)
                    .sum()
            })
            .collect();
        let total: f64 = seeds.iter().sum();
        if total > 0.0 {
            for s in &mut seeds {
                *s /= total;
            }
        } else {
            // Nobody matches: uniform restart.
            let n = seeds.len().max(1) as f64;
            for s in &mut seeds {
                *s = 1.0 / n;
            }
        }
        seeds
    }

    /// Runs the power iteration, returning the stationary scores.
    pub fn scores<G: GraphView + ?Sized>(&self, graph: &G, query: &Query) -> Vec<f64> {
        let n = graph.num_people();
        if n == 0 {
            return Vec::new();
        }
        let seeds = self.seed_vector(graph, query);
        let neighbor_lists: Vec<&[PersonId]> =
            graph.people_ids().map(|p| graph.neighbors(p)).collect();
        let mut rank = seeds.clone();
        let mut next = vec![0.0; n];
        for _ in 0..self.iterations {
            next.fill(0.0);
            let mut dangling = 0.0;
            for (i, ns) in neighbor_lists.iter().enumerate() {
                if ns.is_empty() {
                    dangling += rank[i];
                } else {
                    let share = rank[i] / ns.len() as f64;
                    for &nb in *ns {
                        next[nb.index()] += share;
                    }
                }
            }
            for i in 0..n {
                next[i] = (1.0 - self.damping) * seeds[i]
                    + self.damping * (next[i] + dangling * seeds[i]);
            }
            std::mem::swap(&mut rank, &mut next);
        }
        // Mix the seed (direct match) component back in.
        rank.iter()
            .zip(seeds.iter())
            .map(|(&r, &s)| r + self.seed_mix * s)
            .collect()
    }
}

impl ExpertRanker for PersonalizedPageRank {
    fn score<G: GraphView + ?Sized>(&self, graph: &G, query: &Query, person: PersonId) -> f64 {
        self.scores(graph, query)[person.index()]
    }

    fn name(&self) -> &'static str {
        "personalized-pagerank"
    }

    fn hash_params(&self, state: &mut dyn std::hash::Hasher) {
        state.write_u64(self.damping.to_bits());
        state.write_usize(self.iterations);
        state.write_u64(self.seed_mix.to_bits());
    }

    fn rank_all<G: GraphView + ?Sized>(&self, graph: &G, query: &Query) -> RankedList {
        let scores = self.scores(graph, query);
        RankedList::from_scores(
            scores
                .into_iter()
                .enumerate()
                .map(|(i, s)| (PersonId::from_index(i), s))
                .collect(),
        )
    }

    fn build_baseline(
        &self,
        graph: &exes_graph::CollabGraph,
        query: &Query,
    ) -> Option<RankerBaseline> {
        let n = graph.num_people();
        if n == 0 {
            return None;
        }
        // The same power iteration as `scores`, additionally recording the
        // rank vector *before* each step — the incremental path replays its
        // sparse correction against exactly these iterates.
        let seeds = self.seed_vector(graph, query);
        let neighbor_lists: Vec<&[PersonId]> =
            graph.people_ids().map(|p| graph.neighbors(p)).collect();
        let mut rank = seeds.clone();
        let mut next = vec![0.0; n];
        let mut trajectory = Vec::with_capacity(self.iterations);
        for _ in 0..self.iterations {
            trajectory.push(rank.clone());
            next.fill(0.0);
            let mut dangling = 0.0;
            for (i, ns) in neighbor_lists.iter().enumerate() {
                if ns.is_empty() {
                    dangling += rank[i];
                } else {
                    let share = rank[i] / ns.len() as f64;
                    for &nb in *ns {
                        next[nb.index()] += share;
                    }
                }
            }
            for i in 0..n {
                next[i] = (1.0 - self.damping) * seeds[i]
                    + self.damping * (next[i] + dangling * seeds[i]);
            }
            std::mem::swap(&mut rank, &mut next);
        }
        let scores: Vec<f64> = rank
            .iter()
            .zip(seeds.iter())
            .map(|(&r, &s)| r + self.seed_mix * s)
            .collect();
        let ranked = RankedList::from_scores(
            scores
                .iter()
                .enumerate()
                .map(|(i, &s)| (PersonId::from_index(i), s))
                .collect(),
        );
        Some(RankerBaseline {
            query: query.skills().to_vec(),
            ranked,
            scores,
            kind: BaselineKind::PageRank { trajectory },
        })
    }

    /// Bounded-error: edge deltas are handled by pushing the score *change*
    /// through the walk instead of re-running it, truncating entries below
    /// `RESIDUAL_FLOOR` (`1e-14`). The truncated mass bounds the deviation from a
    /// full re-rank at well under `1e-9` per score, far below the gaps that
    /// separate distinct ranks in practice — ranks can only differ from the
    /// full path where two scores tie within that tolerance. Skill deltas on
    /// query terms renormalize the restart vector globally, so those fall
    /// back to the full path (`None`); skill deltas on non-query terms leave
    /// PageRank's input untouched and answer straight from the baseline.
    fn incremental_rank_of(
        &self,
        baseline: &RankerBaseline,
        view: &PerturbedGraph<'_>,
        query: &Query,
        person: PersonId,
    ) -> Option<usize> {
        if query.skills() != baseline.query {
            return None;
        }
        // The restart and dangling-mass terms cancel between the two walks
        // (stable seeds, stable dangling set), so only the trajectory is
        // needed here.
        let BaselineKind::PageRank { trajectory } = &baseline.kind else {
            return None;
        };
        // Any query-term holder change moves the (normalized) restart vector
        // everywhere at once: no locality to exploit.
        for (_, s) in view.skill_additions().chain(view.skill_removals()) {
            if baseline.query.contains(&s) {
                return None;
            }
        }
        let mut patched: Vec<PersonId> = view
            .edge_additions()
            .chain(view.edge_removals())
            .flat_map(|(a, b)| [a, b])
            .collect();
        patched.sort_unstable();
        patched.dedup();
        if patched.is_empty() {
            // The delta is invisible to PageRank: scores are bitwise the
            // baseline's.
            return baseline.ranked.rank_of(person);
        }
        let base = view.base();
        // The dangling set must be stable or the dangling-mass term stops
        // cancelling between the baseline and the perturbed walk.
        for &p in &patched {
            if base.base_neighbors(p).is_empty() != view.neighbors(p).is_empty() {
                return None;
            }
        }
        let n = view.num_people();
        let cap = affected_cap(n);
        let mut is_patched = vec![false; n];
        for &p in &patched {
            is_patched[p.index()] = true;
        }
        let mut delta = vec![0.0; n];
        let mut active: Vec<usize> = Vec::new();
        let mut next_delta = vec![0.0; n];
        let mut next_active: Vec<usize> = Vec::new();
        let mut in_next = vec![false; n];
        for r_t in trajectory {
            {
                let mut push = |j: usize, v: f64| {
                    if !in_next[j] {
                        in_next[j] = true;
                        next_active.push(j);
                    }
                    next_delta[j] += v;
                };
                // Patched rows: replace their old contribution with the new
                // one (their rank mass may itself carry a delta).
                for &p in &patched {
                    let i = p.index();
                    let new_row = view.neighbors(p);
                    let share = self.damping * (r_t[i] + delta[i]) / new_row.len() as f64;
                    for &nb in new_row {
                        push(nb.index(), share);
                    }
                    let old_row = base.base_neighbors(p);
                    let share = self.damping * r_t[i] / old_row.len() as f64;
                    for &nb in old_row {
                        push(nb.index(), -share);
                    }
                }
                // Unpatched rows forward only their accumulated delta.
                for &i in &active {
                    if is_patched[i] {
                        continue;
                    }
                    let ns = view.neighbors(PersonId::from_index(i));
                    if ns.is_empty() {
                        continue;
                    }
                    let share = self.damping * delta[i] / ns.len() as f64;
                    for &nb in ns {
                        push(nb.index(), share);
                    }
                }
            }
            for &i in &active {
                delta[i] = 0.0;
            }
            active.clear();
            for &j in &next_active {
                in_next[j] = false;
                let v = next_delta[j];
                next_delta[j] = 0.0;
                if v.abs() > RESIDUAL_FLOOR {
                    delta[j] = v;
                    active.push(j);
                }
            }
            next_active.clear();
            if active.len() > cap {
                return None;
            }
        }
        let changed: Vec<(PersonId, f64)> = active
            .iter()
            .map(|&i| (PersonId::from_index(i), baseline.scores[i] + delta[i]))
            .collect();
        Some(corrected_rank(baseline, person, &changed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exes_graph::{CollabGraph, CollabGraphBuilder, Perturbation, PerturbationSet};

    fn toy() -> CollabGraph {
        let mut b = CollabGraphBuilder::new();
        let expert = b.add_person("expert", ["ml", "graph"]);
        let friend = b.add_person("friend", ["db"]);
        let far = b.add_person("far", ["db"]);
        let isolated = b.add_person("isolated", ["db"]);
        b.add_edge(expert, friend);
        b.add_edge(friend, far);
        let _ = isolated;
        b.build()
    }

    #[test]
    fn scores_form_a_rough_probability_mass() {
        let g = toy();
        let q = Query::parse("ml", g.vocab()).unwrap();
        let ppr = PersonalizedPageRank::default();
        let scores = ppr.scores(&g, &q);
        assert_eq!(scores.len(), 4);
        assert!(scores.iter().all(|&s| s >= 0.0));
        let sum: f64 = scores.iter().sum();
        // rank sums to ~1 plus the seed_mix * 1 extra mass.
        assert!((sum - (1.0 + ppr.seed_mix)).abs() < 0.05, "sum {sum}");
    }

    #[test]
    fn expert_ranks_first_and_proximity_matters() {
        let g = toy();
        let q = Query::parse("ml graph", g.vocab()).unwrap();
        let ppr = PersonalizedPageRank::default();
        let list = ppr.rank_all(&g, &q);
        assert_eq!(list.rank_of(PersonId(0)), Some(1));
        // Friend (1 hop) outranks far (2 hops) outranks isolated.
        assert!(list.rank_of(PersonId(1)) < list.rank_of(PersonId(2)));
        assert!(list.rank_of(PersonId(2)) < list.rank_of(PersonId(3)));
    }

    #[test]
    fn no_match_falls_back_to_uniform_restart() {
        let g = toy();
        let q = Query::parse("ml", g.vocab()).unwrap();
        // Remove the only holder's skill: nobody matches.
        let ml = g.vocab().id("ml").unwrap();
        let delta = PerturbationSet::singleton(Perturbation::RemoveSkill {
            person: PersonId(0),
            skill: ml,
        });
        let view = delta.apply_to_graph(&g);
        let ppr = PersonalizedPageRank::default();
        let scores = ppr.scores(&view, &q);
        assert!(scores.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn adding_an_edge_to_the_expert_improves_rank() {
        let g = toy();
        let q = Query::parse("ml graph", g.vocab()).unwrap();
        let ppr = PersonalizedPageRank::default();
        let before = ppr.rank_of(&g, &q, PersonId(3));
        let delta = PerturbationSet::singleton(Perturbation::AddEdge {
            a: PersonId(3),
            b: PersonId(0),
        });
        let view = delta.apply_to_graph(&g);
        let after = ppr.rank_of(&view, &q, PersonId(3));
        assert!(after < before, "rank should improve: {before} -> {after}");
    }

    #[test]
    fn incremental_rank_tracks_full_rerank_for_edge_deltas() {
        // Two 6-person chains with distinct "ml" sources; big enough that a
        // localized push stays under the n/2 cap. Everyone matches at least
        // one query term so no degenerate zero-score ties sit exactly on the
        // bounded-error boundary.
        let mut b = CollabGraphBuilder::new();
        let people: Vec<PersonId> = (0..16)
            .map(|i| {
                b.add_person(
                    &format!("p{i}"),
                    match i {
                        0 | 8 => vec!["ml"],
                        6 => vec!["other", "db"],
                        _ => vec!["other"],
                    },
                )
            })
            .collect();
        for i in 0..5 {
            b.add_edge(people[i], people[i + 1]);
            b.add_edge(people[8 + i], people[9 + i]);
        }
        let g = b.build();
        let q = Query::parse("ml other", g.vocab()).unwrap();
        let ppr = PersonalizedPageRank::default();
        let baseline = ppr.build_baseline(&g, &q).unwrap();
        let db = g.vocab().id("db").unwrap();
        let deltas = vec![
            Perturbation::AddEdge {
                a: people[3],
                b: people[5],
            },
            Perturbation::RemoveEdge {
                a: people[9],
                b: people[10],
            },
            // Non-query skill deltas leave PageRank's input untouched.
            Perturbation::AddSkill {
                person: people[2],
                skill: db,
            },
        ];
        for d in deltas {
            let view = PerturbationSet::singleton(d).apply_to_graph(&g);
            let full = ppr.rank_all(&view, &q);
            for &p in &people {
                let inc = ppr
                    .incremental_rank_of(&baseline, &view, &q, p)
                    .unwrap_or_else(|| panic!("delta {d:?}: expected an incremental answer"));
                let reference = full.rank_of(p).unwrap();
                assert_eq!(
                    inc, reference,
                    "delta {d:?} person {p}: incremental {inc} vs full {reference}"
                );
            }
        }
    }

    #[test]
    fn incremental_refuses_query_term_and_dangling_deltas() {
        let g = toy();
        let q = Query::parse("ml", g.vocab()).unwrap();
        let ppr = PersonalizedPageRank::default();
        let baseline = ppr.build_baseline(&g, &q).unwrap();
        let ml = g.vocab().id("ml").unwrap();
        // Removing a query-term skill moves the restart vector globally.
        let skill_delta = PerturbationSet::singleton(Perturbation::RemoveSkill {
            person: PersonId(0),
            skill: ml,
        });
        let view = skill_delta.apply_to_graph(&g);
        assert_eq!(
            ppr.incremental_rank_of(&baseline, &view, &q, PersonId(0)),
            None
        );
        // Connecting the isolated person flips its dangling status.
        let edge_delta = PerturbationSet::singleton(Perturbation::AddEdge {
            a: PersonId(3),
            b: PersonId(0),
        });
        let view = edge_delta.apply_to_graph(&g);
        assert_eq!(
            ppr.incremental_rank_of(&baseline, &view, &q, PersonId(3)),
            None
        );
    }

    #[test]
    fn empty_graph_yields_empty_scores() {
        let g = CollabGraphBuilder::new().build();
        let mut vb = CollabGraphBuilder::new();
        vb.add_person("x", ["ml"]);
        let with_vocab = vb.build();
        let q = Query::parse("ml", with_vocab.vocab()).unwrap();
        let ppr = PersonalizedPageRank::default();
        assert!(ppr.scores(&g, &q).is_empty());
    }
}
