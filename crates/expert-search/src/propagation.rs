//! Expertise-propagation ranking: a person inherits part of their collaborators'
//! relevance (the "expertise propagates" signal the paper's footnote 1 describes).

use crate::incremental::{
    affected_cap, corrected_rank, person_indexed_scores, skill_delta_effect, BaselineKind,
    RankerBaseline, TermStats,
};
use crate::ranker::{smoothed_idf, ExpertRanker};
use crate::RankedList;
use exes_graph::{CollabGraph, GraphView, PersonId, PerturbedGraph, Query};

/// Two-hop expertise-propagation ranker.
///
/// The base relevance of a person is the IDF-weighted match between their own
/// skills and the query (as in [`crate::TfIdfRanker`] without length
/// normalisation); the final score mixes in the *average* base relevance of
/// their collaborators and, with a smaller weight, of their collaborators'
/// collaborators:
///
/// `score(p) = base(p) + α · mean_{n∈N(p)} base(n) + β · mean_{m∈N²(p)} base(m)`
///
/// Averaging (rather than summing) keeps hubs from dominating purely by degree,
/// while still letting a well-connected non-expert rank above an isolated
/// non-expert — the behaviour ExES's collaboration explanations must surface.
#[derive(Debug, Clone, Copy)]
pub struct PropagationRanker {
    /// Weight of the 1-hop neighbourhood contribution.
    pub alpha: f64,
    /// Weight of the 2-hop neighbourhood contribution.
    pub beta: f64,
}

impl Default for PropagationRanker {
    fn default() -> Self {
        PropagationRanker {
            alpha: 0.5,
            beta: 0.15,
        }
    }
}

impl PropagationRanker {
    fn base_scores<G: GraphView + ?Sized>(&self, graph: &G, query: &Query) -> Vec<f64> {
        let idfs: Vec<(exes_graph::SkillId, f64)> = query
            .skills()
            .iter()
            .map(|&s| (s, smoothed_idf(graph, s)))
            .collect();
        graph
            .people_ids()
            .map(|p| {
                idfs.iter()
                    .filter(|&&(s, _)| graph.person_has_skill(p, s))
                    .map(|&(_, idf)| idf)
                    .sum()
            })
            .collect()
    }
}

impl ExpertRanker for PropagationRanker {
    fn score<G: GraphView + ?Sized>(&self, graph: &G, query: &Query, person: PersonId) -> f64 {
        // Per-person scoring recomputes the local base scores only.
        let idfs: Vec<(exes_graph::SkillId, f64)> = query
            .skills()
            .iter()
            .map(|&s| (s, smoothed_idf(graph, s)))
            .collect();
        let base = |p: PersonId| -> f64 {
            idfs.iter()
                .filter(|&&(s, _)| graph.person_has_skill(p, s))
                .map(|&(_, idf)| idf)
                .sum()
        };
        let own = base(person);
        let neighbors = graph.neighbors(person);
        let one_hop = mean(neighbors.iter().map(|&n| base(n)));
        let mut two_hop_nodes = Vec::new();
        for &n in neighbors {
            for &m in graph.neighbors(n) {
                if m != person && !neighbors.contains(&m) {
                    two_hop_nodes.push(m);
                }
            }
        }
        two_hop_nodes.sort_unstable();
        two_hop_nodes.dedup();
        let two_hop = mean(two_hop_nodes.iter().map(|&m| base(m)));
        own + self.alpha * one_hop + self.beta * two_hop
    }

    fn name(&self) -> &'static str {
        "expertise-propagation"
    }

    fn hash_params(&self, state: &mut dyn std::hash::Hasher) {
        state.write_u64(self.alpha.to_bits());
        state.write_u64(self.beta.to_bits());
    }

    fn rank_all<G: GraphView + ?Sized>(&self, graph: &G, query: &Query) -> RankedList {
        let base = self.base_scores(graph, query);
        let n = graph.num_people();
        // 1-hop averages.
        let mut one_hop = vec![0.0; n];
        let mut neighbor_lists: Vec<&[PersonId]> = Vec::with_capacity(n);
        for p in graph.people_ids() {
            let ns = graph.neighbors(p);
            one_hop[p.index()] = mean(ns.iter().map(|&x| base[x.index()]));
            neighbor_lists.push(ns);
        }
        // 2-hop averages (excluding self and direct neighbours).
        let scores = graph
            .people_ids()
            .map(|p| {
                let ns = neighbor_lists[p.index()];
                let mut two_hop_nodes = Vec::new();
                for &nb in ns {
                    for &m in neighbor_lists[nb.index()] {
                        if m != p && !ns.contains(&m) {
                            two_hop_nodes.push(m);
                        }
                    }
                }
                two_hop_nodes.sort_unstable();
                two_hop_nodes.dedup();
                let two_hop = mean(two_hop_nodes.iter().map(|&m| base[m.index()]));
                (
                    p,
                    base[p.index()] + self.alpha * one_hop[p.index()] + self.beta * two_hop,
                )
            })
            .collect();
        RankedList::from_scores(scores)
    }

    fn build_baseline(&self, graph: &CollabGraph, query: &Query) -> Option<RankerBaseline> {
        let ranked = self.rank_all(graph, query);
        let scores = person_indexed_scores(&ranked, graph.num_people());
        Some(RankerBaseline {
            query: query.skills().to_vec(),
            ranked,
            scores,
            kind: BaselineKind::Propagation {
                terms: TermStats::collect(graph, query),
                base: self.base_scores(graph, query),
            },
        })
    }

    /// Exact: a person's score reads their own base relevance, the base
    /// relevance of their ≤2-hop neighbourhood, and neighbour lists at most
    /// one hop out. So a moved base relevance dirties its 2-hop ball, while a
    /// flipped edge only re-aggregates its endpoints and their direct
    /// neighbours — rescoring that union reproduces a full re-rank bitwise.
    fn incremental_rank_of(
        &self,
        baseline: &RankerBaseline,
        view: &PerturbedGraph<'_>,
        query: &Query,
        person: PersonId,
    ) -> Option<usize> {
        if query.skills() != baseline.query {
            return None;
        }
        let BaselineKind::Propagation { terms, base } = &baseline.kind else {
            return None;
        };
        let n = view.num_people();
        let cap = affected_cap(n);
        let effect = skill_delta_effect(&baseline.query, terms, view);
        // Recompute the base relevance of every skill-delta candidate
        // (replicating `base_scores` bit for bit). Someone whose base comes
        // out bitwise unchanged — e.g. an edit to a non-query skill — cannot
        // move any score and drops out of the seed set entirely.
        let mut patched_base = base.clone();
        let mut rebased: Vec<PersonId> = Vec::new();
        for &p in &effect.affected {
            let score: f64 = baseline
                .query
                .iter()
                .zip(effect.idfs.iter())
                .filter(|&(&s, _)| view.person_has_skill(p, s))
                .map(|(_, &idf)| idf)
                .sum();
            if score.to_bits() != base[p.index()].to_bits() {
                rebased.push(p);
            }
            patched_base[p.index()] = score;
        }
        let mut affected = view.expand_frontier(&rebased, 2, cap)?;
        let mut endpoints: Vec<PersonId> = Vec::new();
        for (a, b) in view.edge_additions().chain(view.edge_removals()) {
            endpoints.push(a);
            endpoints.push(b);
        }
        endpoints.sort_unstable();
        endpoints.dedup();
        affected.extend(view.expand_frontier(&endpoints, 1, cap)?);
        affected.sort_unstable();
        affected.dedup();
        if affected.len() > cap {
            return None;
        }
        let changed: Vec<(PersonId, f64)> = affected
            .iter()
            .map(|&p| {
                // Replicates `rank_all`'s per-person aggregation bit for bit.
                let ns = view.neighbors(p);
                let one_hop = mean(ns.iter().map(|&x| patched_base[x.index()]));
                let mut two_hop_nodes = Vec::new();
                for &nb in ns {
                    for &m in view.neighbors(nb) {
                        if m != p && !ns.contains(&m) {
                            two_hop_nodes.push(m);
                        }
                    }
                }
                two_hop_nodes.sort_unstable();
                two_hop_nodes.dedup();
                let two_hop = mean(two_hop_nodes.iter().map(|&m| patched_base[m.index()]));
                (
                    p,
                    patched_base[p.index()] + self.alpha * one_hop + self.beta * two_hop,
                )
            })
            .collect();
        Some(corrected_rank(baseline, person, &changed))
    }
}

fn mean(iter: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in iter {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exes_graph::{CollabGraph, CollabGraphBuilder, Perturbation, PerturbationSet};

    /// p0 holds the skill; p1 collaborates with p0; p2 is isolated; p3 is two
    /// hops away from p0 (via p1).
    fn toy() -> CollabGraph {
        let mut b = CollabGraphBuilder::new();
        let p0 = b.add_person("expert", ["ml"]);
        let p1 = b.add_person("collaborator", ["other"]);
        let p2 = b.add_person("isolated", ["other"]);
        let p3 = b.add_person("second-hop", ["other"]);
        b.add_edge(p0, p1);
        b.add_edge(p1, p3);
        let _ = p2;
        b.build()
    }

    #[test]
    fn collaborating_with_an_expert_beats_isolation() {
        let g = toy();
        let q = Query::parse("ml", g.vocab()).unwrap();
        let r = PropagationRanker::default();
        let collaborator = r.score(&g, &q, PersonId(1));
        let isolated = r.score(&g, &q, PersonId(2));
        let second_hop = r.score(&g, &q, PersonId(3));
        assert!(collaborator > isolated);
        assert!(second_hop > isolated);
        assert!(collaborator > second_hop);
    }

    #[test]
    fn the_expert_still_ranks_first() {
        let g = toy();
        let q = Query::parse("ml", g.vocab()).unwrap();
        let r = PropagationRanker::default();
        assert_eq!(r.rank_of(&g, &q, PersonId(0)), 1);
    }

    #[test]
    fn rank_all_agrees_with_score() {
        let g = toy();
        let q = Query::parse("ml", g.vocab()).unwrap();
        let r = PropagationRanker::default();
        let list = r.rank_all(&g, &q);
        for &(p, s) in list.entries() {
            assert!(
                (s - r.score(&g, &q, p)).abs() < 1e-9,
                "mismatch for {p}: {s} vs {}",
                r.score(&g, &q, p)
            );
        }
    }

    #[test]
    fn removing_the_expert_edge_hurts_the_collaborator() {
        let g = toy();
        let q = Query::parse("ml", g.vocab()).unwrap();
        let r = PropagationRanker::default();
        let before = r.score(&g, &q, PersonId(1));
        let delta = PerturbationSet::singleton(Perturbation::RemoveEdge {
            a: PersonId(0),
            b: PersonId(1),
        });
        let view = delta.apply_to_graph(&g);
        let after = r.score(&view, &q, PersonId(1));
        assert!(after < before);
    }

    #[test]
    fn adding_an_edge_to_an_expert_helps() {
        let g = toy();
        let q = Query::parse("ml", g.vocab()).unwrap();
        let r = PropagationRanker::default();
        let before = r.score(&g, &q, PersonId(2));
        let delta = PerturbationSet::singleton(Perturbation::AddEdge {
            a: PersonId(2),
            b: PersonId(0),
        });
        let view = delta.apply_to_graph(&g);
        let after = r.score(&view, &q, PersonId(2));
        assert!(after > before);
    }

    #[test]
    fn incremental_rank_matches_full_rerank_exactly() {
        // A graph big enough that the 2-hop ball of a singleton delta — and
        // of the holder set of an IDF-moved term — stays under the n/2
        // localization cap: two 5-person chains plus loners, "ml" held only
        // by the two chain heads.
        let mut b = CollabGraphBuilder::new();
        let people: Vec<PersonId> = (0..20)
            .map(|i| {
                b.add_person(
                    &format!("p{i}"),
                    if i % 10 == 0 {
                        vec!["ml"]
                    } else {
                        vec!["other"]
                    },
                )
            })
            .collect();
        for i in 0..4 {
            b.add_edge(people[i], people[i + 1]);
            b.add_edge(people[10 + i], people[11 + i]);
        }
        let g = b.build();
        let q = Query::parse("ml", g.vocab()).unwrap();
        let r = PropagationRanker::default();
        let baseline = r.build_baseline(&g, &q).unwrap();
        let ml = g.vocab().id("ml").unwrap();
        let other = g.vocab().id("other").unwrap();
        let deltas = vec![
            Perturbation::AddEdge {
                a: people[15],
                b: people[0],
            },
            Perturbation::RemoveEdge {
                a: people[1],
                b: people[2],
            },
            Perturbation::AddSkill {
                person: people[4],
                skill: ml,
            },
            Perturbation::RemoveSkill {
                person: people[3],
                skill: ml,
            },
            Perturbation::AddSkill {
                person: people[0],
                skill: other,
            },
        ];
        for d in deltas {
            let view = PerturbationSet::singleton(d).apply_to_graph(&g);
            for &p in &people {
                let inc = r.incremental_rank_of(&baseline, &view, &q, p);
                assert_eq!(inc, Some(r.rank_of(&view, &q, p)), "delta {d:?} person {p}");
            }
        }
    }

    #[test]
    fn incremental_falls_back_when_the_ball_covers_the_graph() {
        let g = toy(); // 4 people: any 2-hop ball around an edge delta is > n/2
        let q = Query::parse("ml", g.vocab()).unwrap();
        let r = PropagationRanker::default();
        let baseline = r.build_baseline(&g, &q).unwrap();
        let delta = PerturbationSet::singleton(Perturbation::AddEdge {
            a: PersonId(0),
            b: PersonId(2),
        });
        let view = delta.apply_to_graph(&g);
        assert_eq!(
            r.incremental_rank_of(&baseline, &view, &q, PersonId(0)),
            None
        );
    }

    #[test]
    fn zero_weights_reduce_to_pure_skill_match() {
        let g = toy();
        let q = Query::parse("ml", g.vocab()).unwrap();
        let r = PropagationRanker {
            alpha: 0.0,
            beta: 0.0,
        };
        assert_eq!(r.score(&g, &q, PersonId(1)), 0.0);
        assert!(r.score(&g, &q, PersonId(0)) > 0.0);
    }
}
